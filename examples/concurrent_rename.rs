//! Figure 1, live: a rename overtakes an in-flight mkdir and *helps* it.
//!
//! Stages the paper's motivating interleaving deterministically (a trace
//! gate parks the mkdir inside its critical section), then replays the
//! recorded execution through the CRL-H checker twice — once with the
//! helper mechanism, once with fixed LPs — and prints what each concludes.
//!
//! ```sh
//! cargo run --example concurrent_rename
//! ```

use std::sync::Arc;

use atomfs::{AtomFs, AtomFsConfig};
use atomfs_trace::{set_current_tid, BufferSink, Event, GateSink, Tid, TraceSink};
use atomfs_vfs::FileSystem;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

fn main() {
    let sink = Arc::new(GateSink::new(BufferSink::new()));
    // Figure 1 stages a lock-coupled walk being overtaken; pin the
    // pessimistic walk so the optimistic fast path cannot dissolve the
    // conflict by revalidating past it.
    let fs = Arc::new(AtomFs::traced_with_config(
        sink.clone() as Arc<dyn TraceSink>,
        AtomFsConfig {
            optimistic: false,
            ..AtomFsConfig::default()
        },
    ));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();

    println!("t2: mkdir(/a/b/c) begins and walks to /a/b ...");
    let gate = sink.add_gate(|e| matches!(e, Event::Mutate { tid, .. } if *tid == Tid(2)));
    let fs2 = Arc::clone(&fs);
    let mkdir = std::thread::spawn(move || {
        set_current_tid(Tid(2));
        fs2.mkdir("/a/b/c")
    });
    sink.wait_parked(gate);
    println!("t2: parked inside its critical section, holding /a/b's lock");

    set_current_tid(Tid(1));
    println!("t1: rename(/a, /e) runs to completion ...");
    fs.rename("/a", "/e").unwrap();
    println!("t1: done — t2's traversed path no longer exists");

    sink.open(gate);
    let r = mkdir.join().unwrap();
    println!("t2: mkdir returns {r:?} (success — the effect landed under /e/b/c)");
    assert!(fs.stat("/e/b/c").unwrap().ftype.is_dir());

    let events = sink.inner().take();
    println!(
        "\nrecorded {} atomic steps; replaying through CRL-H ...",
        events.len()
    );

    let helped = LpChecker::check(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::EveryEvent,
            invariants: true,
        },
        &events,
    );
    println!(
        "with helpers : {} ({} operation(s) helped at the rename's LP)",
        if helped.is_ok() {
            "LINEARIZABLE"
        } else {
            "VIOLATIONS"
        },
        helped.stats.helps,
    );
    assert!(helped.is_ok());
    println!("\nlinearization narrative:");
    for line in &helped.narration {
        println!("  {line}");
    }
    println!();

    let fixed = LpChecker::check(
        CheckerConfig {
            mode: HelperMode::FixedLp,
            relation: RelationCadence::AtEnd,
            invariants: false,
        },
        &events,
    );
    println!(
        "fixed LPs    : {}",
        if fixed.is_ok() {
            "linearizable".to_string()
        } else {
            format!(
                "FAILS — {}",
                fixed
                    .violations
                    .first()
                    .map(|v| v.message.clone())
                    .unwrap_or_default()
            )
        }
    );
    assert!(!fixed.is_ok());

    println!(
        "\nThis is the paper's Figure 1: the mkdir's linearization point is\n\
         *external* — it lives inside the rename, which must logically help\n\
         the mkdir commit before publishing its own effect."
    );
}
