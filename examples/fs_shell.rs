//! A tiny shell over AtomFS — drive the file system interactively.
//!
//! ```sh
//! cargo run --example fs_shell
//! # or scripted:
//! printf 'mkdir /a\nwrite /a/f hello\ncat /a/f\nmv /a /b\nls /b\nexit\n' \
//!   | cargo run --example fs_shell
//! ```
//!
//! Commands: `mkdir P`, `touch P`, `write P TEXT...`, `append P TEXT...`,
//! `cat P`, `ls [P]`, `stat P`, `mv SRC DST`, `rm P`, `rmdir P`,
//! `truncate P N`, `tree [P]`, `help`, `exit`.

use std::io::{BufRead, Write as _};

use atomfs::AtomFs;
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsResult};

fn tree(fs: &AtomFs, path: &str, depth: usize, out: &mut impl std::io::Write) -> FsResult<()> {
    let mut names = fs.readdir(path)?;
    names.sort();
    for name in names {
        let child = atomfs_vfs::path::join(path, &name);
        let meta = fs.stat(&child)?;
        let marker = if meta.ftype.is_dir() { "/" } else { "" };
        writeln!(out, "{}{}{}", "  ".repeat(depth), name, marker).ok();
        if meta.ftype.is_dir() {
            tree(fs, &child, depth + 1, out)?;
        }
    }
    Ok(())
}

fn run_command(fs: &AtomFs, line: &str) -> bool {
    let mut parts = line.split_whitespace();
    let Some(cmd) = parts.next() else { return true };
    let args: Vec<&str> = parts.collect();
    let result: FsResult<String> = (|| match (cmd, args.as_slice()) {
        ("mkdir", [p]) => fs.mkdir(p).map(|()| String::new()),
        ("touch", [p]) => fs.mknod(p).map(|()| String::new()),
        ("write", [p, text @ ..]) => {
            let data = text.join(" ");
            fs.write_file(p, data.as_bytes()).map(|()| String::new())
        }
        ("append", [p, text @ ..]) => {
            let size = fs.stat(p)?.size;
            let data = text.join(" ");
            fs.write(p, size, data.as_bytes()).map(|_| String::new())
        }
        ("cat", [p]) => fs
            .read_to_vec(p)
            .map(|d| String::from_utf8_lossy(&d).into_owned()),
        ("ls", []) | ("ls", ["/"]) => fs.readdir("/").map(|mut v| {
            v.sort();
            v.join("\n")
        }),
        ("ls", [p]) => fs.readdir(p).map(|mut v| {
            v.sort();
            v.join("\n")
        }),
        ("stat", [p]) => fs.stat(p).map(|m| {
            format!(
                "ino={} type={:?} size={} nlink={}",
                m.ino, m.ftype, m.size, m.nlink
            )
        }),
        ("mv", [s, d]) => fs.rename(s, d).map(|()| String::new()),
        ("rm", [p]) => fs.unlink(p).map(|()| String::new()),
        ("rmdir", [p]) => fs.rmdir(p).map(|()| String::new()),
        ("truncate", [p, n]) => {
            let size: u64 = n
                .parse()
                .map_err(|_| atomfs_vfs::FsError::InvalidArgument)?;
            fs.truncate(p, size).map(|()| String::new())
        }
        ("tree", rest) => {
            let root = rest.first().copied().unwrap_or("/");
            let mut buf = Vec::new();
            tree(fs, root, 0, &mut buf)?;
            Ok(String::from_utf8_lossy(&buf).into_owned())
        }
        ("help", _) => {
            Ok("mkdir touch write append cat ls stat mv rm rmdir truncate tree exit".to_string())
        }
        ("exit", _) | ("quit", _) => Err(atomfs_vfs::FsError::Unsupported), // sentinel
        (
            known @ ("mkdir" | "touch" | "write" | "append" | "cat" | "ls" | "stat" | "mv" | "rm"
            | "rmdir" | "truncate"),
            _,
        ) => Ok(format!(
            "usage: {known} requires more arguments (try `help`)"
        )),
        _ => Ok(format!("unknown command {cmd:?} (try `help`)")),
    })();
    match (cmd, result) {
        ("exit", _) | ("quit", _) => false,
        (_, Ok(s)) => {
            if !s.is_empty() {
                println!("{s}");
            }
            true
        }
        (_, Err(e)) => {
            println!("error: {e}");
            true
        }
    }
}

fn main() {
    let fs = AtomFs::new();
    println!("atomfs shell — in-memory, linearizable. `help` lists commands.");
    let stdin = std::io::stdin();
    let interactive = atty_guess();
    loop {
        if interactive {
            print!("atomfs> ");
            std::io::stdout().flush().ok();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !run_command(&fs, line.trim()) {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    println!("bye");
}

/// A crude interactivity guess without extra dependencies: honour an
/// explicit environment override, default to printing prompts.
fn atty_guess() -> bool {
    std::env::var_os("ATOMFS_SHELL_QUIET").is_none()
}
