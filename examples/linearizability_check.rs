//! Online linearizability checking of a concurrent stress run.
//!
//! Runs a contended random operation mix from several threads against an
//! instrumented AtomFS with the CRL-H checker attached *online* (every
//! atomic step is validated as it happens), then prints the checker's
//! statistics: how many operations ran, how many were linearized by
//! helpers, how often the roll-back abstraction relation was validated.
//!
//! ```sh
//! cargo run --release --example linearizability_check [threads] [ops-per-thread] [seed]
//! ```

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{set_current_tid, Tid, TraceSink};
use atomfs_workloads::opmix::OpMix;
use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};

fn main() {
    let mut args = std::env::args().skip(1);
    let threads: u32 = args
        .next()
        .map(|s| s.parse().expect("threads"))
        .unwrap_or(8);
    let ops: usize = args.next().map(|s| s.parse().expect("ops")).unwrap_or(200);
    let seed: u64 = args.next().map(|s| s.parse().expect("seed")).unwrap_or(1);

    println!(
        "running {threads} threads x {ops} random ops over a 3-dir contended tree (seed {seed})"
    );
    let checker = Arc::new(OnlineChecker::new(CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtUnlock,
        invariants: true,
    }));
    let fs = Arc::new(AtomFs::traced(checker.clone() as Arc<dyn TraceSink>));
    let mix = OpMix {
        dirs: 3,
        names: 4,
        rename_weight: 5,
    };
    mix.setup(&*fs);

    let start = std::time::Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(100 + t));
            mix.run(&*fs, seed * 1000 + u64::from(t), ops);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();

    drop(fs);
    let report = Arc::into_inner(checker).expect("sole owner").finish();
    let s = report.stats;
    println!("\nexecution finished in {elapsed:?}");
    println!(
        "operations      : {} begun, {} completed",
        s.ops_begun, s.ops_completed
    );
    println!("rename LPs      : {} ran linothers", s.rename_lps);
    println!(
        "helped ops      : {} (largest single help set: {})",
        s.helps, s.max_helpset
    );
    println!(
        "relation checks : {} roll-back validations",
        s.relation_checks
    );
    println!("violations      : {}", report.violations.len());
    for v in report.violations.iter().take(10) {
        println!("  {v}");
    }
    if report.is_ok() {
        println!("\nVERDICT: every recorded interleaving is linearizable — the");
        println!("return values, invariants, and the roll-back abstraction");
        println!("relation all check out.");
    } else {
        println!("\nVERDICT: VIOLATIONS FOUND (this would be a bug in AtomFS)");
        std::process::exit(1);
    }
}
