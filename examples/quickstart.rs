//! Quickstart: create, write, move, read — the basic AtomFS API.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use atomfs::AtomFs;
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsError};

fn main() -> Result<(), FsError> {
    // An in-memory, fine-grained concurrent file system. Every operation
    // is linearizable; `AtomFs` is `Send + Sync`, so wrap it in an `Arc`
    // and call it from as many threads as you like.
    let fs = AtomFs::new();

    fs.mkdir("/projects")?;
    fs.mkdir("/projects/atomfs")?;
    fs.mknod("/projects/atomfs/notes.txt")?;
    fs.write(
        "/projects/atomfs/notes.txt",
        0,
        b"lock coupling is non-bypassable",
    )?;

    // Atomic rename, the star of the paper.
    fs.rename("/projects/atomfs", "/projects/atomfs-v1")?;

    let notes = fs.read_to_vec("/projects/atomfs-v1/notes.txt")?;
    println!("notes: {}", String::from_utf8_lossy(&notes));

    let meta = fs.stat("/projects/atomfs-v1/notes.txt")?;
    println!("size: {} bytes, inode #{}", meta.size, meta.ino);

    for name in fs.readdir("/projects")? {
        println!("projects/{name}");
    }

    // Errors are POSIX-flavoured.
    assert_eq!(fs.stat("/projects/atomfs"), Err(FsError::NotFound));
    assert_eq!(fs.rmdir("/projects"), Err(FsError::NotEmpty));

    // Descriptor-style access resolves by path, exactly like the paper's
    // FUSE deployment (§5.4).
    let table = atomfs_vfs::FdTable::new(std::sync::Arc::new(fs));
    let fd = table.open(
        "/projects/atomfs-v1/notes.txt",
        atomfs_vfs::OpenOptions::read_only(),
    )?;
    let mut buf = [0u8; 4];
    table.read(fd, &mut buf)?;
    println!("first bytes via fd: {}", String::from_utf8_lossy(&buf));
    table.close(fd)?;

    println!("quickstart OK");
    Ok(())
}
