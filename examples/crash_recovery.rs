//! Crash and recover: the journal extension in action.
//!
//! Creates a journaled AtomFS on a simulated disk, does some work with a
//! `sync()` in the middle, power-cuts the disk with adversarial
//! out-of-order persistence, recovers, and shows exactly what survived.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use std::sync::Arc;

use atomfs_journal::{BlockDevice, Disk, JournaledFs};
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::FileSystem;

fn main() {
    let disk = Arc::new(Disk::new());
    let fs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);

    println!("mounting a journaled AtomFS on a fresh simulated disk\n");
    fs.mkdir("/projects").unwrap();
    fs.write_file("/projects/paper.tex", b"\\title{AtomFS}")
        .unwrap();
    fs.write_file("/projects/notes.md", b"lock coupling!")
        .unwrap();
    fs.sync().unwrap();
    println!("synced: /projects with paper.tex and notes.md  (durability barrier)");

    fs.write_file("/projects/draft2.tex", b"unsaved rewrite")
        .unwrap();
    fs.rename("/projects/notes.md", "/projects/notes-v2.md")
        .unwrap();
    println!("then, WITHOUT sync: created draft2.tex, renamed notes.md -> notes-v2.md");
    println!("log size before crash: {} bytes", fs.log_bytes());
    drop(fs);

    // Power cut: nothing queued after the last flush reaches the platter.
    // (The crash-consistency tests also exercise the nastier mode where
    // the drive persists an arbitrary subset of queued sectors out of
    // order; the journal's checksums and epochs make recovery yield a
    // clean prefix either way.)
    disk.crash(|_| false);
    println!("\n*** POWER CUT ***\n");

    let (recovered, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
    println!(
        "recovered from epoch {}: replayed {} mutations from {} log bytes, {} inodes",
        stats.epoch, stats.ops_replayed, stats.log_bytes, stats.inodes
    );
    println!(
        "recovery scrub skipped {} unusable records past the valid prefix",
        stats.skipped.len()
    );
    println!(
        "checkpointed into epoch {} ({} bytes — recovery doubles as log compaction)\n",
        stats.epoch + 1,
        recovered.log_bytes()
    );

    let mut names = recovered.readdir("/projects").unwrap();
    names.sort();
    println!("surviving /projects: {names:?}");
    let tex = recovered.read_to_vec("/projects/paper.tex").unwrap();
    println!("paper.tex: {:?}", String::from_utf8_lossy(&tex));
    assert!(names.contains(&"paper.tex".to_string()));
    assert!(names.contains(&"notes.md".to_string()), "pre-sync name");
    assert!(!names.contains(&"draft2.tex".to_string()), "unsynced, lost");

    println!(
        "\nEverything synced survived; the unsynced tail was dropped *cleanly* —\n\
         recovery always yields a prefix of the operation history, never a torn\n\
         state. (The paper's AtomFS excludes crashes; this is its cited\n\
         ScaleFS-style future-work design, built on the same micro-operation\n\
         stream the CRL-H checker consumes.)"
    );
}
