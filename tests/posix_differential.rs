//! Differential semantics testing: every file system in the workspace
//! implements the same POSIX semantics, so the same single-threaded
//! operation sequence must produce the *identical* result sequence on all
//! of them. The sequential tree baseline (`SeqFs`, which is also the
//! DFSCQ stand-in) acts as the executable oracle.

use atomfs::AtomFs;
use atomfs_baselines::{BigLockFs, RetryFs, RwTreeFs, SeqFs};
use atomfs_vfs::{FileSystem, FsError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An abstract result comparable across implementations (inode numbers
/// are implementation-specific and excluded).
#[derive(Debug, Clone, PartialEq, Eq)]
enum R {
    Unit(Result<(), FsError>),
    Stat(Result<(bool, u64), FsError>),
    Names(Result<Vec<String>, FsError>),
    Data(Result<Vec<u8>, FsError>),
    Len(Result<usize, FsError>),
}

fn run_script(fs: &dyn FileSystem, seed: u64, count: usize) -> Vec<R> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut results = Vec::with_capacity(count);
    let dirs = ["/d0", "/d1", "/d0/s", "/d1/s"];
    let path = |rng: &mut StdRng| {
        format!(
            "{}/n{}",
            dirs[rng.random_range(0..dirs.len())],
            rng.random_range(0..5)
        )
    };
    for i in 0..count {
        let a = path(&mut rng);
        let b = path(&mut rng);
        let r = match rng.random_range(0..12) {
            0 => R::Unit(fs.mknod(&a)),
            1 => R::Unit(fs.mkdir(&a)),
            2 => R::Unit(fs.unlink(&a)),
            3 => R::Unit(fs.rmdir(&a)),
            4 => R::Unit(fs.rename(&a, &b)),
            5 => R::Stat(fs.stat(&a).map(|m| (m.ftype.is_dir(), m.size))),
            6 => R::Names(fs.readdir(&a).map(|mut v| {
                v.sort();
                v
            })),
            7 => {
                let mut buf = vec![0u8; 24];
                R::Data(fs.read(&a, (i % 7) as u64, &mut buf).map(|n| {
                    buf.truncate(n);
                    buf
                }))
            }
            8 => R::Len(fs.write(&a, (i % 5) as u64, format!("w{i}").as_bytes())),
            9 => R::Unit(fs.truncate(&a, (i % 9) as u64)),
            10 => R::Unit(fs.rename(&a, &format!("{a}/sub"))), // EINVAL family
            _ => R::Stat(
                fs.stat(&format!("{a}/deep/er"))
                    .map(|m| (m.ftype.is_dir(), m.size)),
            ),
        };
        results.push(r);
    }
    results
}

fn setup(fs: &dyn FileSystem) {
    for d in ["/d0", "/d1", "/d0/s", "/d1/s"] {
        fs.mkdir(d).unwrap();
    }
}

fn diff_all(seed: u64, count: usize) {
    let oracle = SeqFs::new();
    setup(&oracle);
    let expected = run_script(&oracle, seed, count);

    let atomfs = AtomFs::new();
    setup(&atomfs);
    let retry = RetryFs::new();
    setup(&retry);
    let rwtree = RwTreeFs::new();
    setup(&rwtree);
    let biglock = BigLockFs::new(AtomFs::new());
    setup(&biglock);

    let candidates: Vec<(&str, Vec<R>)> = vec![
        ("atomfs", run_script(&atomfs, seed, count)),
        ("retryfs", run_script(&retry, seed, count)),
        ("rwtreefs", run_script(&rwtree, seed, count)),
        ("biglock", run_script(&biglock, seed, count)),
    ];
    for (name, got) in candidates {
        for (i, (g, e)) in got.iter().zip(expected.iter()).enumerate() {
            assert_eq!(
                g, e,
                "{name} diverged from the SeqFs oracle at step {i} (seed {seed})"
            );
        }
    }
}

#[test]
fn differential_small_seeds() {
    for seed in 0..10 {
        diff_all(seed, 400);
    }
}

#[test]
fn differential_long_run() {
    diff_all(777, 3000);
}

#[test]
fn differential_rename_heavy() {
    // A rename-dominated script stresses the trickiest error precedence.
    let script = |fs: &dyn FileSystem| {
        let mut out = Vec::new();
        let mut rng = StdRng::seed_from_u64(99);
        let paths = [
            "/d0", "/d0/s", "/d0/n1", "/d1", "/d1/n1", "/d0/s/x", "/d0/n1/y",
        ];
        for _ in 0..600 {
            let a = paths[rng.random_range(0..paths.len())];
            let b = paths[rng.random_range(0..paths.len())];
            out.push(R::Unit(fs.rename(a, b)));
            if rng.random_bool(0.3) {
                out.push(R::Unit(fs.mkdir(a)));
            }
            if rng.random_bool(0.2) {
                out.push(R::Unit(fs.mknod(b)));
            }
        }
        out
    };
    let oracle = SeqFs::new();
    setup(&oracle);
    let expected = script(&oracle);
    let atomfs = AtomFs::new();
    setup(&atomfs);
    assert_eq!(script(&atomfs), expected, "atomfs vs oracle");
    let retry = RetryFs::new();
    setup(&retry);
    assert_eq!(script(&retry), expected, "retryfs vs oracle");
}
