//! Systematic interleaving exploration — a miniature model checker.
//!
//! Stress tests sample whatever interleavings the OS scheduler produces
//! (on a single-core host, very few). This explorer *enumerates* them:
//! for a two-operation scenario it parks operation A immediately before
//! its k-th trace event, runs operation B to completion, releases A, and
//! checks the recorded execution — for every k. Because events mark every
//! atomic step (each lock acquisition, mutation, LP), this covers every
//! schedule in which B executes atomically somewhere inside A, which is
//! exactly the family of interleavings the paper's figures draw.
//!
//! Every explored schedule must (a) check clean under the CRL-H LP
//! checker with helpers, and (b) be accepted by the generic WGL checker.

use std::sync::{
    atomic::{AtomicUsize, Ordering},
    Arc,
};

use atomfs::{AtomFs, AtomFsConfig};
use atomfs_trace::{set_current_tid, BufferSink, Event, GateSink, Tid, TraceSink};
use atomfs_vfs::{FileSystem, FsResult};
use crlh::history::History;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

type OpFn = Box<dyn Fn(&AtomFs) -> FsResult<()> + Send + Sync>;

struct Scenario {
    name: &'static str,
    setup: fn(&AtomFs),
    op_a: fn() -> OpFn,
    op_b: fn() -> OpFn,
    /// Disable the optimistic fast path. Scenarios that assert
    /// `helps > 0` need the lock-coupled walk: an optimistic claim
    /// linearizes A before B's rename can help it.
    pessimistic: bool,
}

fn build_fs(scenario: &Scenario, sink: Arc<dyn TraceSink>) -> AtomFs {
    AtomFs::traced_with_config(
        sink,
        AtomFsConfig {
            optimistic: !scenario.pessimistic,
            ..AtomFsConfig::default()
        },
    )
}

/// Count how many trace events op A emits when run alone (the park-point
/// space). The event count can depend on state, so it is measured on a
/// fresh instance after the same setup.
fn count_events(scenario: &Scenario) -> usize {
    let sink = Arc::new(BufferSink::new());
    let fs = build_fs(scenario, sink.clone() as Arc<dyn TraceSink>);
    (scenario.setup)(&fs);
    sink.take();
    set_current_tid(Tid(9001));
    let _ = (scenario.op_a)()(&fs);
    sink.take().len()
}

/// Run the scenario with A parked before its `k`-th event; B runs to
/// completion in the gap. Returns the full trace.
fn run_with_park(scenario: &Scenario, k: usize) -> Vec<atomfs_trace::Event> {
    let sink = Arc::new(GateSink::new(BufferSink::new()));
    let fs = Arc::new(build_fs(scenario, sink.clone() as Arc<dyn TraceSink>));
    // Setup runs traced (under the main thread's tid): the checker needs
    // the whole execution from the empty file system.
    set_current_tid(Tid(9000));
    (scenario.setup)(&fs);

    let counter = Arc::new(AtomicUsize::new(0));
    let c2 = Arc::clone(&counter);
    let gate =
        sink.add_gate(move |e| e.tid() == Tid(9001) && c2.fetch_add(1, Ordering::Relaxed) == k);

    let fs_a = Arc::clone(&fs);
    let op_a = (scenario.op_a)();
    let a = std::thread::spawn(move || {
        set_current_tid(Tid(9001));
        let _ = op_a(&fs_a);
    });
    sink.wait_parked(gate);

    // B runs on its own thread: at some park points A holds a lock B
    // needs, making the "B fully inside A" schedule infeasible — B then
    // simply blocks until A resumes, which is itself a legal (and
    // checked) interleaving.
    let fs_b = Arc::clone(&fs);
    let op_b = (scenario.op_b)();
    let b = std::thread::spawn(move || {
        set_current_tid(Tid(9002));
        let _ = op_b(&fs_b);
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_millis(300);
    while !b.is_finished() && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }

    sink.open(gate);
    a.join().unwrap();
    b.join().unwrap();
    sink.inner().take()
}

fn explore(scenario: &Scenario) -> (usize, u64) {
    let n = count_events(scenario);
    assert!(n >= 2, "{}: op A must emit events", scenario.name);
    let mut total_helps = 0;
    // k = 0 parks before A's first event (B runs entirely before A);
    // k = n-1 parks before A's last event.
    for k in 0..n {
        let events = run_with_park(scenario, k);
        let report = LpChecker::check(
            CheckerConfig {
                mode: HelperMode::Helpers,
                relation: RelationCadence::EveryEvent,
                invariants: true,
            },
            &events,
        );
        assert!(
            report.is_ok(),
            "{} (park at {k}/{n}): {:?}",
            scenario.name,
            report.violations
        );
        total_helps += report.stats.helps;
        crlh::wgl::check_linearizable(&History::from_trace(&events))
            .unwrap_or_else(|e| panic!("{} (park at {k}/{n}): WGL rejected: {e}", scenario.name));
    }
    (n, total_helps)
}

fn setup_tree(fs: &AtomFs) {
    for d in ["/a", "/a/b", "/other"] {
        fs.mkdir(d).unwrap();
    }
    fs.mknod("/a/b/file").unwrap();
    fs.write("/a/b/file", 0, b"seed").unwrap();
}

#[test]
fn explore_rename_vs_mkdir() {
    let s = Scenario {
        name: "rename(/a,/e) vs mkdir(/a/b/c)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.mkdir("/a/b/c")),
        op_b: || Box::new(|fs| fs.rename("/a", "/e")),
        pessimistic: true,
    };
    let (n, helps) = explore(&s);
    assert!(n > 5);
    assert!(
        helps > 0,
        "some park points must land inside the critical section and get helped"
    );
}

#[test]
fn explore_rename_vs_unlink() {
    let s = Scenario {
        name: "rename(/a,/e) vs unlink(/a/b/file)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.unlink("/a/b/file")),
        op_b: || Box::new(|fs| fs.rename("/a", "/e")),
        pessimistic: true,
    };
    let (_, helps) = explore(&s);
    assert!(helps > 0);
}

#[test]
fn explore_rename_vs_stat() {
    let s = Scenario {
        name: "rename(/a,/e) vs stat(/a/b/file)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.stat("/a/b/file").map(|_| ())),
        op_b: || Box::new(|fs| fs.rename("/a", "/e")),
        pessimistic: false,
    };
    explore(&s);
}

#[test]
fn explore_rename_vs_write() {
    let s = Scenario {
        name: "rename(/a,/e) vs write(/a/b/file)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.write("/a/b/file", 0, b"overwrite").map(|_| ())),
        op_b: || Box::new(|fs| fs.rename("/a", "/e")),
        pessimistic: true,
    };
    let (_, helps) = explore(&s);
    assert!(helps > 0);
}

#[test]
fn explore_rename_vs_rename() {
    let s = Scenario {
        name: "rename(/a,/e) vs rename(/a/b/file,/a/b/moved)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.rename("/a/b/file", "/a/b/moved")),
        op_b: || Box::new(|fs| fs.rename("/a", "/e")),
        pessimistic: true,
    };
    let (_, helps) = explore(&s);
    assert!(helps > 0);
}

#[test]
fn explore_mkdir_vs_mkdir_same_name() {
    // Racing creators of the same name: exactly one wins at every park
    // point, and the loser's EEXIST must linearize.
    let s = Scenario {
        name: "mkdir(/a/x) vs mkdir(/a/x)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.mkdir("/a/x")),
        op_b: || Box::new(|fs| fs.mkdir("/a/x")),
        pessimistic: false,
    };
    explore(&s);
}

#[test]
fn explore_unlink_vs_unlink() {
    let s = Scenario {
        name: "unlink(/a/b/file) vs unlink(/a/b/file)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.unlink("/a/b/file")),
        op_b: || Box::new(|fs| fs.unlink("/a/b/file")),
        pessimistic: false,
    };
    explore(&s);
}

#[test]
fn explore_deep_rename_vs_readdir() {
    let s = Scenario {
        name: "rename(/a/b,/other/b2) vs readdir(/a/b)",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.readdir("/a/b").map(|_| ())),
        op_b: || Box::new(|fs| fs.rename("/a/b", "/other/b2")),
        pessimistic: false,
    };
    explore(&s);
}

/// A rename that lands in the middle of an optimistic walk must
/// invalidate it: at some park point the walker's seqlock validation
/// fails and the trace shows the mandatory `OptRetry` before the
/// operation completes (by a fresh attempt or the pessimistic
/// fallback). Every such schedule still checks clean.
#[test]
fn explore_rename_invalidates_optimistic_walk() {
    let s = Scenario {
        name: "rename(/a/b,/other/b2) vs stat(/a/b/file) [optimistic]",
        setup: setup_tree,
        op_a: || Box::new(|fs| fs.stat("/a/b/file").map(|_| ())),
        op_b: || Box::new(|fs| fs.rename("/a/b", "/other/b2")),
        pessimistic: false,
    };
    let n = count_events(&s);
    assert!(n >= 4, "optimistic stat must emit a walk worth parking in");
    let mut retries_seen = 0u64;
    for k in 0..n {
        let events = run_with_park(&s, k);
        let report = LpChecker::check(
            CheckerConfig {
                mode: HelperMode::Helpers,
                relation: RelationCadence::EveryEvent,
                invariants: true,
            },
            &events,
        );
        assert!(
            report.is_ok(),
            "{} (park at {k}/{n}): {:?}",
            s.name,
            report.violations
        );
        retries_seen += events
            .iter()
            .filter(|e| matches!(e, Event::OptRetry { tid } if *tid == Tid(9001)))
            .count() as u64;
        crlh::wgl::check_linearizable(&History::from_trace(&events))
            .unwrap_or_else(|e| panic!("{} (park at {k}/{n}): WGL rejected: {e}", s.name));
    }
    assert!(
        retries_seen > 0,
        "some park point must catch the rename mid-walk and force a retry"
    );
}
