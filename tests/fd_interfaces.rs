//! Figure 9 — file-descriptor-based interfaces (§5.4).
//!
//! AtomFS keeps FD-based interfaces linearizable by resolving every call
//! through a full path traversal: the FUSE/VFS layer (here,
//! `atomfs_vfs::FdTable`) maps descriptors back to paths. These tests
//! show (1) descriptor I/O through the path-backed table stays
//! linearizable even across helped renames, and (2) the paper's Figure 9
//! counterexample — a `readdir(fd)` that resolves directly by inode and
//! thereby bypasses a helped `ins` — yields a non-linearizable history.

use std::sync::Arc;

use atomfs::{AtomFs, AtomFsConfig};
use atomfs_trace::{set_current_tid, BufferSink, Event, GateSink, OpDesc, OpRet, Tid, TraceSink};
use atomfs_vfs::{FdTable, FileSystem, OpenOptions};
use crlh::history::{HEvent, History};
use crlh::{CheckerConfig, LpChecker};

/// The gated orchestrations below park threads at lock-coupled walk
/// events (`Lp`, `Mutate`) and assert helper-machinery behaviour, so
/// they run with the optimistic fast path disabled.
fn pessimistic_traced(sink: Arc<dyn TraceSink>) -> Arc<AtomFs> {
    Arc::new(AtomFs::traced_with_config(
        sink,
        AtomFsConfig {
            optimistic: false,
            ..AtomFsConfig::default()
        },
    ))
}

#[test]
fn fd_io_through_paths_is_linearizable() {
    let sink = Arc::new(BufferSink::new());
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    let table = FdTable::new(Arc::clone(&fs));
    fs.mkdir("/d").unwrap();
    let fd = table.open("/d/f", OpenOptions::read_write()).unwrap();
    table.write(fd, b"via fd").unwrap();
    table.seek(fd, 0).unwrap();
    let mut buf = [0u8; 6];
    assert_eq!(table.read(fd, &mut buf).unwrap(), 6);
    assert_eq!(&buf, b"via fd");
    table.close(fd).unwrap();
    let report = LpChecker::check(CheckerConfig::default(), &sink.take());
    report.assert_ok();
}

/// An FD operation racing a rename that moves its file: because the
/// descriptor resolves by path, the operation either sees the old path
/// (linearizing before the rename, possibly helped) or fails cleanly —
/// never a stale-inode answer.
#[test]
fn fd_read_across_helped_rename_is_linearizable() {
    let sink = Arc::new(GateSink::new(BufferSink::new()));
    let fs = pessimistic_traced(sink.clone() as Arc<dyn TraceSink>);
    let table = Arc::new(FdTable::new(Arc::clone(&fs)));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/e").unwrap();
    fs.mkdir("/dst").unwrap();
    let fd = table.open("/a/e/f", OpenOptions::read_write()).unwrap();
    table.write_at(fd, 0, b"payload!").unwrap();

    // The descriptor read parks at its LP, inside the subtree the rename
    // is about to move; the rename helps it.
    let gate = sink.add_gate(|e| matches!(e, Event::Lp { tid } if *tid == Tid(901)));
    let t2 = Arc::clone(&table);
    let reader = std::thread::spawn(move || {
        set_current_tid(Tid(901));
        let mut buf = [0u8; 8];
        let n = t2.read_at(fd, 0, &mut buf)?;
        Ok::<_, atomfs_vfs::FsError>(buf[..n].to_vec())
    });
    sink.wait_parked(gate);

    set_current_tid(Tid(902));
    fs.rename("/a/e", "/dst/e2").unwrap();
    sink.open(gate);

    // The read was helped: it linearized before the rename and returns
    // the full payload even though its path is gone by the time it ends.
    assert_eq!(reader.join().unwrap().unwrap(), b"payload!");
    let report = LpChecker::check(CheckerConfig::default(), &sink.inner().take());
    report.assert_ok();
    assert!(report.stats.helps >= 1);
    // Post-rename, the descriptor's path no longer resolves — exactly the
    // path-backed FUSE behaviour the paper describes.
    let mut buf = [0u8; 1];
    assert_eq!(
        table.read_at(fd, 0, &mut buf),
        Err(atomfs_vfs::FsError::NotFound)
    );
}

/// The paper's Figure 9: a hypothetical `readdir(fd: c)` that resolves
/// directly by inode — bypassing a helped `ins` — observes an empty
/// directory even though the ins was already linearized by the rename.
/// The resulting history has no legal sequentialization.
#[test]
fn figure_9_inode_resolved_readdir_is_not_linearizable() {
    fn comps(s: &[&str]) -> Vec<String> {
        s.iter().map(|c| c.to_string()).collect()
    }
    // History (invocation/response order as in Figure 9):
    //   setup: mkdir /a, /a/b, /a/b/c (t9, sequential)
    //   t2: ins(/a/b/c/d) invoked ............................. [inv]
    //   t1: rename(/a, /i) completes (helps t2: INS succeeds)
    //   t1: readdir(fd:c) completes, returns EMPTY  <-- the bypass
    //   t2: ins returns success
    let mut events = Vec::new();
    for p in [vec!["a"], vec!["a", "b"], vec!["a", "b", "c"]] {
        events.push(HEvent::Inv {
            tid: Tid(9),
            op: OpDesc::Mkdir {
                path: p.iter().map(|s| s.to_string()).collect(),
            },
        });
        events.push(HEvent::Res {
            tid: Tid(9),
            ret: OpRet::Ok,
        });
    }
    events.extend([
        HEvent::Inv {
            tid: Tid(2),
            op: OpDesc::Mknod {
                path: comps(&["a", "b", "c", "d"]),
            },
        },
        HEvent::Inv {
            tid: Tid(1),
            op: OpDesc::Rename {
                src: comps(&["a"]),
                dst: comps(&["i"]),
            },
        },
        HEvent::Res {
            tid: Tid(1),
            ret: OpRet::Ok,
        },
        // The FD-based readdir resolved c by inode, saw it empty.
        HEvent::Inv {
            tid: Tid(1),
            op: OpDesc::Readdir {
                path: comps(&["i", "b", "c"]),
            },
        },
        HEvent::Res {
            tid: Tid(1),
            ret: OpRet::Names(vec![]),
        },
        HEvent::Res {
            tid: Tid(2),
            ret: OpRet::Ok,
        },
    ]);
    let verdict = crlh::wgl::check_linearizable(&History { events });
    assert!(
        verdict.is_err(),
        "readdir=empty after rename completed, yet ins succeeded and began \
         before the rename — no sequential order explains it"
    );
}

/// The path-based counterpart of Figure 9 on real AtomFS: the readdir
/// walks the path and is correctly ordered after the helped ins, so it
/// sees the new entry and everything linearizes.
#[test]
fn figure_9_path_resolved_readdir_is_linearizable() {
    let sink = Arc::new(GateSink::new(BufferSink::new()));
    let fs = pessimistic_traced(sink.clone() as Arc<dyn TraceSink>);
    for d in ["/a", "/a/b", "/a/b/c", "/other"] {
        fs.mkdir(d).unwrap();
    }
    let gate = sink.add_gate(|e| matches!(e, Event::Mutate { tid, .. } if *tid == Tid(911)));
    let fs2 = Arc::clone(&fs);
    let ins = std::thread::spawn(move || {
        set_current_tid(Tid(911));
        fs2.mknod("/a/b/c/d")
    });
    sink.wait_parked(gate);

    set_current_tid(Tid(912));
    fs.rename("/a", "/i").unwrap();
    // Path-based readdir of the moved directory: must wait for / order
    // with the helped ins via lock coupling.
    let fs3 = Arc::clone(&fs);
    let rd = std::thread::spawn(move || {
        set_current_tid(Tid(913));
        fs3.readdir("/i/b/c")
    });
    sink.open(gate);
    assert_eq!(ins.join().unwrap(), Ok(()));
    let names = rd.join().unwrap().unwrap();
    assert_eq!(names, vec!["d"], "the readdir observes the helped ins");

    let report = LpChecker::check(CheckerConfig::default(), &sink.inner().take());
    report.assert_ok();
    crlh::wgl::check_linearizable(&History::from_trace(&sink.inner().take())).ok();
}
