//! The paper's interleaving diagrams as executable scenarios.
//!
//! Figure 1 / 4(b) / 4(c) live in `crates/crlh/tests/end_to_end.rs`
//! (they exercise checker internals); this file covers the remaining
//! cases at the public API level: Figure 4(a) — the benign interleaving
//! where fixed LPs suffice — plus helping across every operation type
//! and a deterministic replay guard.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{set_current_tid, BufferSink, Event, GateSink, Tid, TraceSink};
use atomfs_vfs::{FileSystem, FsError};
use crlh::history::History;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

/// Figure 4(a): ins(/a, c) completes before del(/, a) begins — no path
/// inter-dependency, and even *fixed* LPs linearize the history.
#[test]
fn figure_4a_fixed_lps_suffice_without_interference() {
    let sink = Arc::new(BufferSink::new());
    let fs = AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
    set_current_tid(Tid(101));
    fs.mkdir("/a").unwrap();
    set_current_tid(Tid(102));
    fs.mknod("/a/c").unwrap(); // ins
    set_current_tid(Tid(103));
    assert_eq!(fs.rmdir("/a"), Err(FsError::NotEmpty)); // del(/,a) fails
    fs.unlink("/a/c").unwrap();
    fs.rmdir("/a").unwrap();

    let events = sink.take();
    for mode in [HelperMode::Helpers, HelperMode::FixedLp] {
        let report = LpChecker::check(
            CheckerConfig {
                mode,
                relation: RelationCadence::EveryEvent,
                invariants: true,
            },
            &events,
        );
        report.assert_ok();
        assert_eq!(report.stats.helps, 0, "no helping needed in {mode:?}");
    }
    crlh::wgl::check_linearizable(&History::from_trace(&events)).unwrap();
}

/// Helping works for every operation kind the paper's Figure 2 covers:
/// park each op type inside the to-be-renamed subtree, let a rename
/// complete, and verify the execution checks clean with ≥1 help.
#[test]
fn every_operation_kind_can_be_helped() {
    struct Case {
        name: &'static str,
        run: fn(&AtomFs) -> Result<(), FsError>,
    }
    let cases = [
        Case {
            name: "mknod",
            run: |fs| fs.mknod("/a/e/sub/new"),
        },
        Case {
            name: "mkdir",
            run: |fs| fs.mkdir("/a/e/sub/newdir"),
        },
        Case {
            name: "unlink",
            run: |fs| fs.unlink("/a/e/sub/victim"),
        },
        Case {
            name: "rmdir",
            run: |fs| fs.rmdir("/a/e/sub/vdir"),
        },
        Case {
            name: "truncate",
            run: |fs| fs.truncate("/a/e/sub/victim", 1),
        },
        Case {
            name: "rename-within",
            run: |fs| fs.rename("/a/e/sub/victim", "/a/e/sub/renamed"),
        },
    ];
    for (i, case) in cases.iter().enumerate() {
        let sink = Arc::new(GateSink::new(BufferSink::new()));
        // Helping only engages on the lock-coupled walk: an optimistic
        // claim linearizes the parked op before the rename gets there.
        let fs = Arc::new(AtomFs::traced_with_config(
            sink.clone() as Arc<dyn TraceSink>,
            atomfs::AtomFsConfig {
                optimistic: false,
                ..atomfs::AtomFsConfig::default()
            },
        ));
        for d in ["/a", "/a/e", "/a/e/sub", "/dst"] {
            fs.mkdir(d).unwrap();
        }
        fs.mknod("/a/e/sub/victim").unwrap();
        fs.write("/a/e/sub/victim", 0, b"v").unwrap();
        fs.mkdir("/a/e/sub/vdir").unwrap();

        let tid = Tid(6000 + i as u32);
        let gate = sink.add_gate(move |e| {
            matches!(e, Event::Mutate { tid: t, .. } if *t == tid)
                || matches!(e, Event::Lp { tid: t } if *t == tid)
        });
        let fs2 = Arc::clone(&fs);
        let run = case.run;
        let worker = std::thread::spawn(move || {
            set_current_tid(tid);
            run(&fs2)
        });
        sink.wait_parked(gate);

        set_current_tid(Tid(6900 + i as u32));
        fs.rename("/a/e", "/dst/moved").unwrap();
        sink.open(gate);
        let result = worker.join().unwrap();
        assert!(
            result.is_ok(),
            "{}: helped op still succeeds: {result:?}",
            case.name
        );

        let report = LpChecker::check(CheckerConfig::default(), &sink.inner().take());
        report.assert_ok();
        assert!(
            report.stats.helps >= 1,
            "{}: the rename must help the parked op",
            case.name
        );
    }
}

/// Two renames racing in opposite directions between two directories
/// never deadlock and always linearize (exercises the §5.2 common-
/// ancestor locking discipline under the checker).
#[test]
fn crossing_renames_linearize() {
    for round in 0..10 {
        let sink = Arc::new(BufferSink::new());
        let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
        fs.mkdir("/p").unwrap();
        fs.mkdir("/q").unwrap();
        fs.mknod("/p/x").unwrap();
        fs.mknod("/q/y").unwrap();
        let fs1 = Arc::clone(&fs);
        let t1 = std::thread::spawn(move || {
            set_current_tid(Tid(7000 + round));
            fs1.rename("/p/x", "/q/x2")
        });
        let fs2 = Arc::clone(&fs);
        let t2 = std::thread::spawn(move || {
            set_current_tid(Tid(7100 + round));
            fs2.rename("/q/y", "/p/y2")
        });
        t1.join().unwrap().unwrap();
        t2.join().unwrap().unwrap();
        let report = LpChecker::check(CheckerConfig::default(), &sink.take());
        report.assert_ok();
    }
}

/// Subtree renames racing stat/readdir inside the moved subtree.
#[test]
fn subtree_move_vs_readers_linearize() {
    for round in 0..10u32 {
        let sink = Arc::new(BufferSink::new());
        let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
        fs.mkdir("/top").unwrap();
        fs.mkdir("/top/mid").unwrap();
        fs.mknod("/top/mid/leaf").unwrap();
        fs.mkdir("/other").unwrap();
        let fs1 = Arc::clone(&fs);
        let mover = std::thread::spawn(move || {
            set_current_tid(Tid(7200 + round));
            fs1.rename("/top/mid", "/other/mid2")
        });
        let fs2 = Arc::clone(&fs);
        let reader = std::thread::spawn(move || {
            set_current_tid(Tid(7300 + round));
            let a = fs2.stat("/top/mid/leaf");
            let b = fs2.readdir("/other/mid2");
            (a, b)
        });
        mover.join().unwrap().unwrap();
        let _ = reader.join().unwrap();
        let report = LpChecker::check(CheckerConfig::default(), &sink.take());
        report.assert_ok();
    }
}
