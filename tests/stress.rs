//! Concurrency stress: many threads over a deliberately tiny, contended
//! tree, with full online CRL-H checking (invariants + roll-back
//! abstraction relation + return-value obligations) and WGL
//! cross-validation of small histories — the executable analogue of
//! running the paper's proofs against every interleaving the scheduler
//! produces.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{set_current_tid, BufferSink, Tid, TraceSink};
use atomfs_vfs::FileSystem;
use atomfs_workloads::opmix::OpMix;
use crlh::history::History;
use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};

fn spawn_mix(fs: Arc<AtomFs>, mix: OpMix, threads: u32, ops: usize, tid_base: u32, seed_base: u64) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(tid_base + t));
            mix.run(&*fs, seed_base + u64::from(t), ops);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn online_checked_stress_default_mix() {
    for seed in 0..3u64 {
        let checker = Arc::new(OnlineChecker::new(CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        }));
        let fs = Arc::new(AtomFs::traced(checker.clone() as Arc<dyn TraceSink>));
        let mix = OpMix::default();
        mix.setup(&*fs);
        spawn_mix(
            Arc::clone(&fs),
            mix,
            8,
            80,
            3000 + seed as u32 * 100,
            seed * 10,
        );
        drop(fs);
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();
        assert!(report.stats.ops_completed >= 8 * 80);
    }
}

#[test]
fn online_checked_stress_rename_storm() {
    // Rename-only contention maximizes helping and recursive dependency.
    let checker = Arc::new(OnlineChecker::new(CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtUnlock,
        invariants: true,
    }));
    let fs = Arc::new(AtomFs::traced(checker.clone() as Arc<dyn TraceSink>));
    let mix = OpMix {
        dirs: 2,
        names: 3,
        rename_weight: 20,
    };
    mix.setup(&*fs);
    spawn_mix(Arc::clone(&fs), mix, 6, 120, 3500, 42);
    drop(fs);
    let report = Arc::into_inner(checker).expect("sole owner").finish();
    report.assert_ok();
}

#[test]
fn online_checked_deep_tree_stress() {
    let checker = Arc::new(OnlineChecker::new(CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtEnd, // cheaper: long trace
        invariants: false,
    }));
    let fs = Arc::new(AtomFs::traced(checker.clone() as Arc<dyn TraceSink>));
    // A deeper skeleton so renames move whole subtrees under walkers.
    for p in ["/r", "/r/a", "/r/a/b", "/r/c", "/r/c/d"] {
        fs.mkdir(p).unwrap();
    }
    let mut handles = Vec::new();
    for t in 0..6u32 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(3700 + t));
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(u64::from(t) + 555);
            let spots = ["/r/a", "/r/a/b", "/r/c", "/r/c/d", "/r"];
            for i in 0..150 {
                let s = spots[rng.random_range(0..spots.len())];
                let d = spots[rng.random_range(0..spots.len())];
                match rng.random_range(0..6) {
                    0 => {
                        let _ = fs.rename(&format!("{s}/m{t}"), &format!("{d}/m{t}"));
                    }
                    1 => {
                        let _ = fs.mkdir(&format!("{s}/m{t}"));
                    }
                    2 => {
                        let _ = fs.stat(&format!("{s}/m{t}/x"));
                    }
                    3 => {
                        let _ = fs.rename(s, &format!("{d}/moved{t}_{i}"));
                    }
                    4 => {
                        let _ = fs.readdir(s);
                    }
                    _ => {
                        let _ = fs.rmdir(&format!("{s}/m{t}"));
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    drop(fs);
    let report = Arc::into_inner(checker).expect("sole owner").finish();
    report.assert_ok();
}

/// RetryFs (the traversal-retry design) is also linearizable — §5.1
/// argues it meets the non-bypassable criterion differently. Validate
/// small concurrent histories with the generic WGL checker (RetryFs is
/// not instrumented, so the LP checker does not apply).
#[test]
fn retryfs_small_histories_are_linearizable() {
    use atomfs_baselines::RetryFs;
    use atomfs_trace::{OpDesc, OpRet};
    use crlh::history::HEvent;
    use parking_lot::Mutex;

    for seed in 0..6u64 {
        let fs = Arc::new(RetryFs::new());
        fs.mkdir("/d").unwrap();
        let log = Arc::new(Mutex::new(Vec::<HEvent>::new()));
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let fs = Arc::clone(&fs);
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                use rand::rngs::StdRng;
                use rand::{Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(seed * 17 + t);
                let tid = Tid(4000 + (seed * 4 + t) as u32);
                for _ in 0..4 {
                    let a = format!("/d/x{}", rng.random_range(0..3));
                    let b = format!("/d/y{}", rng.random_range(0..2));
                    let (op, ret) = match rng.random_range(0..4) {
                        0 => (
                            OpDesc::Mknod {
                                path: vec!["d".into(), a[3..].into()],
                            },
                            match fs.mknod(&a) {
                                Ok(()) => OpRet::Ok,
                                Err(e) => OpRet::Err(e),
                            },
                        ),
                        1 => (
                            OpDesc::Rename {
                                src: vec!["d".into(), a[3..].into()],
                                dst: vec!["d".into(), b[3..].into()],
                            },
                            match fs.rename(&a, &b) {
                                Ok(()) => OpRet::Ok,
                                Err(e) => OpRet::Err(e),
                            },
                        ),
                        2 => (
                            OpDesc::Unlink {
                                path: vec!["d".into(), a[3..].into()],
                            },
                            match fs.unlink(&a) {
                                Ok(()) => OpRet::Ok,
                                Err(e) => OpRet::Err(e),
                            },
                        ),
                        _ => (
                            OpDesc::Readdir {
                                path: vec!["d".into()],
                            },
                            match fs.readdir("/d") {
                                Ok(names) => OpRet::names(names),
                                Err(e) => OpRet::Err(e),
                            },
                        ),
                    };
                    // Record inv strictly before the call and res after:
                    // this widens intervals, which only makes the check
                    // more permissive, never unsound... except it must be
                    // recorded atomically around the call; we bracket as
                    // tightly as the log lock allows.
                    log.lock().push(HEvent::Inv {
                        tid,
                        op: op.clone(),
                    });
                    log.lock().push(HEvent::Res { tid, ret });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let events = Arc::into_inner(log).unwrap().into_inner();
        // The d prefix is pre-created; prepend its setup for the spec.
        let mut full = vec![
            HEvent::Inv {
                tid: Tid(1),
                op: OpDesc::Mkdir {
                    path: vec!["d".into()],
                },
            },
            HEvent::Res {
                tid: Tid(1),
                ret: OpRet::Ok,
            },
        ];
        full.extend(events);
        crlh::wgl::check_linearizable(&History { events: full })
            .unwrap_or_else(|e| panic!("seed {seed}: retryfs history not linearizable: {e}"));
    }
}

/// Determinism guard: replaying a recorded trace through the checker
/// twice yields identical outcomes (the checker itself is deterministic).
#[test]
fn checker_is_deterministic() {
    let sink = Arc::new(BufferSink::new());
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    let mix = OpMix::default();
    mix.setup(&*fs);
    spawn_mix(Arc::clone(&fs), mix, 4, 60, 4200, 5);
    let events = sink.take();
    let a = crlh::LpChecker::check(CheckerConfig::default(), &events);
    let b = crlh::LpChecker::check(CheckerConfig::default(), &events);
    assert_eq!(a.violations.len(), b.violations.len());
    assert_eq!(a.stats.helps, b.stats.helps);
    assert_eq!(a.final_afs, b.final_afs);
    a.assert_ok();
}
