//! The full stack at once: concurrent operations on AtomFS with the
//! CRL-H checker *and* the operation journal both attached to the same
//! trace stream, followed by a crash and recovery.
//!
//! This is the composition argument made executable: the checker
//! certifies the in-memory execution linearizable; the journal captures
//! the exact micro-op order the checker's shadow state replayed; so the
//! recovered state is a prefix-consistent snapshot of a *linearizable*
//! history.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_journal::{Disk, Journal, JournaledFs};
use atomfs_trace::{set_current_tid, FanoutSink, Tid, TraceSink};
use atomfs_vfs::FileSystem;
use atomfs_workloads::opmix::OpMix;
use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};

#[test]
fn concurrent_checked_and_journaled_then_crash() {
    for seed in 0..3u64 {
        let disk = Arc::new(Disk::new());
        let journal_sink = Arc::new(atomfs_journal::JournalSink::new(Journal::create(
            Arc::clone(&disk) as Arc<dyn atomfs_journal::BlockDevice>,
        )));
        let checker = Arc::new(OnlineChecker::new(CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        }));
        let fanout = Arc::new(FanoutSink(vec![
            Arc::clone(&journal_sink) as Arc<dyn TraceSink>,
            Arc::clone(&checker) as Arc<dyn TraceSink>,
        ]));
        let fs = Arc::new(AtomFs::traced(fanout as Arc<dyn TraceSink>));

        let mix = OpMix::default();
        mix.setup(&*fs);
        let mut handles = Vec::new();
        for t in 0..6u32 {
            let fs = Arc::clone(&fs);
            let js = Arc::clone(&journal_sink);
            handles.push(std::thread::spawn(move || {
                set_current_tid(Tid(8800 + seed as u32 * 10 + t));
                mix.run(&*fs, seed * 7 + u64::from(t), 60);
                if t == 0 {
                    js.sync().expect("perfect disk never degrades");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        journal_sink.sync().expect("perfect disk never degrades");

        // The concurrent execution was linearizable.
        drop(fs);
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();

        // Crash (adversarial) and recover: the journal replays cleanly
        // into a mountable file system.
        disk.crash(|i| i % 2 == 0);
        let (recovered, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert!(stats.ops_replayed > 0, "seed {seed}: nothing recovered");
        // Fully synced before the crash: the recovered tree matches the
        // final in-memory tree (compare via the checker's final afs).
        for d in mix.dirs() {
            let mut live: Vec<String> = Vec::new();
            let (trail, err) = report
                .final_afs
                .resolve(&atomfs_vfs::path::normalize(&d).unwrap());
            assert!(err.is_none());
            if let Some(crlh::Node::Dir(entries)) = report.final_afs.node(*trail.last().unwrap()) {
                live.extend(entries.keys().cloned());
            }
            live.sort();
            let mut rec = recovered.readdir(&d).unwrap();
            rec.sort();
            assert_eq!(rec, live, "seed {seed}: {d} differs after recovery");
        }
    }
}
