//! Property-based tests (proptest) on the core data structures and
//! invariants:
//!
//! * **differential**: random op scripts agree between AtomFS and the
//!   sequential oracle (and the abstract specification itself);
//! * **roll-back**: applying random valid micro-op sequences and
//!   unapplying them in reverse is the identity — the soundness core of
//!   the abstraction relation;
//! * **paths**: normalization is idempotent and round-trips;
//! * **dirhash**: the chained hash table behaves like a model map;
//! * **sequential refinement**: single-threaded AtomFS traces replayed
//!   through the full checker are always clean, and the final abstract
//!   state matches the shadow concrete state exactly.

use std::sync::Arc;

use atomfs::dirhash::DirHash;
use atomfs::AtomFs;
use atomfs_baselines::SeqFs;
use atomfs_trace::{BufferSink, MicroOp, TraceSink, ROOT_INUM};
use atomfs_vfs::path::{is_prefix, normalize, to_string};
use atomfs_vfs::{FileSystem, FileType};
use crlh::state::{FsState, Node};
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};
use proptest::prelude::*;

/// A small alphabet of operations over a bounded namespace.
#[derive(Debug, Clone)]
enum Op {
    Mknod(u8, u8),
    Mkdir(u8, u8),
    Unlink(u8, u8),
    Rmdir(u8, u8),
    Rename(u8, u8, u8, u8),
    Write(u8, u8, u8),
    Truncate(u8, u8, u8),
    Stat(u8, u8),
    Readdir(u8),
    Read(u8, u8, u8),
}

fn path(d: u8, n: u8) -> String {
    format!("/dir{}/f{}", d % 3, n % 4)
}

fn dirpath(d: u8) -> String {
    format!("/dir{}", d % 3)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(d, n)| Op::Mknod(d, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, n)| Op::Mkdir(d, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, n)| Op::Unlink(d, n)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, n)| Op::Rmdir(d, n)),
        (any::<u8>(), any::<u8>(), any::<u8>(), any::<u8>())
            .prop_map(|(a, b, c, d)| Op::Rename(a, b, c, d)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, n, k)| Op::Write(d, n, k)),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, n, k)| Op::Truncate(d, n, k)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, n)| Op::Stat(d, n)),
        any::<u8>().prop_map(Op::Readdir),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(d, n, k)| Op::Read(d, n, k)),
    ]
}

/// Execute one op, producing a comparable abstract result string.
fn exec(fs: &dyn FileSystem, op: &Op) -> String {
    match op {
        Op::Mknod(d, n) => format!("{:?}", fs.mknod(&path(*d, *n))),
        Op::Mkdir(d, n) => format!("{:?}", fs.mkdir(&path(*d, *n))),
        Op::Unlink(d, n) => format!("{:?}", fs.unlink(&path(*d, *n))),
        Op::Rmdir(d, n) => format!("{:?}", fs.rmdir(&path(*d, *n))),
        Op::Rename(a, b, c, d) => format!("{:?}", fs.rename(&path(*a, *b), &path(*c, *d))),
        Op::Write(d, n, k) => format!(
            "{:?}",
            fs.write(&path(*d, *n), u64::from(*k % 16), &[*k; 5])
        ),
        Op::Truncate(d, n, k) => {
            format!("{:?}", fs.truncate(&path(*d, *n), u64::from(*k % 32)))
        }
        Op::Stat(d, n) => format!("{:?}", fs.stat(&path(*d, *n)).map(|m| (m.ftype, m.size))),
        Op::Readdir(d) => format!(
            "{:?}",
            fs.readdir(&dirpath(*d)).map(|mut v| {
                v.sort();
                v
            })
        ),
        Op::Read(d, n, k) => {
            let mut buf = vec![0u8; usize::from(*k % 16) + 1];
            format!(
                "{:?}",
                fs.read(&path(*d, *n), u64::from(*k % 8), &mut buf)
                    .map(|x| {
                        buf.truncate(x);
                        buf
                    })
            )
        }
    }
}

fn setup(fs: &dyn FileSystem) {
    for d in 0..3 {
        fs.mkdir(&format!("/dir{d}")).unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// AtomFS and the sequential oracle agree on every script.
    #[test]
    fn atomfs_matches_oracle(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let a = AtomFs::new();
        setup(&a);
        let b = SeqFs::new();
        setup(&b);
        for (i, op) in ops.iter().enumerate() {
            prop_assert_eq!(exec(&a, op), exec(&b, op), "divergence at step {}", i);
        }
    }

    /// Sequential instrumented runs always check clean, and at quiescence
    /// the abstract state equals the shadow concrete state (the identity
    /// abstraction relation).
    #[test]
    fn sequential_traces_always_check_clean(
        ops in proptest::collection::vec(op_strategy(), 1..60)
    ) {
        let sink = Arc::new(BufferSink::new());
        let fs = AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
        setup(&fs);
        for op in &ops {
            exec(&fs, op);
        }
        let report = LpChecker::check(
            CheckerConfig {
                mode: HelperMode::Helpers,
                relation: RelationCadence::EveryEvent,
                invariants: true,
            },
            &sink.take(),
        );
        prop_assert!(report.is_ok(), "violations: {:?}", report.violations);
        prop_assert_eq!(report.stats.helps, 0);
    }

    /// Applying a random valid micro-op sequence then unapplying it in
    /// reverse restores the original state exactly.
    #[test]
    fn rollback_is_exact_inverse(seed in any::<u64>(), steps in 1usize..60) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut state = FsState::new();
        let mut applied: Vec<MicroOp> = Vec::new();
        let mut next = 100u64;
        for _ in 0..steps {
            // Build a random *valid* micro-op against the current state.
            let ids: Vec<u64> = state.map.keys().copied().collect();
            let pick = ids[rng.random_range(0..ids.len())];
            let op = match rng.random_range(0..4) {
                0 => {
                    next += 1;
                    MicroOp::Create {
                        ino: next,
                        ftype: if rng.random_bool(0.5) { FileType::File } else { FileType::Dir },
                    }
                }
                1 => {
                    // Insert an existing orphan under a directory.
                    let dirs: Vec<u64> = state
                        .map
                        .iter()
                        .filter(|(_, n)| matches!(n, Node::Dir(_)))
                        .map(|(id, _)| *id)
                        .collect();
                    let orphans: Vec<u64> = {
                        let reachable = state.reachable();
                        state.map.keys().copied().filter(|i| !reachable.contains(i)).collect()
                    };
                    if orphans.is_empty() {
                        continue;
                    }
                    MicroOp::Ins {
                        parent: dirs[rng.random_range(0..dirs.len())],
                        name: format!("e{}", rng.random_range(0..1000u32)),
                        child: orphans[rng.random_range(0..orphans.len())],
                    }
                }
                2 => match state.node(pick) {
                    Some(Node::File(f)) => MicroOp::SetData {
                        ino: pick,
                        old: f.clone(),
                        new: vec![rng.random(); rng.random_range(0..32)],
                    },
                    _ => continue,
                },
                _ => {
                    // Delete a random entry from a random directory.
                    let entry = state.map.iter().find_map(|(id, n)| match n {
                        Node::Dir(d) => d
                            .iter()
                            .next()
                            .map(|(name, child)| (*id, name.clone(), *child)),
                        _ => None,
                    });
                    match entry {
                        Some((parent, name, child)) => MicroOp::Del { parent, name, child },
                        None => continue,
                    }
                }
            };
            // Ins may collide with an existing name; skip those.
            if state.apply_micro(&op).is_ok() {
                applied.push(op);
            }
        }
        let snapshot = state.clone();
        prop_assert!(snapshot.map.contains_key(&ROOT_INUM));
        for op in applied.iter().rev() {
            state.unapply_micro(op).unwrap();
        }
        prop_assert_eq!(state, FsState::new());
        // And replaying restores the snapshot.
        let mut replay = FsState::new();
        for op in &applied {
            replay.apply_micro(op).unwrap();
        }
        prop_assert_eq!(replay, snapshot);
    }

    /// Path normalization is idempotent and `to_string ∘ normalize` is a
    /// fixpoint.
    #[test]
    fn normalize_idempotent(parts in proptest::collection::vec("[a-z.]{0,6}", 0..8)) {
        let raw = format!("/{}", parts.join("/"));
        if let Ok(c1) = normalize(&raw) {
            let printed = to_string(&c1);
            let c2 = normalize(&printed).unwrap();
            prop_assert_eq!(&c1, &c2);
            prop_assert_eq!(to_string(&c2), printed);
        }
    }

    /// `is_prefix` is reflexive, transitive in chains, and monotone.
    #[test]
    fn prefix_laws(v in proptest::collection::vec(any::<u32>(), 0..10), cut in any::<usize>()) {
        let k = if v.is_empty() { 0 } else { cut % (v.len() + 1) };
        prop_assert!(is_prefix(&v[..k], &v));
        prop_assert!(is_prefix(&v, &v));
    }

    /// The chained hash directory behaves exactly like a model BTreeMap.
    #[test]
    fn dirhash_matches_model(
        cmds in proptest::collection::vec(
            (any::<bool>(), 0u16..40, any::<bool>()), 1..200
        )
    ) {
        let mut dir = DirHash::new();
        // Model maps name -> (inum, is_dir); the is_dir flag passed to
        // remove must match the one used at insert (the DirHash caller
        // contract — AtomFS always knows the victim's type under lock).
        let mut model = std::collections::BTreeMap::<String, (u64, bool)>::new();
        for (insert, key, is_dir) in cmds {
            let name = format!("k{key}");
            if insert {
                let expect = !model.contains_key(&name);
                let got = dir.insert(&name, u64::from(key), is_dir);
                prop_assert_eq!(got, expect);
                if expect {
                    model.insert(name, (u64::from(key), is_dir));
                }
            } else if let Some(&(v, stored_is_dir)) = model.get(&name) {
                prop_assert_eq!(dir.remove(&name, stored_is_dir), Some(v));
                model.remove(&name);
            } else {
                prop_assert_eq!(dir.remove(&name, is_dir), None);
            }
            prop_assert_eq!(dir.len(), model.len());
            let expected_subdirs =
                model.values().filter(|(_, d)| *d).count() as u32;
            prop_assert_eq!(dir.subdirs(), expected_subdirs);
            for (k, (v, _)) in &model {
                prop_assert_eq!(dir.lookup(k), Some(*v));
            }
        }
        let mut names = dir.names();
        names.sort();
        let expected: Vec<String> = model.keys().cloned().collect();
        prop_assert_eq!(names, expected);
    }

    /// The abstract spec agrees with the concrete AtomFS on sequential
    /// scripts: run ops on both, compare result strings.
    #[test]
    fn abstract_spec_refines_concrete(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        use atomfs_trace::{OpDesc, OpRet};
        let fs = AtomFs::new();
        setup(&fs);
        let mut afs = FsState::new();
        let mut next_id = 1000u64;
        let mut alloc = |_ft: FileType| { next_id += 1; next_id };
        for d in 0..3 {
            let (_, ret, err) = crlh::afs::apply_aop(
                &mut afs,
                &OpDesc::Mkdir { path: vec![format!("dir{d}")] },
                &mut alloc,
            );
            prop_assert_eq!(ret, OpRet::Ok);
            prop_assert!(err.is_none());
        }
        for op in &ops {
            let concrete = exec(&fs, op);
            let desc = desc_of(op);
            let (_, aret, err) = crlh::afs::apply_aop(&mut afs, &desc, &mut alloc);
            prop_assert!(err.is_none());
            let abstract_str = ret_to_string(&desc, &aret);
            prop_assert_eq!(&concrete, &abstract_str, "spec/impl divergence on {:?}", op);
        }
    }
}

/// Mirror `exec`'s formatting for abstract results so both sides compare.
fn ret_to_string(op: &atomfs_trace::OpDesc, ret: &atomfs_trace::OpRet) -> String {
    use atomfs_trace::{OpDesc, OpRet};
    match (op, ret) {
        (_, OpRet::Err(e)) => format!("Err({e:?})"),
        (OpDesc::Stat { .. }, OpRet::Stat(s)) => {
            let ft = if s.is_dir {
                FileType::Dir
            } else {
                FileType::File
            };
            format!("Ok(({ft:?}, {}))", s.size)
        }
        (OpDesc::Readdir { .. }, OpRet::Names(n)) => format!("Ok({n:?})"),
        (OpDesc::Read { .. }, OpRet::Data(d)) => format!("Ok({d:?})"),
        (OpDesc::Write { .. }, OpRet::Written(n)) => format!("Ok({n})"),
        (_, OpRet::Ok) => "Ok(())".to_string(),
        other => format!("unexpected {other:?}"),
    }
}

fn desc_of(op: &Op) -> atomfs_trace::OpDesc {
    use atomfs_trace::OpDesc;
    let comps = |d: u8, n: u8| normalize(&path(d, n)).unwrap();
    match op {
        Op::Mknod(d, n) => OpDesc::Mknod {
            path: comps(*d, *n),
        },
        Op::Mkdir(d, n) => OpDesc::Mkdir {
            path: comps(*d, *n),
        },
        Op::Unlink(d, n) => OpDesc::Unlink {
            path: comps(*d, *n),
        },
        Op::Rmdir(d, n) => OpDesc::Rmdir {
            path: comps(*d, *n),
        },
        Op::Rename(a, b, c, d) => OpDesc::Rename {
            src: comps(*a, *b),
            dst: comps(*c, *d),
        },
        Op::Write(d, n, k) => OpDesc::Write {
            path: comps(*d, *n),
            offset: u64::from(*k % 16),
            data: vec![*k; 5],
        },
        Op::Truncate(d, n, k) => OpDesc::Truncate {
            path: comps(*d, *n),
            size: u64::from(*k % 32),
        },
        Op::Stat(d, n) => OpDesc::Stat {
            path: comps(*d, *n),
        },
        Op::Readdir(d) => OpDesc::Readdir {
            path: normalize(&dirpath(*d)).unwrap(),
        },
        Op::Read(d, n, k) => OpDesc::Read {
            path: comps(*d, *n),
            offset: u64::from(*k % 8),
            len: usize::from(*k % 16) + 1,
        },
    }
}
