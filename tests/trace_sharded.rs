//! The sharded trace recorder under real concurrency.
//!
//! Three obligations from the recorder's contract (see
//! `crates/trace/src/shard.rs` and DESIGN.md):
//!
//! 1. A multi-threaded OpMix run recorded through [`ShardedSink`] drains
//!    to strictly increasing stamps, and the merged trace passes the full
//!    CRL-H checker (helpers + roll-back relation + all invariants) — the
//!    stamp order really is a legal total order of the atomic steps.
//! 2. Under a deterministic scripted interleaving (GateSink serializes
//!    which thread is emitting at every instant), the sharded recorder
//!    reproduces the reference [`BufferSink`] order event for event.
//! 3. `len()` stays consistent with the stamps issued and with `take()`.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{
    set_current_tid, BufferSink, Event, FanoutSink, GateSink, ShardedSink, Tid, TraceSink,
};
use atomfs_vfs::FileSystem;
use atomfs_workloads::opmix::OpMix;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

fn spawn_mix(fs: Arc<AtomFs>, mix: OpMix, threads: u32, ops: usize, tid_base: u32, seed_base: u64) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(tid_base + t));
            mix.run(&*fs, seed_base + u64::from(t), ops);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Eight threads of the default contended mix through the sharded
/// recorder: stamps strictly increase across the merged drain and the
/// trace passes the checker with everything switched on.
#[test]
fn sharded_stress_trace_passes_full_checker() {
    for seed in 0..3u64 {
        let sink = Arc::new(ShardedSink::new());
        let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
        let mix = OpMix::default();
        mix.setup(&*fs);
        spawn_mix(
            Arc::clone(&fs),
            mix,
            8,
            80,
            5000 + seed as u32 * 100,
            seed * 31,
        );
        assert_eq!(sink.len(), sink.stamps_issued() as usize);
        let stamped = sink.take_stamped();
        assert!(sink.is_empty());
        assert!(
            stamped.windows(2).all(|w| w[0].0 < w[1].0),
            "seed {seed}: merged stamps must strictly increase"
        );
        let report = LpChecker::check_stamped(
            CheckerConfig {
                mode: HelperMode::Helpers,
                relation: RelationCadence::AtUnlock,
                invariants: true,
            },
            &stamped,
        );
        report.assert_ok();
        assert!(report.stats.ops_completed >= 8 * 80);
    }
}

/// A rename-heavy mix maximizes helping (LPs executed on behalf of other
/// threads); the stamp order must still replay cleanly.
#[test]
fn sharded_rename_storm_trace_passes_full_checker() {
    let sink = Arc::new(ShardedSink::with_shards(4));
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    let mix = OpMix {
        dirs: 2,
        names: 3,
        rename_weight: 20,
    };
    mix.setup(&*fs);
    spawn_mix(Arc::clone(&fs), mix, 8, 100, 5600, 7);
    let stamped = sink.take_stamped();
    assert!(stamped.windows(2).all(|w| w[0].0 < w[1].0));
    let report = LpChecker::check_stamped(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        },
        &stamped,
    );
    report.assert_ok();
}

/// Differential check against the reference recorder: a GateSink scripts
/// the interleaving so exactly one thread emits at every instant, fanning
/// each event into a `BufferSink` (borrowed route) and a `ShardedSink`
/// (owned route, last). With the race removed, the two recorders must
/// agree on the total order event for event — and the interleaved trace
/// itself must be one the checker accepts.
#[test]
fn sharded_matches_buffer_under_scripted_interleaving() {
    let buffer = Arc::new(BufferSink::new());
    let sharded = Arc::new(ShardedSink::new());
    let fanout = FanoutSink(vec![
        Arc::clone(&buffer) as Arc<dyn TraceSink>,
        Arc::clone(&sharded) as Arc<dyn TraceSink>,
    ]);
    let sink = Arc::new(GateSink::new(fanout));
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    set_current_tid(Tid(6000));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/b").unwrap();

    // Park the mkdir thread just before its first mutation (it then
    // holds only /a's lock), exactly the Figure-1 setup.
    let gate = sink.add_gate(|e| matches!(e, Event::Mutate { tid, .. } if *tid == Tid(6001)));
    let worker = {
        let fs = Arc::clone(&fs);
        std::thread::spawn(move || {
            set_current_tid(Tid(6001));
            fs.mkdir("/a/x").unwrap();
        })
    };
    sink.wait_parked(gate);

    // While the worker is frozen mid-critical-section, run a full op mix
    // on a disjoint subtree: these events are emitted with no concurrent
    // emitter, so their order is scripted.
    fs.mknod("/b/f").unwrap();
    fs.write("/b/f", 0, b"payload").unwrap();
    fs.rename("/b/f", "/b/g").unwrap();
    let _ = fs.stat("/missing");

    // Release the worker; after the join only the main thread remains.
    sink.open(gate);
    worker.join().unwrap();
    fs.unlink("/b/g").unwrap();

    let reference = buffer.take();
    let merged = sharded.take();
    assert_eq!(reference.len(), merged.len());
    assert_eq!(reference, merged, "recorders disagree on the total order");
    LpChecker::check(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        },
        &merged,
    )
    .assert_ok();
}
