//! The serving layer under the CRL-H checker: a traced AtomFS served
//! over TCP, stormed by dozens of pipelined client connections — with
//! abrupt disconnects that leave descriptors open and files unlinked
//! while other connections still hold descriptors on them — must yield
//! a stamped trace the full checker (helpers + roll-back relation + all
//! invariants) replays cleanly. This is the end-to-end claim of the
//! serving PR: network framing, sharded execution, backpressure, and
//! disconnect teardown add *no* new interleavings the specification
//! cannot explain.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_obs::Registry;
use atomfs_server::{serve, RemoteFs, RpcClient, ServerConfig, FLAG_READ, FLAG_WRITE};
use atomfs_trace::{ShardedSink, TraceSink};
use atomfs_vfs::FileSystem;
use atomfs_workloads::storm::{run_storm, storm_setup, StormConfig};
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

#[test]
fn client_storm_trace_passes_full_checker() {
    let sink = Arc::new(ShardedSink::new());
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    let registry = Arc::new(Registry::new());
    let srv = serve(fs, Some(Arc::clone(&registry)), ServerConfig::default()).expect("bind");
    let addr = srv.local_addr();

    let cfg = StormConfig {
        conns: 48,
        threads: 8,
        ops_per_conn: 120,
        drop_every: 5,
        ..StormConfig::default()
    };
    storm_setup(addr, &cfg).unwrap();
    let stats = run_storm(addr, &registry, cfg);
    assert_eq!(stats.conns, 48);
    assert!(stats.ops > 3000, "storm ran {} ops", stats.ops);
    assert!(stats.dropped_conns >= 8, "only {} drops", stats.dropped_conns);

    // Unlink-while-open across a dropped connection: one connection
    // opens and then vanishes; a second unlinks the file while the
    // server-side descriptor still exists; teardown must reap it.
    let victim = Arc::new(RpcClient::connect(addr).unwrap());
    RemoteFs::new(Arc::clone(&victim)).mknod("/doomed").unwrap();
    let _fd = victim.open("/doomed", FLAG_READ | FLAG_WRITE).unwrap();
    let other = Arc::new(RpcClient::connect(addr).unwrap());
    RemoteFs::new(Arc::clone(&other)).unlink("/doomed").unwrap();
    victim.abort();
    drop(other);

    // Server shutdown drains every admitted request and tears down every
    // connection, so the sink is quiescent after this returns.
    let srv_stats = srv.shutdown();
    assert_eq!(
        srv_stats.conns_opened, srv_stats.conns_closed,
        "every accepted connection must be torn down"
    );
    assert!(
        srv_stats.fds_closed_on_teardown >= stats.fds_left_open + 1,
        "teardown closed {} descriptors, storm leaked {} (+1 victim)",
        srv_stats.fds_closed_on_teardown,
        stats.fds_left_open
    );
    assert_eq!(srv_stats.worker_panics, 0);
    assert_eq!(srv_stats.malformed, 0);

    // Client-observed latency was metered: the shared histograms hold a
    // sample for every metered storm op that crossed the wire.
    let prom = registry.render_prometheus();
    assert!(prom.contains("fs_op_ns"), "metered series missing");
    assert!(prom.contains("rpc_requests_total"));

    // The merged stamp order is a legal total order of atomic steps
    // under the strongest checker configuration.
    let stamped = sink.take_stamped();
    assert!(
        stamped.windows(2).all(|w| w[0].0 < w[1].0),
        "merged stamps must strictly increase"
    );
    let report = LpChecker::check_stamped(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        },
        &stamped,
    );
    report.assert_ok();
    assert!(
        report.stats.ops_completed as u64 >= stats.ops / 2,
        "checker replayed {} ops of {} sent",
        report.stats.ops_completed,
        stats.ops
    );
}
