//! The full stack over the *sharded* journal: concurrent operations on
//! AtomFS with the CRL-H checker and the sharded, group-committed log
//! both attached to the same trace stream, followed by crashes and
//! recoveries.
//!
//! The composition argument is the same as for the single-stream
//! journal — the checker certifies the in-memory execution linearizable,
//! the log captures the same micro-op order — except that the order now
//! lives as per-shard stamped streams that recovery re-merges. These
//! tests pin the properties that make that sound: the merged stream is a
//! contiguous stamp prefix, every rename intent pairs with a seal,
//! parallel recovery equals sequential recovery, and a degraded sharded
//! run still produces a checker-accepted trace.

use std::sync::Arc;

use atomfs_journal::{
    recover_sharded, recover_sharded_sequential, shard_of, BlockDevice, Disk, FaultPlan,
    FaultyDisk, JournaledFs, ShardConfig,
};
use atomfs_trace::{set_current_tid, Tid, TraceSink};
use atomfs_vfs::{FileSystem, FsError};
use atomfs_workloads::opmix::OpMix;
use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};

fn checker() -> Arc<OnlineChecker> {
    Arc::new(OnlineChecker::new(CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtUnlock,
        invariants: true,
    }))
}

#[test]
fn concurrent_sharded_run_is_checker_accepted_and_recovers_exactly() {
    for seed in 0..3u64 {
        let cfg = ShardConfig::default();
        let disk = Arc::new(Disk::new());
        let checker = checker();
        let jfs = Arc::new(JournaledFs::create_sharded_observed(
            Arc::clone(&disk) as Arc<dyn BlockDevice>,
            cfg,
            Arc::clone(&checker) as Arc<dyn TraceSink>,
        ));
        let mix = OpMix::default();
        mix.setup(&*jfs);
        let mut handles = Vec::new();
        for t in 0..6u32 {
            let jfs = Arc::clone(&jfs);
            handles.push(std::thread::spawn(move || {
                set_current_tid(Tid(9300 + seed as u32 * 10 + t));
                mix.run(&*jfs, seed * 13 + u64::from(t), 60);
                // Concurrent group commits race concurrent staging.
                if t % 2 == 0 {
                    jfs.sync().expect("perfect disk never degrades");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        jfs.sync().unwrap();
        {
            let sink = jfs.sharded_sink().expect("sharded mount");
            assert!(sink.sealed_epoch() >= 1, "seed {seed}: no epoch sealed");
            assert_eq!(sink.dropped_events(), 0, "seed {seed}: events dropped");
        }
        let final_dirs: Vec<(String, Vec<String>)> = mix
            .dirs()
            .iter()
            .map(|d| {
                let mut names = jfs.readdir(d).unwrap();
                names.sort();
                (d.clone(), names)
            })
            .collect();
        drop(Arc::into_inner(jfs).expect("threads joined"));

        // The concurrent execution over the sharded sink linearizes.
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();

        // Clean power cut after a full sync: the per-shard streams merge
        // back into one contiguous stamp prefix with nothing truncated,
        // every rename intent pairs with a seal, and parallel recovery
        // is indistinguishable from sequential.
        disk.crash(|_| false);
        let par = recover_sharded(&disk, &cfg);
        let seq = recover_sharded_sequential(&disk, &cfg);
        assert_eq!(par.ops, seq.ops, "seed {seed}: parallel != sequential");
        assert_eq!(par.truncated_at, None, "seed {seed}: clean log truncated");
        assert_eq!(par.dropped_ops, 0);
        assert!(
            par.pairing.is_clean(),
            "seed {seed}: rename pairing not clean: {:?}",
            par.pairing
        );
        for (i, (stamp, _)) in par.ops.iter().enumerate() {
            assert_eq!(*stamp, i as u64, "seed {seed}: stamp stream has a hole");
        }

        // And the recovered mount serves exactly the synced tree.
        let (recovered, stats) =
            JournaledFs::recover_sharded(Arc::clone(&disk), cfg).expect("recovery never fails");
        assert_eq!(stats.ops_replayed, par.ops.len());
        for (d, names) in &final_dirs {
            let mut rec = recovered.readdir(d).unwrap();
            rec.sort();
            assert_eq!(&rec, names, "seed {seed}: {d} differs after recovery");
        }
    }
}

/// One shard's device dies mid-run while the other shards keep their own
/// (healthy) devices. The mount must quarantine exactly the dead shard's
/// inode range — refusing its mutations with `ReadOnly`, reporting the
/// loss on one sync — while every other range keeps accepting and
/// committing, the CRL-H checker accepts the full degraded-run trace,
/// and recovery reproduces the runtime's quarantine verdict exactly.
#[test]
fn one_dead_device_quarantines_its_shard_while_the_mount_and_checker_stay_healthy() {
    for seed in 0..3u64 {
        let cfg = ShardConfig::default();
        let shards = cfg.shard_count();
        let root_shard = shard_of(atomfs_trace::ROOT_INUM, shards);
        // Never kill the root's shard: mknod/mkdir route by parent, so a
        // dead root shard would refuse every create and starve the test.
        let victim = (root_shard + 1 + seed as usize % (shards - 1)) % shards;
        let disk = Arc::new(Disk::new());
        let devices: Vec<Arc<dyn BlockDevice>> = (0..shards)
            .map(|s| {
                if s == victim {
                    Arc::new(FaultyDisk::new(
                        Arc::clone(&disk),
                        FaultPlan::none(seed).with_permanent_failure_after(3 + seed),
                    )) as Arc<dyn BlockDevice>
                } else {
                    Arc::clone(&disk) as Arc<dyn BlockDevice>
                }
            })
            .collect();
        let checker = checker();
        let jfs = JournaledFs::create_sharded_observed_with_devices(
            devices,
            cfg,
            Arc::clone(&checker) as Arc<dyn TraceSink>,
        );
        // Creates route by parent (root, live); each file's writes route
        // by its own inode, so ~1/shards of them land on the victim.
        let mut refused = 0usize;
        let mut accepted_after_refusal = 0usize;
        let mut loss_reported = false;
        for i in 0..300usize {
            let f = format!("/f{i}");
            let r = jfs
                .mknod(&f)
                .and_then(|()| jfs.write(&f, 0, &[i as u8; 16]).map(|_| ()));
            match r {
                Err(FsError::ReadOnly) => refused += 1,
                Err(e) => panic!("seed {seed}: unexpected error {e:?} at op {i}"),
                Ok(()) if refused > 0 => accepted_after_refusal += 1,
                Ok(()) => {}
            }
            if i % 5 == 4 && jfs.sync().is_err() {
                loss_reported = true;
            }
        }
        if jfs.sync().is_err() {
            loss_reported = true;
        }
        assert!(loss_reported, "seed {seed}: no sync ever reported the loss");
        assert!(refused > 0, "seed {seed}: the dead range never refused a write");
        assert!(
            accepted_after_refusal > 0,
            "seed {seed}: live ranges stopped accepting after the quarantine"
        );
        assert!(
            !jfs.health().is_degraded(),
            "seed {seed}: one dead shard degraded the whole mount"
        );
        let (quarantined, windows) = {
            let sink = jfs.sharded_sink().expect("sharded mount");
            assert_eq!(sink.quarantine_count(), 1, "seed {seed}: quarantine count");
            (sink.quarantined_shards(), sink.lost_stamp_windows())
        };
        assert_eq!(quarantined, vec![victim], "seed {seed}: wrong shard quarantined");
        // Survivors still commit durably after the loss was reported once.
        jfs.mkdir("/still-alive").unwrap();
        jfs.sync()
            .unwrap_or_else(|e| panic!("seed {seed}: post-quarantine sync failed: {e:?}"));
        drop(jfs);

        // The gated run linearizes: refusals happen before AtomFS mutates,
        // so the checker saw exactly the admitted history.
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();

        // Clean power cut: recovery must reproduce the runtime verdict —
        // same quarantined shard, same lost-stamp windows — and replay
        // everything the survivors acknowledged.
        disk.crash(|_| false);
        let par = recover_sharded(&disk, &cfg);
        let seq = recover_sharded_sequential(&disk, &cfg);
        assert_eq!(par.ops, seq.ops, "seed {seed}: parallel != sequential");
        assert_eq!(
            par.quarantined_shards(),
            vec![victim],
            "seed {seed}: recovery quarantine verdict"
        );
        assert_eq!(
            par.lost_windows, windows,
            "seed {seed}: recovery windows != runtime windows"
        );
        let (recovered, stats) =
            JournaledFs::recover_sharded(Arc::clone(&disk), cfg).expect("recovery never fails");
        // Windows bound the loss; they need not be fully spent — a failed
        // slice can still be partially durable, and found stamps replay.
        let window_width: u64 = windows.iter().map(|&(lo, hi)| hi - lo).sum();
        assert_eq!(stats.lost_ops, par.lost_ops, "seed {seed}: loss accounting diverges");
        assert!(
            stats.lost_ops as u64 <= window_width,
            "seed {seed}: lost more ops ({}) than the quarantine windows license ({window_width})",
            stats.lost_ops
        );
        let mut root_names = recovered.readdir("/").unwrap();
        root_names.sort();
        assert!(
            root_names.iter().any(|n| n == "still-alive"),
            "seed {seed}: an acknowledged post-quarantine commit was lost"
        );
    }
}

#[test]
fn degraded_sharded_run_still_produces_a_checker_accepted_trace() {
    for seed in 0..3u64 {
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(seed).with_permanent_failure_after(40 + seed * 11),
        ));
        let checker = checker();
        let jfs = JournaledFs::create_sharded_observed(
            dev,
            ShardConfig::default(),
            Arc::clone(&checker) as Arc<dyn TraceSink>,
        );
        // Unique paths per iteration: every loop round actually mutates
        // (and every fourth one syncs), so device traffic accumulates
        // until the fault budget is exhausted mid-run.
        let mut degraded = false;
        for i in 0..400usize {
            let f = format!("/f{i}");
            let r = jfs
                .mknod(&f)
                .and_then(|()| jfs.write(&f, 0, &[i as u8; 32]).map(|_| ()))
                .and_then(|()| match i % 3 {
                    0 => jfs.rename(&f, &format!("/g{i}")),
                    1 => jfs.unlink(&f),
                    _ => Ok(()),
                })
                .and_then(|()| if i % 4 == 0 { jfs.sync() } else { Ok(()) });
            if matches!(r, Err(FsError::ReadOnly) | Err(FsError::Io)) {
                degraded = true;
            }
        }
        assert!(degraded, "seed {seed}: the device never died");
        assert!(jfs.health().is_degraded());
        // Degraded-mode gating refuses mutations before AtomFS, so the
        // trace the checker saw is exactly the mutations that happened —
        // including any rename whose intent/seal never made it to disk.
        drop(jfs);
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();
    }
}
