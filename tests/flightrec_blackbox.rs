//! The black-box acceptance path: a fault storm that quarantines one
//! journal shard must leave behind a flight-recorder dump whose spans
//! causally cover the failing operation — sampled op roots, the shard
//! appends they caused (each stamped and shard-attributed), the epoch
//! slice / flush that failed on the dead device under its group-commit
//! parent, and the quarantine trigger instant — and whose shard, epoch,
//! and stamp attributions agree with what recovery later reports about
//! the same disk.
//!
//! Under `obs-off` all of this is compiled out (see `obs_off_chain.rs`),
//! so the whole file is gated.

#![cfg(not(feature = "obs-off"))]

use std::collections::HashSet;
use std::sync::Arc;

use atomfs_journal::{
    recover_sharded, register_sharded_journal_metrics, shard_of, BlockDevice, Disk, FaultPlan,
    FaultyDisk, JournaledFs, ShardConfig,
};
use atomfs_obs::span::{set_sampling, DEFAULT_SPAN_SAMPLE, NO_SHARD, NO_U64};
use atomfs_obs::{Registry, SpanKind, TriggerCause};
use atomfs_trace::TraceSink;
use atomfs_vfs::FileSystem;
use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};

#[test]
fn quarantine_dump_causally_covers_the_failing_op() {
    // Record every operation: the dump must show the op that hit the
    // fault, not a 1-in-64 sample that may have missed it.
    set_sampling(1);
    let _ = atomfs_obs::dump::drain();

    let seed = 1u64;
    let cfg = ShardConfig::default();
    let shards = cfg.shard_count();
    let root_shard = shard_of(atomfs_trace::ROOT_INUM, shards);
    // Never kill the root's shard: creates route by parent, and a dead
    // root shard would refuse every create and starve the storm.
    let victim = (root_shard + 1 + seed as usize % (shards - 1)) % shards;
    let disk = Arc::new(Disk::new());
    let devices: Vec<Arc<dyn BlockDevice>> = (0..shards)
        .map(|s| {
            if s == victim {
                Arc::new(FaultyDisk::new(
                    Arc::clone(&disk),
                    FaultPlan::none(seed).with_permanent_failure_after(3 + seed),
                )) as Arc<dyn BlockDevice>
            } else {
                Arc::clone(&disk) as Arc<dyn BlockDevice>
            }
        })
        .collect();
    let checker = Arc::new(OnlineChecker::new(CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtUnlock,
        invariants: true,
    }));
    let jfs = JournaledFs::create_sharded_observed_with_devices(
        devices,
        cfg,
        Arc::clone(&checker) as Arc<dyn TraceSink>,
    );
    // Attach a registry carrying the journal gauges so the dump embeds a
    // metrics snapshot alongside the spans.
    let registry = Arc::new(Registry::new());
    register_sharded_journal_metrics(&registry, jfs.sharded_sink().expect("sharded mount"));
    atomfs_obs::dump::set_registry(&registry);

    // The storm: creates route by parent (root, live); each file's
    // writes route by its own inode, so ~1/shards land on the victim.
    let mut loss_reported = false;
    for i in 0..300usize {
        let f = format!("/f{i}");
        let _ = jfs
            .mknod(&f)
            .and_then(|()| jfs.write(&f, 0, &[i as u8; 16]).map(|_| ()));
        if i % 5 == 4 && jfs.sync().is_err() {
            loss_reported = true;
        }
    }
    if jfs.sync().is_err() {
        loss_reported = true;
    }
    set_sampling(DEFAULT_SPAN_SAMPLE);
    assert!(loss_reported, "no sync ever reported the loss");
    let (quarantined, windows, sealed_final) = {
        let sink = jfs.sharded_sink().expect("sharded mount");
        (
            sink.quarantined_shards(),
            sink.lost_stamp_windows(),
            sink.sealed_epoch(),
        )
    };
    assert_eq!(quarantined, vec![victim], "wrong shard quarantined");

    // --- The dump exists and names the victim. ---
    let dumps = atomfs_obs::dump::drain();
    let qdump = dumps
        .iter()
        .find(|d| matches!(d.cause, TriggerCause::ShardQuarantine { .. }))
        .expect("quarantine produced no black-box dump");
    let TriggerCause::ShardQuarantine { shard, .. } = &qdump.cause else {
        unreachable!()
    };
    assert_eq!(*shard as usize, victim, "dump names the wrong shard");
    assert!(
        qdump.health.as_deref().is_some_and(|h| h.contains("\"health\"")),
        "dump carries no health report"
    );
    assert!(
        qdump
            .metrics
            .as_deref()
            .is_some_and(|m| m.contains("journal_dead_shard_mask")),
        "dump carries no metrics snapshot with the quarantine gauges"
    );

    // --- Causal chain inside the frozen rings. ---
    let spans = &qdump.spans;
    // 1. Op roots were recorded (walk layer).
    let op_ids: HashSet<u64> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::Op)
        .map(|s| s.id)
        .collect();
    assert!(!op_ids.is_empty(), "no op spans in the dump");
    // 2. Shard appends hang off those ops, each stamped and attributed.
    let staged: Vec<_> = spans
        .iter()
        .filter(|s| s.kind == SpanKind::ShardAppend && s.label.starts_with("stage_"))
        .collect();
    assert!(!staged.is_empty(), "no staged-append spans in the dump");
    assert!(
        staged.iter().any(|s| op_ids.contains(&s.parent)),
        "no staged append is causally linked to an op span"
    );
    for s in &staged {
        assert_ne!(s.shard, NO_SHARD, "staged append without a shard");
        assert_ne!(s.stamp, NO_U64, "staged append without a stamp");
        assert_ne!(s.epoch, NO_U64, "staged append without an epoch");
        assert!(s.epoch <= sealed_final + 1, "staged epoch beyond the open one");
    }
    // 3. The victim's slice write (or its flush barrier) failed, under a
    //    group-commit parent.
    let failed = spans
        .iter()
        .find(|s| s.err && (s.label == "epoch_slice" || s.label == "flush_pass"))
        .expect("no failed slice/flush span in the dump");
    assert_eq!(failed.shard as usize, victim, "failure attributed to wrong shard");
    // The group-commit root is still open at capture time, so it may sit
    // in `active` (in-flight spans) rather than the completed rings.
    let commit = spans
        .iter()
        .chain(qdump.active.iter())
        .find(|s| s.id == failed.parent)
        .expect("failed slice/flush has no parent span in the dump");
    assert_eq!(commit.kind, SpanKind::EpochCut, "failure not under a group commit");
    // 4. The quarantine trigger instant itself is in the rings.
    let trig = spans
        .iter()
        .find(|s| s.kind == SpanKind::Trigger && s.label == "shard_quarantine")
        .expect("no quarantine trigger span in the dump");
    assert_eq!(trig.shard as usize, victim);
    assert!(trig.err, "trigger spans mark the fault");

    // --- Serializations. ---
    let js = qdump.to_json();
    assert!(js.contains("\"cause\"") && js.contains("shard_quarantine"));
    assert!(js.contains("\"spans\"") && js.contains("\"flightrec\""));
    let tr = qdump.to_chrome_trace();
    assert!(tr.starts_with("{\"traceEvents\":["));
    assert!(tr.contains("\"ph\":\"X\"") && tr.contains("\"ph\":\"i\""));

    // --- Stamp/epoch/shard consistency against recovery. ---
    drop(jfs);
    let _ = Arc::into_inner(checker).expect("sole owner").finish();
    disk.crash(|_| false);
    let rec = recover_sharded(&disk, &cfg);
    assert_eq!(
        rec.quarantined_shards(),
        vec![victim],
        "recovery disagrees with the dump about the quarantined shard"
    );
    assert_eq!(rec.lost_windows, windows, "recovery windows != runtime windows");
    let replayed: HashSet<u64> = rec.ops.iter().map(|(s, _)| *s).collect();
    let in_window =
        |st: u64| rec.lost_windows.iter().any(|&(lo, hi)| (lo..hi).contains(&st));
    let horizon = replayed
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(rec.lost_windows.iter().map(|&(_, hi)| hi).max().unwrap_or(0));
    // Every stamp the dump attributed to an append is accounted for: it
    // was durably replayed, licensed as lost by a quarantine window, or
    // staged after the last commit the crash preserved.
    for s in &staged {
        assert!(
            replayed.contains(&s.stamp) || in_window(s.stamp) || s.stamp > horizon,
            "dumped stamp {} (shard {}) is neither replayed, lost-windowed, nor tail",
            s.stamp,
            s.shard
        );
    }
    // And the in-process recovery loss fired its own trigger.
    if rec.lost_ops > 0 {
        let post = atomfs_obs::dump::drain();
        assert!(
            post.iter()
                .any(|d| matches!(d.cause, TriggerCause::RecoveryLoss { .. })),
            "recovery with lost ops produced no black-box dump"
        );
    }
}
