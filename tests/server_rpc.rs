//! End-to-end RPC tests: a real AtomFS served over loopback TCP, driven
//! by the pipelined client. Covers the protocol surface (every op, error
//! mapping, descriptor sessions), pipelining (batched submission with
//! out-of-order completion), the HTTP scrape path sharing the RPC
//! listener, and the connection-poisoning response to malformed frames.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_obs::Registry;
use atomfs_server::{
    serve, wire, RemoteFs, Request, Response, RpcClient, ServerConfig, FLAG_CREATE, FLAG_READ,
    FLAG_WRITE,
};
use atomfs_vfs::{FileSystem, FileType, FsError};

fn start(registry: Option<Arc<Registry>>) -> (atomfs_server::Server<AtomFs>, std::net::SocketAddr) {
    let fs = Arc::new(AtomFs::new());
    let srv = serve(fs, registry, ServerConfig::default()).expect("bind loopback");
    let addr = srv.local_addr();
    (srv, addr)
}

#[test]
fn every_operation_roundtrips_with_posix_errors() {
    let (srv, addr) = start(None);
    let client = Arc::new(RpcClient::connect(addr).unwrap());
    let fs = RemoteFs::new(Arc::clone(&client));

    fs.mkdir("/d").unwrap();
    fs.mknod("/d/f").unwrap();
    assert_eq!(fs.write("/d/f", 0, b"hello remote").unwrap(), 12);
    let mut buf = [0u8; 32];
    assert_eq!(fs.read("/d/f", 6, &mut buf).unwrap(), 6);
    assert_eq!(&buf[..6], b"remote");
    let meta = fs.stat("/d/f").unwrap();
    assert_eq!(meta.ftype, FileType::File);
    assert_eq!(meta.size, 12);
    assert_eq!(fs.readdir("/d").unwrap(), vec!["f".to_string()]);
    fs.rename("/d/f", "/d/g").unwrap();
    fs.truncate("/d/g", 5).unwrap();
    assert_eq!(fs.stat("/d/g").unwrap().size, 5);
    fs.sync().unwrap();

    // POSIX error mapping crosses the wire intact.
    assert_eq!(fs.stat("/nope"), Err(FsError::NotFound));
    assert_eq!(fs.mkdir("/d"), Err(FsError::Exists));
    assert_eq!(fs.rmdir("/d"), Err(FsError::NotEmpty));
    assert_eq!(fs.unlink("/d"), Err(FsError::IsDir));
    fs.unlink("/d/g").unwrap();
    fs.rmdir("/d").unwrap();

    // Descriptor session in the server-side, per-connection FD table.
    let fd = client.open("/h", FLAG_READ | FLAG_WRITE | FLAG_CREATE).unwrap();
    assert_eq!(client.pwrite(fd, 0, b"fd-data").unwrap(), 7);
    assert_eq!(client.pread(fd, 3, 4).unwrap(), b"data");
    client.close_fd(fd).unwrap();
    assert_eq!(client.close_fd(fd), Err(FsError::BadFd));

    let stats = srv.shutdown();
    assert!(stats.requests >= 20);
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.worker_panics, 0);
}

#[test]
fn pipelined_batch_completes_out_of_order_by_tag() {
    let (srv, addr) = start(None);
    let client = Arc::new(RpcClient::connect(addr).unwrap());
    let fs = RemoteFs::new(Arc::clone(&client));
    fs.mkdir("/p").unwrap();
    for i in 0..8 {
        fs.mknod(&format!("/p/f{i}")).unwrap();
        fs.write(&format!("/p/f{i}"), 0, &[i as u8; 16]).unwrap();
    }

    // One write() syscall carries 64 requests; responses may interleave
    // across executor workers but must match their tags.
    let reqs: Vec<Request> = (0..64)
        .map(|i| Request::Stat {
            path: format!("/p/f{}", i % 8),
        })
        .collect();
    let pendings = client.submit_batch(&reqs).unwrap();
    for (i, p) in pendings.into_iter().enumerate() {
        match p.wait().unwrap() {
            Response::Stat(m) => assert_eq!(m.size, 16, "stat {i} wrong file"),
            other => panic!("stat {i} got {other:?}"),
        }
    }

    // Mixed batch: each response kind must land on the right waiter.
    let mixed = vec![
        Request::Read {
            path: "/p/f0".into(),
            offset: 0,
            len: 16,
        },
        Request::Stat {
            path: "/p/f1".into(),
        },
        Request::Readdir { path: "/p".into() },
        Request::Stat {
            path: "/p/missing".into(),
        },
    ];
    let mut got = client
        .submit_batch(&mixed)
        .unwrap()
        .into_iter()
        .map(|p| p.wait().unwrap());
    assert_eq!(got.next().unwrap(), Response::Data(vec![0u8; 16]));
    assert!(matches!(got.next().unwrap(), Response::Stat(_)));
    assert!(matches!(got.next().unwrap(), Response::Names(n) if n.len() == 8));
    assert_eq!(got.next().unwrap(), Response::Err(FsError::NotFound));

    // Reply coalescing, forced deterministically rather than hoping the
    // scheduler overlaps workers: a raw connection submits 64 max-size
    // reads (16 MiB of replies — more than any autotuned loopback
    // socket can buffer) and does not consume them. The single flusher
    // wedges in `write_all` against the full socket while the remaining
    // workers finish and stack replies in the outbox; once we drain,
    // those queued replies must leave in multi-frame gathers.
    let big = vec![7u8; atomfs_server::MAX_IO_LEN];
    fs.mknod("/p/big").unwrap();
    assert_eq!(fs.write("/p/big", 0, &big).unwrap(), big.len());

    let before = srv.stats();
    let mut raw = TcpStream::connect(addr).unwrap();
    let mut out = Vec::new();
    for tag in 0..64u64 {
        wire::encode_request_frame(
            &mut out,
            tag,
            &wire::ReqView::Read {
                path: "/p/big",
                offset: 0,
                len: big.len() as u32,
            },
        );
    }
    raw.write_all(&out).unwrap();

    // Wait until every request is admitted, then give the workers time
    // to pile replies up behind the blocked flusher.
    for _ in 0..1000 {
        if srv.stats().requests - before.requests >= 64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    std::thread::sleep(std::time::Duration::from_millis(100));

    let mut seen = [false; 64];
    for _ in 0..64 {
        let mut hdr = [0u8; wire::HDR_LEN];
        raw.read_exact(&mut hdr).unwrap();
        let (_, total) = wire::frame_size_hint(&hdr, wire::RSP_MAGIC).expect("response header");
        let mut frame = vec![0u8; total];
        frame[..wire::HDR_LEN].copy_from_slice(&hdr);
        raw.read_exact(&mut frame[wire::HDR_LEN..]).unwrap();
        let (tag, rsp, _) = wire::decode_response_frame(&frame).expect("response frame");
        assert!(!seen[tag as usize], "duplicate reply for tag {tag}");
        seen[tag as usize] = true;
        match rsp {
            Response::Data(d) => assert_eq!(d.len(), big.len()),
            other => panic!("read reply was {other:?}"),
        }
    }

    // The flusher bumps its counters after `write_all` returns, which
    // can trail our last read by an instant — poll for the final tally.
    let (mut replies, mut batches) = (0, 0);
    for _ in 0..200 {
        let after = srv.stats();
        replies = after.replies_flushed - before.replies_flushed;
        batches = after.flush_batches - before.flush_batches;
        if replies >= 64 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(replies >= 64, "only {replies} replies flushed");
    assert!(
        batches < replies,
        "pipelined replies must coalesce: {batches} batches for {replies} replies"
    );
    srv.shutdown();
}

#[test]
fn http_scrapes_share_the_rpc_listener() {
    let registry = Arc::new(Registry::new());
    let (srv, addr) = start(Some(Arc::clone(&registry)));

    // Generate some RPC traffic first so the counters are non-zero.
    let client = Arc::new(RpcClient::connect(addr).unwrap());
    let fs = RemoteFs::new(client);
    fs.mkdir("/m").unwrap();
    fs.stat("/m").unwrap();

    let get = |target: &str| -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(
            format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes(),
        )
        .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    };

    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
    assert!(metrics.contains("rpc_requests_total"), "{metrics}");
    assert!(metrics.contains("rpc_conns_open"));

    let spans = get("/spans");
    assert!(spans.starts_with("HTTP/1.1 200 OK"));
    assert!(spans.contains("application/json"));

    let missing = get("/bogus");
    assert!(missing.starts_with("HTTP/1.1 404"));

    let stats = srv.shutdown();
    assert_eq!(stats.http_requests, 3);
}

/// Read one HTTP response off a kept-alive connection, framed by its
/// `Content-Length` (which the server must always send).
fn read_response(s: &mut TcpStream) -> String {
    let mut head = Vec::new();
    let mut b = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        s.read_exact(&mut b).expect("response head");
        head.push(b[0]);
    }
    let head = String::from_utf8_lossy(&head).to_string();
    let len: usize = head
        .lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            if k.eq_ignore_ascii_case("content-length") {
                v.trim().parse().ok()
            } else {
                None
            }
        })
        .expect("every response carries Content-Length");
    let mut body = vec![0u8; len];
    s.read_exact(&mut body).expect("response body");
    head + &String::from_utf8_lossy(&body)
}

#[test]
fn http_keep_alive_serves_sequential_gets_on_one_connection() {
    let registry = Arc::new(Registry::new());
    let (srv, addr) = start(Some(Arc::clone(&registry)));
    let client = Arc::new(RpcClient::connect(addr).unwrap());
    let fs = RemoteFs::new(client);
    fs.mkdir("/k").unwrap();

    let mut s = TcpStream::connect(addr).unwrap();
    // Several sequential scrapes ride one connection, each framed by
    // Content-Length and answered with keep-alive.
    for i in 0..3 {
        s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let resp = read_response(&mut s);
        assert!(resp.starts_with("HTTP/1.1 200 OK"), "round {i}: {resp}");
        assert!(resp.contains("Connection: keep-alive"), "round {i}");
        assert!(resp.contains("rpc_requests_total"), "round {i}");
    }
    // Errors don't kill the connection either.
    s.write_all(b"GET /bogus HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    assert!(read_response(&mut s).starts_with("HTTP/1.1 404"));
    // /check without an attached pump reports so, and keeps the
    // connection usable.
    s.write_all(b"GET /check HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
    let check = read_response(&mut s);
    assert!(check.starts_with("HTTP/1.1 404"), "{check}");
    assert!(check.contains("no checker attached"));
    // An explicit Connection: close is honored — the server answers,
    // then shuts the socket down.
    s.write_all(b"GET /spans HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut rest = String::new();
    s.read_to_string(&mut rest).unwrap();
    assert!(rest.starts_with("HTTP/1.1 200 OK"), "{rest}");
    assert!(rest.contains("Connection: close"));

    let stats = srv.shutdown();
    assert_eq!(stats.http_requests, 6, "one count per GET, not per connection");
}

#[test]
fn malformed_frame_poisons_its_connection_only() {
    let (srv, addr) = start(None);

    // A client that speaks garbage: correct magic sniff fails, so the
    // reader treats it as RPC and the frame check kills the connection.
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.write_all(b"NOPE this is not a frame at all.........")
        .unwrap();
    let mut end = Vec::new();
    let _ = bad.read_to_end(&mut end); // server closes on us
    assert!(end.is_empty());

    // A well-behaved client on a fresh connection is unaffected.
    let client = Arc::new(RpcClient::connect(addr).unwrap());
    let fs = RemoteFs::new(client);
    fs.mkdir("/ok").unwrap();
    assert!(fs.stat("/ok").is_ok());

    let stats = srv.shutdown();
    assert!(stats.malformed >= 1);
    assert_eq!(stats.worker_panics, 0);
}

#[test]
fn disconnect_closes_every_descriptor_in_the_fd_table() {
    let (srv, addr) = start(None);
    let setup = Arc::new(RpcClient::connect(addr).unwrap());
    RemoteFs::new(Arc::clone(&setup)).mknod("/shared").unwrap();

    // Open several descriptors, then vanish without closing them.
    let doomed = Arc::new(RpcClient::connect(addr).unwrap());
    let mut fds = Vec::new();
    for _ in 0..5 {
        fds.push(doomed.open("/shared", FLAG_READ | FLAG_WRITE).unwrap());
    }
    doomed.abort();

    // The teardown is asynchronous; wait for the connection count to
    // drop rather than sleeping a fixed amount.
    for _ in 0..200 {
        if srv.stats().fds_closed_on_teardown >= 5 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let stats = srv.shutdown();
    assert!(
        stats.fds_closed_on_teardown >= 5,
        "teardown closed {} of 5 leaked descriptors",
        stats.fds_closed_on_teardown
    );
}
