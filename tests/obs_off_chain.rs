//! The `obs-off` feature chain, end to end: this file compiles and runs
//! under BOTH configurations. With observability on, driving the full
//! stack records spans into the flight recorder and triggers retain
//! black-box dumps; with `obs-off` forwarded down the crate chain
//! (root → journal/vfs/crlh → obs), the same code paths must compile to
//! nothing — zero-sized spans, an empty recorder, dumps that retain
//! nothing — so the storage engine carries no tracing cost at all.

use std::sync::Arc;

use atomfs_journal::{BlockDevice, Disk, JournaledFs, ShardConfig};
use atomfs_obs::{dump, flightrec, span, Span, SpanKind, TriggerCause};
use atomfs_vfs::FileSystem;

const OFF: bool = cfg!(feature = "obs-off");

#[test]
fn span_type_is_zero_sized_when_stripped() {
    if OFF {
        assert_eq!(std::mem::size_of::<Span>(), 0, "obs-off Span must be a ZST");
        assert_eq!(span::sampling(), 0, "obs-off reports sampling disabled");
        assert_eq!(flightrec::RING_COUNT, 0, "obs-off keeps no rings");
        assert_eq!(dump::MAX_RETAINED, 0, "obs-off retains no dumps");
    } else {
        assert!(std::mem::size_of::<Span>() > 0);
        assert!(span::sampling() >= 1);
        assert!(flightrec::RING_COUNT > 0);
    }
}

#[test]
fn spans_record_iff_obs_is_on() {
    let before = flightrec::recorded_total();
    {
        let mut root = Span::root(SpanKind::Op, "probe");
        root.set_shard(3);
        let mut child = Span::child(SpanKind::Lock, "probe_child");
        child.retry();
        drop(child);
        drop(root);
    }
    let delta = flightrec::recorded_total() - before;
    if OFF {
        assert_eq!(delta, 0, "obs-off recorded a span");
        assert!(flightrec::freeze().is_empty());
        assert_eq!(span::render_spans_json(), "[]");
    } else {
        assert!(delta >= 2, "root + child should both record, got {delta}");
        // Both ends of the parent link survived into the rings.
        let frozen = flightrec::freeze();
        let root = frozen
            .iter()
            .find(|s| s.label == "probe")
            .expect("root span not in rings");
        assert_eq!(root.shard, 3);
        let child = frozen
            .iter()
            .find(|s| s.label == "probe_child")
            .expect("child span not in rings");
        assert_eq!(child.parent, root.id);
        assert_eq!(child.retries, 1);
    }
}

#[test]
fn dumps_retain_iff_obs_is_on() {
    let bb = dump::trigger(
        TriggerCause::Manual {
            detail: "chain probe".into(),
        },
        Some("{\"health\":\"Ok\"}".into()),
    );
    if OFF {
        assert!(bb.spans.is_empty() && bb.active.is_empty());
        assert!(dump::latest().is_none(), "obs-off retained a dump");
        assert_eq!(dump::triggered_total(), 0);
    } else {
        assert!(dump::latest().is_some(), "trigger retained nothing");
        assert!(dump::triggered_total() >= 1);
        assert_eq!(bb.health.as_deref(), Some("{\"health\":\"Ok\"}"));
        // Serializations stay well-formed either way.
        assert!(bb.to_json().starts_with('{'));
        assert!(bb.to_chrome_trace().starts_with("{\"traceEvents\":["));
    }
}

/// The full stack compiles and runs identically under both builds; only
/// the recorder's contents differ. `journal_sync` uses an always-on root
/// span, so with obs on one sync is guaranteed to record regardless of
/// op sampling — and with obs off the very same call records nothing.
#[test]
fn full_stack_sync_records_iff_obs_is_on() {
    let disk = Arc::new(Disk::new());
    let jfs = JournaledFs::create_sharded(
        Arc::clone(&disk) as Arc<dyn BlockDevice>,
        ShardConfig::default(),
    );
    let before = flightrec::recorded_total();
    jfs.mknod("/chain-probe").unwrap();
    jfs.write("/chain-probe", 0, b"x").unwrap();
    jfs.sync().unwrap();
    let delta = flightrec::recorded_total() - before;
    if OFF {
        assert_eq!(delta, 0, "obs-off stack recorded {delta} spans");
    } else {
        assert!(delta >= 1, "a sync should always record its root span");
        assert!(
            flightrec::freeze().iter().any(|s| s.label == "journal_sync"),
            "journal_sync span missing from the rings"
        );
    }
}
