//! Figure 8 — violating the non-bypassable criterion.
//!
//! The paper's Figure 8 shows why lock coupling matters: if a `del` can
//! bypass an in-flight `ins` that a rename already helped, the concrete
//! execution diverges from the abstract linearization and the file system
//! is no longer linearizable. These tests stage that exact interleaving
//! on `BypassFs` (AtomFS with coupling removed) and demonstrate that
//!
//! 1. the corruption is *real* — a use-after-free of a recycled inode
//!    makes a file appear in a directory that was never named, and the
//!    resulting history is rejected by the generic WGL checker;
//! 2. the CRL-H checker *detects* it, flagging the bypass through the
//!    non-bypassable invariants (Table 1) and the abstraction relation;
//! 3. AtomFS's lock coupling makes the same schedule unschedulable — the
//!    bypasser physically blocks.

use std::sync::Arc;

use atomfs_baselines::BypassFs;
use atomfs_trace::{set_current_tid, BufferSink, Tid, TraceSink};
use atomfs_vfs::{FileSystem, FsError};
use crlh::history::History;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence, ViolationKind};
use parking_lot::{Condvar, Mutex};

/// A simple one-shot parking spot for the bypass-window hook.
struct Park {
    parked: Mutex<bool>,
    open: Mutex<bool>,
    cv: Condvar,
}

impl Park {
    fn new() -> Self {
        Park {
            parked: Mutex::new(false),
            open: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    fn enter(&self) {
        *self.parked.lock() = true;
        self.cv.notify_all();
        let mut open = self.open.lock();
        while !*open {
            self.cv.wait(&mut open);
        }
    }

    fn wait_parked(&self) {
        let mut parked = self.parked.lock();
        while !*parked {
            self.cv.wait(&mut parked);
        }
    }

    fn release(&self) {
        *self.open.lock() = true;
        self.cv.notify_all();
    }
}

/// Stage Figure 8 on BypassFs. Returns the recorded trace.
fn stage_figure_8() -> (Vec<atomfs_trace::Event>, FsError, bool) {
    let sink = Arc::new(BufferSink::new());
    let fs = Arc::new(BypassFs::traced(sink.clone() as Arc<dyn TraceSink>));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mkdir("/a/b/c").unwrap();
    let c_ino = fs.stat("/a/b/c").unwrap().ino;

    // t2's walk parks in the bypass window, just before locking /a/b/c —
    // holding NO locks (the defining difference from lock coupling).
    let park = Arc::new(Park::new());
    let p2 = Arc::clone(&park);
    fs.set_walk_hook(Arc::new(move |tid, ino| {
        if tid == Tid(801) && ino == c_ino {
            p2.enter();
        }
    }));
    let fs2 = Arc::clone(&fs);
    let ins = std::thread::spawn(move || {
        set_current_tid(Tid(801));
        fs2.mknod("/a/b/c/d")
    });
    park.wait_parked();

    // t1 completes a rename that breaks t2's path, then bypasses t2:
    // deletes /i/b/c (possible — t2 holds nothing!) and recycles its
    // inode as /z.
    set_current_tid(Tid(802));
    fs.rename("/a", "/i").unwrap();
    fs.rmdir("/i/b/c").unwrap();
    fs.mkdir("/z").unwrap();
    let z_ino = fs.stat("/z").unwrap().ino;
    assert_eq!(z_ino, c_ino, "the free list recycles c's inode as /z");

    park.release();
    let ins_result = ins.join().unwrap();

    // The observable catastrophe: if the ins "succeeded", the new entry
    // landed inside /z — a directory its path never named.
    let corrupted = fs.stat("/z/d").is_ok();
    let err = ins_result.err().unwrap_or(FsError::Unsupported);
    (
        sink.take(),
        if ins_result.is_ok() {
            FsError::Unsupported
        } else {
            err
        },
        corrupted,
    )
}

#[test]
fn figure_8_bypass_corrupts_and_is_detected() {
    let (events, _err, corrupted) = stage_figure_8();
    assert!(
        corrupted,
        "the use-after-free must plant /d inside the recycled /z"
    );
    // The CRL-H checker flags the execution.
    let report = LpChecker::check(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        },
        &events,
    );
    assert!(!report.is_ok(), "the checker must reject the bypass");
    assert!(
        !report
            .of_kind(ViolationKind::UnhelpedNonBypassable)
            .is_empty(),
        "the rmdir locked an inode in the helped ins's FutLockPath: {:?}",
        report.violations.iter().map(|v| v.kind).collect::<Vec<_>>()
    );
    // And the history itself is non-linearizable: mknod(/a/b/c/d)
    // "succeeded" while /z/d is where the entry went.
    let wgl = crlh::wgl::check_linearizable(&History::from_trace(&events));
    assert!(
        wgl.is_err(),
        "no sequential history explains the observed results"
    );
}

#[test]
fn atomfs_cannot_be_bypassed() {
    // The same schedule on real AtomFS: while the mkdir is parked inside
    // its critical section it HOLDS /a/b/c's parent chain lock, so the
    // rmdir physically blocks until the mkdir finishes — the
    // non-bypassable criterion in action.
    use atomfs::AtomFs;
    use atomfs_trace::{Event, GateSink};

    let sink = Arc::new(GateSink::new(BufferSink::new()));
    // Pessimistic config: the non-bypassable criterion is a property of
    // the lock-coupled walk, and the parked mknod must be *helped* by the
    // rename rather than linearized early at an optimistic claim.
    let fs = Arc::new(AtomFs::traced_with_config(
        sink.clone() as Arc<dyn TraceSink>,
        atomfs::AtomFsConfig {
            optimistic: false,
            ..atomfs::AtomFsConfig::default()
        },
    ));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mkdir("/a/b/c").unwrap();

    let gate = sink.add_gate(|e| matches!(e, Event::Mutate { tid, .. } if *tid == Tid(811)));
    let fs2 = Arc::clone(&fs);
    let ins = std::thread::spawn(move || {
        set_current_tid(Tid(811));
        fs2.mknod("/a/b/c/d")
    });
    sink.wait_parked(gate);

    set_current_tid(Tid(812));
    fs.rename("/a", "/i").unwrap();
    // The would-be bypasser blocks on /i/b/c's lock, so run it in a
    // thread and verify it has not completed while the mkdir is parked.
    let fs3 = Arc::clone(&fs);
    let del = std::thread::spawn(move || {
        set_current_tid(Tid(813));
        fs3.rmdir("/i/b/c")
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    assert!(!del.is_finished(), "lock coupling must block the bypasser");

    sink.open(gate);
    assert_eq!(ins.join().unwrap(), Ok(()));
    // Now the delete proceeds — and correctly fails: the directory is no
    // longer empty (it contains the helped mkdir's /d).
    assert_eq!(del.join().unwrap(), Err(FsError::NotEmpty));

    let report = LpChecker::check(CheckerConfig::default(), &sink.inner().take());
    report.assert_ok();
    assert!(report.stats.helps >= 1);
}
