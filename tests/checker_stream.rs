//! Differential pin for streaming CRL-H checking: the verdict a
//! [`StreamChecker`] reaches by consuming the watermark-stable prefix
//! *while the run is still executing* must be identical — violations,
//! final abstract state, op counts — to the offline verdict of
//! `LpChecker::check_stamped` over the quiescent `take_stamped` merge
//! of the very same run. That equivalence is what licenses serving the
//! streaming verdict as "the" correctness signal on a live server.
//!
//! Covered here:
//! * seeded mixed storms (8 threads, contended tree) — clean runs;
//! * a degraded sharded-journal run (one dead device, quarantined
//!   shard) — refusals and all, streamed and offline agree;
//! * an injected protocol violation — caught online, same criterion
//!   tag as offline, with the `/check` endpoint flipping to FAIL, the
//!   violation gauge going non-zero, and a black box retaining the
//!   offending stamped window;
//! * bounded retention: mid-storm, the streaming checker's window
//!   census stays proportional to in-flight work, not trace length.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use atomfs::AtomFs;
use atomfs_journal::{shard_of, BlockDevice, Disk, FaultPlan, FaultyDisk, JournaledFs, ShardConfig};
use atomfs_obs::Registry;
use atomfs_server::{serve_checked, PumpConfig, RemoteFs, RpcClient, ServerConfig};
use atomfs_trace::{set_current_tid, Event, MicroOp, ShardedSink, Tid, TraceSink};
use atomfs_vfs::{FileSystem, FsError};
use atomfs_workloads::opmix::OpMix;
use crlh::{
    CheckReport, CheckerConfig, HelperMode, LpChecker, RelationCadence, StreamChecker, StreamConfig,
};

fn full_config() -> CheckerConfig {
    CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtUnlock,
        invariants: true,
    }
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        checker: full_config(),
        ..StreamConfig::default()
    }
}

/// Follow `sink` from a dedicated thread until `done` is set *and* the
/// stream drains, then return the streaming verdict. Mirrors the
/// server's `CheckerPump`, but hand-rolled so tests can interleave
/// assertions (`max_descriptors` pins bounded retention mid-run).
fn follow_until_done(
    sink: &Arc<ShardedSink>,
    done: &Arc<AtomicBool>,
) -> std::thread::JoinHandle<(CheckReport, usize)> {
    let sink = Arc::clone(sink);
    let done = Arc::clone(done);
    std::thread::spawn(move || {
        let mut cursor = sink.follow();
        let mut checker = StreamChecker::new(stream_config());
        let mut max_descriptors = 0usize;
        loop {
            let quiescent = done.load(Ordering::Acquire);
            let batch = cursor.poll();
            if !batch.is_empty() {
                let stats = cursor.stats();
                checker.ingest(&batch, stats);
                max_descriptors = max_descriptors.max(checker.status().retained.descriptors);
            } else if quiescent {
                // One last poll already ran after `done`: drained.
                break;
            } else {
                std::thread::sleep(Duration::from_micros(100));
            }
        }
        assert!(
            cursor.finish().is_empty(),
            "quiescent poll must have drained everything"
        );
        (checker.finish(), max_descriptors)
    })
}

fn assert_same_verdict(streaming: &CheckReport, offline: &CheckReport, ctx: &str) {
    assert_eq!(
        streaming.violations.len(),
        offline.violations.len(),
        "{ctx}: violation counts differ\nstreaming: {:?}\noffline: {:?}",
        streaming.violations,
        offline.violations
    );
    for (s, o) in streaming.violations.iter().zip(&offline.violations) {
        assert_eq!(s.kind, o.kind, "{ctx}: criterion tags differ");
        assert_eq!(s.at, o.at, "{ctx}: violation positions differ");
    }
    assert_eq!(streaming.final_afs, offline.final_afs, "{ctx}: final abstract state differs");
    assert_eq!(
        streaming.stats.ops_completed, offline.stats.ops_completed,
        "{ctx}: completed-op counts differ"
    );
    assert_eq!(streaming.stats.lps, offline.stats.lps, "{ctx}: LP counts differ");
    assert_eq!(streaming.stats.helps, offline.stats.helps, "{ctx}: help counts differ");
}

#[test]
fn streaming_verdict_equals_offline_on_seeded_mixed_storms() {
    for seed in 0..3u64 {
        let sink = Arc::new(ShardedSink::new());
        let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
        let mix = OpMix::default();
        mix.setup(&*fs);
        let done = Arc::new(AtomicBool::new(false));
        let follower = follow_until_done(&sink, &done);

        let threads = 8u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                set_current_tid(Tid(9000 + seed as u32 * 100 + t));
                mix.run(&*fs, seed * 31 + u64::from(t), 80);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(fs);
        done.store(true, Ordering::Release);
        let (streaming, max_descriptors) = follower.join().unwrap();

        // Bounded retention: never more open descriptors than threads.
        assert!(
            max_descriptors <= threads as usize,
            "seed {seed}: {max_descriptors} descriptors retained for {threads} threads"
        );

        let stamped = sink.take_stamped();
        assert!(!stamped.is_empty());
        let offline = LpChecker::check_stamped(full_config(), &stamped);
        offline.assert_ok();
        assert_same_verdict(&streaming, &offline, &format!("seed {seed}"));
    }
}

#[test]
fn incremental_checking_matches_forced_full_scans() {
    // Clean storms: the dirty-set incremental relation/invariant paths
    // must reach the exact verdict (and check counts) of the whole-state
    // scans over the same trace.
    for seed in 0..3u64 {
        let sink = Arc::new(ShardedSink::new());
        let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
        let mix = OpMix::default();
        mix.setup(&*fs);
        let threads = 6u32;
        let mut handles = Vec::new();
        for t in 0..threads {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                set_current_tid(Tid(7000 + seed as u32 * 100 + t));
                mix.run(&*fs, seed * 17 + u64::from(t), 60);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        drop(fs);
        let stamped = sink.take_stamped();
        assert!(!stamped.is_empty());
        let incr = LpChecker::check_stamped(full_config(), &stamped);
        let mut full = LpChecker::new(full_config()).with_full_scans();
        full.feed_all_stamped(&stamped);
        let full = full.finish();
        incr.assert_ok();
        assert_same_verdict(&incr, &full, &format!("incr-vs-full seed {seed}"));
        assert_eq!(
            incr.stats.relation_checks, full.stats.relation_checks,
            "seed {seed}: the incremental path must run at the same cadence"
        );
    }

    // A broken trace: first detection and every later verdict must be
    // identical message for message (after the first violation the
    // incremental checker falls back to the exact scans).
    let sink = Arc::new(ShardedSink::new());
    let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
    fs.mkdir("/a").unwrap();
    sink.emit(Event::Mutate {
        tid: Tid(6060),
        mop: MicroOp::Ins {
            parent: 1,
            name: "ghost".to_string(),
            child: 4242,
        },
    });
    fs.mkdir("/b").unwrap();
    drop(fs);
    let stamped = sink.take_stamped();
    let incr = LpChecker::check_stamped(full_config(), &stamped);
    let mut full = LpChecker::new(full_config()).with_full_scans();
    full.feed_all_stamped(&stamped);
    let full = full.finish();
    assert!(!incr.is_ok());
    assert_eq!(
        incr.violations.len(),
        full.violations.len(),
        "incr: {:?}\nfull: {:?}",
        incr.violations,
        full.violations
    );
    for (a, b) in incr.violations.iter().zip(&full.violations) {
        assert_eq!(a.kind, b.kind);
        assert_eq!(a.at, b.at);
        assert_eq!(a.message, b.message, "messages must match verbatim");
    }
}

#[test]
fn degraded_quarantine_run_streams_to_the_same_verdict() {
    let seed = 1u64;
    let cfg = ShardConfig::default();
    let shards = cfg.shard_count();
    let victim = (shard_of(atomfs_trace::ROOT_INUM, shards) + 1) % shards;
    let disk = Arc::new(Disk::new());
    let devices: Vec<Arc<dyn BlockDevice>> = (0..shards)
        .map(|s| {
            if s == victim {
                Arc::new(FaultyDisk::new(
                    Arc::clone(&disk),
                    FaultPlan::none(seed).with_permanent_failure_after(3 + seed),
                )) as Arc<dyn BlockDevice>
            } else {
                Arc::clone(&disk) as Arc<dyn BlockDevice>
            }
        })
        .collect();
    let sink = Arc::new(ShardedSink::new());
    let done = Arc::new(AtomicBool::new(false));
    let follower = follow_until_done(&sink, &done);
    let jfs = JournaledFs::create_sharded_observed_with_devices(
        devices,
        cfg,
        Arc::clone(&sink) as Arc<dyn TraceSink>,
    );

    let mut refused = 0usize;
    for i in 0..300usize {
        let f = format!("/f{i}");
        match jfs
            .mknod(&f)
            .and_then(|()| jfs.write(&f, 0, &[i as u8; 16]).map(|_| ()))
        {
            Err(FsError::ReadOnly) => refused += 1,
            Err(e) => panic!("unexpected error {e:?} at op {i}"),
            Ok(()) => {}
        }
        if i % 5 == 4 {
            let _ = jfs.sync(); // loss reported at least once; irrelevant here
        }
    }
    assert!(refused > 0, "the dead shard never refused a write");
    assert_eq!(
        jfs.sharded_sink().expect("sharded mount").quarantined_shards(),
        vec![victim]
    );
    drop(jfs);
    done.store(true, Ordering::Release);
    let (streaming, _) = follower.join().unwrap();

    // The gated, degraded history checks clean online — and identically
    // to the offline replay of the same observed trace.
    let stamped = sink.take_stamped();
    let offline = LpChecker::check_stamped(full_config(), &stamped);
    offline.assert_ok();
    assert_same_verdict(&streaming, &offline, "degraded run");
}

#[test]
fn injected_violation_is_caught_online_with_the_offline_criterion_tag() {
    let sink = Arc::new(ShardedSink::new());
    let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    // A raw mutation outside any operation or lock, emitted straight
    // into the sink as if a rogue writer bypassed the protocol.
    sink.emit(Event::Mutate {
        tid: Tid(4040),
        mop: MicroOp::Ins {
            parent: 1,
            name: "ghost".to_string(),
            child: 7777,
        },
    });
    fs.mkdir("/c").unwrap();
    drop(fs);

    // Stream it (single quiescent poll is still the streaming path:
    // chunked feed through the same incremental machinery).
    let mut cursor = sink.follow();
    let mut checker = StreamChecker::new(stream_config());
    let batch = cursor.poll();
    let stats = cursor.stats();
    checker.ingest(&batch, stats);
    assert!(!checker.status().ok, "injected breach must flag online");
    let dump = checker.violation_dump().expect("first violation freezes a black box");
    assert!(matches!(
        &dump.cause,
        atomfs_obs::TriggerCause::StreamViolation { .. }
    ));
    let health = dump.health.as_deref().expect("dump carries the window");
    assert!(health.contains("\"window\""), "{health}");
    assert!(health.contains("ghost"), "window must hold the offending event: {health}");
    let streaming = checker.finish();

    let offline = LpChecker::check_stamped(full_config(), &sink.take_stamped());
    assert!(!offline.is_ok());
    assert_eq!(
        streaming.violations.first().map(|v| v.kind),
        offline.violations.first().map(|v| v.kind),
        "online and offline must flag the same criterion"
    );
    assert_same_verdict(&streaming, &offline, "injected violation");
}

/// One `Connection: close` GET against the server's HTTP path.
fn http_get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(format!("GET {target} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").as_bytes())
        .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).unwrap();
    out
}

#[test]
fn served_fs_exposes_live_verdict_and_flips_check_to_fail() {
    let sink = Arc::new(ShardedSink::new());
    let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
    let registry = Arc::new(Registry::new());
    let srv = serve_checked(
        fs,
        Some(Arc::clone(&registry)),
        ServerConfig::default(),
        &sink,
        PumpConfig::default(),
    )
    .expect("bind");
    let addr = srv.local_addr();
    let pump = srv.checker().expect("pump attached");

    let client = Arc::new(RpcClient::connect(addr).unwrap());
    let rfs = RemoteFs::new(client);
    for i in 0..20 {
        rfs.mkdir(&format!("/d{i}")).unwrap();
    }
    // The pump consumes the sink live; wait until it has seen events.
    let deadline = Instant::now() + Duration::from_secs(10);
    while pump.status().expect("live").events == 0 {
        assert!(Instant::now() < deadline, "pump never ingested");
        std::thread::sleep(Duration::from_millis(2));
    }
    let ok = http_get(addr, "/check");
    assert!(ok.starts_with("HTTP/1.1 200 OK"), "{ok}");
    assert!(ok.contains("\"ok\":true"), "{ok}");
    assert!(ok.contains("\"watermark\""), "{ok}");
    assert!(ok.contains("\"retained\""), "{ok}");

    // Rogue emit into the live sink: the online checker must flag it
    // without any quiescence.
    sink.emit(Event::Mutate {
        tid: Tid(5050),
        mop: MicroOp::Ins {
            parent: 1,
            name: "ghost".to_string(),
            child: 9999,
        },
    });
    while !pump.failed() {
        assert!(Instant::now() < deadline, "pump never flagged the breach");
        std::thread::sleep(Duration::from_millis(2));
    }
    let bad = http_get(addr, "/check");
    assert!(bad.contains("\"ok\":false"), "{bad}");
    assert!(pump.violation_dump().is_some(), "black box retained");

    // The violation gauge on the shared registry went non-zero.
    let prom = registry.render_prometheus();
    let flagged = prom
        .lines()
        .filter(|l| l.starts_with("crlh_stream_violations"))
        .any(|l| l.split_whitespace().last().and_then(|v| v.parse::<f64>().ok()) > Some(0.0));
    assert!(flagged, "no non-zero crlh_stream_violations series:\n{prom}");

    // Shutdown surfaces the failing end-of-run report too.
    let (stats, report) = srv.shutdown_checked();
    assert_eq!(stats.worker_panics, 0);
    let report = report.expect("pump was attached");
    assert!(!report.is_ok(), "end-of-run report must carry the breach");
}
