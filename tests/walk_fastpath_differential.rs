//! Differential validation of the optimistic fast path.
//!
//! The seqlock-validated walk must be an *invisible* optimization: the
//! same operations against the same state return the same results with
//! the fast path on or off. These tests pin that equivalence three ways:
//! sequentially over seeded random scripts, concurrently over a
//! deterministic disjoint-directory storm, and on a fully contended
//! 8-thread rename storm whose optimistic trace must still check clean
//! under the CRL-H checker and linearize under WGL.

use std::sync::Arc;

use atomfs::{AtomFs, AtomFsConfig};
use atomfs_trace::{set_current_tid, BufferSink, Event, Tid, TraceSink};
use atomfs_vfs::FileSystem;
use atomfs_workloads::opmix::OpMix;
use crlh::history::History;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

fn fs_with(optimistic: bool) -> AtomFs {
    AtomFs::with_config(AtomFsConfig {
        optimistic,
        ..AtomFsConfig::default()
    })
}

/// xorshift so the script generator needs no external crate.
fn rng_next(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

/// Run one random op against `fs`, returning a comparable transcript
/// entry. Readdir output is sorted: the fast path reads the lock-free
/// index, whose iteration order may differ from the locked directory's.
fn exec_random(fs: &dyn FileSystem, sel: u64, x: u64) -> String {
    let d = (x % 3) as u8;
    let n = ((x >> 8) % 4) as u8;
    let p = format!("/d{d}/f{n}");
    match sel % 10 {
        0 => format!("mknod {p} {:?}", fs.mknod(&p)),
        1 => format!("mkdir {p} {:?}", fs.mkdir(&p)),
        2 => format!("unlink {p} {:?}", fs.unlink(&p)),
        3 => format!("rmdir {p} {:?}", fs.rmdir(&p)),
        4 => format!(
            "rename {p} {:?}",
            fs.rename(&p, &format!("/d{}/f{}", (x >> 16) % 3, (x >> 24) % 4))
        ),
        5 => format!(
            "stat {p} {:?}",
            fs.stat(&p).map(|m| (m.ftype, m.size))
        ),
        6 => format!(
            "readdir /d{d} {:?}",
            fs.readdir(&format!("/d{d}")).map(|mut v| {
                v.sort();
                v
            })
        ),
        7 => format!("write {p} {:?}", fs.write(&p, x % 16, &[sel as u8; 7])),
        8 => format!("truncate {p} {:?}", fs.truncate(&p, x % 24)),
        _ => {
            let mut buf = [0u8; 12];
            format!(
                "read {p} {:?}",
                fs.read(&p, x % 8, &mut buf).map(|k| buf[..k].to_vec())
            )
        }
    }
}

/// Sequential scripts: op-for-op identical results with the fast path on
/// and off, across many seeds.
#[test]
fn sequential_scripts_agree_between_configs() {
    for seed in 1u64..40 {
        let opt = fs_with(true);
        let pess = fs_with(false);
        for f in [&opt, &pess] {
            for d in 0..3 {
                f.mkdir(&format!("/d{d}")).unwrap();
            }
        }
        let mut s = seed;
        for step in 0..200 {
            let sel = rng_next(&mut s);
            let x = rng_next(&mut s);
            let a = exec_random(&opt, sel, x);
            let b = exec_random(&pess, sel, x);
            assert_eq!(a, b, "seed {seed} diverged at step {step}");
        }
    }
}

/// Deterministic 8-thread storm: each thread owns one directory, so the
/// interleaving cannot affect results — per-thread transcripts and the
/// final tree must be identical between configs.
#[test]
fn disjoint_storm_agrees_between_configs() {
    let transcript = |optimistic: bool| -> (Vec<Vec<String>>, Vec<String>) {
        let fs = Arc::new(fs_with(optimistic));
        for t in 0..8 {
            fs.mkdir(&format!("/d{t}")).unwrap();
        }
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let fs = Arc::clone(&fs);
            handles.push(std::thread::spawn(move || {
                let mut s = 0x9e37_79b9_7f4a_7c15 ^ t;
                let mut log = Vec::new();
                for _ in 0..300 {
                    let sel = rng_next(&mut s);
                    let x = rng_next(&mut s);
                    let n = (x >> 8) % 4;
                    let p = format!("/d{t}/f{n}");
                    log.push(match sel % 6 {
                        0 => format!("mknod {:?}", fs.mknod(&p)),
                        1 => format!("write {:?}", fs.write(&p, x % 16, b"wf")),
                        2 => format!("stat {:?}", fs.stat(&p).map(|m| m.size)),
                        3 => {
                            let mut buf = [0u8; 8];
                            format!("read {:?}", fs.read(&p, 0, &mut buf).map(|k| k))
                        }
                        4 => format!(
                            "readdir {:?}",
                            fs.readdir(&format!("/d{t}")).map(|mut v| {
                                v.sort();
                                v
                            })
                        ),
                        _ => format!("unlink {:?}", fs.unlink(&p)),
                    });
                }
                log
            }));
        }
        let logs: Vec<Vec<String>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let tree = (0..8)
            .map(|t| {
                let mut v = fs.readdir(&format!("/d{t}")).unwrap();
                v.sort();
                format!("{v:?}")
            })
            .collect();
        (logs, tree)
    };
    let (opt_logs, opt_tree) = transcript(true);
    let (pess_logs, pess_tree) = transcript(false);
    assert_eq!(opt_logs, pess_logs);
    assert_eq!(opt_tree, pess_tree);
}

/// Contended 8-thread rename storm with the fast path on: the recorded
/// mixed trace (optimistic claims interleaved with pessimistic
/// lock-coupled walks and renames) must check clean under the full
/// CRL-H admission and linearize under WGL, and the fast path must have
/// actually engaged.
#[test]
fn contended_rename_storm_trace_checks_clean() {
    let sink = Arc::new(BufferSink::new());
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    let mix = OpMix {
        dirs: 2,
        names: 3,
        rename_weight: 10,
    };
    set_current_tid(Tid(7000));
    mix.setup(&*fs);
    let mut handles = Vec::new();
    for t in 0..8u32 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(7001 + t));
            mix.run(&*fs, 977 + u64::from(t), 120);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events = sink.take();
    let claims = events
        .iter()
        .filter(|e| matches!(e, Event::OptValidate { ok: true, .. }))
        .count();
    assert!(claims > 0, "the storm must exercise the fast path");
    let report = LpChecker::check(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::EveryEvent,
            invariants: true,
        },
        &events,
    );
    report.assert_ok();
    // A claim followed by a post-claim abort (OptRetry) is not committed,
    // so the committed count can trail the OptValidate{ok} count.
    assert!(report.stats.opt_claims >= 1);
    assert!(report.stats.opt_claims as usize <= claims);
}

/// A storm small enough for the WGL search: its mixed trace must also
/// admit an explicit linearization witness.
#[test]
fn small_mixed_storm_is_wgl_linearizable() {
    let sink = Arc::new(BufferSink::new());
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    let mix = OpMix {
        dirs: 2,
        names: 2,
        rename_weight: 8,
    };
    set_current_tid(Tid(7100));
    mix.setup(&*fs);
    let mut handles = Vec::new();
    for t in 0..4u32 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(7101 + t));
            mix.run(&*fs, 31 + u64::from(t), 14);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events = sink.take();
    LpChecker::check(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::EveryEvent,
            invariants: true,
        },
        &events,
    )
    .assert_ok();
    crlh::wgl::check_linearizable(&History::from_trace(&events))
        .unwrap_or_else(|e| panic!("WGL rejected the mixed trace: {e}"));
}
