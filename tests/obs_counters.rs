//! Acceptance tests for the observability layer: the numbers the
//! metrics pipeline publishes are the numbers the system actually
//! produced.
//!
//! Two obligations:
//!
//! 1. An 8-thread contended OpMix run, with a journaled mount bridged
//!    into the same registry, renders a Prometheus page that carries
//!    real signal: non-zero lock-wait buckets (contention metrics are
//!    exact, never sampled) and live journal health gauges.
//! 2. The online helped-linearization counter agrees **exactly** with
//!    the offline checker's help count over the same event stream: the
//!    metrics hooks count what the checker derives, nothing more or
//!    less. A rename storm maximizes helping so the count is non-zero.

use std::sync::Arc;

use atomfs::{AtomFs, FsMetrics};
use atomfs_journal::{Disk, JournaledFs};
use atomfs_obs::{ClockSource, Registry};
use atomfs_trace::{set_current_tid, ShardedSink, Tid, TraceSink};
use atomfs_vfs::FileSystem;
use atomfs_workloads::opmix::OpMix;
use crlh::checker::{CheckerConfig, HelperMode, LpChecker, RelationCadence};
use crlh::metrics::CheckerMetrics;
use crlh::OnlineChecker;

fn spawn_mix(fs: Arc<AtomFs>, mix: OpMix, threads: u32, ops: usize, tid_base: u32, seed_base: u64) {
    let mut handles = Vec::new();
    for t in 0..threads {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(tid_base + t));
            mix.run(&*fs, seed_base + u64::from(t), ops);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
}

/// Eight contended threads leave their mark on the exposition page:
/// non-zero lock-wait buckets, per-op latency histograms, and journal
/// health gauges from a bridged mount — all on one registry.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "metrics compiled out")]
fn eight_thread_opmix_renders_contended_locks_and_journal_health() {
    let reg = Registry::new();
    // op_sample = 1: observe every op, so op histograms are exact too.
    // (Contended counts and wait times are exact at any sampling rate.)
    let fs = Arc::new(
        AtomFs::new().with_metrics(FsMetrics::register_sampled(
            &reg,
            ClockSource::monotonic(),
            1,
        )),
    );
    let mix = OpMix::default();
    mix.setup(&*fs);
    // On a single-core host, contention needs a thread to be preempted
    // inside a critical section; keep running rounds (same registry, so
    // counts accumulate) until at least one blocked acquisition shows up.
    let mut rounds = 0;
    while reg.snapshot().counter("atomfs_lock_contended_total") == 0 {
        rounds += 1;
        assert!(
            rounds <= 20,
            "no lock contention observed in {rounds} 8-thread rounds"
        );
        spawn_mix(Arc::clone(&fs), mix, 8, 500, 8000, rounds);
    }

    // A journaled mount bridged into the same registry, with enough
    // traffic to move the gauges.
    let jfs = JournaledFs::create(Arc::new(Disk::new()));
    jfs.register_metrics(&reg);
    for i in 0..4 {
        jfs.mknod(&format!("/j{i}")).unwrap();
    }
    jfs.sync().unwrap();

    let snap = reg.snapshot();
    assert!(snap.counter("atomfs_lock_contended_total") > 0);
    let wait = snap.hist_merged("atomfs_lock_wait_ns");
    assert!(wait.count > 0, "contended acquisitions must record waits");
    assert!(snap.hist_merged("atomfs_op_ns").count > 0);

    let text = reg.render_prometheus();
    // Non-zero lock-wait buckets: the +Inf bucket of a histogram with
    // count > 0 renders its cumulative count, which we already know is
    // positive.
    assert!(text.contains("atomfs_lock_wait_ns_bucket"));
    assert!(text.contains(&format!(
        "atomfs_lock_wait_ns_count{{class=\"{}\"",
        wait_class_with_samples(&snap)
    )));
    assert!(text.contains("# TYPE atomfs_op_ns histogram"));
    // Journal health gauges are present and live.
    assert!(text.contains("journal_log_bytes"));
    assert!(snap.gauge("journal_log_bytes").unwrap() > 0.0);
    assert!(snap.gauge("journal_degraded").is_some());
}

/// The lock class that actually recorded wait samples (root under this
/// mix, but any class satisfies the rendering assertion).
fn wait_class_with_samples(snap: &atomfs_obs::Snapshot) -> String {
    snap.entries
        .iter()
        .find_map(|e| {
            if e.name != "atomfs_lock_wait_ns" {
                return None;
            }
            let atomfs_obs::SnapValue::Hist(h) = &e.value else {
                return None;
            };
            if h.count == 0 {
                return None;
            }
            e.labels.iter().find(|(k, _)| k == "class").map(|(_, v)| v.clone())
        })
        .expect("some lock class recorded waits")
}

/// Helped-linearization agreement, online vs. offline, over one rename
/// storm. The storm is recorded once (sharded, stamped); the offline
/// checker derives how many operations helpers linearized, and the same
/// stamped stream fed through [`OnlineChecker::with_metrics`] must leave
/// exactly that number in the live `crlh_lins_total{kind="helped"}`
/// counter.
#[test]
#[cfg_attr(feature = "obs-off", ignore = "metrics compiled out")]
fn rename_storm_online_helped_counter_matches_offline_checker() {
    let cfg = CheckerConfig {
        mode: HelperMode::Helpers,
        relation: RelationCadence::AtUnlock,
        invariants: true,
    };
    let mix = OpMix {
        dirs: 2,
        names: 3,
        rename_weight: 20,
    };
    // Whether a storm actually helps anyone depends on preemption timing
    // (a rename LP must catch another thread parked mid-walk), so retry
    // with fresh seeds until one does; the online/offline agreement is
    // asserted on every attempt, helped or not.
    let mut saw_help = false;
    for attempt in 0..40u64 {
        let sink = Arc::new(ShardedSink::new());
        // Pessimistic config: helping only happens on the lock-coupled
        // walk, and an aborted optimistic claim would re-linearize,
        // breaking the lins == completed-ops accounting below.
        let fs = Arc::new(AtomFs::traced_with_config(
            sink.clone() as Arc<dyn TraceSink>,
            atomfs::AtomFsConfig {
                optimistic: false,
                ..atomfs::AtomFsConfig::default()
            },
        ));
        mix.setup(&*fs);
        spawn_mix(
            Arc::clone(&fs),
            mix,
            8,
            100,
            8200 + attempt as u32 * 10,
            11 + attempt * 97,
        );
        let stamped = sink.take_stamped();

        let offline = LpChecker::check_stamped(cfg, &stamped);
        offline.assert_ok();

        let reg = Registry::new();
        let online = OnlineChecker::with_metrics(cfg, CheckerMetrics::register(&reg));
        for (_, event) in &stamped {
            online.emit_ref(event);
        }
        online.finish().assert_ok();

        let snap = reg.snapshot();
        let helped = snap
            .entries
            .iter()
            .find_map(|e| {
                if e.name != "crlh_lins_total"
                    || !e.labels.iter().any(|(k, v)| k == "kind" && v == "helped")
                {
                    return None;
                }
                match e.value {
                    atomfs_obs::SnapValue::Counter(v) => Some(v),
                    _ => None,
                }
            })
            .expect("helped-lin counter registered");
        assert_eq!(
            helped, offline.stats.helps,
            "online helped-lin counter must equal the offline checker's help count"
        );
        // Self + helped linearizations account for every completed op.
        assert_eq!(
            snap.counter("crlh_lins_total"),
            offline.stats.ops_completed,
            "every completed op linearizes exactly once"
        );
        if offline.stats.helps >= 1 {
            saw_help = true;
            break;
        }
    }
    assert!(
        saw_help,
        "no rename storm out of 40 produced a helped linearization"
    );
}
