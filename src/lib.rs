//! Workspace-level integration crate: see `tests/` and `examples/`.
