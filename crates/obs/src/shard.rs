//! Thread-slot assignment for sharded metrics.
//!
//! The same scheme as `atomfs_trace::ShardedSink`: every OS thread takes
//! one process-global round-robin slot for its lifetime, and each metric
//! maps the slot onto its own power-of-two shard array. A thread
//! therefore always writes the same shard of a given metric, keeping the
//! record path free of cross-thread cache-line traffic as long as threads
//! at most lightly outnumber shards.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// This thread's stable slot index.
pub(crate) fn thread_slot() -> usize {
    SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            v
        }
    })
}

/// Default shard count: the host's parallelism, capped (shards cost
/// memory per histogram) and rounded up to a power of two.
pub(crate) fn default_shards() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(8)
        .min(16)
        .next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_stable_per_thread() {
        assert_eq!(thread_slot(), thread_slot());
        let other = std::thread::spawn(|| (thread_slot(), thread_slot()))
            .join()
            .unwrap();
        assert_eq!(other.0, other.1);
    }

    #[test]
    fn default_shards_is_power_of_two() {
        assert!(default_shards().is_power_of_two());
    }
}
