//! The metric primitives: sharded counters, gauges, and log-linear
//! histograms.
//!
//! # Histogram bucket scheme
//!
//! Values (nanoseconds, depths, set sizes — any `u64`) are binned
//! **log-linearly**: each power-of-two octave is split into [`SUB`]
//! linear sub-buckets, so relative error is bounded by `1/SUB` (12.5%
//! worst case with `SUB = 8`) across the whole range, while the bucket
//! count stays fixed and small ([`BUCKETS`] = 297 covering 0 through
//! 2^39−1, i.e. sub-nanosecond through ~9 minutes, plus one overflow
//! bucket). The array is fixed-size atomics — recording never allocates
//! and never takes a lock.
//!
//! # Sharding
//!
//! Every counter and histogram is an array of per-thread-slot shards
//! (cache-line aligned), merged only when a snapshot or render is taken:
//! the record path touches memory only the recording thread writes.

/// Linear sub-buckets per power-of-two octave, as a bit count.
pub const SUB_BITS: u32 = 3;
/// Linear sub-buckets per power-of-two octave.
pub const SUB: u64 = 1 << SUB_BITS;
/// Highest most-significant-bit position tracked precisely; larger
/// values land in the overflow bucket.
const MAX_MSB: u32 = 38;
/// Total bucket count (linear head + octaves + overflow).
pub const BUCKETS: usize =
    SUB as usize + ((MAX_MSB - SUB_BITS + 1) as usize) * (SUB as usize) + 1;

/// Bucket index for a value: identity below [`SUB`], then log-linear.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    if msb > MAX_MSB {
        return BUCKETS - 1;
    }
    let octave = (msb - SUB_BITS) as usize;
    let sub = ((v >> (msb - SUB_BITS)) & (SUB - 1)) as usize;
    SUB as usize + octave * SUB as usize + sub
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the overflow
/// bucket) — the value reported as the Prometheus `le` label.
pub fn bucket_bound(i: usize) -> u64 {
    if i < SUB as usize {
        return i as u64;
    }
    if i >= BUCKETS - 1 {
        return u64::MAX;
    }
    let j = i - SUB as usize;
    let octave = (j / SUB as usize) as u32;
    let sub = (j % SUB as usize) as u64;
    ((SUB + sub) << octave) + (1u64 << octave) - 1
}

/// A merged, point-in-time view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket counts (length [`BUCKETS`]).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistSnapshot {
    /// A snapshot with no samples.
    pub fn empty() -> Self {
        HistSnapshot {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }

    /// Fold another snapshot into this one (histograms are mergeable —
    /// used to aggregate one metric across label sets).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Upper bound of the bucket containing the `q`-quantile (0 when the
    /// histogram is empty). `q` is clamped into `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(upper_bound, count)` pairs.
    pub fn nonzero(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (bucket_bound(i), *c))
    }
}

#[cfg(not(feature = "obs-off"))]
mod imp {
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

    use super::{bucket_index, HistSnapshot, BUCKETS};
    use crate::shard::{default_shards, thread_slot};

    #[repr(align(64))]
    struct Pad(AtomicU64);

    /// A monotonically increasing event count, striped across thread
    /// slots so concurrent `inc`s don't share a cache line.
    pub struct Counter {
        shards: Box<[Pad]>,
        mask: usize,
    }

    impl Default for Counter {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Counter {
        /// A zeroed counter sized for the host's parallelism.
        pub fn new() -> Self {
            let n = default_shards();
            Counter {
                shards: (0..n).map(|_| Pad(AtomicU64::new(0))).collect(),
                mask: n - 1,
            }
        }

        /// Add 1.
        #[inline]
        pub fn inc(&self) {
            self.add(1);
        }

        /// Add `n`.
        #[inline]
        pub fn add(&self, n: u64) {
            self.shards[thread_slot() & self.mask]
                .0
                .fetch_add(n, Ordering::Relaxed);
        }

        /// Current total (sums the stripes).
        pub fn get(&self) -> u64 {
            self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
        }
    }

    /// A value that can go up and down (one atomic: gauges are written
    /// rarely compared with counters and must support `set`).
    #[derive(Default)]
    pub struct Gauge {
        value: AtomicI64,
    }

    impl Gauge {
        /// A gauge at 0.
        pub fn new() -> Self {
            Self::default()
        }

        /// Set the value.
        #[inline]
        pub fn set(&self, v: i64) {
            self.value.store(v, Ordering::Relaxed);
        }

        /// Adjust the value by `delta`.
        #[inline]
        pub fn add(&self, delta: i64) {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }

        /// Current value.
        pub fn get(&self) -> i64 {
            self.value.load(Ordering::Relaxed)
        }
    }

    #[repr(align(64))]
    struct HistShard {
        buckets: [AtomicU64; BUCKETS],
        // No separate count cell: the total is the sum of the buckets,
        // computed at snapshot time, saving one RMW per record.
        sum: AtomicU64,
    }

    impl HistShard {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);

        fn new() -> Self {
            HistShard {
                buckets: [Self::ZERO; BUCKETS],
                sum: AtomicU64::new(0),
            }
        }
    }

    /// A fixed-size, lock-free log-linear histogram (see module docs for
    /// the bucket scheme), sharded per thread slot.
    pub struct Histogram {
        shards: Box<[HistShard]>,
        mask: usize,
    }

    impl Default for Histogram {
        fn default() -> Self {
            Self::new()
        }
    }

    impl Histogram {
        /// An empty histogram sized for the host's parallelism.
        pub fn new() -> Self {
            let n = default_shards();
            Histogram {
                shards: (0..n).map(|_| HistShard::new()).collect(),
                mask: n - 1,
            }
        }

        /// Record one sample: two relaxed RMWs on this thread's shard.
        #[inline]
        pub fn record(&self, v: u64) {
            let shard = &self.shards[thread_slot() & self.mask];
            shard.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            shard.sum.fetch_add(v, Ordering::Relaxed);
        }

        /// Total samples recorded.
        pub fn count(&self) -> u64 {
            self.shards
                .iter()
                .flat_map(|s| s.buckets.iter())
                .map(|b| b.load(Ordering::Relaxed))
                .sum()
        }

        /// Merge the shards into a point-in-time snapshot.
        pub fn snapshot(&self) -> HistSnapshot {
            let mut snap = HistSnapshot::empty();
            for shard in self.shards.iter() {
                for (i, b) in shard.buckets.iter().enumerate() {
                    snap.counts[i] += b.load(Ordering::Relaxed);
                }
                snap.sum += shard.sum.load(Ordering::Relaxed);
            }
            snap.count = snap.counts.iter().sum();
            snap
        }
    }
}

#[cfg(feature = "obs-off")]
mod imp {
    use super::HistSnapshot;

    /// `obs-off` stand-in: zero-sized, every operation a no-op.
    #[derive(Default)]
    pub struct Counter;

    impl Counter {
        /// Inert counter.
        pub fn new() -> Self {
            Counter
        }
        /// No-op.
        #[inline]
        pub fn inc(&self) {}
        /// No-op.
        #[inline]
        pub fn add(&self, _n: u64) {}
        /// Always 0.
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// `obs-off` stand-in: zero-sized, every operation a no-op.
    #[derive(Default)]
    pub struct Gauge;

    impl Gauge {
        /// Inert gauge.
        pub fn new() -> Self {
            Gauge
        }
        /// No-op.
        #[inline]
        pub fn set(&self, _v: i64) {}
        /// No-op.
        #[inline]
        pub fn add(&self, _delta: i64) {}
        /// Always 0.
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// `obs-off` stand-in: zero-sized, every operation a no-op.
    #[derive(Default)]
    pub struct Histogram;

    impl Histogram {
        /// Inert histogram.
        pub fn new() -> Self {
            Histogram
        }
        /// No-op.
        #[inline]
        pub fn record(&self, _v: u64) {}
        /// Always 0.
        pub fn count(&self) -> u64 {
            0
        }
        /// Always empty.
        pub fn snapshot(&self) -> HistSnapshot {
            HistSnapshot::empty()
        }
    }
}

pub use imp::{Counter, Gauge, Histogram};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_exhaustive() {
        let mut last = 0usize;
        // Walk every bucket boundary: index must be non-decreasing in v
        // and bound(index(v)) must be >= v.
        for i in 0..BUCKETS {
            let b = bucket_bound(i);
            if b == u64::MAX {
                continue;
            }
            let idx = bucket_index(b);
            assert_eq!(idx, i, "bound {b} of bucket {i} maps back to {idx}");
            assert!(idx >= last);
            last = idx;
            // The next value starts the next bucket.
            assert_eq!(bucket_index(b + 1), i + 1, "b={b}");
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for shift in SUB_BITS..MAX_MSB {
            let v = (1u64 << shift) + (1 << (shift - 1)) + 3; // mid-octave
            let bound = bucket_bound(bucket_index(v));
            assert!(bound >= v);
            let err = (bound - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUB as f64 + 1e-9, "v={v} err={err}");
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn counter_counts_across_threads() {
        use std::sync::Arc;
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn gauge_sets_and_adjusts() {
        let g = Gauge::new();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn histogram_records_and_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, 500_500);
        let p50 = snap.quantile(0.5);
        // Bucket resolution: p50 must be within one sub-bucket of 500.
        assert!((500..=575).contains(&p50), "p50={p50}");
        let p99 = snap.quantile(0.99);
        assert!((990..=1087).contains(&p99), "p99={p99}");
        assert_eq!(snap.quantile(0.0).max(1), 1);
        assert!(snap.quantile(1.0) >= 1000);
        assert!((snap.mean() - 500.5).abs() < 1e-9);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn histogram_merges_across_threads_and_snapshots() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for hnd in handles {
            hnd.join().unwrap();
        }
        assert_eq!(h.count(), 2000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2000);
        let mut doubled = snap.clone();
        doubled.merge(&snap);
        assert_eq!(doubled.count, 4000);
        assert_eq!(doubled.sum, 2 * snap.sum);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let snap = HistSnapshot::empty();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.nonzero().count(), 0);
    }
}
