//! Naming, aggregation, and exposition.
//!
//! A [`Registry`] owns a flat list of named metric handles. Registration
//! takes a lock (it happens at setup, not on the hot path) and hands back
//! an `Arc` to the underlying primitive; recording through that `Arc`
//! never touches the registry again. Rendering walks the list and merges
//! each metric's shards at that moment.
//!
//! Two output formats:
//!
//! * [`Registry::render_prometheus`] — the Prometheus text exposition
//!   format (`# HELP` / `# TYPE` headers, cumulative `_bucket{le=...}`
//!   series for histograms), ready to serve from a `/metrics` endpoint
//!   or dump at the end of a run.
//! * [`Registry::snapshot`] — a structured [`Snapshot`] for programmatic
//!   consumers (benchmark drivers asserting on p99s) with a hand-rolled
//!   JSON serialization, dependency-free like the rest of the crate.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

use crate::metric::{bucket_bound, Counter, Gauge, HistSnapshot, Histogram};

/// How a callback metric should be typed in the exposition output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FnKind {
    /// Monotonically non-decreasing (rendered as a `counter`).
    Counter,
    /// Free to move either way (rendered as a `gauge`).
    Gauge,
}

type FnMetric = Box<dyn Fn() -> f64 + Send + Sync>;

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Hist(Arc<Histogram>),
    Fn { kind: FnKind, f: FnMetric },
}

struct Entry {
    name: String,
    labels: Vec<(String, String)>,
    help: String,
    handle: Handle,
}

/// A named collection of metrics. Cheap to share (`Arc<Registry>`); all
/// mutation happens at registration time.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or fetch the existing) counter `name{labels}`.
    pub fn counter(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Counter> {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = find(&entries, name, labels) {
            if let Handle::Counter(c) = &e.handle {
                return Arc::clone(c);
            }
            panic!("metric {name} re-registered with a different type");
        }
        let c = Arc::new(Counter::new());
        entries.push(entry(name, labels, help, Handle::Counter(Arc::clone(&c))));
        c
    }

    /// Register (or fetch the existing) gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Arc<Gauge> {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = find(&entries, name, labels) {
            if let Handle::Gauge(g) = &e.handle {
                return Arc::clone(g);
            }
            panic!("metric {name} re-registered with a different type");
        }
        let g = Arc::new(Gauge::new());
        entries.push(entry(name, labels, help, Handle::Gauge(Arc::clone(&g))));
        g
    }

    /// Register (or fetch the existing) histogram `name{labels}`.
    pub fn histogram(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
    ) -> Arc<Histogram> {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = find(&entries, name, labels) {
            if let Handle::Hist(h) = &e.handle {
                return Arc::clone(h);
            }
            panic!("metric {name} re-registered with a different type");
        }
        let h = Arc::new(Histogram::new());
        entries.push(entry(name, labels, help, Handle::Hist(Arc::clone(&h))));
        h
    }

    /// Register a callback metric: `f` is evaluated at render/snapshot
    /// time. This is how values owned elsewhere (e.g. the journal's
    /// `HealthCounters`) are bridged into the registry without moving
    /// them.
    pub fn register_fn(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        kind: FnKind,
        f: impl Fn() -> f64 + Send + Sync + 'static,
    ) {
        let mut entries = self.entries.lock().unwrap();
        if find(&entries, name, labels).is_some() {
            return; // idempotent: keep the first registration
        }
        entries.push(entry(
            name,
            labels,
            help,
            Handle::Fn {
                kind,
                f: Box::new(f),
            },
        ));
    }

    /// Render the Prometheus text exposition format.
    ///
    /// `# HELP`/`# TYPE` appear once per metric name; histograms render
    /// cumulative `_bucket{le="..."}` series (non-empty buckets plus the
    /// mandatory `+Inf`), `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let entries = self.entries.lock().unwrap();
        let mut out = String::new();
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for e in entries.iter() {
            let (kind, is_hist) = match &e.handle {
                Handle::Counter(_) => ("counter", false),
                Handle::Gauge(_) => ("gauge", false),
                Handle::Hist(_) => ("histogram", true),
                Handle::Fn { kind: FnKind::Counter, .. } => ("counter", false),
                Handle::Fn { kind: FnKind::Gauge, .. } => ("gauge", false),
            };
            if seen.insert(e.name.as_str()) {
                let _ = writeln!(out, "# HELP {} {}", e.name, e.help);
                let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
            }
            if is_hist {
                let Handle::Hist(h) = &e.handle else { unreachable!() };
                let snap = h.snapshot();
                let mut cum = 0u64;
                for (i, c) in snap.counts.iter().enumerate() {
                    if *c == 0 {
                        continue;
                    }
                    cum += c;
                    let le = bucket_bound(i);
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        e.name,
                        label_str(&e.labels, Some(&le.to_string())),
                        cum
                    );
                }
                let _ = writeln!(
                    out,
                    "{}_bucket{} {}",
                    e.name,
                    label_str(&e.labels, Some("+Inf")),
                    snap.count
                );
                let _ = writeln!(
                    out,
                    "{}_sum{} {}",
                    e.name,
                    label_str(&e.labels, None),
                    snap.sum
                );
                let _ = writeln!(
                    out,
                    "{}_count{} {}",
                    e.name,
                    label_str(&e.labels, None),
                    snap.count
                );
            } else {
                let value = match &e.handle {
                    Handle::Counter(c) => c.get() as f64,
                    Handle::Gauge(g) => g.get() as f64,
                    Handle::Fn { f, .. } => f(),
                    Handle::Hist(_) => unreachable!(),
                };
                let _ = writeln!(
                    out,
                    "{}{} {}",
                    e.name,
                    label_str(&e.labels, None),
                    fmt_f64(value)
                );
            }
        }
        out
    }

    /// Take a structured point-in-time snapshot of every metric.
    pub fn snapshot(&self) -> Snapshot {
        let entries = self.entries.lock().unwrap();
        Snapshot {
            entries: entries
                .iter()
                .map(|e| SnapEntry {
                    name: e.name.clone(),
                    labels: e.labels.clone(),
                    value: match &e.handle {
                        Handle::Counter(c) => SnapValue::Counter(c.get()),
                        Handle::Gauge(g) => SnapValue::Gauge(g.get() as f64),
                        Handle::Hist(h) => SnapValue::Hist(h.snapshot()),
                        Handle::Fn { kind: FnKind::Counter, f } => {
                            SnapValue::Counter(f() as u64)
                        }
                        Handle::Fn { kind: FnKind::Gauge, f } => SnapValue::Gauge(f()),
                    },
                })
                .collect(),
        }
    }
}

fn entry(name: &str, labels: &[(&str, &str)], help: &str, handle: Handle) -> Entry {
    Entry {
        name: name.to_string(),
        labels: labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect(),
        help: help.to_string(),
        handle,
    }
}

fn find<'a>(
    entries: &'a [Entry],
    name: &str,
    labels: &[(&str, &str)],
) -> Option<&'a Entry> {
    entries.iter().find(|e| {
        e.name == name
            && e.labels.len() == labels.len()
            && e.labels
                .iter()
                .zip(labels)
                .all(|((k, v), (lk, lv))| k == lk && v == lv)
    })
}

fn label_str(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Escape a label value per the Prometheus text exposition spec:
/// backslash, double-quote, and line feed must be written as `\\`,
/// `\"`, and `\n` inside the quoted value.
fn escape_label_value(v: &str) -> String {
    if !v.contains(['\\', '"', '\n']) {
        return v.to_string();
    }
    let mut out = String::with_capacity(v.len() + 2);
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// One metric's value inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum SnapValue {
    /// Counter total.
    Counter(u64),
    /// Gauge (or callback) value.
    Gauge(f64),
    /// Merged histogram.
    Hist(HistSnapshot),
}

/// One named metric inside a [`Snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapEntry {
    /// Metric name.
    pub name: String,
    /// Label set, in registration order.
    pub labels: Vec<(String, String)>,
    /// The captured value.
    pub value: SnapValue,
}

/// A structured point-in-time capture of a whole [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Every registered metric, in registration order.
    pub entries: Vec<SnapEntry>,
}

impl Snapshot {
    /// Sum of a counter across all its label sets (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match &e.value {
                SnapValue::Counter(v) => *v,
                SnapValue::Gauge(v) => *v as u64,
                SnapValue::Hist(h) => h.count,
            })
            .sum()
    }

    /// A gauge's value (first matching label set; `None` if absent).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.entries.iter().find_map(|e| {
            if e.name != name {
                return None;
            }
            match &e.value {
                SnapValue::Gauge(v) => Some(*v),
                SnapValue::Counter(v) => Some(*v as f64),
                SnapValue::Hist(_) => None,
            }
        })
    }

    /// The named histogram merged across all its label sets (empty if
    /// absent) — the input for whole-system p50/p99 numbers.
    pub fn hist_merged(&self, name: &str) -> HistSnapshot {
        let mut merged = HistSnapshot::empty();
        for e in &self.entries {
            if e.name == name {
                if let SnapValue::Hist(h) = &e.value {
                    merged.merge(h);
                }
            }
        }
        merged
    }

    /// Hand-rolled JSON rendering (no serde dependency): an array of
    /// `{name, labels, type, ...}` objects; histograms carry `count`,
    /// `sum`, quantiles, and their non-empty `(le, count)` buckets.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\":\"");
            out.push_str(&json_escape(&e.name));
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in e.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
            }
            out.push('}');
            match &e.value {
                SnapValue::Counter(v) => {
                    let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}");
                }
                SnapValue::Gauge(v) => {
                    let _ = write!(out, ",\"type\":\"gauge\",\"value\":{}", fmt_f64(*v));
                }
                SnapValue::Hist(h) => {
                    let _ = write!(
                        out,
                        ",\"type\":\"histogram\",\"count\":{},\"sum\":{},\
                         \"p50\":{},\"p99\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.quantile(0.5),
                        h.quantile(0.99)
                    );
                    for (j, (le, c)) in h.nonzero().enumerate() {
                        if j > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "[{le},{c}]");
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        out.push_str("\n]");
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_deduplicated() {
        let r = Registry::new();
        let a = r.counter("ops_total", &[("op", "mkdir")], "ops");
        let b = r.counter("ops_total", &[("op", "mkdir")], "ops");
        assert!(Arc::ptr_eq(&a, &b));
        let c = r.counter("ops_total", &[("op", "rename")], "ops");
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn prometheus_render_has_headers_and_series() {
        let r = Registry::new();
        let ops = r.counter("fs_ops_total", &[("op", "mkdir")], "Completed operations.");
        ops.add(3);
        let g = r.gauge("fs_degraded", &[], "1 when degraded.");
        g.set(1);
        let h = r.histogram("fs_op_ns", &[("op", "mkdir")], "Op latency.");
        h.record(100);
        h.record(200_000);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP fs_ops_total Completed operations."));
        assert!(text.contains("# TYPE fs_ops_total counter"));
        assert!(text.contains("fs_ops_total{op=\"mkdir\"} 3"));
        assert!(text.contains("fs_degraded 1"));
        assert!(text.contains("# TYPE fs_op_ns histogram"));
        assert!(text.contains("fs_op_ns_bucket{op=\"mkdir\",le=\"+Inf\"} 2"));
        assert!(text.contains("fs_op_ns_sum{op=\"mkdir\"} 200100"));
        assert!(text.contains("fs_op_ns_count{op=\"mkdir\"} 2"));
        // Cumulative buckets: the +Inf count appears after per-bucket
        // lines whose cumulative values never decrease.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("fs_op_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-cumulative bucket line: {line}");
            last = v;
        }
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn help_and_type_emitted_once_per_name() {
        let r = Registry::new();
        r.counter("x_total", &[("a", "1")], "x");
        r.counter("x_total", &[("a", "2")], "x");
        let text = r.render_prometheus();
        assert_eq!(text.matches("# TYPE x_total counter").count(), 1);
        assert_eq!(text.matches("x_total{").count(), 2);
    }

    #[test]
    fn fn_metrics_evaluate_at_render_time() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let r = Registry::new();
        let v = Arc::new(AtomicU64::new(0));
        let vc = Arc::clone(&v);
        r.register_fn("bridged_total", &[], "bridged", FnKind::Counter, move || {
            vc.load(Ordering::Relaxed) as f64
        });
        v.store(7, Ordering::Relaxed);
        assert!(r.render_prometheus().contains("bridged_total 7"));
        assert_eq!(r.snapshot().counter("bridged_total"), 7);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn snapshot_merges_and_serializes() {
        let r = Registry::new();
        let h1 = r.histogram("lat_ns", &[("op", "read")], "lat");
        let h2 = r.histogram("lat_ns", &[("op", "write")], "lat");
        for i in 0..100 {
            h1.record(i);
            h2.record(1000 + i);
        }
        let snap = r.snapshot();
        let merged = snap.hist_merged("lat_ns");
        assert_eq!(merged.count, 200);
        let json = snap.to_json();
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        assert!(json.contains("\"name\":\"lat_ns\""));
        assert!(json.contains("\"op\":\"read\""));
        assert!(json.contains("\"type\":\"histogram\""));
        assert!(json.contains("\"p99\":"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn prometheus_label_values_are_escaped() {
        let r = Registry::new();
        // A pathological label value exercising every escape the spec
        // requires: backslash, double-quote, and newline. A callback
        // metric so the value renders identically under obs-off.
        r.register_fn(
            "path_ops_total",
            &[("path", "a\\b\"c\nd")],
            "ops by path",
            FnKind::Counter,
            || 1.0,
        );
        let text = r.render_prometheus();
        assert!(
            text.contains(r#"path_ops_total{path="a\\b\"c\nd"} 1"#),
            "unescaped or mis-escaped label in: {text}"
        );
        // The raw newline must not appear inside the rendered series —
        // every line stays parseable.
        for line in text.lines() {
            if line.starts_with("path_ops_total") {
                assert!(line.ends_with(" 1"));
            }
        }
    }
}
