//! Causal op-span tracing.
//!
//! Every file-system operation gets a **span** — a `(start, end)` interval
//! with a parent link — and each phase it passes through (optimistic walk
//! attempt, blocked lock acquisition, journal shard append, epoch cut,
//! flush barrier, recovery replay, checker pass) is a timestamped child
//! span carrying the shard id, epoch, stamp, and retry count relevant to
//! that phase. Parenting is automatic: a thread-local span stack links a
//! child to whatever span is open on the same thread when it starts, so
//! the layers (vfs wrapper → core walk → journal sink) compose causally
//! without passing context through their APIs. Work fanned out to helper
//! threads (parallel epoch-slice writers, parallel recovery scans) links
//! explicitly with [`Span::child_of`].
//!
//! # Cost discipline
//!
//! Completed spans are recorded into the process-wide flight recorder
//! ([`crate::flightrec`]) — a fixed-budget lock-free ring per thread
//! slot, so the record path is the same 2-RMW class as a
//! [`crate::Histogram`] sample: one index `fetch_add` plus a seqlock
//! publication, all on the recording thread's own cache lines, zero
//! steady-state allocation.
//!
//! Hot-path spans are **sampled**: [`Span::op_root`] starts a recorded
//! span tree for one in [`DEFAULT_SPAN_SAMPLE`] operations (a thread-local
//! countdown, same discipline as `FsMetrics` op sampling) and an inert
//! zero-cost guard otherwise. Children ([`Span::child`]) record exactly
//! when their parent does, so a sampled operation carries its *whole*
//! phase breakdown and an unsampled one costs one branch per phase. Rare,
//! already-expensive control points (journal sync, recovery, dump
//! triggers) use [`Span::root`], which always records — that is what makes
//! the flight recorder's last-moments picture complete around a fault even
//! at sparse sampling.
//!
//! Under the `obs-off` feature [`Span`] is a zero-sized type, every
//! constructor is a no-op, and the compiler deletes the instrumentation.

/// The phase taxonomy. One variant per distinct layer transition; the
/// free-form label on each span refines it (e.g. which operation, which
/// journal frame kind).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum SpanKind {
    /// An operation root: one FS call as seen at some layer's boundary.
    Op,
    /// One optimistic (lockless) walk attempt.
    OptWalk,
    /// A blocked lock acquisition (uncontended takes are not spanned).
    Lock,
    /// A journal append: staging a mutation into a shard, or writing a
    /// shard's slice of an epoch.
    ShardAppend,
    /// The group-commit epoch cut (staging quiesced, buffers swapped).
    EpochCut,
    /// The device flush barrier closing a group commit.
    FlushBarrier,
    /// Recovery: scanning and replaying a shard's log.
    Replay,
    /// A checker pass over a trace.
    Checker,
    /// One served RPC request: the root accept→decode→dispatch→fs-op
    /// chain hangs under this.
    Rpc,
    /// A degradation trigger event (quarantine, degraded flip, checker
    /// violation, recovery loss) — zero-length, marks the instant.
    Trigger,
}

impl SpanKind {
    /// Stable lowercase name (used by the dump serializations).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Op => "op",
            SpanKind::OptWalk => "opt_walk",
            SpanKind::Lock => "lock",
            SpanKind::ShardAppend => "shard_append",
            SpanKind::EpochCut => "epoch_cut",
            SpanKind::FlushBarrier => "flush_barrier",
            SpanKind::Replay => "replay",
            SpanKind::Checker => "checker",
            SpanKind::Rpc => "rpc",
            SpanKind::Trigger => "trigger",
        }
    }
}

/// Sentinel for "no shard attributed".
pub const NO_SHARD: u32 = u32::MAX;
/// Sentinel for "no epoch / stamp attributed".
pub const NO_U64: u64 = u64::MAX;

/// One completed (or in-flight, when `end == 0`) span, fixed-size so the
/// flight recorder can hold it in a preallocated ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Process-unique nonzero id.
    pub id: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// Recording thread's slot (the flight-recorder ring it went to).
    pub slot: u32,
    /// Phase taxonomy entry.
    pub kind: SpanKind,
    /// Refining label (operation or phase name; `'static` so records
    /// stay `Copy`).
    pub label: &'static str,
    /// Start tick (nanoseconds on the monotonic clock).
    pub start: u64,
    /// End tick; 0 while in flight.
    pub end: u64,
    /// Journal shard attributed to this phase ([`NO_SHARD`] if none).
    pub shard: u32,
    /// Journal epoch attributed ([`NO_U64`] if none).
    pub epoch: u64,
    /// Trace stamp attributed ([`NO_U64`] if none).
    pub stamp: u64,
    /// Retries within the phase (opt-walk re-attempts, device retries).
    pub retries: u32,
    /// Whether the phase ended in an error.
    pub err: bool,
}

impl SpanRecord {
    #[cfg_attr(feature = "obs-off", allow(dead_code))]
    pub(crate) fn empty() -> Self {
        SpanRecord {
            id: 0,
            parent: 0,
            slot: 0,
            kind: SpanKind::Op,
            label: "",
            start: 0,
            end: 0,
            shard: NO_SHARD,
            epoch: NO_U64,
            stamp: NO_U64,
            retries: 0,
            err: false,
        }
    }

    /// Serialize one record as a JSON object (shared by the in-flight
    /// rendering and the black-box dump).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"id\":{},\"parent\":{},\"tid\":{},\"kind\":\"{}\",\"label\":\"{}\",\
             \"start\":{},\"end\":{}",
            self.id,
            self.parent,
            self.slot,
            self.kind.label(),
            self.label,
            self.start,
            self.end
        );
        if self.shard != NO_SHARD {
            s.push_str(&format!(",\"shard\":{}", self.shard));
        }
        if self.epoch != NO_U64 {
            s.push_str(&format!(",\"epoch\":{}", self.epoch));
        }
        if self.stamp != NO_U64 {
            s.push_str(&format!(",\"stamp\":{}", self.stamp));
        }
        if self.retries != 0 {
            s.push_str(&format!(",\"retries\":{}", self.retries));
        }
        if self.err {
            s.push_str(",\"err\":true");
        }
        s.push('}');
        s
    }
}

/// Default operation sampling period for [`Span::op_root`]: record one in
/// this many operation span trees. Chosen so the whole span layer stays
/// within the 5% overhead gate (`flightrec_overhead` bench) while a busy
/// thread still lands hundreds of trees per second in the recorder.
pub const DEFAULT_SPAN_SAMPLE: u32 = 64;

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::{SpanKind, SpanRecord};
    use crate::clock::ClockSource;
    use std::cell::{Cell, RefCell, UnsafeCell};
    use std::sync::atomic::{fence, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, Weak};

    /// Deepest span nesting kept per thread (vfs wrapper → core op →
    /// walk/lock → journal append is 4; recovery and checker trees are
    /// shallower; the slack absorbs future layers).
    const MAX_DEPTH: usize = 12;

    static NEXT_ID: AtomicU64 = AtomicU64::new(1);
    static SAMPLE: AtomicU32 = AtomicU32::new(super::DEFAULT_SPAN_SAMPLE);

    fn clock() -> &'static ClockSource {
        static CLOCK: OnceLock<ClockSource> = OnceLock::new();
        CLOCK.get_or_init(ClockSource::monotonic)
    }

    pub(crate) fn now() -> u64 {
        clock().now()
    }

    /// Set the operation sampling period: record one in `n` op roots.
    /// `0` disables span recording entirely (the kill switch the
    /// `flightrec_overhead` bench strips with); `1` records every op.
    pub fn set_sampling(n: u32) {
        SAMPLE.store(n, Ordering::Relaxed);
    }

    /// The current sampling period (see [`set_sampling`]).
    pub fn sampling() -> u32 {
        SAMPLE.load(Ordering::Relaxed)
    }

    /// One thread's open-span stack, readable by other threads (the
    /// in-flight rendering) under a seqlock: only the owning thread
    /// writes, and it brackets every write with an odd/even `seq` bump.
    struct ActiveSlot {
        seq: AtomicU64,
        depth: AtomicUsize,
        slot: u32,
        frames: [UnsafeCell<SpanRecord>; MAX_DEPTH],
    }

    // Safety: `frames` is only written by the owning thread, between an
    // odd and an even `seq`; concurrent readers validate `seq` around
    // their copy and discard torn reads.
    unsafe impl Sync for ActiveSlot {}

    impl ActiveSlot {
        fn new(slot: u32) -> Self {
            ActiveSlot {
                seq: AtomicU64::new(0),
                depth: AtomicUsize::new(0),
                slot,
                frames: std::array::from_fn(|_| UnsafeCell::new(SpanRecord::empty())),
            }
        }

        /// Owner-thread push. Returns the depth the frame landed at.
        fn push(&self, rec: SpanRecord) -> usize {
            let d = self.depth.load(Ordering::Relaxed);
            if d >= MAX_DEPTH {
                return d; // overflow: deeper spans go unrendered, not UB
            }
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s + 1, Ordering::Relaxed);
            fence(Ordering::Release);
            unsafe { *self.frames[d].get() = rec };
            self.depth.store(d + 1, Ordering::Relaxed);
            self.seq.store(s + 2, Ordering::Release);
            d
        }

        /// Owner-thread pop back down to `depth`.
        fn pop_to(&self, depth: usize) {
            let s = self.seq.load(Ordering::Relaxed);
            self.seq.store(s + 1, Ordering::Relaxed);
            fence(Ordering::Release);
            self.depth.store(depth, Ordering::Relaxed);
            self.seq.store(s + 2, Ordering::Release);
        }

        /// Id of the innermost open span (0 when none) — owner thread.
        fn top_id(&self) -> u64 {
            let d = self.depth.load(Ordering::Relaxed);
            if d == 0 {
                0
            } else {
                unsafe { (*self.frames[d - 1].get()).id }
            }
        }

        /// Seqlock read from any thread: a consistent copy of the open
        /// frames, or `None` if the owner kept writing during the copy.
        fn read(&self) -> Option<Vec<SpanRecord>> {
            for _ in 0..8 {
                let s1 = self.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let d = self.depth.load(Ordering::Relaxed).min(MAX_DEPTH);
                let copy: Vec<SpanRecord> =
                    (0..d).map(|i| unsafe { *self.frames[i].get() }).collect();
                fence(Ordering::Acquire);
                if self.seq.load(Ordering::Relaxed) == s1 {
                    return Some(copy);
                }
            }
            None
        }
    }

    fn registry() -> &'static Mutex<Vec<Weak<ActiveSlot>>> {
        static REG: OnceLock<Mutex<Vec<Weak<ActiveSlot>>>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(Vec::new()))
    }

    thread_local! {
        static ACTIVE: RefCell<Option<Arc<ActiveSlot>>> = const { RefCell::new(None) };
        static TICK: Cell<u32> = const { Cell::new(0) };
    }

    fn with_active<T>(f: impl FnOnce(&ActiveSlot) -> T) -> T {
        ACTIVE.with(|a| {
            let mut a = a.borrow_mut();
            if a.is_none() {
                let slot = Arc::new(ActiveSlot::new(crate::shard::thread_slot() as u32));
                let mut reg = registry().lock().unwrap();
                reg.retain(|w| w.strong_count() > 0); // prune dead threads
                reg.push(Arc::downgrade(&slot));
                *a = Some(slot);
            }
            f(a.as_ref().expect("just installed"))
        })
    }

    /// The sampling countdown: `true` one call in `sampling()`.
    fn sampled() -> bool {
        let period = SAMPLE.load(Ordering::Relaxed);
        match period {
            0 => false,
            1 => true,
            _ => TICK.with(|t| {
                let v = t.get();
                if v == 0 {
                    t.set(period - 1);
                    true
                } else {
                    t.set(v - 1);
                    false
                }
            }),
        }
    }

    /// RAII span guard. `None` inside means inert: every method is a
    /// branch on a local, and nothing was (or will be) recorded.
    pub struct Span(Option<Inner>);

    struct Inner {
        rec: SpanRecord,
        depth: usize,
    }

    impl Span {
        fn begin(kind: SpanKind, label: &'static str, parent: u64) -> Span {
            let mut rec = SpanRecord::empty();
            rec.id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
            rec.parent = parent;
            rec.kind = kind;
            rec.label = label;
            rec.start = now();
            let depth = with_active(|a| {
                rec.slot = a.slot;
                a.push(rec)
            });
            Span(Some(Inner { rec, depth }))
        }

        /// An always-recorded root span (rare control points: journal
        /// sync, recovery, triggers). Joins an open parent if the thread
        /// has one.
        pub fn root(kind: SpanKind, label: &'static str) -> Span {
            if sampling() == 0 {
                return Span(None);
            }
            let parent = with_active(|a| a.top_id());
            Self::begin(kind, label, parent)
        }

        /// A sampled operation root: records one call in
        /// [`sampling()`](sampling), unless an enclosing span is already
        /// open on this thread — then it always joins as its child, so
        /// one sampling decision covers a whole nested op tree.
        pub fn op_root(kind: SpanKind, label: &'static str) -> Span {
            if sampling() == 0 {
                return Span(None);
            }
            let parent = with_active(|a| a.top_id());
            if parent == 0 && !sampled() {
                return Span(None);
            }
            Self::begin(kind, label, parent)
        }

        /// A child span: records exactly when an enclosing span is open
        /// on this thread, otherwise inert.
        pub fn child(kind: SpanKind, label: &'static str) -> Span {
            let parent = with_active(|a| a.top_id());
            if parent == 0 {
                return Span(None);
            }
            Self::begin(kind, label, parent)
        }

        /// A child of an explicit parent id — for work handed to another
        /// thread (parallel epoch-slice writers, recovery scan threads).
        /// Inert when `parent` is 0 (i.e. the parent itself was inert).
        pub fn child_of(parent: u64, kind: SpanKind, label: &'static str) -> Span {
            if parent == 0 {
                return Span(None);
            }
            Self::begin(kind, label, parent)
        }

        /// This span's id (0 when inert) — the handle for
        /// [`Span::child_of`].
        pub fn id(&self) -> u64 {
            self.0.as_ref().map_or(0, |i| i.rec.id)
        }

        /// Whether this guard is actually recording.
        pub fn is_recording(&self) -> bool {
            self.0.is_some()
        }

        /// Attribute a journal shard.
        pub fn set_shard(&mut self, shard: u32) {
            if let Some(i) = &mut self.0 {
                i.rec.shard = shard;
            }
        }

        /// Attribute a journal epoch.
        pub fn set_epoch(&mut self, epoch: u64) {
            if let Some(i) = &mut self.0 {
                i.rec.epoch = epoch;
            }
        }

        /// Attribute a trace stamp.
        pub fn set_stamp(&mut self, stamp: u64) {
            if let Some(i) = &mut self.0 {
                i.rec.stamp = stamp;
            }
        }

        /// Count one retry inside the phase.
        pub fn retry(&mut self) {
            if let Some(i) = &mut self.0 {
                i.rec.retries += 1;
            }
        }

        /// Mark the phase as having ended in an error.
        pub fn fail(&mut self) {
            if let Some(i) = &mut self.0 {
                i.rec.err = true;
            }
        }
    }

    impl Drop for Span {
        fn drop(&mut self) {
            if let Some(mut i) = self.0.take() {
                i.rec.end = now().max(i.rec.start + 1);
                with_active(|a| a.pop_to(i.depth));
                crate::flightrec::record(&i.rec);
            }
        }
    }

    /// A consistent copy of every thread's currently-open spans,
    /// innermost last per thread.
    pub fn active_spans() -> Vec<SpanRecord> {
        let mut out = Vec::new();
        let slots: Vec<Arc<ActiveSlot>> = {
            let reg = registry().lock().unwrap();
            reg.iter().filter_map(Weak::upgrade).collect()
        };
        for s in slots {
            if let Some(frames) = s.read() {
                out.extend(frames);
            }
        }
        out
    }
}

#[cfg(feature = "obs-off")]
mod imp {
    use super::{SpanKind, SpanRecord};

    /// `obs-off` stand-in: zero-sized, every method a no-op the compiler
    /// deletes.
    pub struct Span;

    impl Span {
        /// Inert (`obs-off`).
        pub fn root(_kind: SpanKind, _label: &'static str) -> Span {
            Span
        }
        /// Inert (`obs-off`).
        pub fn op_root(_kind: SpanKind, _label: &'static str) -> Span {
            Span
        }
        /// Inert (`obs-off`).
        pub fn child(_kind: SpanKind, _label: &'static str) -> Span {
            Span
        }
        /// Inert (`obs-off`).
        pub fn child_of(_parent: u64, _kind: SpanKind, _label: &'static str) -> Span {
            Span
        }
        /// Always 0 (`obs-off`).
        pub fn id(&self) -> u64 {
            0
        }
        /// Always false (`obs-off`).
        pub fn is_recording(&self) -> bool {
            false
        }
        /// No-op (`obs-off`).
        pub fn set_shard(&mut self, _shard: u32) {}
        /// No-op (`obs-off`).
        pub fn set_epoch(&mut self, _epoch: u64) {}
        /// No-op (`obs-off`).
        pub fn set_stamp(&mut self, _stamp: u64) {}
        /// No-op (`obs-off`).
        pub fn retry(&mut self) {}
        /// No-op (`obs-off`).
        pub fn fail(&mut self) {}
    }

    /// No-op (`obs-off`).
    pub fn set_sampling(_n: u32) {}

    /// Always 0 (`obs-off`): span recording is compiled out.
    pub fn sampling() -> u32 {
        0
    }

    /// Always empty (`obs-off`).
    pub fn active_spans() -> Vec<SpanRecord> {
        Vec::new()
    }
}

pub use imp::{active_spans, sampling, set_sampling, Span};

#[cfg(not(feature = "obs-off"))]
pub(crate) use imp::now as imp_now;

/// JSON array of every currently-open span across all threads — the live
/// in-flight-operations view, exposed alongside
/// [`Registry::render_prometheus`](crate::Registry::render_prometheus).
pub fn render_spans_json() -> String {
    let spans = active_spans();
    let mut out = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&s.to_json());
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "obs-off")]
    #[test]
    fn span_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<Span>(), 0);
        let mut s = Span::root(SpanKind::Op, "x");
        s.set_shard(1);
        s.set_epoch(2);
        s.set_stamp(3);
        s.retry();
        s.fail();
        assert_eq!(s.id(), 0);
        assert!(!s.is_recording());
        drop(s);
        assert_eq!(sampling(), 0);
        assert_eq!(render_spans_json(), "[]");
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn children_nest_under_roots_and_sample_together() {
        set_sampling(1);
        let root = Span::root(SpanKind::Op, "test_nest_root");
        assert!(root.is_recording());
        let child = Span::child(SpanKind::Lock, "test_nest_child");
        assert!(child.is_recording());
        assert_ne!(child.id(), root.id());
        // The live view sees both, child linked to root.
        let active = active_spans();
        let c = active
            .iter()
            .find(|s| s.label == "test_nest_child")
            .expect("child visible in-flight");
        assert_eq!(c.parent, root.id());
        drop(child);
        drop(root);
        set_sampling(DEFAULT_SPAN_SAMPLE);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn orphan_children_are_inert_and_sampling_zero_disables() {
        set_sampling(1);
        let c = Span::child(SpanKind::Lock, "test_orphan");
        assert!(!c.is_recording());
        drop(c);
        set_sampling(0);
        let r = Span::root(SpanKind::Op, "test_killed");
        assert!(!r.is_recording());
        drop(r);
        set_sampling(DEFAULT_SPAN_SAMPLE);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn explicit_parent_links_across_threads() {
        set_sampling(1);
        let root = Span::root(SpanKind::Replay, "test_xthread_root");
        let pid = root.id();
        let rec = std::thread::spawn(move || {
            let mut s = Span::child_of(pid, SpanKind::Replay, "test_xthread_child");
            assert!(s.is_recording());
            s.set_shard(3);
            s.id()
        })
        .join()
        .unwrap();
        assert_ne!(rec, 0);
        drop(root);
        set_sampling(DEFAULT_SPAN_SAMPLE);
    }

    #[test]
    fn record_json_has_kind_and_label() {
        let mut r = SpanRecord::empty();
        r.id = 7;
        r.kind = SpanKind::FlushBarrier;
        r.label = "flush";
        r.shard = 2;
        r.err = true;
        let j = r.to_json();
        assert!(j.contains("\"kind\":\"flush_barrier\""));
        assert!(j.contains("\"label\":\"flush\""));
        assert!(j.contains("\"shard\":2"));
        assert!(j.contains("\"err\":true"));
    }
}
