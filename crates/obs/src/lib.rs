//! Lock-free metrics and profiling for the AtomFS workspace.
//!
//! Every later performance PR is judged against measurements, and a
//! fine-grained-locking file system cannot be tuned blind: this crate is
//! the substrate that makes lock-coupling wait/hold times, helper
//! (`linothers`) frequency, rollback depth, journal health, and per-op
//! latency distributions visible at runtime without perturbing the system
//! being measured.
//!
//! # Design rules
//!
//! * **Lock-free, allocation-free hot path.** Recording a sample is a
//!   handful of `Relaxed` atomic RMWs on the recording thread's own
//!   cache lines: [`Counter`] and [`Histogram`] are sharded per thread
//!   slot exactly like the trace recorder's `ShardedSink`, so concurrent
//!   recorders never ping-pong a shared line. No mutex, no `Vec` growth,
//!   no boxing on the record path; merging happens at snapshot time.
//! * **Fixed-size log-linear histograms.** Power-of-two base buckets with
//!   [`hist::SUB`] linear sub-buckets each (see [`hist`]) give ~9%
//!   worst-case relative error over the whole nanosecond-to-minutes
//!   range in a few KiB of atomics per shard.
//! * **Pluggable clocks.** [`ClockSource::monotonic`] reads the cheapest
//!   monotonic counter the platform has (calibrated TSC on x86_64);
//!   [`ClockSource::virtual_clock`] is advanced explicitly by tests, the
//!   same virtual-time idea `atomfs_journal::health::RetryPolicy` uses,
//!   so metric-asserting tests replay bit-for-bit.
//! * **Provably free when disabled.** Building with the `obs-off`
//!   feature swaps every hot-path type for a zero-sized no-op ([`ENABLED`]
//!   turns instrumentation branches into dead code the compiler removes),
//!   while the [`Registry`] API keeps compiling unchanged.
//!
//! # Exposition
//!
//! A [`Registry`] names the metrics and renders them two ways:
//! [`Registry::render_prometheus`] (text exposition format, suitable for
//! an HTTP `/metrics` endpoint) and [`Registry::snapshot`] (a structured
//! [`Snapshot`] with quantile lookups and a JSON serialization) for
//! benchmark reports such as `BENCH_obs.json`.

pub mod clock;
pub mod dump;
pub mod flightrec;
pub mod metric;
pub mod registry;
pub mod span;

#[cfg_attr(feature = "obs-off", allow(dead_code))]
mod shard;

pub mod hist {
    //! Bucket-scheme constants and helpers, shared by both the real and
    //! the `obs-off` histogram so snapshots always agree on geometry.
    pub use crate::metric::{bucket_bound, bucket_index, BUCKETS, SUB, SUB_BITS};
}

pub use clock::{ClockSource, MonotonicClock, VirtualClock};
pub use dump::{BlackBox, TriggerCause};
pub use metric::{Counter, Gauge, HistSnapshot, Histogram};
pub use registry::{FnKind, Registry, SnapEntry, SnapValue, Snapshot};
pub use span::{render_spans_json, Span, SpanKind, SpanRecord};

/// Whether instrumentation is compiled in. `false` under the `obs-off`
/// feature: gate hot-path work on this constant and the compiler deletes
/// the whole branch, which is what the `metrics_overhead` bench's
/// "stripped" configuration verifies.
pub const ENABLED: bool = cfg!(not(feature = "obs-off"));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_matches_feature() {
        assert_eq!(ENABLED, cfg!(not(feature = "obs-off")));
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn obs_off_types_are_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<Counter>(), 0);
        assert_eq!(std::mem::size_of::<Gauge>(), 0);
        assert_eq!(std::mem::size_of::<Histogram>(), 0);
        let c = Counter::new();
        c.inc();
        c.add(100);
        assert_eq!(c.get(), 0);
        let h = Histogram::new();
        h.record(42);
        assert_eq!(h.snapshot().count, 0);
        let clock = ClockSource::monotonic();
        assert_eq!(clock.now(), 0);
    }
}
