//! Pluggable time sources for latency metrics.
//!
//! Two concerns pull in opposite directions: the hot path wants the
//! cheapest monotonic counter the hardware has, and tests want
//! determinism. [`ClockSource`] is a two-variant enum (no `dyn` call on
//! the record path) covering both:
//!
//! * [`MonotonicClock`] — nanoseconds since process start. On x86_64 it
//!   reads the TSC (a handful of cycles) and converts with a once-per-
//!   process calibration against `Instant`; elsewhere it falls back to
//!   `Instant::elapsed`.
//! * [`VirtualClock`] — an atomic tick counter advanced explicitly by the
//!   caller, the same virtual-time discipline as
//!   `atomfs_journal::health::RetryPolicy`'s backoff accounting: tests
//!   that assert on latency histograms advance the clock themselves and
//!   replay bit-for-bit, never waiting on (or flaking with) a wall clock.
//!
//! Under `obs-off` the [`ClockSource`] constructors keep their signatures
//! but `now()` is a constant 0, so instrumented code compiles away.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic time source in integer ticks.
///
/// All implementations in this crate use nanosecond ticks, so histogram
/// bucket bounds read directly as nanoseconds.
pub trait Clock: Send + Sync {
    /// Current time in ticks (nanoseconds).
    fn now(&self) -> u64;
}

/// Process-relative wall-free monotonic clock (nanoseconds).
#[derive(Debug, Clone, Copy, Default)]
pub struct MonotonicClock;

impl MonotonicClock {
    /// Create (and, first time in the process, calibrate) the clock.
    pub fn new() -> Self {
        // Touch the calibration so the one-time cost is paid at setup,
        // not inside the first measured operation.
        let _ = Self.now_ns();
        MonotonicClock
    }

    #[inline]
    fn now_ns(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            let (base, ns_per_tick) = *tsc_calibration();
            let delta = unsafe { core::arch::x86_64::_rdtsc() }.wrapping_sub(base);
            (delta as f64 * ns_per_tick) as u64
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            instant_anchor().elapsed().as_nanos() as u64
        }
    }
}

impl Clock for MonotonicClock {
    #[inline]
    fn now(&self) -> u64 {
        self.now_ns()
    }
}

#[cfg(target_arch = "x86_64")]
fn tsc_calibration() -> &'static (u64, f64) {
    use std::sync::OnceLock;
    static CAL: OnceLock<(u64, f64)> = OnceLock::new();
    CAL.get_or_init(|| {
        // Measure the TSC rate against Instant over a short busy window.
        // 2 ms is long enough that scheduler noise is <1% of the window
        // and short enough to be invisible at process start.
        let t0 = Instant::now();
        let c0 = unsafe { core::arch::x86_64::_rdtsc() };
        while t0.elapsed().as_micros() < 2_000 {
            std::hint::spin_loop();
        }
        let c1 = unsafe { core::arch::x86_64::_rdtsc() };
        let ns = t0.elapsed().as_nanos() as f64;
        let ticks = c1.wrapping_sub(c0).max(1) as f64;
        (c0, ns / ticks)
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn instant_anchor() -> &'static Instant {
    use std::sync::OnceLock;
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now)
}

/// Deterministic clock advanced explicitly by the test driving it.
#[derive(Debug, Default)]
pub struct VirtualClock {
    ticks: AtomicU64,
}

impl VirtualClock {
    /// A clock at tick 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance by `ticks` and return the new time.
    pub fn advance(&self, ticks: u64) -> u64 {
        self.ticks.fetch_add(ticks, Ordering::Relaxed) + ticks
    }
}

impl Clock for VirtualClock {
    #[inline]
    fn now(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(not(feature = "obs-off"))]
mod source {
    use super::*;

    /// The concrete clock behind a metrics struct — an enum so the hot
    /// path pays a predictable branch instead of a virtual call.
    #[derive(Debug, Clone)]
    pub enum ClockSource {
        /// Calibrated hardware time in nanoseconds.
        Monotonic(MonotonicClock),
        /// Explicitly advanced test time.
        Virtual(Arc<VirtualClock>),
    }

    impl ClockSource {
        /// The production clock.
        pub fn monotonic() -> Self {
            ClockSource::Monotonic(MonotonicClock::new())
        }

        /// A deterministic clock shared with the test that advances it.
        pub fn virtual_clock(clock: Arc<VirtualClock>) -> Self {
            ClockSource::Virtual(clock)
        }

        /// Current time in ticks (nanoseconds for the monotonic clock).
        #[inline]
        pub fn now(&self) -> u64 {
            match self {
                ClockSource::Monotonic(c) => c.now(),
                ClockSource::Virtual(c) => c.now(),
            }
        }
    }
}

#[cfg(feature = "obs-off")]
mod source {
    use super::*;

    /// `obs-off` stand-in: same constructors, constant time.
    #[derive(Debug, Clone)]
    pub struct ClockSource;

    impl ClockSource {
        /// The production clock (inert under `obs-off`).
        pub fn monotonic() -> Self {
            ClockSource
        }

        /// A deterministic clock (inert under `obs-off`).
        pub fn virtual_clock(_clock: Arc<VirtualClock>) -> Self {
            ClockSource
        }

        /// Always 0: lets the compiler erase timing arithmetic.
        #[inline]
        pub fn now(&self) -> u64 {
            0
        }
    }
}

pub use source::ClockSource;

#[cfg(all(test, not(feature = "obs-off")))]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now();
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < 200 {
            std::hint::spin_loop();
        }
        let b = c.now();
        assert!(b > a, "clock did not advance: {a} -> {b}");
        // 200 us busy wait should read as roughly that many ns (allow a
        // generous band for calibration error and preemption).
        let delta = b - a;
        assert!(
            (50_000..100_000_000).contains(&delta),
            "implausible delta {delta} ns"
        );
    }

    #[test]
    fn virtual_clock_is_deterministic() {
        let v = Arc::new(VirtualClock::new());
        let src = ClockSource::virtual_clock(Arc::clone(&v));
        assert_eq!(src.now(), 0);
        v.advance(7);
        assert_eq!(src.now(), 7);
        assert_eq!(v.advance(3), 10);
        assert_eq!(src.now(), 10);
    }
}
