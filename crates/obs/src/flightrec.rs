//! The flight recorder: a fixed-budget, always-on ring of recently
//! completed spans.
//!
//! Completed [`SpanRecord`](crate::span::SpanRecord)s are written into
//! one of a small set of lock-free rings (one per thread slot, the same
//! round-robin slots the sharded metrics use). Each ring holds the last
//! [`RING_CAP`] records for its slot and overwrites the oldest — so at
//! any instant the recorder holds a bounded window of the most recent
//! activity per thread, with zero steady-state allocation and no
//! cross-thread contention on the write path.
//!
//! The write protocol is a per-entry seqlock: the writer claims an index
//! with one `fetch_add` on the ring head, marks the entry's sequence 0
//! (in progress), writes the record, then publishes the entry's
//! generation token with a release store. Readers ([`freeze`]) copy the
//! entry and re-check the token; a torn read (writer lapped the reader
//! inside the copy) is discarded. Losing a handful of entries under a
//! concurrent storm is acceptable — the recorder is a best-effort
//! post-mortem window, not a durable log.
//!
//! Under `obs-off` the whole module compiles to empty stubs.

#[cfg(not(feature = "obs-off"))]
mod imp {
    use crate::span::SpanRecord;
    use std::cell::UnsafeCell;
    use std::sync::atomic::{fence, AtomicU64, Ordering};
    use std::sync::OnceLock;

    /// Rings available (thread slots wrap onto these, like metric shards).
    pub const RING_COUNT: usize = 16;
    /// Records retained per ring. 16 × 512 × 96 B ≈ 768 KiB fixed budget.
    pub const RING_CAP: usize = 512;

    struct Entry {
        /// 0 = never written or write in progress; otherwise the 1-based
        /// generation token `head_index + 1` of the write that produced
        /// the data.
        seq: AtomicU64,
        data: UnsafeCell<SpanRecord>,
    }

    struct Ring {
        head: AtomicU64,
        entries: Box<[Entry]>,
    }

    // Safety: entry data is only read after validating `seq` around the
    // copy; torn reads are detected and discarded.
    unsafe impl Sync for Ring {}

    impl Ring {
        fn new() -> Self {
            Ring {
                head: AtomicU64::new(0),
                entries: (0..RING_CAP)
                    .map(|_| Entry {
                        seq: AtomicU64::new(0),
                        data: UnsafeCell::new(SpanRecord::empty()),
                    })
                    .collect(),
            }
        }

        fn push(&self, rec: &SpanRecord) {
            let n = self.head.fetch_add(1, Ordering::Relaxed);
            let e = &self.entries[(n as usize) % RING_CAP];
            e.seq.store(0, Ordering::Relaxed);
            fence(Ordering::Release);
            unsafe { *e.data.get() = *rec };
            e.seq.store(n + 1, Ordering::Release);
        }

        fn drain_into(&self, out: &mut Vec<SpanRecord>) {
            for e in self.entries.iter() {
                let s1 = e.seq.load(Ordering::Acquire);
                if s1 == 0 {
                    continue;
                }
                let copy = unsafe { *e.data.get() };
                fence(Ordering::Acquire);
                if e.seq.load(Ordering::Relaxed) == s1 {
                    out.push(copy);
                }
            }
        }
    }

    struct Recorder {
        rings: Vec<Ring>,
        recorded: AtomicU64,
    }

    fn recorder() -> &'static Recorder {
        static REC: OnceLock<Recorder> = OnceLock::new();
        REC.get_or_init(|| Recorder {
            rings: (0..RING_COUNT).map(|_| Ring::new()).collect(),
            recorded: AtomicU64::new(0),
        })
    }

    /// Record one completed span (called from `Span::drop`). Two RMW-class
    /// atomics on the hot path: the global tally and the ring-head claim.
    pub(crate) fn record(rec: &SpanRecord) {
        let r = recorder();
        r.recorded.fetch_add(1, Ordering::Relaxed);
        r.rings[(rec.slot as usize) % RING_COUNT].push(rec);
    }

    /// Snapshot every ring: all retained spans, sorted by start tick.
    /// This is the "freeze" a black-box dump captures; it does not stop
    /// concurrent writers (their entries simply land after the copy).
    pub fn freeze() -> Vec<SpanRecord> {
        let r = recorder();
        let mut out = Vec::with_capacity(RING_COUNT * 64);
        for ring in &r.rings {
            ring.drain_into(&mut out);
        }
        out.sort_by_key(|s| (s.start, s.id));
        out
    }

    /// Total spans ever recorded (including overwritten ones).
    pub fn recorded_total() -> u64 {
        recorder().recorded.load(Ordering::Relaxed)
    }

    /// Spans currently retained across all rings.
    pub fn retained() -> usize {
        let r = recorder();
        r.rings
            .iter()
            .map(|ring| (ring.head.load(Ordering::Relaxed) as usize).min(RING_CAP))
            .sum()
    }

    /// The `flightrec` health section: budget, fill level, lifetime tally.
    pub fn stats_json() -> String {
        format!(
            "{{\"rings\":{},\"ring_cap\":{},\"retained\":{},\"recorded_total\":{},\"sampling\":{}}}",
            RING_COUNT,
            RING_CAP,
            retained(),
            recorded_total(),
            crate::span::sampling()
        )
    }
}

#[cfg(feature = "obs-off")]
mod imp {
    use crate::span::SpanRecord;

    /// Rings available (0 under `obs-off`).
    pub const RING_COUNT: usize = 0;
    /// Records per ring (0 under `obs-off`).
    pub const RING_CAP: usize = 0;

    /// Always empty (`obs-off`).
    pub fn freeze() -> Vec<SpanRecord> {
        Vec::new()
    }

    /// Always 0 (`obs-off`).
    pub fn recorded_total() -> u64 {
        0
    }

    /// Always 0 (`obs-off`).
    pub fn retained() -> usize {
        0
    }

    /// Static empty stats (`obs-off`).
    pub fn stats_json() -> String {
        "{\"rings\":0,\"ring_cap\":0,\"retained\":0,\"recorded_total\":0,\"sampling\":0}".into()
    }
}

pub use imp::{freeze, recorded_total, retained, stats_json, RING_CAP, RING_COUNT};

#[cfg(not(feature = "obs-off"))]
pub(crate) use imp::record;

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn completed_spans_land_in_the_recorder() {
        use crate::span::{set_sampling, Span, SpanKind, DEFAULT_SPAN_SAMPLE};
        set_sampling(1);
        let before = recorded_total();
        {
            let mut s = Span::root(SpanKind::FlushBarrier, "flightrec_test_span");
            s.set_shard(9);
        }
        assert!(recorded_total() > before);
        let frozen = freeze();
        let hit = frozen
            .iter()
            .find(|s| s.label == "flightrec_test_span")
            .expect("span retained in ring");
        assert_eq!(hit.shard, 9);
        assert!(hit.end >= hit.start);
        set_sampling(DEFAULT_SPAN_SAMPLE);
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn ring_overwrites_oldest_without_growing() {
        use crate::span::{set_sampling, Span, SpanKind, DEFAULT_SPAN_SAMPLE};
        set_sampling(1);
        for _ in 0..(RING_CAP * 2) {
            let _s = Span::root(SpanKind::EpochCut, "flightrec_churn");
        }
        assert!(retained() <= RING_COUNT * RING_CAP);
        set_sampling(DEFAULT_SPAN_SAMPLE);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn recorder_is_compiled_out() {
        assert_eq!(RING_COUNT, 0);
        assert!(freeze().is_empty());
        assert_eq!(recorded_total(), 0);
    }

    #[test]
    fn stats_json_is_well_formed() {
        let s = stats_json();
        assert!(s.starts_with('{') && s.ends_with('}'));
        assert!(s.contains("\"recorded_total\""));
    }
}
