//! Black-box dumps: frozen flight-recorder state captured at the moment
//! something went wrong.
//!
//! Degradation paths (shard quarantine, sticky read-only flip, checker
//! violation, recovery that licensed loss) call [`trigger`] with a
//! [`TriggerCause`]. The trigger freezes the flight recorder, copies the
//! live span stacks, optionally snapshots a registered metrics
//! [`Registry`](crate::Registry), attaches the caller's health report,
//! and retains the whole capture as a [`BlackBox`] — the last
//! [`MAX_RETAINED`] captures are kept in memory for a supervisor (or a
//! test) to [`drain`]. Each capture serializes two ways:
//!
//! * [`BlackBox::to_json`] — the analysis format: cause, trigger tick,
//!   frozen spans, in-flight spans, metrics, health.
//! * [`BlackBox::to_chrome_trace`] — Chrome `trace_event` JSON (an
//!   object with a `traceEvents` array of `ph:"X"` complete events),
//!   loadable in `chrome://tracing` / Perfetto for a visual timeline of
//!   the moments before the fault.
//!
//! Triggering is deliberately cheap to reach but heavyweight to run
//! (allocation, serialization): it sits on degradation paths, which are
//! rare by construction. Re-entrant triggers (a metrics callback that
//! itself degrades) are not possible because [`trigger`] never runs
//! caller callbacks — the metrics snapshot is taken through a `Weak`
//! registry reference the process opted into with [`set_registry`].
//!
//! Under `obs-off` everything here is a stub: [`trigger`] is a no-op and
//! [`drain`] is always empty.

use crate::span::SpanRecord;

/// Why a black-box dump was captured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TriggerCause {
    /// A journal shard was quarantined (its device or region died).
    ShardQuarantine {
        /// The quarantined shard.
        shard: u32,
        /// Human-readable cause from the journal.
        detail: String,
    },
    /// The file system flipped into sticky degraded (read-only) mode.
    DegradedFlip {
        /// Human-readable cause.
        detail: String,
    },
    /// The online checker flagged a violation.
    CheckerViolation {
        /// The violation kind's label.
        kind: String,
    },
    /// The streaming checker flagged a violation while following a live
    /// trace; the dump's health payload carries the offending stamped
    /// window.
    StreamViolation {
        /// The violation kind's label.
        kind: String,
        /// Global sequence stamp of the event window where it surfaced.
        stamp: u64,
    },
    /// Recovery completed but had to license lost operations.
    RecoveryLoss {
        /// Operations lost inside the licensed windows.
        lost_ops: u64,
        /// Human-readable summary.
        detail: String,
    },
    /// An explicit capture requested by an operator or test.
    Manual {
        /// Free-form reason.
        detail: String,
    },
}

impl TriggerCause {
    /// Stable short name for the cause variant.
    pub fn label(&self) -> &'static str {
        match self {
            TriggerCause::ShardQuarantine { .. } => "shard_quarantine",
            TriggerCause::DegradedFlip { .. } => "degraded_flip",
            TriggerCause::CheckerViolation { .. } => "checker_violation",
            TriggerCause::StreamViolation { .. } => "stream_violation",
            TriggerCause::RecoveryLoss { .. } => "recovery_loss",
            TriggerCause::Manual { .. } => "manual",
        }
    }

    fn to_json(&self) -> String {
        use crate::registry::json_escape as esc;
        match self {
            TriggerCause::ShardQuarantine { shard, detail } => format!(
                "{{\"kind\":\"shard_quarantine\",\"shard\":{},\"detail\":\"{}\"}}",
                shard,
                esc(detail)
            ),
            TriggerCause::DegradedFlip { detail } => format!(
                "{{\"kind\":\"degraded_flip\",\"detail\":\"{}\"}}",
                esc(detail)
            ),
            TriggerCause::CheckerViolation { kind } => format!(
                "{{\"kind\":\"checker_violation\",\"violation\":\"{}\"}}",
                esc(kind)
            ),
            TriggerCause::StreamViolation { kind, stamp } => format!(
                "{{\"kind\":\"stream_violation\",\"violation\":\"{}\",\"stamp\":{}}}",
                esc(kind),
                stamp
            ),
            TriggerCause::RecoveryLoss { lost_ops, detail } => format!(
                "{{\"kind\":\"recovery_loss\",\"lost_ops\":{},\"detail\":\"{}\"}}",
                lost_ops,
                esc(detail)
            ),
            TriggerCause::Manual { detail } => {
                format!("{{\"kind\":\"manual\",\"detail\":\"{}\"}}", esc(detail))
            }
        }
    }
}

/// One frozen capture: everything the recorder knew when the trigger
/// fired.
#[derive(Debug, Clone)]
pub struct BlackBox {
    /// What fired the capture.
    pub cause: TriggerCause,
    /// Monotonic tick at capture time (same clock as span timestamps).
    pub at: u64,
    /// The frozen flight-recorder rings, sorted by start tick.
    pub spans: Vec<SpanRecord>,
    /// Spans that were still open (in-flight ops) at capture time.
    pub active: Vec<SpanRecord>,
    /// Metrics snapshot JSON, if a registry was attached via
    /// [`set_registry`].
    pub metrics: Option<String>,
    /// The caller's health report JSON, if it passed one.
    pub health: Option<String>,
}

impl BlackBox {
    /// The analysis serialization: a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"cause\":");
        out.push_str(&self.cause.to_json());
        out.push_str(&format!(",\"at\":{}", self.at));
        out.push_str(&format!(
            ",\"flightrec\":{}",
            crate::flightrec::stats_json()
        ));
        out.push_str(",\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push_str("],\"active\":[");
        for (i, s) in self.active.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.to_json());
        }
        out.push(']');
        if let Some(m) = &self.metrics {
            out.push_str(",\"metrics\":");
            out.push_str(m);
        }
        if let Some(h) = &self.health {
            out.push_str(",\"health\":");
            out.push_str(h);
        }
        out.push('}');
        out
    }

    /// Chrome `trace_event` serialization: `{"traceEvents":[...]}` with
    /// one `ph:"X"` complete event per span (timestamps in microseconds,
    /// thread = recorder slot) plus one instant event for the trigger.
    pub fn to_chrome_trace(&self) -> String {
        use crate::registry::json_escape as esc;
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for s in self.spans.iter().chain(self.active.iter()) {
            if !first {
                out.push(',');
            }
            first = false;
            let end = if s.end == 0 { self.at.max(s.start) } else { s.end };
            let mut args = format!("\"id\":{},\"parent\":{}", s.id, s.parent);
            if s.shard != crate::span::NO_SHARD {
                args.push_str(&format!(",\"shard\":{}", s.shard));
            }
            if s.epoch != crate::span::NO_U64 {
                args.push_str(&format!(",\"epoch\":{}", s.epoch));
            }
            if s.stamp != crate::span::NO_U64 {
                args.push_str(&format!(",\"stamp\":{}", s.stamp));
            }
            if s.retries != 0 {
                args.push_str(&format!(",\"retries\":{}", s.retries));
            }
            if s.err {
                args.push_str(",\"err\":true");
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{{}}}}}",
                esc(s.label),
                s.kind.label(),
                s.slot,
                s.start as f64 / 1000.0,
                (end.saturating_sub(s.start)) as f64 / 1000.0,
                args
            ));
        }
        if !first {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"cat\":\"trigger\",\"ph\":\"i\",\"s\":\"g\",\
             \"pid\":1,\"tid\":0,\"ts\":{:.3}}}",
            self.cause.label(),
            self.at as f64 / 1000.0
        ));
        out.push_str("]}");
        out
    }
}

#[cfg(not(feature = "obs-off"))]
mod imp {
    use super::{BlackBox, TriggerCause};
    use crate::registry::Registry;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Mutex, OnceLock, Weak};

    /// Captures retained in memory; older ones fall off the back.
    pub const MAX_RETAINED: usize = 8;

    struct State {
        retained: Mutex<VecDeque<BlackBox>>,
        registry: Mutex<Weak<Registry>>,
        triggered: AtomicU64,
    }

    fn state() -> &'static State {
        static S: OnceLock<State> = OnceLock::new();
        S.get_or_init(|| State {
            retained: Mutex::new(VecDeque::new()),
            registry: Mutex::new(Weak::new()),
            triggered: AtomicU64::new(0),
        })
    }

    /// Attach the metrics registry whose snapshot future dumps should
    /// embed. Held weakly: the dump layer never keeps a registry alive.
    pub fn set_registry(r: &std::sync::Arc<Registry>) {
        *state().registry.lock().unwrap() = std::sync::Arc::downgrade(r);
    }

    /// Capture a black-box dump now. `health_json` is the triggering
    /// subsystem's own health report, if it has one — callers must NOT
    /// hold locks that their registered metrics callbacks also take
    /// (the metrics snapshot runs those callbacks).
    pub fn trigger(cause: TriggerCause, health_json: Option<String>) -> BlackBox {
        let s = state();
        s.triggered.fetch_add(1, Ordering::Relaxed);
        let metrics = {
            let weak = s.registry.lock().unwrap().clone();
            weak.upgrade().map(|r| r.snapshot().to_json())
        };
        let bb = BlackBox {
            cause,
            at: crate::span::imp_now(),
            spans: crate::flightrec::freeze(),
            active: crate::span::active_spans(),
            metrics,
            health: health_json,
        };
        let mut q = s.retained.lock().unwrap();
        if q.len() >= MAX_RETAINED {
            q.pop_front();
        }
        q.push_back(bb.clone());
        bb
    }

    /// The most recent capture, if any (leaves it retained).
    pub fn latest() -> Option<BlackBox> {
        state().retained.lock().unwrap().back().cloned()
    }

    /// Take every retained capture, oldest first.
    pub fn drain() -> Vec<BlackBox> {
        state().retained.lock().unwrap().drain(..).collect()
    }

    /// Total triggers since process start.
    pub fn triggered_total() -> u64 {
        state().triggered.load(Ordering::Relaxed)
    }
}

#[cfg(feature = "obs-off")]
mod imp {
    use super::{BlackBox, TriggerCause};
    use crate::registry::Registry;

    /// Captures retained (0 under `obs-off`).
    pub const MAX_RETAINED: usize = 0;

    /// No-op (`obs-off`).
    pub fn set_registry(_r: &std::sync::Arc<Registry>) {}

    /// Returns an empty capture and retains nothing (`obs-off`).
    pub fn trigger(cause: TriggerCause, health_json: Option<String>) -> BlackBox {
        BlackBox {
            cause,
            at: 0,
            spans: Vec::new(),
            active: Vec::new(),
            metrics: None,
            health: health_json,
        }
    }

    /// Always `None` (`obs-off`).
    pub fn latest() -> Option<BlackBox> {
        None
    }

    /// Always empty (`obs-off`).
    pub fn drain() -> Vec<BlackBox> {
        Vec::new()
    }

    /// Always 0 (`obs-off`).
    pub fn triggered_total() -> u64 {
        0
    }
}

pub use imp::{drain, latest, set_registry, trigger, triggered_total, MAX_RETAINED};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn trigger_captures_spans_metrics_and_health() {
        use crate::span::{set_sampling, Span, SpanKind, DEFAULT_SPAN_SAMPLE};
        let registry = std::sync::Arc::new(crate::Registry::new());
        registry.counter("dump_test_total", &[], "x").add(5);
        set_registry(&registry);
        set_sampling(1);
        {
            let mut s = Span::root(SpanKind::ShardAppend, "dump_test_append");
            s.set_shard(2);
            s.set_epoch(4);
            s.set_stamp(17);
            s.fail();
        }
        let open = Span::root(SpanKind::Op, "dump_test_inflight");
        let bb = trigger(
            TriggerCause::ShardQuarantine {
                shard: 2,
                detail: "device died".into(),
            },
            Some("{\"health\":\"degraded\"}".into()),
        );
        drop(open);
        set_sampling(DEFAULT_SPAN_SAMPLE);

        assert!(bb.spans.iter().any(|s| s.label == "dump_test_append"
            && s.shard == 2
            && s.epoch == 4
            && s.stamp == 17
            && s.err));
        assert!(bb.active.iter().any(|s| s.label == "dump_test_inflight"));
        let json = bb.to_json();
        assert!(json.contains("\"kind\":\"shard_quarantine\""));
        assert!(json.contains("\"shard\":2"));
        assert!(json.contains("dump_test_total"));
        assert!(json.contains("\"health\":\"degraded\""));
        assert!(json.contains("\"flightrec\":{"));
        let trace = bb.to_chrome_trace();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"X\""));
        assert!(trace.contains("\"name\":\"shard_quarantine\""));
        assert!(latest().is_some());
        assert!(!drain().is_empty());
        assert!(drain().is_empty());
    }

    #[cfg(not(feature = "obs-off"))]
    #[test]
    fn retention_is_bounded() {
        for i in 0..(MAX_RETAINED + 3) {
            trigger(
                TriggerCause::Manual {
                    detail: format!("capture {i}"),
                },
                None,
            );
        }
        let all: Vec<_> = drain()
            .into_iter()
            .filter(|b| matches!(&b.cause, TriggerCause::Manual { .. }))
            .collect();
        assert!(all.len() <= MAX_RETAINED);
    }

    #[cfg(feature = "obs-off")]
    #[test]
    fn dumps_are_compiled_out() {
        let bb = trigger(
            TriggerCause::Manual {
                detail: "noop".into(),
            },
            None,
        );
        assert!(bb.spans.is_empty());
        assert!(latest().is_none());
        assert!(drain().is_empty());
        assert_eq!(triggered_total(), 0);
    }

    #[test]
    fn cause_json_escapes_detail() {
        let c = TriggerCause::DegradedFlip {
            detail: "a\"b\nc".into(),
        };
        assert_eq!(
            c.to_json(),
            "{\"kind\":\"degraded_flip\",\"detail\":\"a\\\"b\\nc\"}"
        );
    }
}
