//! The LFS microbenchmarks (Rosenblum & Ousterhout), as used by the FSCQ
//! line of work and by the paper's Figure 10.
//!
//! * `largefile` — write one large file sequentially in fixed-size
//!   chunks, then read it back sequentially (the paper uses 10 MB);
//! * `smallfile` — create / write / read / delete many small files (the
//!   paper uses 10,000 files of 1 KB).

use atomfs_vfs::{FileSystem, FsResult};

/// Chunk size for sequential large-file I/O.
pub const CHUNK: usize = 64 * 1024;

/// Run the `largefile` benchmark: sequential write then sequential read
/// of one `size`-byte file under `dir`. Returns the operation count.
pub fn largefile(fs: &dyn FileSystem, dir: &str, size: usize) -> FsResult<u64> {
    let path = format!("{dir}/large");
    fs.mknod(&path)?;
    let chunk = vec![0xA5u8; CHUNK];
    let mut ops = 1u64;
    let mut off = 0usize;
    while off < size {
        let n = CHUNK.min(size - off);
        fs.write(&path, off as u64, &chunk[..n])?;
        ops += 1;
        off += n;
    }
    let mut buf = vec![0u8; CHUNK];
    let mut off = 0usize;
    while off < size {
        let n = fs.read(&path, off as u64, &mut buf)?;
        if n == 0 {
            break;
        }
        ops += 1;
        off += n;
    }
    fs.unlink(&path)?;
    Ok(ops + 1)
}

/// Run the `smallfile` benchmark: for each of `nfiles` files of `fsize`
/// bytes — create, write, read back, delete. Returns the operation count.
pub fn smallfile(fs: &dyn FileSystem, dir: &str, nfiles: usize, fsize: usize) -> FsResult<u64> {
    let data = vec![0x5Au8; fsize];
    let mut buf = vec![0u8; fsize];
    let mut ops = 0u64;
    for i in 0..nfiles {
        let path = format!("{dir}/small{i}");
        fs.mknod(&path)?;
        fs.write(&path, 0, &data)?;
        fs.read(&path, 0, &mut buf)?;
        fs.unlink(&path)?;
        ops += 4;
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs::AtomFs;

    #[test]
    fn largefile_runs_on_atomfs() {
        let fs = AtomFs::new();
        fs.mkdir("/w").unwrap();
        let ops = largefile(&fs, "/w", 300 * 1024).unwrap();
        assert!(ops >= 10);
        assert!(fs.readdir("/w").unwrap().is_empty(), "cleaned up");
    }

    #[test]
    fn smallfile_runs_on_atomfs() {
        let fs = AtomFs::new();
        fs.mkdir("/w").unwrap();
        let ops = smallfile(&fs, "/w", 50, 1024).unwrap();
        assert_eq!(ops, 200);
        assert!(fs.readdir("/w").unwrap().is_empty());
    }
}
