//! Filebench personalities used by the paper's scalability study (§7.3).
//!
//! * **Fileserver** — "concurrently handles more different directories
//!   and files (526 different directories and about 10000 files)": each
//!   iteration creates a file, writes it, appends, reads a whole file,
//!   deletes one, and stats — spread over many directories, so
//!   fine-grained locking pays off.
//! * **Webproxy** — "involves only two directories": create/write/delete
//!   plus five whole-file reads per iteration inside a shared directory,
//!   so per-inode locks on the two hot directories limit the win.
//!
//! Both personalities are expressed as a deterministic per-thread
//! iteration function so the same request stream hits every file system.

use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsError, FsResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Fileserver personality.
#[derive(Debug, Clone, Copy)]
pub struct Fileserver {
    /// Number of directories (the paper's run uses 526).
    pub dirs: usize,
    /// Pre-created files (the paper's run uses ~10,000).
    pub files: usize,
    /// Mean file size in bytes.
    pub iosize: usize,
}

impl Default for Fileserver {
    fn default() -> Self {
        Fileserver {
            dirs: 526,
            files: 10_000,
            iosize: 16 * 1024,
        }
    }
}

impl Fileserver {
    /// A shrunken configuration for tests.
    pub fn small() -> Self {
        Fileserver {
            dirs: 16,
            files: 200,
            iosize: 2048,
        }
    }

    fn dir_of(&self, i: usize) -> String {
        format!("/fileserver/d{}", i % self.dirs)
    }

    /// Create the directory tree and initial file population.
    pub fn setup(&self, fs: &dyn FileSystem) -> FsResult<()> {
        fs.mkdir_all("/fileserver")?;
        for d in 0..self.dirs {
            fs.mkdir(&format!("/fileserver/d{d}"))?;
        }
        let data = vec![0x11u8; self.iosize];
        for i in 0..self.files {
            let path = format!("{}/pre{i}", self.dir_of(i));
            fs.write_file(&path, &data)?;
        }
        Ok(())
    }

    /// One worker thread: `iters` Fileserver iterations. Returns ops.
    pub fn run_thread(&self, fs: &dyn FileSystem, thread: usize, iters: usize, seed: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (thread as u64) << 17);
        let data = vec![0x22u8; self.iosize];
        let mut buf = vec![0u8; self.iosize];
        let mut ops = 0u64;
        for i in 0..iters {
            let dir = self.dir_of(rng.random_range(0..self.dirs * 97));
            let fresh = format!("{dir}/t{thread}_{i}");
            // create + whole-file write
            if fs.mknod(&fresh).is_ok() {
                let _ = fs.write(&fresh, 0, &data);
                ops += 1;
            }
            ops += 1;
            // append to it
            let _ = fs.write(&fresh, self.iosize as u64, &data[..1024]);
            ops += 1;
            // read a pre-created file in some directory
            let pre = format!(
                "{}/pre{}",
                self.dir_of(rng.random_range(0..self.files.max(1))),
                rng.random_range(0..self.files.max(1))
            );
            let _ = fs.read(&pre, 0, &mut buf);
            ops += 1;
            // stat + delete the fresh file
            let _ = fs.stat(&fresh);
            let _ = fs.unlink(&fresh);
            ops += 2;
        }
        ops
    }
}

/// The Webproxy personality.
#[derive(Debug, Clone, Copy)]
pub struct Webproxy {
    /// Cached objects pre-created per directory.
    pub objects: usize,
    /// Mean object size.
    pub iosize: usize,
}

impl Default for Webproxy {
    fn default() -> Self {
        Webproxy {
            objects: 1000,
            iosize: 8 * 1024,
        }
    }
}

impl Webproxy {
    /// A shrunken configuration for tests.
    pub fn small() -> Self {
        Webproxy {
            objects: 50,
            iosize: 1024,
        }
    }

    /// The two hot directories (the paper notes Webproxy "involves only
    /// two directories, which cannot leverage the benefit of multicore
    /// concurrency").
    pub fn dirs() -> [&'static str; 2] {
        ["/webproxy/cache", "/webproxy/logs"]
    }

    /// Create the cache/log directories and the initial population.
    pub fn setup(&self, fs: &dyn FileSystem) -> FsResult<()> {
        fs.mkdir_all("/webproxy")?;
        for d in Self::dirs() {
            match fs.mkdir(d) {
                Ok(()) | Err(FsError::Exists) => {}
                Err(e) => return Err(e),
            }
        }
        let data = vec![0x33u8; self.iosize];
        for i in 0..self.objects {
            fs.write_file(&format!("/webproxy/cache/obj{i}"), &data)?;
        }
        Ok(())
    }

    /// One worker thread: `iters` Webproxy iterations (delete + create +
    /// append log + five reads). Returns ops.
    pub fn run_thread(&self, fs: &dyn FileSystem, thread: usize, iters: usize, seed: u64) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed ^ (thread as u64) << 23);
        let data = vec![0x44u8; self.iosize];
        let mut buf = vec![0u8; self.iosize];
        let log = format!("/webproxy/logs/log{thread}");
        let _ = fs.mknod(&log);
        let mut ops = 0u64;
        for i in 0..iters {
            let fresh = format!("/webproxy/cache/t{thread}_{i}");
            let _ = fs.unlink(&format!(
                "/webproxy/cache/t{thread}_{}",
                i.saturating_sub(1)
            ));
            if fs.mknod(&fresh).is_ok() {
                let _ = fs.write(&fresh, 0, &data);
            }
            let _ = fs.write(&log, (i * 64) as u64, &data[..64.min(data.len())]);
            ops += 3;
            for _ in 0..5 {
                let obj = format!("/webproxy/cache/obj{}", rng.random_range(0..self.objects));
                let _ = fs.read(&obj, 0, &mut buf);
                ops += 1;
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs::AtomFs;
    use std::sync::Arc;

    #[test]
    fn fileserver_setup_and_run() {
        let cfg = Fileserver::small();
        let fs = AtomFs::new();
        cfg.setup(&fs).unwrap();
        assert_eq!(fs.readdir("/fileserver").unwrap().len(), cfg.dirs);
        let ops = cfg.run_thread(&fs, 0, 20, 1);
        assert!(ops >= 20 * 5);
    }

    #[test]
    fn webproxy_setup_and_run() {
        let cfg = Webproxy::small();
        let fs = AtomFs::new();
        cfg.setup(&fs).unwrap();
        let ops = cfg.run_thread(&fs, 0, 20, 1);
        assert!(ops >= 20 * 8);
        assert!(fs.stat("/webproxy/logs/log0").unwrap().size > 0);
    }

    #[test]
    fn fileserver_concurrent_threads() {
        let cfg = Fileserver::small();
        let fs = Arc::new(AtomFs::new());
        cfg.setup(&*fs).unwrap();
        let r = crate::driver::run_threads(Arc::clone(&fs), 4, move |fs, t| {
            cfg.run_thread(&*fs, t, 25, 7)
        });
        assert!(r.ops >= 4 * 25 * 5);
    }

    #[test]
    fn webproxy_concurrent_threads() {
        let cfg = Webproxy::small();
        let fs = Arc::new(AtomFs::new());
        cfg.setup(&*fs).unwrap();
        let r = crate::driver::run_threads(Arc::clone(&fs), 4, move |fs, t| {
            cfg.run_thread(&*fs, t, 25, 9)
        });
        assert!(r.ops > 0);
    }
}
