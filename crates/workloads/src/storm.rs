//! Client-storm workload: many RPC connections hammering one server.
//!
//! Where the other workloads in this crate call a [`FileSystem`]
//! in-process, the storm goes through the serving layer: every
//! connection is an `RpcClient` wrapped in `RemoteFs` wrapped in
//! `MeteredFs`, so the `fs_op_ns{op=...}` histograms record latency *as
//! a client observes it* — wire framing, executor queueing, and reply
//! flushing included, exactly the vantage point the paper's FUSE-mounted
//! benchmarks measure from.
//!
//! The mix is deliberately hostile to per-connection cleanup: FD
//! sessions (open / pwrite / pread / close) are interleaved with
//! path-based traffic, some files are unlinked *while a descriptor from
//! another connection is still open on them*, and every `drop_every`-th
//! connection is aborted mid-session with descriptors deliberately left
//! open — the server's disconnect teardown has to close them, and the
//! trace the checker sees must still be complete.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use atomfs_obs::{ClockSource, Registry};
use atomfs_server::{RemoteFs, RpcClient, FLAG_CREATE, FLAG_READ, FLAG_WRITE};
use atomfs_vfs::{FileSystem, MeteredFs};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a client storm.
#[derive(Debug, Clone, Copy)]
pub struct StormConfig {
    /// Total connections to run.
    pub conns: usize,
    /// OS threads driving them (each thread runs its share serially,
    /// but all threads storm the server concurrently).
    pub threads: usize,
    /// Operations per connection.
    pub ops_per_conn: usize,
    /// Directories in the shared tree.
    pub dirs: usize,
    /// File names per directory.
    pub names: usize,
    /// Run an FD session every this many ops (0 = never).
    pub fd_session_every: usize,
    /// Abort (client crash, descriptors left open) every this many
    /// connections (0 = never).
    pub drop_every: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StormConfig {
    fn default() -> Self {
        StormConfig {
            conns: 64,
            threads: 8,
            ops_per_conn: 200,
            dirs: 4,
            names: 8,
            fd_session_every: 10,
            drop_every: 7,
            seed: 0x5eed,
        }
    }
}

/// What a storm did, summed over every connection.
#[derive(Debug, Default)]
pub struct StormStats {
    /// Connections fully run (including aborted ones).
    pub conns: u64,
    /// Operations attempted.
    pub ops: u64,
    /// Operations that returned an error (expected under contention).
    pub errors: u64,
    /// Connections aborted with descriptors still open.
    pub dropped_conns: u64,
    /// Descriptors deliberately left open across aborts.
    pub fds_left_open: u64,
}

/// Create the directory skeleton and seed files through one connection.
pub fn storm_setup(addr: SocketAddr, cfg: &StormConfig) -> std::io::Result<()> {
    let client = Arc::new(RpcClient::connect(addr)?);
    let fs = RemoteFs::new(client);
    for d in 0..cfg.dirs {
        let _ = fs.mkdir(&format!("/s{d}"));
        for f in 0..cfg.names {
            let path = format!("/s{d}/f{f}");
            let _ = fs.mknod(&path);
            let _ = fs.write(&path, 0, &[d as u8; 512]);
        }
    }
    Ok(())
}

/// Run the storm against a server at `addr`. Every connection's
/// operations are metered into `registry` (shared `fs_op_ns` series), so
/// client-observed p50/p99 come straight out of a scrape or snapshot.
pub fn run_storm(addr: SocketAddr, registry: &Arc<Registry>, cfg: StormConfig) -> StormStats {
    let ops = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let dropped = Arc::new(AtomicU64::new(0));
    let left_open = Arc::new(AtomicU64::new(0));

    let mut handles = Vec::new();
    for t in 0..cfg.threads.max(1) {
        let registry = Arc::clone(registry);
        let ops = Arc::clone(&ops);
        let errors = Arc::clone(&errors);
        let dropped = Arc::clone(&dropped);
        let left_open = Arc::clone(&left_open);
        handles.push(std::thread::spawn(move || {
            // Thread t runs connections t, t+threads, t+2*threads, ...
            let mut c = t;
            while c < cfg.conns {
                let Ok(client) = RpcClient::connect(addr) else {
                    c += cfg.threads;
                    continue;
                };
                let client = Arc::new(client);
                let fs = MeteredFs::new(
                    RemoteFs::new(Arc::clone(&client)),
                    &registry,
                    ClockSource::monotonic(),
                );
                let abort_this = cfg.drop_every != 0 && (c + 1) % cfg.drop_every == 0;
                let mut rng = StdRng::seed_from_u64(cfg.seed ^ (c as u64) << 8);
                let mut my_ops = 0u64;
                let mut my_errs = 0u64;
                let mut open_fds: Vec<u32> = Vec::new();
                for i in 0..cfg.ops_per_conn {
                    let d = rng.random_range(0..cfg.dirs);
                    let f = rng.random_range(0..cfg.names);
                    let path = format!("/s{d}/f{f}");
                    my_ops += 1;
                    let r: Result<(), atomfs_vfs::FsError> =
                        if cfg.fd_session_every != 0 && i % cfg.fd_session_every == 0 {
                            // FD session on the raw client (descriptor ops
                            // are a server-side concept, not FileSystem).
                            client
                                .open(&path, FLAG_READ | FLAG_WRITE | FLAG_CREATE)
                                .and_then(|fd| {
                                    let keep = abort_this && rng.random_range(0..3u32) == 0;
                                    client.pwrite(fd, 0, &[i as u8; 64])?;
                                    client.pread(fd, 0, 64)?;
                                    if keep {
                                        // Deliberately leak the descriptor
                                        // into the abort: teardown must
                                        // close it.
                                        open_fds.push(fd);
                                        Ok(())
                                    } else {
                                        client.close_fd(fd)
                                    }
                                })
                        } else {
                            match rng.random_range(0..10u32) {
                                0 => fs.mknod(&format!("/s{d}/n{c}_{i}")),
                                1 => fs.unlink(&path),
                                2 => fs.rename(&path, &format!("/s{d}/f{f}r")),
                                3 => fs.readdir(&format!("/s{d}")).map(|_| ()),
                                4..=6 => fs.stat(&path).map(|_| ()),
                                7 => fs.write(&path, 0, &[i as u8; 256]).map(|_| ()),
                                _ => {
                                    let mut buf = [0u8; 256];
                                    fs.read(&path, 0, &mut buf).map(|_| ())
                                }
                            }
                        };
                    if r.is_err() {
                        my_errs += 1;
                    }
                    if abort_this && i + 1 == cfg.ops_per_conn / 2 {
                        break; // crash mid-storm
                    }
                }
                ops.fetch_add(my_ops, Ordering::Relaxed);
                errors.fetch_add(my_errs, Ordering::Relaxed);
                if abort_this {
                    dropped.fetch_add(1, Ordering::Relaxed);
                    left_open.fetch_add(open_fds.len() as u64, Ordering::Relaxed);
                    client.abort(); // hard cut: no closes, no goodbye
                } else {
                    for fd in open_fds.drain(..) {
                        let _ = client.close_fd(fd);
                    }
                }
                c += cfg.threads;
            }
        }));
    }
    for h in handles {
        h.join().expect("storm thread");
    }
    StormStats {
        conns: cfg.conns as u64,
        ops: ops.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        dropped_conns: dropped.load(Ordering::Relaxed),
        fds_left_open: left_open.load(Ordering::Relaxed),
    }
}
