//! Seeded random operation mixes over a small, contended tree.
//!
//! Linearizability bugs need *conflicts*: the generator confines all
//! operations to a few directories and a few names so renames, creates,
//! and removals constantly interleave on the same paths — the regime
//! where path inter-dependency (§3.2) actually occurs.

use atomfs_vfs::FileSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of the generated mix.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// Directories operations are confined to.
    pub dirs: usize,
    /// Distinct file names per directory.
    pub names: usize,
    /// Weight of rename operations, in tenths (0–10).
    pub rename_weight: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            dirs: 3,
            names: 4,
            rename_weight: 3,
        }
    }
}

impl OpMix {
    /// Create the directory skeleton.
    pub fn setup(&self, fs: &dyn FileSystem) {
        for d in 0..self.dirs {
            let _ = fs.mkdir(&format!("/m{d}"));
        }
    }

    /// The directory paths of the skeleton.
    pub fn dirs(&self) -> Vec<String> {
        (0..self.dirs).map(|d| format!("/m{d}")).collect()
    }

    /// Run `count` random operations with the given seed. Results are
    /// intentionally ignored — errors (EEXIST, ENOENT...) are expected
    /// under contention; linearizability of *whatever happened* is what
    /// the checker validates. Returns the number of calls made.
    pub fn run(&self, fs: &dyn FileSystem, seed: u64, count: usize) -> u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pick = |rng: &mut StdRng| {
            format!(
                "/m{}/f{}",
                rng.random_range(0..self.dirs),
                rng.random_range(0..self.names)
            )
        };
        for i in 0..count {
            let a = pick(&mut rng);
            let b = pick(&mut rng);
            let roll = rng.random_range(0..10 + self.rename_weight);
            match roll {
                0 => {
                    let _ = fs.mknod(&a);
                }
                1 => {
                    let _ = fs.mkdir(&a);
                }
                2 => {
                    let _ = fs.unlink(&a);
                }
                3 => {
                    let _ = fs.rmdir(&a);
                }
                4 => {
                    let _ = fs.stat(&a);
                }
                5 => {
                    let _ = fs.readdir(&format!("/m{}", rng.random_range(0..self.dirs)));
                }
                6 => {
                    let _ = fs.write(&a, (i % 5) as u64, b"mix");
                }
                7 => {
                    let mut buf = [0u8; 16];
                    let _ = fs.read(&a, 0, &mut buf);
                }
                8 => {
                    let _ = fs.truncate(&a, (i % 9) as u64);
                }
                9 => {
                    // Deep path through a possibly-renamed directory.
                    let _ = fs.stat(&format!("{a}/deeper"));
                }
                _ => {
                    let _ = fs.rename(&a, &b);
                }
            }
        }
        count as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs::AtomFs;
    use std::sync::Arc;

    #[test]
    fn mix_is_deterministic_per_seed() {
        // Same seed on the same (fresh) FS produces the same final tree.
        let shape = |seed: u64| {
            let fs = AtomFs::new();
            let mix = OpMix::default();
            mix.setup(&fs);
            mix.run(&fs, seed, 300);
            let mut entries = Vec::new();
            for d in mix.dirs() {
                let mut names = fs.readdir(&d).unwrap();
                names.sort();
                entries.push((d, names));
            }
            entries
        };
        assert_eq!(shape(11), shape(11));
        assert_ne!(shape(11), shape(12), "different seeds should diverge");
    }

    #[test]
    fn concurrent_mix_smoke() {
        let fs = Arc::new(AtomFs::new());
        let mix = OpMix::default();
        mix.setup(&*fs);
        let r = crate::driver::run_threads(Arc::clone(&fs), 4, move |fs, t| {
            mix.run(&*fs, t as u64, 200)
        });
        assert_eq!(r.ops, 800);
    }
}
