//! Thread fan-out and timing for benchmark runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome of one measured run.
#[derive(Debug, Clone, Copy)]
pub struct RunResult {
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Total operations completed across all threads.
    pub ops: u64,
}

impl RunResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Speedup of this run over a baseline run.
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        self.throughput() / base.throughput().max(1e-9)
    }
}

/// Run `per_thread` on `threads` OS threads against a shared context,
/// timing the whole fan-out. Each invocation receives its thread index
/// and returns the number of operations it performed.
pub fn run_threads<C: Send + Sync + 'static>(
    ctx: Arc<C>,
    threads: usize,
    per_thread: impl Fn(Arc<C>, usize) -> u64 + Send + Sync + 'static,
) -> RunResult {
    let per_thread = Arc::new(per_thread);
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let ctx = Arc::clone(&ctx);
            let f = Arc::clone(&per_thread);
            std::thread::spawn(move || f(ctx, t))
        })
        .collect();
    let ops = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    RunResult {
        wall: start.elapsed(),
        ops,
    }
}

/// Time a single closure, returning its op count and duration.
pub fn time_one(f: impl FnOnce() -> u64) -> RunResult {
    let start = Instant::now();
    let ops = f();
    RunResult {
        wall: start.elapsed(),
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fan_out_sums_ops() {
        let counter = Arc::new(AtomicU64::new(0));
        let r = run_threads(Arc::clone(&counter), 4, |c, _| {
            c.fetch_add(10, Ordering::Relaxed);
            10
        });
        assert_eq!(r.ops, 40);
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn speedup_is_relative_throughput() {
        let base = RunResult {
            wall: Duration::from_millis(100),
            ops: 100,
        };
        let fast = RunResult {
            wall: Duration::from_millis(100),
            ops: 400,
        };
        let s = fast.speedup_over(&base);
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn time_one_measures() {
        let r = time_one(|| {
            std::thread::sleep(Duration::from_millis(5));
            7
        });
        assert_eq!(r.ops, 7);
        assert!(r.wall >= Duration::from_millis(5));
    }
}
