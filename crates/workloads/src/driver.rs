//! Thread fan-out and timing for benchmark runs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use atomfs_obs::{Registry, Snapshot};

/// Outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Total operations completed across all threads.
    pub ops: u64,
    /// Metrics snapshot taken after the workers joined, when the run was
    /// observed through a registry ([`run_threads_observed`]); `None` for
    /// unobserved runs.
    pub snapshot: Option<Snapshot>,
}

impl RunResult {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Speedup of this run over a baseline run.
    pub fn speedup_over(&self, base: &RunResult) -> f64 {
        self.throughput() / base.throughput().max(1e-9)
    }

    /// (p50, p99) in ticks of the named latency histogram, merged across
    /// its label sets — `None` for an unobserved run or an empty series
    /// (e.g. under `obs-off`).
    pub fn latency_ns(&self, name: &str) -> Option<(u64, u64)> {
        let h = self.snapshot.as_ref()?.hist_merged(name);
        if h.count == 0 {
            return None;
        }
        Some((h.quantile(0.50), h.quantile(0.99)))
    }
}

/// Run `per_thread` on `threads` OS threads against a shared context,
/// timing the whole fan-out. Each invocation receives its thread index
/// and returns the number of operations it performed.
pub fn run_threads<C: Send + Sync + 'static>(
    ctx: Arc<C>,
    threads: usize,
    per_thread: impl Fn(Arc<C>, usize) -> u64 + Send + Sync + 'static,
) -> RunResult {
    let per_thread = Arc::new(per_thread);
    let start = Instant::now();
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let ctx = Arc::clone(&ctx);
            let f = Arc::clone(&per_thread);
            std::thread::spawn(move || f(ctx, t))
        })
        .collect();
    let ops = handles.into_iter().map(|h| h.join().expect("worker")).sum();
    RunResult {
        wall: start.elapsed(),
        ops,
        snapshot: None,
    }
}

/// Like [`run_threads`], but snapshot `registry` once the workers have
/// joined, so the result carries the run's metrics (latency histograms,
/// contention counters, ...) alongside its throughput. The caller is
/// responsible for routing the workload's instrumentation into `registry`
/// (e.g. `MeteredFs`, `FsMetrics`) and for using a fresh registry per run
/// if runs must not accumulate.
pub fn run_threads_observed<C: Send + Sync + 'static>(
    ctx: Arc<C>,
    threads: usize,
    registry: &Registry,
    per_thread: impl Fn(Arc<C>, usize) -> u64 + Send + Sync + 'static,
) -> RunResult {
    let mut r = run_threads(ctx, threads, per_thread);
    r.snapshot = Some(registry.snapshot());
    r
}

/// Time a single closure, returning its op count and duration.
pub fn time_one(f: impl FnOnce() -> u64) -> RunResult {
    let start = Instant::now();
    let ops = f();
    RunResult {
        wall: start.elapsed(),
        ops,
        snapshot: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn fan_out_sums_ops() {
        let counter = Arc::new(AtomicU64::new(0));
        let r = run_threads(Arc::clone(&counter), 4, |c, _| {
            c.fetch_add(10, Ordering::Relaxed);
            10
        });
        assert_eq!(r.ops, 40);
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn speedup_is_relative_throughput() {
        let base = RunResult {
            wall: Duration::from_millis(100),
            ops: 100,
            snapshot: None,
        };
        let fast = RunResult {
            wall: Duration::from_millis(100),
            ops: 400,
            snapshot: None,
        };
        let s = fast.speedup_over(&base);
        assert!((s - 4.0).abs() < 1e-9);
    }

    #[test]
    fn observed_run_carries_a_snapshot() {
        let reg = Registry::new();
        let hist = reg.histogram("work_ns", &[], "per-op work");
        let r = run_threads_observed(Arc::new(hist), 4, &reg, |h, t| {
            h.record(t as u64 + 1);
            1
        });
        assert_eq!(r.ops, 4);
        let snap = r.snapshot.as_ref().expect("observed run has a snapshot");
        // Under obs-off the histogram is inert: the snapshot is still
        // present but empty, and latency_ns reports None.
        if atomfs_obs::ENABLED {
            assert_eq!(snap.hist_merged("work_ns").count, 4);
            let (p50, p99) = r.latency_ns("work_ns").unwrap();
            assert!(p50 <= p99);
        } else {
            assert_eq!(r.latency_ns("work_ns"), None);
        }
    }

    #[test]
    fn time_one_measures() {
        let r = time_one(|| {
            std::thread::sleep(Duration::from_millis(5));
            7
        });
        assert_eq!(r.ops, 7);
        assert!(r.wall >= Duration::from_millis(5));
    }
}
