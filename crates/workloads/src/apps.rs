//! Synthetic equivalents of the paper's application workloads
//! (Figure 10): cloning a git repository, compiling xv6, copying a source
//! tree, and searching it with ripgrep.
//!
//! Each generator replays the *file system operation mix* the real
//! application produces — the working set sizes are modelled on the
//! workloads the paper names (the xv6-public repository, the qemu source
//! tree) and shrink with `scale` so tests stay fast while benchmarks use
//! `scale = 1.0`. All workloads are single-threaded, as in §7.2.

use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale) as usize).max(1)
}

/// Deterministic pseudo-file-content of length `len`.
fn content(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    rng.fill(&mut v[..]);
    v
}

/// `git clone xv6-public`: create the working tree (~90 files, a few KB
/// each) plus the `.git` object store (many small compressed objects),
/// with the stat/readdir chatter git produces. Returns the op count.
pub fn git_clone(fs: &dyn FileSystem, root: &str, scale: f64) -> FsResult<u64> {
    let mut rng = StdRng::seed_from_u64(42);
    let mut ops = 0u64;
    fs.mkdir_all(&format!("{root}/repo/.git/objects"))?;
    fs.mkdir_all(&format!("{root}/repo/.git/refs/heads"))?;
    ops += 4;
    // Object store: each source file has roughly one blob + tree objects.
    let objects = scaled(220, scale);
    for i in 0..objects {
        let fanout = format!("{root}/repo/.git/objects/{:02x}", i % 64);
        fs.mkdir_all(&fanout)?;
        let path = format!("{fanout}/obj{i:038x}");
        let len = rng.random_range(200..4000);
        fs.write_file(&path, &content(&mut rng, len))?;
        fs.stat(&path)?;
        ops += 4;
    }
    // Working tree checkout: xv6-public is ~90 C/header files.
    let files = scaled(90, scale);
    for i in 0..files {
        let path = format!("{root}/repo/src{i}.c");
        let len = rng.random_range(1000..8000);
        fs.write_file(&path, &content(&mut rng, len))?;
        fs.stat(&path)?;
        ops += 3;
    }
    fs.write_file(
        &format!("{root}/repo/.git/refs/heads/master"),
        b"deadbeef\n",
    )?;
    fs.readdir(&format!("{root}/repo"))?;
    Ok(ops + 2)
}

/// `make xv6`: stat every source, read it, write a `.o`, then link two
/// images by concatenating the objects. Requires a tree created by
/// [`git_clone`] under `root`. Returns the op count.
pub fn make_xv6(fs: &dyn FileSystem, root: &str, scale: f64) -> FsResult<u64> {
    let mut ops = 0u64;
    let repo = format!("{root}/repo");
    let names = fs.readdir(&repo)?;
    ops += 1;
    fs.mkdir_all(&format!("{root}/build"))?;
    let mut objects = Vec::new();
    for name in names.iter().filter(|n| n.ends_with(".c")) {
        let src = format!("{repo}/{name}");
        fs.stat(&src)?;
        let data = fs.read_to_vec(&src)?;
        let obj = format!("{root}/build/{name}.o");
        // "Compilation" roughly doubles the size.
        let mut out = data.clone();
        out.extend_from_slice(&data);
        fs.write_file(&obj, &out)?;
        objects.push(obj);
        ops += 4;
    }
    // Link step: read all objects, write the kernel image.
    let mut image = Vec::new();
    for obj in &objects {
        image.extend(fs.read_to_vec(obj)?);
        ops += 1;
    }
    let keep = scaled(image.len().max(1), scale.min(1.0));
    image.truncate(keep);
    fs.write_file(&format!("{root}/build/kernel.img"), &image)?;
    Ok(ops + 1)
}

/// `cp -r` of a source tree (the paper copies qemu's sources): walk the
/// tree under `src_root`, recreating every directory and file under
/// `dst_root`. Returns the op count.
pub fn cp_tree(fs: &dyn FileSystem, src_root: &str, dst_root: &str) -> FsResult<u64> {
    let mut ops = 0u64;
    fs.mkdir_all(dst_root)?;
    let mut stack = vec![(src_root.to_string(), dst_root.to_string())];
    while let Some((src, dst)) = stack.pop() {
        for name in fs.readdir(&src)? {
            let s = atomfs_vfs::path::join(&src, &name);
            let d = atomfs_vfs::path::join(&dst, &name);
            let meta = fs.stat(&s)?;
            ops += 2;
            if meta.ftype.is_dir() {
                fs.mkdir(&d)?;
                ops += 1;
                stack.push((s, d));
            } else {
                let data = fs.read_to_vec(&s)?;
                fs.write_file(&d, &data)?;
                ops += 3;
            }
        }
        ops += 1;
    }
    Ok(ops)
}

/// Build the qemu-like source tree that `cp_qemu` copies: a handful of
/// directories with a few hundred files at scale 1.0.
pub fn build_source_tree(fs: &dyn FileSystem, root: &str, scale: f64) -> FsResult<u64> {
    let mut rng = StdRng::seed_from_u64(7);
    let mut ops = 0u64;
    let dirs = scaled(12, scale.sqrt());
    let files_per_dir = scaled(25, scale.sqrt());
    for d in 0..dirs {
        let dir = format!("{root}/mod{d}");
        fs.mkdir_all(&dir)?;
        ops += 1;
        for f in 0..files_per_dir {
            let path = format!("{dir}/file{f}.c");
            let len = rng.random_range(500..6000);
            fs.write_file(&path, &content(&mut rng, len))?;
            ops += 2;
        }
    }
    Ok(ops)
}

/// `rg pattern` over a source tree: recursive readdir, stat and full read
/// of every file (ripgrep memory-maps; a full read models the page-ins).
/// Returns the op count; also returns the number of "matches" so the
/// traversal cannot be optimized away.
pub fn ripgrep(fs: &dyn FileSystem, root: &str, needle: u8) -> FsResult<(u64, u64)> {
    let mut ops = 0u64;
    let mut matches = 0u64;
    let mut stack = vec![root.to_string()];
    while let Some(dir) = stack.pop() {
        for name in fs.readdir(&dir)? {
            let path = atomfs_vfs::path::join(&dir, &name);
            let meta = fs.stat(&path)?;
            ops += 2;
            if meta.ftype.is_dir() {
                stack.push(path);
            } else {
                let data = fs.read_to_vec(&path)?;
                matches += data.iter().filter(|&&b| b == needle).count() as u64;
                ops += 1;
            }
        }
        ops += 1;
    }
    Ok((ops, matches))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs::AtomFs;

    #[test]
    fn git_clone_builds_repo() {
        let fs = AtomFs::new();
        fs.mkdir("/w").unwrap();
        let ops = git_clone(&fs, "/w", 0.1).unwrap();
        assert!(ops > 20);
        assert!(fs.stat("/w/repo/.git/refs/heads/master").is_ok());
        assert!(!fs.readdir("/w/repo").unwrap().is_empty());
    }

    #[test]
    fn make_follows_clone() {
        let fs = AtomFs::new();
        fs.mkdir("/w").unwrap();
        git_clone(&fs, "/w", 0.1).unwrap();
        let ops = make_xv6(&fs, "/w", 0.1).unwrap();
        assert!(ops > 10);
        assert!(fs.stat("/w/build/kernel.img").unwrap().size > 0);
    }

    #[test]
    fn cp_copies_everything() {
        let fs = AtomFs::new();
        fs.mkdir("/src").unwrap();
        build_source_tree(&fs, "/src", 0.1).unwrap();
        cp_tree(&fs, "/src", "/dst").unwrap();
        let (_, src_matches) = ripgrep(&fs, "/src", 0x42).unwrap();
        let (_, dst_matches) = ripgrep(&fs, "/dst", 0x42).unwrap();
        assert_eq!(src_matches, dst_matches, "copy must be byte-identical");
    }

    #[test]
    fn ripgrep_counts_consistently() {
        let fs = AtomFs::new();
        fs.mkdir("/t").unwrap();
        fs.mknod("/t/f").unwrap();
        fs.write("/t/f", 0, b"zzqzz").unwrap();
        let (ops, matches) = ripgrep(&fs, "/t", b'z').unwrap();
        assert_eq!(matches, 4);
        assert!(ops >= 3);
    }
}
