//! Workload generators for the AtomFS evaluation (§7).
//!
//! The paper's experiments run real applications (git, make, cp, ripgrep),
//! the LFS microbenchmarks, and two Filebench personalities on top of
//! FUSE-mounted file systems. This crate regenerates those workloads as
//! synthetic operation mixes against the [`atomfs_vfs::FileSystem`] trait,
//! so every file system in the workspace runs the identical request
//! stream:
//!
//! * [`lfs`] — the LFS `largefile` / `smallfile` microbenchmarks
//!   (Figure 10, first two groups);
//! * [`apps`] — synthetic equivalents of the four application workloads
//!   (Figure 10, remaining groups), sized by a scale factor;
//! * [`filebench`] — the Fileserver and Webproxy personalities used for
//!   the scalability study (Figure 11);
//! * [`opmix`] — a seeded random operation mix over a small tree, used by
//!   the linearizability stress tests;
//! * [`storm`] — a multi-connection client storm driven through the RPC
//!   serving layer, measuring latency where the client observes it;
//! * [`driver`] — thread fan-out and timing helpers.

pub mod apps;
pub mod driver;
pub mod filebench;
pub mod lfs;
pub mod opmix;
pub mod storm;

pub use driver::{run_threads, run_threads_observed, RunResult};
