//! Experiment harness for the AtomFS reproduction.
//!
//! One binary per paper table/figure (see DESIGN.md's experiment index):
//!
//! * `fig10_apps` — Figure 10, application workload running times;
//! * `fig11_scalability` — Figure 11(a)/(b), Filebench speedups;
//! * `interdep_study` — the §3.2 path inter-dependency study;
//! * `conformance` — the xfstests analog (§6's 418/451 scorecard);
//! * `loc_table` — the Table 2 inventory;
//! * `trace_throughput` — recorder scaling (mutex vs sharded stamping),
//!   emits `BENCH_trace.json`.
//!
//! Criterion micro/ablation benchmarks live in `benches/`.

pub mod report;
pub mod setups;
