//! The file system configurations compared in the paper's evaluation.
//!
//! Absolute performance in Figure 10 is dominated by *deployment* costs
//! (FUSE's user/kernel round trips, DFSCQ's Haskell runtime, in-kernel
//! execution for ext4/tmpfs), which an in-process reproduction has to
//! model explicitly — see `OverheadProfile` and DESIGN.md's substitution
//! table. Each constructor here composes an engine with the deployment
//! shim that its paper counterpart ran under:
//!
//! | Name | Engine | Deployment model |
//! |---|---|---|
//! | `atomfs` | [`atomfs::AtomFs`] | FUSE round trip |
//! | `atomfs-biglock` | `BigLockFs<AtomFs>` | FUSE round trip |
//! | `dfscq-sim` | [`atomfs_baselines::SeqFs`] | FUSE + managed runtime |
//! | `tmpfs-sim` | [`atomfs_baselines::RwTreeFs`] | syscall + dcache |
//! | `ext4-sim` | [`atomfs::AtomFs`] | syscall + dcache |
//! | `retryfs` | [`atomfs_baselines::RetryFs`] | FUSE round trip |

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_baselines::{BigLockFs, RetryFs, RwTreeFs, SeqFs};
use atomfs_vfs::dcache::DcacheFs;
use atomfs_vfs::overhead::{OverheadFs, OverheadProfile};
use atomfs_vfs::FileSystem;

/// The comparison systems of Figure 10, in the paper's plot order.
pub const FIG10_SYSTEMS: [&str; 4] = ["dfscq-sim", "atomfs", "tmpfs-sim", "ext4-sim"];

/// The systems of Figure 11's scalability study.
pub const FIG11_SYSTEMS: [&str; 3] = ["atomfs", "atomfs-biglock", "ext4-sim"];

/// Build a named file system configuration.
///
/// # Panics
///
/// Panics on an unknown name; use [`FIG10_SYSTEMS`]/[`FIG11_SYSTEMS`] or
/// the names in the module docs.
pub fn build(name: &str) -> Arc<dyn FileSystem> {
    match name {
        "atomfs" => Arc::new(OverheadFs::new(
            "atomfs",
            AtomFs::new(),
            OverheadProfile::fuse(),
        )),
        "atomfs-raw" => Arc::new(AtomFs::new()),
        "atomfs-biglock" => Arc::new(OverheadFs::new(
            "atomfs-biglock",
            BigLockFs::new(AtomFs::new()),
            OverheadProfile::fuse(),
        )),
        "dfscq-sim" => Arc::new(OverheadFs::new(
            "dfscq-sim",
            SeqFs::new(),
            OverheadProfile::managed_runtime(),
        )),
        "tmpfs-sim" => Arc::new(OverheadFs::new(
            "tmpfs-sim",
            DcacheFs::new("tmpfs-dcache", RwTreeFs::new()),
            OverheadProfile::syscall(),
        )),
        "ext4-sim" => Arc::new(OverheadFs::new(
            "ext4-sim",
            DcacheFs::new("ext4-dcache", AtomFs::new()),
            OverheadProfile::syscall(),
        )),
        "retryfs" => Arc::new(OverheadFs::new(
            "retryfs",
            RetryFs::new(),
            OverheadProfile::fuse(),
        )),
        "atomfs-journaled" => Arc::new(atomfs_journal::JournaledFs::create(Arc::new(
            atomfs_journal::Disk::new(),
        ))),
        other => panic!("unknown file system configuration: {other}"),
    }
}

/// Every buildable configuration name (for the conformance suite).
pub const ALL_SYSTEMS: [&str; 8] = [
    "atomfs",
    "atomfs-raw",
    "atomfs-biglock",
    "dfscq-sim",
    "tmpfs-sim",
    "ext4-sim",
    "retryfs",
    "atomfs-journaled",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_configurations_build_and_work() {
        for name in ALL_SYSTEMS {
            let fs = build(name);
            fs.mkdir("/x").unwrap_or_else(|e| panic!("{name}: {e}"));
            fs.mknod("/x/f").unwrap();
            fs.write("/x/f", 0, b"ok").unwrap();
            let mut buf = [0u8; 2];
            assert_eq!(fs.read("/x/f", 0, &mut buf).unwrap(), 2, "{name}");
            fs.rename("/x/f", "/x/g").unwrap();
            assert!(fs.stat("/x/g").is_ok(), "{name}");
        }
    }
}
