//! Plain-text tables for experiment output.
//!
//! Every experiment binary prints the rows/series its paper table or
//! figure reports; `EXPERIMENTS.md` records paper-versus-measured values.

/// A simple fixed-layout table builder.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (cells are already formatted).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| {
            let mut line = String::new();
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a duration in seconds with sensible precision.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Format a throughput figure.
pub fn kops(ops_per_sec: f64) -> String {
    format!("{:.1}", ops_per_sec / 1e3)
}

/// Format a ratio such as a speedup.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "22".into()]);
        let out = t.render();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("short"));
        // Columns align: the "value" column starts at the same offset.
        let col = lines[3].find("22").unwrap();
        assert_eq!(lines[2].find('1').unwrap(), col);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500");
        assert_eq!(kops(12_345.0), "12.3");
        assert_eq!(ratio(2.0), "2.00x");
    }
}
