//! Figure 11 — multicore scalability on the Filebench personalities.
//!
//! Regenerates the paper's Figure 11(a)/(b): speedup (relative to each
//! system's own single-thread throughput) of AtomFS, AtomFS-biglock and
//! ext4 on the Fileserver and Webproxy personalities as the thread count
//! grows to 16.
//!
//! The experiment needs a 16-core machine; on hosts without one (this
//! reproduction environment has a single core) wall-clock threading
//! cannot exhibit speedup, so the default mode runs on **virtual time**:
//! each worker's operation stream is executed on the real instrumented
//! AtomFS to capture its exact lock-acquisition footprint, converted into
//! a lock/work script, and replayed on an ideal N-core machine by the
//! `atomfs-locksim` discrete-event engine (see that crate's docs and
//! DESIGN.md's substitution table). `--measured` instead uses real OS
//! threads, which is meaningful only on a multicore host.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin fig11_scalability -- [fileserver|webproxy|both] [iters] [--measured]`

use std::sync::Arc;

use atomfs::{AtomFs, AtomFsConfig};
use atomfs_bench::report::{ratio, Table};
use atomfs_bench::setups::{build, FIG11_SYSTEMS};
use atomfs_locksim::{plan_from_scripts, simulate, CostModel, ScriptConverter, ThreadPlan};
use atomfs_obs::{ClockSource, Registry};
use atomfs_trace::{BufferSink, TraceSink};
use atomfs_vfs::MeteredFs;
use atomfs_workloads::filebench::{Fileserver, Webproxy};
use atomfs_workloads::run_threads_observed;

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];

fn fileserver_cfg() -> Fileserver {
    Fileserver {
        dirs: 526,
        files: 2000, // smaller population than the paper, same shape
        iosize: 8 * 1024,
    }
}

fn webproxy_cfg() -> Webproxy {
    Webproxy {
        objects: 500,
        iosize: 8 * 1024,
    }
}

/// Simulated mode adds the fast-path ablation row: the same cost model
/// as "atomfs" but with the optimistic walk disabled at capture time, so
/// its plans carry the full lock-coupled footprint.
const SIM_SYSTEMS: [&str; 4] = ["atomfs", "atomfs-nofast", "atomfs-biglock", "ext4-sim"];

fn cost_model(system: &str) -> CostModel {
    match system {
        "atomfs" | "atomfs-nofast" => CostModel::atomfs_fuse(),
        "atomfs-biglock" => CostModel::biglock_fuse(),
        "ext4-sim" => CostModel::ext4_syscall(),
        other => panic!("no cost model for {other}"),
    }
}

/// Capture each virtual worker's operation stream on real instrumented
/// AtomFS and convert it into simulator plans under `model`.
fn capture_plans(
    personality: &str,
    threads: usize,
    iters: usize,
    model: &CostModel,
    optimistic: bool,
) -> Vec<ThreadPlan> {
    let sink = Arc::new(BufferSink::new());
    let fs = AtomFs::traced_with_config(
        sink.clone() as Arc<dyn TraceSink>,
        AtomFsConfig {
            optimistic,
            ..AtomFsConfig::default()
        },
    );
    if personality == "fileserver" {
        fileserver_cfg().setup(&fs).expect("setup");
    } else {
        webproxy_cfg().setup(&fs).expect("setup");
    }
    sink.take(); // discard setup events
    let mut converter = ScriptConverter::new(*model);
    let mut plans = Vec::new();
    for t in 0..threads {
        if personality == "fileserver" {
            fileserver_cfg().run_thread(&fs, t, iters, 1234);
        } else {
            webproxy_cfg().run_thread(&fs, t, iters, 1234);
        }
        let scripts = converter.convert(&sink.take());
        plans.push(plan_from_scripts(&scripts));
    }
    plans
}

fn simulated_series(personality: &str, system: &str, iters: usize) -> Vec<f64> {
    let model = cost_model(system);
    let optimistic = system != "atomfs-nofast";
    THREADS
        .iter()
        .map(|&threads| {
            let plans = capture_plans(personality, threads, iters, &model, optimistic);
            let r = simulate(&plans);
            eprint!(".");
            r.throughput()
        })
        .collect()
}

/// One measured point: throughput plus (p50, p99) op latency in ns, taken
/// by a [`MeteredFs`] wrapped around the full deployment stack.
fn measured_series(personality: &str, system: &str, iters: usize) -> Vec<(f64, Option<(u64, u64)>)> {
    THREADS
        .iter()
        .map(|&threads| {
            // A fresh registry per point: each cell's histogram is its own.
            let reg = Registry::new();
            let fs = MeteredFs::new(build(system), &reg, ClockSource::monotonic());
            let result = if personality == "fileserver" {
                let cfg = fileserver_cfg();
                cfg.setup(&fs).expect("setup");
                run_threads_observed(Arc::new(fs), threads, &reg, move |fs, t| {
                    cfg.run_thread(&*fs, t, iters, 1234)
                })
            } else {
                let cfg = webproxy_cfg();
                cfg.setup(&fs).expect("setup");
                run_threads_observed(Arc::new(fs), threads, &reg, move |fs, t| {
                    cfg.run_thread(&*fs, t, iters, 1234)
                })
            };
            eprint!(".");
            (result.throughput(), result.latency_ns("fs_op_ns"))
        })
        .collect()
}

fn run_personality(name: &str, iters: usize, measured: bool) {
    println!(
        "\nFigure 11({}) — {name} speedup over 1 thread ({} cores{})",
        if name == "fileserver" { 'a' } else { 'b' },
        if measured {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            16
        },
        if measured {
            ", measured"
        } else {
            ", simulated"
        },
    );
    println!("paper shape: atomfs > biglock; atomfs ~1.46x biglock throughput at 16 threads (fileserver), ~1.16x (webproxy); ext4 much faster in absolute terms\n");
    let systems: Vec<&str> = if measured {
        FIG11_SYSTEMS.to_vec()
    } else {
        SIM_SYSTEMS.to_vec()
    };
    let mut tps: Vec<Vec<f64>> = Vec::new();
    let mut lats: Vec<Vec<Option<(u64, u64)>>> = Vec::new();
    for sys in &systems {
        if measured {
            let series = measured_series(name, sys, iters);
            tps.push(series.iter().map(|(tp, _)| *tp).collect());
            lats.push(series.iter().map(|(_, lat)| *lat).collect());
        } else {
            tps.push(simulated_series(name, sys, iters));
        }
    }
    eprintln!();
    let mut header = vec!["threads"];
    header.extend(systems.iter().copied());
    let mut table = Table::new(&header);
    for (i, &threads) in THREADS.iter().enumerate() {
        let mut cells = vec![threads.to_string()];
        for series in &tps {
            cells.push(ratio(series[i] / series[0]));
        }
        table.row(cells);
    }
    table.print();
    println!();
    let mut t2 = Table::new(&{
        let mut h = vec!["kops/s"];
        h.extend(systems.iter().copied());
        h
    });
    for (i, &threads) in THREADS.iter().enumerate() {
        let mut cells = vec![format!("@{threads}t")];
        for series in &tps {
            cells.push(format!("{:.1}", series[i] / 1e3));
        }
        t2.row(cells);
    }
    t2.print();
    if measured {
        // Per-op latency (the simulated default has no wall-clock ops to
        // time): p50/p99 across all operation kinds, in microseconds.
        println!();
        let mut t3 = Table::new(&{
            let mut h = vec!["p50/p99 us"];
            h.extend(systems.iter().copied());
            h
        });
        for (i, &threads) in THREADS.iter().enumerate() {
            let mut cells = vec![format!("@{threads}t")];
            for series in &lats {
                cells.push(match series[i] {
                    Some((p50, p99)) => {
                        format!("{:.1}/{:.1}", p50 as f64 / 1e3, p99 as f64 / 1e3)
                    }
                    None => "-".to_string(),
                });
            }
            t3.row(cells);
        }
        t3.print();
    }
    let atomfs_16 = tps[0][THREADS.len() - 1];
    let biglock_16 = tps[systems
        .iter()
        .position(|s| *s == "atomfs-biglock")
        .expect("biglock row")][THREADS.len() - 1];
    println!(
        "\natomfs / biglock throughput at 16 threads: {} (paper: 1.46x fileserver, 1.16x webproxy)",
        ratio(atomfs_16 / biglock_16)
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let measured = args.iter().any(|a| a == "--measured");
    let pos: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let which = pos.first().map(|s| s.as_str()).unwrap_or("both");
    let iters: usize = pos.get(1).map(|s| s.parse().expect("iters")).unwrap_or(200);
    match which {
        "fileserver" => run_personality("fileserver", iters, measured),
        "webproxy" => run_personality("webproxy", iters, measured),
        "both" => {
            run_personality("fileserver", iters, measured);
            run_personality("webproxy", iters, measured);
        }
        other => panic!("unknown personality {other}; use fileserver|webproxy|both"),
    }
}
