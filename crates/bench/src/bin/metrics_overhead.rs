//! Overhead gate for the metrics layer: instrumented vs. stripped AtomFS.
//!
//! Runs the contended [`OpMix`] workload on two otherwise-identical AtomFS
//! instances — one with [`FsMetrics`] attached (at its default operation
//! sampling), one without (the `m()` accessor returns `None`,
//! so instrumentation reduces to one branch per site) — and gates the
//! per-op slowdown of the instrumented run at **5%**. Each round times
//! the two sides back-to-back in ABBA order and contributes one paired
//! ratio; the gate uses the median ratio (see [`compare`]).
//!
//! The single-thread comparison is the gate: it maximizes the relative
//! weight of the instrumentation (no lock waits to hide behind) and is
//! not subject to scheduler noise. An 8-thread comparison is measured and
//! reported alongside, ungated, to document the contended-path cost
//! (where the metrics layer additionally reads the clock on contended
//! acquisitions).
//!
//! Prints the comparison, writes machine-readable `BENCH_obs.json` to the
//! current directory, and exits non-zero if the gate fails — CI runs this
//! in release mode as the `obs-overhead` job.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin metrics_overhead -- [ops_per_round] [rounds] [op_sample]`
//!
//! `op_sample` overrides the operation-sampling period (default:
//! [`atomfs::DEFAULT_OP_SAMPLE`]) — useful for ablating fixed per-op cost
//! (huge period) against sampled cost, but the checked-in gate always
//! runs the default.

use std::sync::Arc;
use std::time::Instant;

use atomfs::{AtomFs, FsMetrics};
use atomfs_bench::report::Table;
use atomfs_obs::{ClockSource, Registry};
use atomfs_workloads::opmix::OpMix;

/// Gate: instrumented may be at most this much slower than stripped.
const THRESHOLD_PCT: f64 = 5.0;

fn mix() -> OpMix {
    // More names than the checker-stress default: moderate contention,
    // so single-thread rounds still exercise create/remove/rename paths.
    OpMix {
        dirs: 4,
        names: 8,
        rename_weight: 3,
    }
}

fn build(instrumented: bool, op_sample: u32) -> AtomFs {
    if instrumented {
        // The registry is dropped with the fs: the gate measures the cost
        // of *recording*, which does not depend on anything reading it.
        let reg = Registry::new();
        AtomFs::new().with_metrics(FsMetrics::register_sampled(
            &reg,
            ClockSource::monotonic(),
            op_sample,
        ))
    } else {
        AtomFs::new()
    }
}

/// CPU time consumed by the calling thread, in nanoseconds.
///
/// The single-thread gate times rounds in *thread CPU time*, not wall
/// time: on a shared 1-core host, wall time charges the benchmark for
/// every interval the scheduler hands to someone else (cgroup throttling,
/// sibling processes) — stalls of 10%+ that swamp the few-percent effect
/// being measured. CPU time only advances while this thread is actually
/// running, which is the quantity the instrumentation can change.
#[cfg(target_os = "linux")]
fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID)");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_ns() -> u64 {
    // Portable fallback: wall clock (noisier, but the bench still runs).
    use std::time::UNIX_EPOCH;
    UNIX_EPOCH.elapsed().map_or(0, |d| d.as_nanos() as u64)
}

/// One timed round: `ops` mix operations on a fresh instance (setup
/// excluded from timing). Returns the round's duration in nanoseconds —
/// thread CPU time for single-thread rounds, wall time for multi-thread
/// rounds (where cross-thread blocking is part of what is measured).
fn one_round(instrumented: bool, threads: usize, ops: usize, seed: u64, op_sample: u32) -> u64 {
    let fs = Arc::new(build(instrumented, op_sample));
    let m = mix();
    m.setup(&*fs);
    if threads == 1 {
        let start = thread_cpu_ns();
        m.run(&*fs, seed, ops);
        thread_cpu_ns() - start
    } else {
        let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fs = Arc::clone(&fs);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    m.run(&*fs, seed ^ ((t as u64) << 32), ops);
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed().as_nanos() as u64
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Two timings of the *same* configuration agree within `tol` (e.g.
/// 1.015 = 1.5%) — the round was undisturbed by the host.
fn steady(x: u64, y: u64, tol: f64) -> bool {
    (x.max(y) as f64) < tol * (x.min(y).max(1) as f64)
}

/// Compare stripped vs. instrumented over `rounds` ABBA rounds; returns
/// (stripped_ns_per_op, instrumented_ns_per_op, overhead_ratio).
///
/// Each round times stripped-instrumented-instrumented-stripped
/// back-to-back (cancelling linear drift in host speed within the round)
/// and yields one paired ratio; the result is the **median** ratio over
/// the *admitted* rounds. On a shared/virtualized host, steal time can
/// stall any single timing by 10%+ — far more than the effect being
/// measured — so a round is admitted only if it is self-consistent: its
/// two stripped halves and its two instrumented halves each agree within
/// 5% (the same code run twice can only disagree if the host interfered).
/// Disturbed rounds (printed as `x`) are retried, up to 8x`rounds`
/// attempts; if too few clean rounds exist the median falls back to all
/// attempts.
///
/// The gated single-thread compare uses a tight 1.5% admission tolerance
/// (a round admitted at 5% can still carry more noise than the effect
/// being measured); the ungated multi-thread compare, whose rounds are
/// scheduler-dependent by nature, uses 5%.
fn compare(threads: usize, ops: usize, rounds: usize, op_sample: u32) -> (f64, f64, f64) {
    let tol = if threads == 1 { 1.015 } else { 1.05 };
    let mut clean = Vec::with_capacity(rounds);
    let mut all = Vec::new();
    let mut base_ns = Vec::with_capacity(rounds);
    let mut instr_ns = Vec::with_capacity(rounds);
    let total_ops = (ops * threads) as f64;
    let mut attempt = 0;
    while clean.len() < rounds && attempt < rounds * 8 {
        let seed = 42 + attempt as u64;
        attempt += 1;
        let a1 = one_round(false, threads, ops, seed, op_sample);
        let b1 = one_round(true, threads, ops, seed, op_sample);
        let b2 = one_round(true, threads, ops, seed, op_sample);
        let a2 = one_round(false, threads, ops, seed, op_sample);
        let ratio = (b1 + b2) as f64 / (a1 + a2) as f64;
        all.push(ratio);
        if !(steady(a1, a2, tol) && steady(b1, b2, tol)) {
            eprint!(" x");
            continue;
        }
        clean.push(ratio);
        base_ns.push((a1 + a2) as f64 / 2.0 / total_ops);
        instr_ns.push((b1 + b2) as f64 / 2.0 / total_ops);
        eprint!(" {:+.2}%", (ratio - 1.0) * 100.0);
    }
    eprintln!();
    let mut ratios = if clean.len() >= 3 { clean } else { all };
    if base_ns.is_empty() {
        // No clean round at all: per-op columns from the fallback set are
        // not available; report NaN-free zeros rather than fabricating.
        base_ns.push(0.0);
        instr_ns.push(0.0);
    }
    (
        median(&mut base_ns),
        median(&mut instr_ns),
        median(&mut ratios),
    )
}

fn write_json(
    path: &str,
    ops: usize,
    rounds: usize,
    op_sample: u32,
    rows: &[(usize, f64, f64, f64)],
    pass: bool,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"metrics_overhead\",\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!(
        "  \"obs_enabled\": {},\n",
        atomfs_obs::ENABLED
    ));
    out.push_str(&format!("  \"ops_per_round\": {ops},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"op_sample\": {op_sample},\n"));
    out.push_str(&format!("  \"threshold_pct\": {THRESHOLD_PCT},\n"));
    out.push_str(&format!("  \"pass\": {pass},\n"));
    out.push_str("  \"series\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|(threads, base, instr, ratio)| {
            format!(
                "    {{\"threads\": {}, \"stripped_ns_per_op\": {:.1}, \"instrumented_ns_per_op\": {:.1}, \"overhead_pct\": {:.2}, \"gated\": {}}}",
                threads,
                base,
                instr,
                (ratio - 1.0) * 100.0,
                *threads == 1
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_obs.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Rounds must be long enough (~150ms) that host timeslice noise
    // amortizes; 40k-op rounds measurably do not on a shared VM.
    let ops: usize = args
        .first()
        .map(|s| s.parse().expect("ops_per_round"))
        .unwrap_or(200_000);
    let rounds: usize = args
        .get(1)
        .map(|s| s.parse().expect("rounds"))
        .unwrap_or(9);
    let op_sample: u32 = args
        .get(2)
        .map(|s| s.parse().expect("op_sample"))
        .unwrap_or(atomfs::DEFAULT_OP_SAMPLE);
    println!(
        "Metrics overhead, {ops} ops/round x {rounds} ABBA rounds, 1-in-{op_sample} op sampling ({} cores, obs {})",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        if atomfs_obs::ENABLED {
            "enabled"
        } else {
            "compiled out"
        }
    );
    let mut rows = Vec::new();
    for threads in [1usize, 8] {
        let (base, instr, ratio) = compare(threads, ops, rounds, op_sample);
        rows.push((threads, base, instr, ratio));
    }
    eprintln!();
    let mut table = Table::new(&["threads", "stripped ns/op", "instrumented ns/op", "overhead"]);
    for (threads, base, instr, ratio) in &rows {
        table.row(vec![
            threads.to_string(),
            format!("{base:.0}"),
            format!("{instr:.0}"),
            format!("{:+.2}%", (ratio - 1.0) * 100.0),
        ]);
    }
    table.print();
    let (_, _, _, ratio) = rows[0];
    let overhead_pct = (ratio - 1.0) * 100.0;
    let pass = overhead_pct <= THRESHOLD_PCT;
    write_json("BENCH_obs.json", ops, rounds, op_sample, &rows, pass);
    println!("\nwrote BENCH_obs.json");
    println!(
        "gate (1 thread): {overhead_pct:+.2}% vs threshold {THRESHOLD_PCT}% -> {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
