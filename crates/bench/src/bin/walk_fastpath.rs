//! `walk_fastpath` — throughput of the optimistic seqlock-validated walk
//! vs. the pessimistic lock-coupled walk on a read-mostly mix.
//!
//! The paper's §7.2–7.3 attributes AtomFS's scalability gap to lookups
//! serializing on the root mutex; the fast path removes every lock
//! acquisition from read-only traversals. This bench quantifies that on
//! a 95/5 read/write mix at 1–8 threads and gates the 8-thread speedup.
//!
//! Methodology: the reproduction host has a single core, so (exactly as
//! `fig11_scalability`) multi-thread points run on **virtual time** —
//! each worker's operation stream is captured on the real instrumented
//! AtomFS (fast path on or off), converted into a lock/work script, and
//! replayed on an ideal N-core machine by the `atomfs-locksim` engine.
//! Optimistic reads cost a work step but take no lock, so the simulated
//! contention difference is precisely the lock footprint the fast path
//! removed. Fast-path hit/retry/fallback counters come from a separate
//! metered run via `FsMetrics`.
//!
//! Unlike `fig11_scalability`, the cost model here is cold-cache and
//! in-kernel: `cache_hit_pct = 0` (every lookup actually walks the FS
//! tree — the dcache bypass would hide the walk under either config)
//! and syscall-entry dispatch instead of the 14 µs FUSE round trip
//! (which dominates op time and masks lock contention; rcu-walk in
//! Linux likewise only matters because there is no such hop). This is
//! the walk-bound regime the fast path is built for; Figure 11 keeps
//! reporting the deployment-realistic FUSE numbers.
//!
//! Usage: `walk_fastpath [ops_per_thread] [--gate]`
//! `--gate` exits nonzero if the 8-thread speedup is below 1.5x
//! (the CI criterion); the default only reports.

use std::sync::Arc;

use atomfs::{AtomFs, AtomFsConfig, FsMetrics};
use atomfs_bench::report::{ratio, Table};
use atomfs_locksim::{plan_from_scripts, simulate, CostModel, ScriptConverter, ThreadPlan};
use atomfs_obs::{ClockSource, Registry};
use atomfs_trace::{BufferSink, TraceSink};
use atomfs_vfs::FileSystem;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const GATE_THREADS: usize = 8;
const GATE: f64 = 1.5;
/// 95/5 read/write: of every 20 operations, one mutates.
const WRITE_ONE_IN: u64 = 20;

const DIRS: u64 = 4;
const FILES: u64 = 8;

/// Walk-bound cost model: in-kernel dispatch, cold dcache, AtomFS's
/// userspace per-component step cost. Both configs run under the SAME
/// model — only the captured lock footprints differ.
fn walk_model() -> CostModel {
    CostModel {
        per_op_overhead: 700,
        vfs_lookup: 600,
        per_lock_step: 1_000,
        per_mutation: 400,
        per_byte_milli: 150,
        big_lock: false,
        cache_hit_pct: 0,
        lockless_walk: false,
    }
}

fn xorshift(s: &mut u64) -> u64 {
    *s ^= *s << 13;
    *s ^= *s >> 7;
    *s ^= *s << 17;
    *s
}

fn setup(fs: &dyn FileSystem) {
    for d in 0..DIRS {
        fs.mkdir(&format!("/w{d}")).unwrap();
        for f in 0..FILES {
            let p = format!("/w{d}/f{f}");
            fs.mknod(&p).unwrap();
            fs.write(&p, 0, &[7u8; 64]).unwrap();
        }
    }
}

/// One worker's seeded op stream: reads (stat/read/readdir) with one
/// write in every `write_one_in` ops (0 = no writes at all).
fn run_stream_mixed(fs: &dyn FileSystem, seed: u64, ops: usize, write_one_in: u64) {
    let mut s = seed | 1;
    let mut buf = [0u8; 64];
    for i in 0..ops {
        let x = xorshift(&mut s);
        let p = format!("/w{}/f{}", x % DIRS, (x >> 8) % FILES);
        if write_one_in != 0 && x % write_one_in == 0 {
            let _ = fs.write(&p, x % 32, b"wf");
        } else {
            match i % 3 {
                0 => {
                    let _ = fs.stat(&p);
                }
                1 => {
                    let _ = fs.read(&p, 0, &mut buf);
                }
                _ => {
                    let _ = fs.readdir(&format!("/w{}", x % DIRS));
                }
            }
        }
    }
}

/// The gated 95/5 mix.
fn run_stream(fs: &dyn FileSystem, seed: u64, ops: usize) {
    run_stream_mixed(fs, seed, ops, WRITE_ONE_IN);
}

/// Capture per-worker streams on an instrumented AtomFS with the fast
/// path on or off, and convert them into simulator plans.
fn capture_plans(threads: usize, ops: usize, optimistic: bool) -> Vec<ThreadPlan> {
    let sink = Arc::new(BufferSink::new());
    let fs = AtomFs::traced_with_config(
        sink.clone() as Arc<dyn TraceSink>,
        AtomFsConfig {
            optimistic,
            ..AtomFsConfig::default()
        },
    );
    setup(&fs);
    sink.take(); // discard setup events
    let mut converter = ScriptConverter::new(walk_model());
    let mut plans = Vec::new();
    for t in 0..threads {
        run_stream(&fs, 0xC0FFEE ^ (t as u64 * 7919), ops);
        let scripts = converter.convert(&sink.take());
        plans.push(plan_from_scripts(&scripts));
    }
    plans
}

fn series(ops: usize, optimistic: bool) -> Vec<f64> {
    THREADS
        .iter()
        .map(|&threads| {
            let r = simulate(&capture_plans(threads, ops, optimistic));
            eprint!(".");
            r.throughput()
        })
        .collect()
}

/// Fast-path counters from a real metered 8-thread run (sample = 1, so
/// attempts/hits are exact too) at the given write ratio.
fn metered_counters(ops: usize, write_one_in: u64) -> (u64, u64, u64, u64) {
    let reg = Registry::new();
    let fs = Arc::new(AtomFs::new().with_metrics(FsMetrics::register_sampled(
        &reg,
        ClockSource::monotonic(),
        1,
    )));
    setup(&*fs);
    let mut handles = Vec::new();
    for t in 0..GATE_THREADS as u64 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            run_stream_mixed(&*fs, 0xC0FFEE ^ (t * 7919), ops, write_one_in);
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let snap = reg.snapshot();
    (
        snap.counter("atomfs_opt_attempts_total"),
        snap.counter("atomfs_opt_hits_total"),
        snap.counter("atomfs_opt_retries_total"),
        snap.counter("atomfs_opt_fallbacks_total"),
    )
}

/// Hit-rate-vs-write-ratio ablation: the same 8-thread stream with the
/// write share swept from 0% to 100% (`0` disables writes entirely).
/// A chain only fails validation when a mutation lands *during* a
/// reader's walk; on a single-core host that window opens on a
/// preemption tick (~1 in 10^3–10^4 ops), so the sweep needs far more
/// operations than the simulated series to resolve the trend.
const SWEEP_OPS: usize = 20_000;

const SWEEP: [(u64, &str); 6] = [
    (0, "0%"),
    (20, "5%"),
    (8, "12.5%"),
    (4, "25%"),
    (2, "50%"),
    (1, "100%"),
];

#[allow(clippy::too_many_arguments)]
fn write_json(
    path: &str,
    ops: usize,
    opt: &[f64],
    pess: &[f64],
    speedup: f64,
    pass: bool,
    counters: (u64, u64, u64, u64),
    sweep: &[(&str, (u64, u64, u64, u64))],
) {
    let (attempts, hits, retries, fallbacks) = counters;
    let hit_rate = if attempts > 0 {
        hits as f64 / attempts as f64
    } else {
        0.0
    };
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"walk_fastpath\",\n");
    out.push_str("  \"mix\": \"95/5 read-mostly\",\n");
    out.push_str(&format!("  \"ops_per_thread\": {ops},\n"));
    out.push_str(&format!("  \"gate_threads\": {GATE_THREADS},\n"));
    out.push_str(&format!("  \"gate\": {GATE},\n"));
    out.push_str(&format!("  \"speedup\": {speedup:.3},\n"));
    out.push_str(&format!("  \"pass\": {pass},\n"));
    out.push_str(&format!("  \"opt_attempts\": {attempts},\n"));
    out.push_str(&format!("  \"opt_hits\": {hits},\n"));
    out.push_str(&format!("  \"opt_retries\": {retries},\n"));
    out.push_str(&format!("  \"opt_fallbacks\": {fallbacks},\n"));
    out.push_str(&format!("  \"hit_rate\": {hit_rate:.4},\n"));
    out.push_str("  \"series\": [\n");
    let body: Vec<String> = THREADS
        .iter()
        .enumerate()
        .map(|(i, threads)| {
            format!(
                "    {{\"threads\": {}, \"optimistic_ops_s\": {:.0}, \"pessimistic_ops_s\": {:.0}, \"speedup\": {:.3}}}",
                threads,
                opt[i],
                pess[i],
                opt[i] / pess[i]
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"hit_rate_by_write_ratio\": [\n");
    let sweep_body: Vec<String> = sweep
        .iter()
        .map(|(label, (a, h, r, f))| {
            let rate = if *a > 0 { *h as f64 / *a as f64 } else { 0.0 };
            format!(
                "    {{\"writes\": \"{label}\", \"attempts\": {a}, \"hits\": {h}, \"retries\": {r}, \"fallbacks\": {f}, \"hit_rate\": {rate:.4}}}"
            )
        })
        .collect();
    out.push_str(&sweep_body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_walk.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let ops: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse().expect("ops"))
        .unwrap_or(400);

    println!("walk_fastpath — optimistic vs pessimistic walk, 95/5 mix, {ops} ops/thread (simulated cores)");
    let opt = series(ops, true);
    let pess = series(ops, false);
    eprintln!();

    let mut table = Table::new(&["threads", "optimistic", "pessimistic", "speedup"]);
    for (i, &threads) in THREADS.iter().enumerate() {
        table.row(vec![
            threads.to_string(),
            format!("{:.1} kops/s", opt[i] / 1e3),
            format!("{:.1} kops/s", pess[i] / 1e3),
            ratio(opt[i] / pess[i]),
        ]);
    }
    table.print();

    let sweep: Vec<(&str, (u64, u64, u64, u64))> = SWEEP
        .iter()
        .map(|&(one_in, label)| (label, metered_counters(SWEEP_OPS, one_in)))
        .collect();
    let counters = sweep
        .iter()
        .find(|(label, _)| *label == "5%")
        .map(|(_, c)| *c)
        .unwrap();
    let (attempts, hits, retries, fallbacks) = counters;
    println!(
        "\nfast path at the gated mix: {hits}/{attempts} hits ({:.1}%), {retries} retries, {fallbacks} fallbacks",
        if attempts > 0 {
            100.0 * hits as f64 / attempts as f64
        } else {
            0.0
        }
    );
    let mut ts = Table::new(&["writes", "attempts", "hit rate", "retries", "fallbacks"]);
    for (label, (a, h, r, f)) in &sweep {
        ts.row(vec![
            label.to_string(),
            a.to_string(),
            if *a > 0 {
                format!("{:.1}%", 100.0 * *h as f64 / *a as f64)
            } else {
                "-".to_string()
            },
            r.to_string(),
            f.to_string(),
        ]);
    }
    ts.print();

    let gi = THREADS.iter().position(|&t| t == GATE_THREADS).unwrap();
    let speedup = opt[gi] / pess[gi];
    let pass = speedup >= GATE;
    println!(
        "\n{GATE_THREADS}-thread speedup: {} (gate {GATE}x) -> {}",
        ratio(speedup),
        if pass { "PASS" } else { "FAIL" }
    );
    write_json(
        "BENCH_walk.json",
        ops,
        &opt,
        &pess,
        speedup,
        pass,
        counters,
        &sweep,
    );
    println!("wrote BENCH_walk.json");
    if gate && !pass {
        std::process::exit(1);
    }
}
