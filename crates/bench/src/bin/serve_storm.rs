//! Client-observed throughput of the RPC serving layer: pipelined
//! versus serial request submission, with the sharded executor ablated.
//!
//! N client threads each hold one connection to a served AtomFS and
//! drive a cheap-op mix (70% `stat`, 30% 256-byte `read`) over a
//! pre-created tree. Three serving modes:
//!
//! * `serial` — one request in flight per connection: every op is
//!   submit-then-wait, so each pays a full wire round trip (pipelining
//!   off — the baseline the tentpole exists to beat);
//! * `pipelined` — requests submitted in windows of [`WINDOW`], encoded
//!   into one `write` per window; the sharded executor and the batched
//!   reply flusher overlap execution with framing and socket I/O;
//! * `pipelined_1shard` — same client behaviour, but the executor is
//!   collapsed to a single shard (same total worker count), so every
//!   connection funnels through one queue: the ablation for shard
//!   routing, isolating head-of-line blocking from pipelining itself.
//!
//! A metered pass (serial, `MeteredFs` over the remote adapter) reports
//! client-observed p50/p99 per op — the latency a caller of the client
//! library actually experiences, wire and queueing included.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin serve_storm -- [ops_per_thread] [--gate]`
//!
//! With `--gate`, exits nonzero unless pipelined beats serial by
//! ≥ 2.0x at 8 client threads. Writes `BENCH_serve.json`.

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Instant;

use atomfs::AtomFs;
use atomfs_bench::report::Table;
use atomfs_obs::{ClockSource, Registry};
use atomfs_server::{
    serve, ExecutorConfig, RemoteFs, Request, RpcClient, Server, ServerConfig,
};
use atomfs_vfs::{FileSystem, MeteredFs};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
const GATE_BAR: f64 = 2.0;
/// In-flight requests per connection in pipelined mode. Matches the
/// server's default backpressure window, so the client can saturate the
/// pipeline without ever parking the server-side reader.
const WINDOW: usize = 64;
const DIRS: usize = 4;
const FILES: usize = 16;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serial,
    Pipelined,
    Pipelined1Shard,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Serial => "serial",
            Mode::Pipelined => "pipelined",
            Mode::Pipelined1Shard => "pipelined_1shard",
        }
    }

    fn server_config(self) -> ServerConfig {
        let executor = match self {
            // 4 shards x 2 workers: the default routing topology.
            Mode::Serial | Mode::Pipelined => ExecutorConfig::default(),
            // Sharding off, parallelism kept: 1 shard x 8 workers.
            Mode::Pipelined1Shard => ExecutorConfig {
                shards: 1,
                workers_per_shard: 8,
                queue_cap: 2048,
            },
        };
        ServerConfig {
            executor,
            ..ServerConfig::default()
        }
    }
}

fn start_server(mode: Mode) -> (Server<AtomFs>, SocketAddr) {
    let fs = Arc::new(AtomFs::new());
    for d in 0..DIRS {
        fs.mkdir(&format!("/d{d}")).unwrap();
        for f in 0..FILES {
            let path = format!("/d{d}/f{f}");
            fs.mknod(&path).unwrap();
            fs.write(&path, 0, &[f as u8; 1024]).unwrap();
        }
    }
    let srv = serve(fs, None, mode.server_config()).expect("bind loopback");
    let addr = srv.local_addr();
    (srv, addr)
}

fn op_request(i: usize) -> Request {
    let path = format!("/d{}/f{}", i % DIRS, i % FILES);
    if i % 10 < 7 {
        Request::Stat { path }
    } else {
        Request::Read {
            path,
            offset: 0,
            len: 256,
        }
    }
}

/// One timed run: total client-observed ops per second across threads.
fn run(mode: Mode, threads: usize, ops_per_thread: usize) -> f64 {
    let (srv, addr) = start_server(mode);
    let start = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..threads {
        handles.push(std::thread::spawn(move || {
            let client = RpcClient::connect(addr).expect("connect");
            match mode {
                Mode::Serial => {
                    for i in 0..ops_per_thread {
                        client
                            .call(&op_request(i).view())
                            .expect("serial call");
                    }
                }
                Mode::Pipelined | Mode::Pipelined1Shard => {
                    let mut i = 0;
                    while i < ops_per_thread {
                        let n = WINDOW.min(ops_per_thread - i);
                        let batch: Vec<Request> =
                            (i..i + n).map(op_request).collect();
                        let pendings =
                            client.submit_batch(&batch).expect("batch submit");
                        for p in pendings {
                            p.wait().expect("batch reply");
                        }
                        i += n;
                    }
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = srv.shutdown();
    assert_eq!(stats.malformed, 0);
    assert_eq!(stats.worker_panics, 0);
    (threads * ops_per_thread) as f64 / elapsed
}

/// Best of [`REPS`] runs.
fn best(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::MIN, f64::max)
}

/// Client-observed latency: a serial metered pass at 8 threads, p50/p99
/// from the shared `fs_op_ns` histograms.
fn latency_pass(ops_per_thread: usize) -> Vec<(String, u64, u64)> {
    let (srv, addr) = start_server(Mode::Serial);
    let registry = Arc::new(Registry::new());
    let mut handles = Vec::new();
    for _ in 0..8 {
        let registry = Arc::clone(&registry);
        handles.push(std::thread::spawn(move || {
            let client = Arc::new(RpcClient::connect(addr).expect("connect"));
            let fs = MeteredFs::new(
                RemoteFs::new(client),
                &registry,
                ClockSource::monotonic(),
            );
            let mut buf = [0u8; 256];
            for i in 0..ops_per_thread {
                let path = format!("/d{}/f{}", i % DIRS, i % FILES);
                if i % 10 < 7 {
                    fs.stat(&path).expect("stat");
                } else {
                    fs.read(&path, 0, &mut buf).expect("read");
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    srv.shutdown();
    ["stat", "read"]
        .iter()
        .map(|op| {
            let h = registry.histogram("fs_op_ns", &[("op", op)], "");
            let snap = h.snapshot();
            (op.to_string(), snap.quantile(0.5), snap.quantile(0.99))
        })
        .collect()
}

struct Series {
    mode: &'static str,
    threads: usize,
    ops_per_sec: f64,
}

fn write_json(
    path: &str,
    ops_per_thread: usize,
    series: &[Series],
    latency: &[(String, u64, u64)],
    speedup: f64,
    speedup_1shard: f64,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serve_storm\",\n");
    out.push_str(&format!("  \"ops_per_thread\": {ops_per_thread},\n"));
    out.push_str(&format!("  \"window\": {WINDOW},\n"));
    out.push_str("  \"series\": [\n");
    let rows: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "    {{\"mode\": \"{}\", \"threads\": {}, \"ops_per_sec\": {:.1}}}",
                s.mode, s.threads, s.ops_per_sec
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str("  \"client_latency_ns\": [\n");
    let lrows: Vec<String> = latency
        .iter()
        .map(|(op, p50, p99)| {
            format!("    {{\"op\": \"{op}\", \"p50\": {p50}, \"p99\": {p99}}}")
        })
        .collect();
    out.push_str(&lrows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"ablation\": {{\"pipelined_1shard_vs_serial_8t\": {speedup_1shard:.2}}},\n"
    ));
    out.push_str(&format!(
        "  \"gate\": {{\"metric\": \"pipelined vs serial, 8 client threads\", \"speedup\": {speedup:.2}, \"bar\": {GATE_BAR}}}\n"
    ));
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH_serve.json");
}

fn main() {
    let mut ops_per_thread = 20_000usize;
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        if arg == "--gate" {
            gate = true;
        } else {
            ops_per_thread = arg.parse().expect("ops_per_thread");
        }
    }
    println!(
        "RPC serving throughput, {ops_per_thread} ops/thread, window {WINDOW}, mix 70% stat / 30% read-256B"
    );

    let mut series = Vec::new();
    for mode in [Mode::Serial, Mode::Pipelined, Mode::Pipelined1Shard] {
        for &threads in &THREAD_COUNTS {
            let ops = best(|| run(mode, threads, ops_per_thread));
            series.push(Series {
                mode: mode.name(),
                threads,
                ops_per_sec: ops,
            });
        }
    }
    let latency = latency_pass(ops_per_thread / 4);

    let lookup = |mode: Mode, threads: usize| {
        series
            .iter()
            .find(|s| s.mode == mode.name() && s.threads == threads)
            .expect("series present")
            .ops_per_sec
    };
    let mut table = Table::new(&["mode", "1T kop/s", "2T kop/s", "4T kop/s", "8T kop/s"]);
    for mode in [Mode::Serial, Mode::Pipelined, Mode::Pipelined1Shard] {
        let mut cells = vec![mode.name().to_string()];
        for &threads in &THREAD_COUNTS {
            cells.push(format!("{:.1}", lookup(mode, threads) / 1e3));
        }
        table.row(cells);
    }
    table.print();
    println!();
    println!("client-observed latency (serial, 8 threads):");
    for (op, p50, p99) in &latency {
        println!("  {op:8} p50 {p50:>8} ns   p99 {p99:>8} ns");
    }

    let speedup = lookup(Mode::Pipelined, 8) / lookup(Mode::Serial, 8);
    let speedup_1shard = lookup(Mode::Pipelined1Shard, 8) / lookup(Mode::Serial, 8);
    println!();
    println!(
        "pipelined vs serial at 8 threads: {speedup:.2}x (1-shard ablation: {speedup_1shard:.2}x, gate bar {GATE_BAR}x)"
    );
    write_json(
        "BENCH_serve.json",
        ops_per_thread,
        &series,
        &latency,
        speedup,
        speedup_1shard,
    );
    println!("wrote BENCH_serve.json");

    if gate && speedup < GATE_BAR {
        eprintln!("GATE FAIL: pipelined speedup {speedup:.2}x < {GATE_BAR}x");
        std::process::exit(1);
    }
}
