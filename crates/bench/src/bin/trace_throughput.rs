//! Trace-recorder throughput: global mutex versus sharded stamping.
//!
//! Measures raw `emit` throughput (events/sec) of the reference
//! [`BufferSink`] (one mutex, one Vec) against the [`ShardedSink`]
//! (per-thread segments, global sequence stamp) as the emitting thread
//! count grows. Every thread replays the event shape of a `mkdir`
//! critical section, so the per-event payload (op descriptor, micro-ops)
//! matches what instrumented AtomFS actually emits.
//!
//! On one thread the two recorders should be within noise of each other
//! (one uncontended lock either way; the sharded recorder adds one atomic
//! `fetch_add`). From four threads up the single mutex serializes every
//! emitter while the shards only serialize same-slot threads, so the
//! sharded recorder should pull ahead — the ISSUE target is >= 2x at
//! eight threads on an eight-way host. (On hosts with fewer cores the
//! curve flattens at the core count; the JSON records the host's
//! parallelism so readers can judge.)
//!
//! Prints the table and writes machine-readable `BENCH_trace.json` to the
//! current directory.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin trace_throughput -- [rounds_per_thread]`

use std::sync::{Arc, Barrier};
use std::time::Instant;

use atomfs_bench::report::{ratio, Table};
use atomfs_trace::{
    BufferSink, Event, MicroOp, OpDesc, OpRet, PathTag, ShardedSink, Tid, TraceSink,
};
use atomfs_vfs::FileType;

const THREADS: [usize; 5] = [1, 2, 4, 8, 16];
const EVENTS_PER_ROUND: usize = 7;

/// The seven events of one `mkdir` critical section, as thread `tid`.
fn round_template(tid: Tid) -> [Event; EVENTS_PER_ROUND] {
    let ino = 100 + u64::from(tid.0);
    [
        Event::OpBegin {
            tid,
            op: OpDesc::Mkdir {
                path: vec!["bench".into()],
            },
        },
        Event::Lock {
            tid,
            ino: 1,
            tag: PathTag::Common,
        },
        Event::Mutate {
            tid,
            mop: MicroOp::Create {
                ino,
                ftype: FileType::Dir,
            },
        },
        Event::Mutate {
            tid,
            mop: MicroOp::Ins {
                parent: 1,
                name: "bench".into(),
                child: ino,
            },
        },
        Event::Lp { tid },
        Event::Unlock { tid, ino: 1 },
        Event::OpEnd {
            tid,
            ret: OpRet::Ok,
        },
    ]
}

/// Run `threads` emitters for `rounds` template rounds each; returns
/// events/sec. The sink is drained (and its event count sanity-checked)
/// after the threads join.
fn run_one(
    sink: Arc<dyn TraceSink>,
    drain: impl FnOnce() -> usize,
    threads: usize,
    rounds: usize,
) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let mut handles = Vec::new();
    for t in 0..threads {
        let sink = Arc::clone(&sink);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let template = round_template(Tid(t as u32 + 1));
            barrier.wait();
            for _ in 0..rounds {
                for e in &template {
                    sink.emit(e.clone());
                }
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed();
    let total = threads * rounds * EVENTS_PER_ROUND;
    assert_eq!(drain(), total, "recorder lost or duplicated events");
    total as f64 / elapsed.as_secs_f64()
}

fn mutex_series(rounds: usize) -> Vec<f64> {
    THREADS
        .iter()
        .map(|&threads| {
            let sink = Arc::new(BufferSink::new());
            let s = Arc::clone(&sink);
            let eps = run_one(sink, move || s.take().len(), threads, rounds);
            eprint!(".");
            eps
        })
        .collect()
}

fn sharded_series(rounds: usize) -> Vec<f64> {
    THREADS
        .iter()
        .map(|&threads| {
            let sink = Arc::new(ShardedSink::new());
            let s = Arc::clone(&sink);
            let eps = run_one(
                sink,
                move || {
                    let stamped = s.take_stamped();
                    // The merged drain must already be in stamp order.
                    assert!(stamped.windows(2).all(|w| w[0].0 < w[1].0));
                    stamped.len()
                },
                threads,
                rounds,
            );
            eprint!(".");
            eps
        })
        .collect()
}

fn json_escape_free(s: &str) -> &str {
    // Everything we write is ASCII identifiers/digits; keep the writer
    // honest anyway.
    assert!(!s.contains(['"', '\\']), "unexpected JSON-unsafe string");
    s
}

/// Hand-rolled JSON (the workspace deliberately has no serde_json).
fn write_json(path: &str, rounds: usize, mutex: &[f64], sharded: &[f64]) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"trace_throughput\",\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"rounds_per_thread\": {rounds},\n"));
    out.push_str(&format!("  \"events_per_round\": {EVENTS_PER_ROUND},\n"));
    out.push_str("  \"series\": [\n");
    let mut rows = Vec::new();
    for (recorder, series) in [("mutex", mutex), ("sharded", sharded)] {
        for (i, &threads) in THREADS.iter().enumerate() {
            rows.push(format!(
                "    {{\"recorder\": \"{}\", \"threads\": {}, \"events_per_sec\": {:.1}}}",
                json_escape_free(recorder),
                threads,
                series[i]
            ));
        }
    }
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_trace.json");
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("rounds_per_thread"))
        .unwrap_or(20_000);
    println!(
        "Trace-recorder throughput, {rounds} rounds/thread x {EVENTS_PER_ROUND} events/round ({} cores)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let mutex = mutex_series(rounds);
    let sharded = sharded_series(rounds);
    eprintln!();
    let mut table = Table::new(&["threads", "mutex Mev/s", "sharded Mev/s", "sharded/mutex"]);
    for (i, &threads) in THREADS.iter().enumerate() {
        table.row(vec![
            threads.to_string(),
            format!("{:.2}", mutex[i] / 1e6),
            format!("{:.2}", sharded[i] / 1e6),
            ratio(sharded[i] / mutex[i]),
        ]);
    }
    table.print();
    write_json("BENCH_trace.json", rounds, &mutex, &sharded);
    println!("\nwrote BENCH_trace.json");
}
