//! Streaming-checker pump throughput: can online CRL-H checking keep up
//! with a live 8-thread operation storm, and does its memory stay
//! bounded while it does?
//!
//! Two phases over the *same* workload — every thread hammering its own
//! subtree of a traced [`AtomFs`] with mkdir/rmdir pairs (create-delete
//! churn keeps the tree, and hence the per-unlock abstraction-relation
//! cost, constant while events flow at full instrumented-fs rate):
//!
//! * **raw** — no consumer on the sink; measures the emit rate the
//!   instrumented file system actually achieves (the sink itself
//!   sustains ~11M events/s of raw `emit`, see `BENCH_trace.json`; a
//!   real fs op emits several events around real locking, so the
//!   op-driven rate is what a production pump must match).
//! * **pumped** — a consuming [`TailCursor`] + [`StreamChecker`] (full
//!   config: helpers, invariants, relation at unlock) drains the sink
//!   while the storm runs, exactly like the server's `CheckerPump`. The
//!   pump rate is total events over the time until the *checker* has
//!   validated the last event — emitters finishing early doesn't count.
//!
//! The pump thread also samples the checker's retained-state census
//! after every ingest; the maxima prove O(in-flight window) memory:
//! open descriptors never exceed the thread count and the narration
//! ring stays under twice its cap, no matter how long the storm runs.
//!
//! Prints the table and writes `BENCH_check.json`.
//!
//! Usage: `checker_stream [rounds_per_thread] [--gate]`
//! `--gate` exits nonzero if the pump rate falls below 15% of the raw
//! emit rate, or if retained state exceeded its bounds.
//!
//! Why 15%: the pump replays full CRL-H semantics (ghost-state step,
//! per-unlock relation check, invariants) sequentially on one thread
//! while eight threads emit in parallel, so the checked rate can never
//! beat the single-thread replay cost (~300ns/event regardless of
//! emitter count). Measured on the 1-core CI host the pump sustains
//! 0.2-0.5x of the op-driven raw rate run-to-run (raw itself swings
//! 2-7 Mev/s with VM load); 0.15x is the regression floor every
//! healthy build clears, not the typical ratio. `BENCH_check.json`
//! records `host_parallelism` so readers can weigh the numbers.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use atomfs::AtomFs;
use atomfs_bench::report::{ratio, Table};
use atomfs_trace::{ShardedSink, TraceSink};
use atomfs_vfs::FileSystem;
use crlh::{CheckerConfig, HelperMode, RelationCadence, StreamChecker, StreamConfig};

const THREADS: usize = 8;

fn full_config() -> StreamConfig {
    StreamConfig {
        checker: CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        },
        ..StreamConfig::default()
    }
}

/// Per-thread create/delete churn in a private subtree: full event
/// traffic, bounded tree.
fn storm(fs: &Arc<AtomFs>, rounds: usize) -> Duration {
    let barrier = Arc::new(Barrier::new(THREADS + 1));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let fs = Arc::clone(fs);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            atomfs_trace::set_current_tid(atomfs_trace::Tid(100 + t as u32));
            barrier.wait();
            for r in 0..rounds {
                let p = format!("/t{t}/b{r}");
                fs.mkdir(&p).expect("private subtree");
                fs.rmdir(&p).expect("just created");
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().unwrap();
    }
    start.elapsed()
}

struct Retained {
    max_descriptors: usize,
    max_window_total: usize,
    max_narration: usize,
}

/// Raw phase: storm with nothing consuming the sink.
fn run_raw(rounds: usize) -> (u64, f64) {
    let sink = Arc::new(ShardedSink::new());
    let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
    for t in 0..THREADS {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    let _ = sink.take_stamped(); // measure the storm alone
    let elapsed = storm(&fs, rounds);
    let events = sink.take_stamped().len() as u64;
    (events, events as f64 / elapsed.as_secs_f64())
}

/// Pumped phase: same storm with a consuming cursor + streaming checker
/// racing it, clocked until the checker has validated everything.
fn run_pumped(rounds: usize) -> (u64, f64, f64, Retained) {
    let sink = Arc::new(ShardedSink::new());
    let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
    for t in 0..THREADS {
        fs.mkdir(&format!("/t{t}")).unwrap();
    }
    let done = Arc::new(AtomicBool::new(false));
    let pump = {
        let sink = Arc::clone(&sink);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut cursor = sink.follow_consuming();
            let mut checker = StreamChecker::new(full_config());
            let mut ret = Retained {
                max_descriptors: 0,
                max_window_total: 0,
                max_narration: 0,
            };
            loop {
                let quiescent = done.load(Ordering::Acquire);
                let batch = cursor.poll();
                if batch.is_empty() {
                    if quiescent {
                        break;
                    }
                    std::thread::sleep(Duration::from_micros(50));
                    continue;
                }
                let stats = cursor.stats();
                checker.ingest_owned(batch, stats);
                let census = checker.status().retained;
                ret.max_descriptors = ret.max_descriptors.max(census.descriptors);
                ret.max_window_total = ret.max_window_total.max(census.window_total());
                ret.max_narration = ret.max_narration.max(census.narration_lines);
            }
            assert!(cursor.finish().is_empty(), "quiescent poll drains all");
            let events = checker.events();
            let report = checker.finish();
            report.assert_ok();
            (events, ret)
        })
    };
    let start = Instant::now();
    let emit_elapsed = storm(&fs, rounds);
    drop(fs);
    done.store(true, Ordering::Release);
    let (events, retained) = pump.join().unwrap();
    let checked_elapsed = start.elapsed();
    (
        events,
        events as f64 / emit_elapsed.as_secs_f64(),
        events as f64 / checked_elapsed.as_secs_f64(),
        retained,
    )
}

fn write_json(
    path: &str,
    rounds: usize,
    raw_events: u64,
    raw_eps: f64,
    pumped_events: u64,
    emit_eps: f64,
    pump_eps: f64,
    ret: &Retained,
) {
    let out = format!(
        "{{\n  \"bench\": \"checker_stream\",\n  \"host_parallelism\": {},\n  \"threads\": {THREADS},\n  \"rounds_per_thread\": {rounds},\n  \"raw\": {{\"events\": {raw_events}, \"events_per_sec\": {raw_eps:.1}}},\n  \"pumped\": {{\"events\": {pumped_events}, \"emit_events_per_sec\": {emit_eps:.1}, \"pump_events_per_sec\": {pump_eps:.1}}},\n  \"pump_over_raw\": {:.3},\n  \"retained_max\": {{\"descriptors\": {}, \"window_total\": {}, \"narration\": {}}}\n}}\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        pump_eps / raw_eps,
        ret.max_descriptors,
        ret.max_window_total,
        ret.max_narration,
    );
    std::fs::write(path, out).expect("write BENCH_check.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let gate = args.iter().any(|a| a == "--gate");
    let rounds: usize = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(|s| s.parse().expect("rounds_per_thread"))
        .unwrap_or(20_000);

    println!(
        "Streaming-checker pump vs raw emit, {THREADS} threads x {rounds} mkdir/rmdir rounds ({} cores)",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
    let (raw_events, raw_eps) = run_raw(rounds);
    let (pumped_events, emit_eps, pump_eps, ret) = run_pumped(rounds);

    let mut table = Table::new(&["phase", "events", "Mev/s", "vs raw"]);
    table.row(vec![
        "raw emit".into(),
        raw_events.to_string(),
        format!("{:.2}", raw_eps / 1e6),
        "1.00x".into(),
    ]);
    table.row(vec![
        "pumped emit".into(),
        pumped_events.to_string(),
        format!("{:.2}", emit_eps / 1e6),
        ratio(emit_eps / raw_eps),
    ]);
    table.row(vec![
        "pump (checked)".into(),
        pumped_events.to_string(),
        format!("{:.2}", pump_eps / 1e6),
        ratio(pump_eps / raw_eps),
    ]);
    table.print();
    println!(
        "retained max: descriptors {}, window_total {}, narration {}",
        ret.max_descriptors, ret.max_window_total, ret.max_narration
    );
    write_json(
        "BENCH_check.json",
        rounds,
        raw_events,
        raw_eps,
        pumped_events,
        emit_eps,
        pump_eps,
        &ret,
    );
    println!("wrote BENCH_check.json");

    if gate {
        let ok_rate = pump_eps >= 0.15 * raw_eps;
        // O(window): never more open descriptors than emitting threads
        // (+1 for the setup thread), narration within twice its cap.
        let cap = full_config().narration_cap;
        let ok_retained =
            ret.max_descriptors <= THREADS + 1 && ret.max_narration <= 2 * cap;
        if !ok_rate {
            eprintln!(
                "GATE FAIL: pump at {:.2} Mev/s is below 15% of raw {:.2} Mev/s",
                pump_eps / 1e6,
                raw_eps / 1e6
            );
        }
        if !ok_retained {
            eprintln!(
                "GATE FAIL: retained state unbounded (descriptors {}, narration {})",
                ret.max_descriptors, ret.max_narration
            );
        }
        if !(ok_rate && ok_retained) {
            std::process::exit(1);
        }
        println!(
            "GATE OK: pump at {} of raw emit, retained bounded",
            ratio(pump_eps / raw_eps)
        );
    }
}
