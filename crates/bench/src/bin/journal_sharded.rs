//! Committed-write throughput of the sharded, group-committed journal
//! against the single-stream layout.
//!
//! The single-stream `JournalSink` appends every mutation to the device
//! under one mutex as it happens; the sharded sink stages mutations into
//! per-shard buffers and a group commit cuts an epoch across all shards
//! at each `sync`. This bench measures what that buys under contention:
//! N threads each write 64-byte chunks into their own files (spread over
//! shards by inode hash) and `sync` every 16 ops, so the metric — acked,
//! durable writes per second — charges both the staging path and the
//! commit path.
//!
//! Two mixes (write-heavy = 100% writes; mixed = 50/50 read/write) ×
//! thread counts 1/2/4/8 × layouts: single-stream, sharded at 1/2/4/8
//! shards with group commit, and 4 shards with group commit off (every
//! sync cuts its own epoch eagerly — the ablation for the epoch cut
//! itself). Prints a table and writes `BENCH_journal_sharded.json`.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin journal_sharded -- [ops_per_thread] [--gate]`
//!
//! With `--gate`, exits nonzero unless sharded×4 with group commit beats
//! single-stream by ≥ 2.0x on the write-heavy mix at 8 threads.

use std::sync::Arc;
use std::time::Instant;

use atomfs_bench::report::Table;
use atomfs_journal::{BlockDevice, Disk, JournaledFs, ShardConfig};
use atomfs_trace::{set_current_tid, Tid};
use atomfs_vfs::FileSystem;

const SYNC_EVERY: usize = 16;
const FILES_PER_THREAD: usize = 16;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
const GATE_BAR: f64 = 2.0;

/// Simulated cost of a flush barrier — the device-side latency every
/// layout pays on every durability point. A free barrier (the default
/// `Disk`) makes any commit-strategy comparison meaningless: group
/// commit's entire job is amortizing this latency across concurrent
/// syncers, and a real NVMe flush/FUA round trip sits in this range.
const FLUSH_LATENCY_US: u64 = 100;

#[derive(Clone, Copy)]
enum Layout {
    Single,
    Sharded(ShardConfig),
}

fn layouts() -> Vec<(&'static str, Layout)> {
    // Size every shard region for the whole run (the default 16 MiB is a
    // mount-lifetime budget between checkpoints; this bench never
    // checkpoints, and the simulated disk only materializes written
    // sectors, so 64 MiB regions cost nothing until used).
    let sized = |shards: usize| {
        let mut cfg = ShardConfig::with_shards(shards);
        cfg.region_sectors = 1 << 17; // 64 MiB per shard
        cfg
    };
    vec![
        ("single", Layout::Single),
        ("sharded1", Layout::Sharded(sized(1))),
        ("sharded2", Layout::Sharded(sized(2))),
        ("sharded4", Layout::Sharded(sized(4))),
        ("sharded8", Layout::Sharded(sized(8))),
        (
            "sharded4_nogc",
            Layout::Sharded(sized(4).without_group_commit()),
        ),
    ]
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    WriteHeavy,
    Mixed5050,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::WriteHeavy => "write_heavy",
            Mix::Mixed5050 => "mixed_50_50",
        }
    }
}

fn mount(layout: Layout) -> JournaledFs {
    let disk = Arc::new(Disk::with_flush_latency(std::time::Duration::from_micros(
        FLUSH_LATENCY_US,
    ))) as Arc<dyn BlockDevice>;
    match layout {
        Layout::Single => JournaledFs::create(disk),
        Layout::Sharded(cfg) => JournaledFs::create_sharded(disk, cfg),
    }
}

/// One timed run: returns committed (synced) writes per second.
fn run(layout: Layout, mix: Mix, threads: usize, ops_per_thread: usize) -> f64 {
    let jfs = Arc::new(mount(layout));
    // Setup outside the timer: a dir per thread, files spread over
    // shards by their own inode hash (the write path hints the file's
    // ino, not the parent's).
    for t in 0..threads {
        jfs.mkdir(&format!("/t{t}")).unwrap();
        for f in 0..FILES_PER_THREAD {
            jfs.mknod(&format!("/t{t}/f{f}")).unwrap();
        }
    }
    jfs.sync().unwrap();

    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let jfs = Arc::clone(&jfs);
        handles.push(std::thread::spawn(move || {
            set_current_tid(Tid(5000 + t as u32));
            let paths: Vec<String> = (0..FILES_PER_THREAD)
                .map(|f| format!("/t{t}/f{f}"))
                .collect();
            let payload = [t as u8; 64];
            let mut scratch = [0u8; 64];
            let mut writes = 0usize;
            for i in 0..ops_per_thread {
                let path = &paths[i % FILES_PER_THREAD];
                let offset = ((i / FILES_PER_THREAD) % 8) as u64 * 64;
                let is_write = mix == Mix::WriteHeavy || i % 2 == 0;
                if is_write {
                    jfs.write(path, offset, &payload).unwrap();
                    writes += 1;
                    if writes % SYNC_EVERY == 0 {
                        jfs.sync().unwrap();
                    }
                } else {
                    let _ = jfs.read(path, offset, &mut scratch).unwrap();
                }
            }
            jfs.sync().unwrap();
            writes
        }));
    }
    let committed: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    committed as f64 / start.elapsed().as_secs_f64()
}

/// Best of [`REPS`] runs.
fn best(mut f: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| f()).fold(f64::MIN, f64::max)
}

struct Series {
    layout: &'static str,
    mix: &'static str,
    threads: usize,
    writes_per_sec: f64,
}

fn write_json(path: &str, ops_per_thread: usize, series: &[Series], speedup: f64) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"journal_sharded\",\n");
    out.push_str(&format!("  \"ops_per_thread\": {ops_per_thread},\n"));
    out.push_str(&format!("  \"sync_every\": {SYNC_EVERY},\n"));
    out.push_str(&format!("  \"files_per_thread\": {FILES_PER_THREAD},\n"));
    out.push_str("  \"series\": [\n");
    let rows: Vec<String> = series
        .iter()
        .map(|s| {
            format!(
                "    {{\"layout\": \"{}\", \"mix\": \"{}\", \"threads\": {}, \"committed_writes_per_sec\": {:.1}}}",
                s.layout, s.mix, s.threads, s.writes_per_sec
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ],\n");
    out.push_str(&format!(
        "  \"gate\": {{\"metric\": \"sharded4 vs single, write_heavy, 8 threads\", \"speedup\": {:.2}, \"bar\": {GATE_BAR}}}\n",
        speedup
    ));
    out.push_str("}\n");
    std::fs::write(path, out).expect("write BENCH_journal_sharded.json");
}

fn main() {
    let mut ops_per_thread = 4_000usize;
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        if arg == "--gate" {
            gate = true;
        } else {
            ops_per_thread = arg.parse().expect("ops_per_thread");
        }
    }
    println!(
        "Sharded journal group-commit throughput, {ops_per_thread} ops/thread, sync every {SYNC_EVERY} writes"
    );

    let mut series = Vec::new();
    for mix in [Mix::WriteHeavy, Mix::Mixed5050] {
        for (name, layout) in layouts() {
            for &threads in &THREAD_COUNTS {
                let wps = best(|| run(layout, mix, threads, ops_per_thread));
                series.push(Series {
                    layout: name,
                    mix: mix.name(),
                    threads,
                    writes_per_sec: wps,
                });
            }
        }
    }

    let lookup = |layout: &str, mix: Mix, threads: usize| {
        series
            .iter()
            .find(|s| s.layout == layout && s.mix == mix.name() && s.threads == threads)
            .expect("series present")
            .writes_per_sec
    };
    let mut table = Table::new(&["mix", "layout", "1T kw/s", "2T kw/s", "4T kw/s", "8T kw/s"]);
    for mix in [Mix::WriteHeavy, Mix::Mixed5050] {
        for (name, _) in layouts() {
            let mut cells = vec![mix.name().to_string(), name.to_string()];
            for &threads in &THREAD_COUNTS {
                cells.push(format!("{:.1}", lookup(name, mix, threads) / 1e3));
            }
            table.row(cells);
        }
    }
    table.print();

    let speedup =
        lookup("sharded4", Mix::WriteHeavy, 8) / lookup("single", Mix::WriteHeavy, 8);
    write_json("BENCH_journal_sharded.json", ops_per_thread, &series, speedup);
    println!("\nwrote BENCH_journal_sharded.json");
    println!(
        "sharded4 (gc on) vs single at 8 threads, write-heavy: {speedup:.2}x (gate: >= {GATE_BAR}x)"
    );
    if gate && speedup < GATE_BAR {
        eprintln!("GATE FAILED: {speedup:.2}x < {GATE_BAR}x");
        std::process::exit(1);
    }
}
