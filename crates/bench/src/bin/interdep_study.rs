//! §3.2 — the path inter-dependency generality study.
//!
//! The paper logs the begin/end of the critical section of each path-based
//! operation, runs `rename + op` concurrently with the rename modifying
//! `op`'s path, and reports the combination as exhibiting *path
//! inter-dependency* if the rename completes while `op` is inside its
//! critical section (all 5 combinations did, on all 9 measured file
//! systems).
//!
//! This reproduction stages the experiment deterministically on
//! instrumented AtomFS: the operation is parked inside its critical
//! section (its trace gate fires before its LP, i.e. between the paper's
//! critical-section log points), a rename then moves an ancestor of its
//! traversed path to completion, and the trace proves the overlap. The
//! same run is repeated in fixed-LP checker mode to show each overlap
//! genuinely requires helping. Designs that avoid the phenomenon
//! (big-lock: serializes; traversal-retry: redoes the lookup) are
//! contrasted in the closing notes.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_bench::report::Table;
use atomfs_trace::{set_current_tid, BufferSink, Event, GateSink, Tid, TraceSink};
use atomfs_vfs::FileSystem;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

struct Outcome {
    overlap: bool,
    op_succeeded: bool,
    helps: u64,
    fixed_lp_fails: bool,
}

/// Stage `op` against a rename that breaks its path on instrumented
/// AtomFS and analyze the recorded trace with both checker modes.
fn stage(op: &str) -> Outcome {
    let sink = Arc::new(GateSink::new(BufferSink::new()));
    let fs = Arc::new(AtomFs::traced(sink.clone() as Arc<dyn TraceSink>));
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.mknod("/a/b/victim").unwrap();
    fs.mkdir("/a/b/vdir").unwrap();
    fs.mkdir("/other").unwrap();

    // Park the operation inside its critical section, holding locks
    // strictly below /a (the inode the rename moves).
    let gate = sink.add_gate(|e| matches!(e, Event::Lp { tid } if *tid == Tid(7001)));
    let fs2 = Arc::clone(&fs);
    let op_name = op.to_string();
    let worker = std::thread::spawn(move || {
        set_current_tid(Tid(7001));
        match op_name.as_str() {
            "create" => fs2.mknod("/a/b/new"),
            "mkdir" => fs2.mkdir("/a/b/newdir"),
            "unlink" => fs2.unlink("/a/b/victim"),
            "rmdir" => fs2.rmdir("/a/b/vdir"),
            "rename" => fs2.rename("/a/b/victim", "/a/b/renamed"),
            other => panic!("unknown op {other}"),
        }
    });
    sink.wait_parked(gate);

    // The rename moves /a — the operation's traversed path — to completion.
    set_current_tid(Tid(7002));
    let rename_done = fs.rename("/a", "/other/a2").is_ok();
    let parked = sink.is_parked(gate);
    sink.open(gate);
    let op_succeeded = worker.join().unwrap().is_ok();

    let events = sink.inner().take();
    let helped = LpChecker::check(
        CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        },
        &events,
    );
    helped.assert_ok();
    let fixed = LpChecker::check(
        CheckerConfig {
            mode: HelperMode::FixedLp,
            relation: RelationCadence::AtEnd,
            invariants: false,
        },
        &events,
    );
    Outcome {
        overlap: rename_done && parked,
        op_succeeded,
        helps: helped.stats.helps,
        fixed_lp_fails: !fixed.is_ok(),
    }
}

fn main() {
    let ops = ["create", "mkdir", "unlink", "rmdir", "rename"];
    println!("§3.2 path inter-dependency study on AtomFS (staged; all overlaps deterministic)");
    println!("paper: all 5 rename+op combinations overlap on all 9 measured file systems\n");
    let mut table = Table::new(&[
        "rename + op",
        "overlap",
        "op result",
        "threads helped",
        "fixed-LP linearizes?",
    ]);
    for op in ops {
        let o = stage(op);
        table.row(vec![
            format!("rename + {op}"),
            if o.overlap { "yes" } else { "NO" }.to_string(),
            if o.op_succeeded { "success" } else { "failure" }.to_string(),
            o.helps.to_string(),
            if o.fixed_lp_fails {
                "no (needs helpers)"
            } else {
                "yes"
            }
            .to_string(),
        ]);
        eprint!(".");
    }
    eprintln!();
    table.print();
    println!(
        "\nDesign contrast (per §5.1):\n\
         - atomfs-biglock: a global lock forbids critical-section overlap entirely,\n\
           eliminating path inter-dependency along with all concurrency.\n\
         - retryfs (Linux-VFS style): walks that raced a rename are revalidated and\n\
           redone, so operations never commit on a stale path and never need helping."
    );
}
