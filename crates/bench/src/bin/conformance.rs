//! POSIX conformance suite — the xfstests analog (§6).
//!
//! The paper evaluates AtomFS with xfstests and reports 418/451 tmpfs
//! cases passing, all failures caused by unimplemented functionality
//! (hard/symbolic links, permissions, ...) rather than bugs. This binary
//! runs a POSIX semantics suite against every file system configuration
//! in the workspace and prints the same kind of scorecard: functional
//! cases must pass everywhere; "unsupported-feature" cases fail uniformly
//! by design.
//!
//! Usage: `cargo run -p atomfs-bench --bin conformance`

use atomfs_bench::report::Table;
use atomfs_bench::setups::{build, ALL_SYSTEMS};
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsError};

type Case = (&'static str, fn(&dyn FileSystem) -> Result<(), String>);

macro_rules! expect {
    ($cond:expr, $($msg:tt)*) => {
        if !$cond {
            return Err(format!($($msg)*));
        }
    };
}

macro_rules! expect_err {
    ($call:expr, $err:expr) => {{
        let got = $call;
        expect!(
            got == Err($err),
            "{}: expected {:?}, got {:?}",
            stringify!($call),
            $err,
            got
        );
    }};
}

fn ok<T>(r: Result<T, FsError>, what: &str) -> Result<T, String> {
    r.map_err(|e| format!("{what}: {e}"))
}

/// The functional cases: must pass on every file system.
fn functional_cases() -> Vec<Case> {
    vec![
        ("create/mknod-basic", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect!(
                fs.stat("/f").map(|m| m.ftype.is_file()) == Ok(true),
                "not a file"
            );
            Ok(())
        }),
        ("create/mkdir-basic", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            expect!(
                fs.stat("/d").map(|m| m.ftype.is_dir()) == Ok(true),
                "not a dir"
            );
            Ok(())
        }),
        ("create/nested", |fs| {
            ok(fs.mkdir_all("/a/b/c"), "mkdir_all")?;
            ok(fs.mknod("/a/b/c/f"), "mknod")?;
            Ok(())
        }),
        ("create/eexist-file", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect_err!(fs.mknod("/f"), FsError::Exists);
            expect_err!(fs.mkdir("/f"), FsError::Exists);
            Ok(())
        }),
        ("create/eexist-dir", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            expect_err!(fs.mkdir("/d"), FsError::Exists);
            expect_err!(fs.mknod("/d"), FsError::Exists);
            Ok(())
        }),
        ("create/enoent-parent", |fs| {
            expect_err!(fs.mknod("/no/f"), FsError::NotFound);
            expect_err!(fs.mkdir("/no/d"), FsError::NotFound);
            Ok(())
        }),
        ("create/enotdir-parent", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect_err!(fs.mknod("/f/x"), FsError::NotDir);
            expect_err!(fs.mkdir("/f/x"), FsError::NotDir);
            Ok(())
        }),
        ("create/root-eexist", |fs| {
            expect_err!(fs.mkdir("/"), FsError::Exists);
            expect_err!(fs.mknod("/"), FsError::Exists);
            Ok(())
        }),
        ("remove/unlink-basic", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.unlink("/f"), "unlink")?;
            expect_err!(fs.stat("/f"), FsError::NotFound);
            Ok(())
        }),
        ("remove/unlink-enoent", |fs| {
            expect_err!(fs.unlink("/f"), FsError::NotFound);
            Ok(())
        }),
        ("remove/unlink-dir-eisdir", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            expect_err!(fs.unlink("/d"), FsError::IsDir);
            Ok(())
        }),
        ("remove/rmdir-basic", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.rmdir("/d"), "rmdir")?;
            expect_err!(fs.stat("/d"), FsError::NotFound);
            Ok(())
        }),
        ("remove/rmdir-file-enotdir", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect_err!(fs.rmdir("/f"), FsError::NotDir);
            Ok(())
        }),
        ("remove/rmdir-nonempty", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.mknod("/d/f"), "mknod")?;
            expect_err!(fs.rmdir("/d"), FsError::NotEmpty);
            ok(fs.unlink("/d/f"), "unlink")?;
            ok(fs.rmdir("/d"), "rmdir")?;
            Ok(())
        }),
        ("remove/root-protected", |fs| {
            expect_err!(fs.rmdir("/"), FsError::Busy);
            expect_err!(fs.unlink("/"), FsError::IsDir);
            Ok(())
        }),
        ("rename/file-basic", |fs| {
            ok(fs.mknod("/a"), "mknod")?;
            ok(fs.write("/a", 0, b"xyz").map(|_| ()), "write")?;
            ok(fs.rename("/a", "/b"), "rename")?;
            expect_err!(fs.stat("/a"), FsError::NotFound);
            expect!(fs.read_to_vec("/b") == Ok(b"xyz".to_vec()), "content moved");
            Ok(())
        }),
        ("rename/dir-subtree", |fs| {
            ok(fs.mkdir_all("/a/b"), "mkdir_all")?;
            ok(fs.mknod("/a/b/f"), "mknod")?;
            ok(fs.mkdir("/z"), "mkdir")?;
            ok(fs.rename("/a", "/z/a2"), "rename")?;
            expect!(fs.exists("/z/a2/b/f"), "subtree moved");
            expect!(!fs.exists("/a"), "source gone");
            Ok(())
        }),
        ("rename/replace-file", |fs| {
            ok(fs.mknod("/a"), "mknod a")?;
            ok(fs.mknod("/b"), "mknod b")?;
            ok(fs.write("/a", 0, b"new").map(|_| ()), "write")?;
            ok(fs.rename("/a", "/b"), "rename")?;
            expect!(fs.read_to_vec("/b") == Ok(b"new".to_vec()), "replaced");
            Ok(())
        }),
        ("rename/replace-empty-dir", |fs| {
            ok(fs.mkdir("/a"), "mkdir a")?;
            ok(fs.mkdir("/b"), "mkdir b")?;
            ok(fs.rename("/a", "/b"), "rename")?;
            expect!(fs.exists("/b"), "target exists");
            expect!(!fs.exists("/a"), "source gone");
            Ok(())
        }),
        ("rename/nonempty-target", |fs| {
            ok(fs.mkdir("/a"), "mkdir")?;
            ok(fs.mkdir("/b"), "mkdir")?;
            ok(fs.mknod("/b/f"), "mknod")?;
            expect_err!(fs.rename("/a", "/b"), FsError::NotEmpty);
            Ok(())
        }),
        ("rename/dir-over-file", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.mknod("/f"), "mknod")?;
            expect_err!(fs.rename("/d", "/f"), FsError::NotDir);
            Ok(())
        }),
        ("rename/file-over-dir", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.mkdir("/d"), "mkdir")?;
            expect_err!(fs.rename("/f", "/d"), FsError::IsDir);
            Ok(())
        }),
        ("rename/into-own-subtree", |fs| {
            ok(fs.mkdir_all("/a/b"), "mkdir_all")?;
            expect_err!(fs.rename("/a", "/a/b/c"), FsError::InvalidArgument);
            Ok(())
        }),
        ("rename/onto-ancestor", |fs| {
            ok(fs.mkdir_all("/a/b/c"), "mkdir_all")?;
            expect_err!(fs.rename("/a/b/c", "/a"), FsError::NotEmpty);
            Ok(())
        }),
        ("rename/self", |fs| {
            ok(fs.mkdir("/a"), "mkdir")?;
            ok(fs.rename("/a", "/a"), "self-rename")?;
            expect_err!(fs.rename("/nope", "/nope"), FsError::NotFound);
            Ok(())
        }),
        ("rename/missing-source", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            expect_err!(fs.rename("/nope", "/d/x"), FsError::NotFound);
            Ok(())
        }),
        ("rename/missing-target-parent", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect_err!(fs.rename("/f", "/no/g"), FsError::NotFound);
            Ok(())
        }),
        ("rename/root-ebusy", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            expect_err!(fs.rename("/", "/d/r"), FsError::Busy);
            expect_err!(fs.rename("/d", "/"), FsError::Busy);
            Ok(())
        }),
        ("io/write-read-roundtrip", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect!(fs.write("/f", 0, b"hello world") == Ok(11), "write");
            let mut buf = [0u8; 5];
            expect!(fs.read("/f", 6, &mut buf) == Ok(5), "read");
            expect!(&buf == b"world", "content");
            Ok(())
        }),
        ("io/sparse-write", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect!(fs.write("/f", 100, b"x") == Ok(1), "write");
            expect!(fs.stat("/f").map(|m| m.size) == Ok(101), "size");
            let mut buf = [7u8; 100];
            expect!(fs.read("/f", 0, &mut buf) == Ok(100), "read");
            expect!(buf.iter().all(|&b| b == 0), "hole is zero");
            Ok(())
        }),
        ("io/read-past-eof", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"abc").map(|_| ()), "write")?;
            let mut buf = [0u8; 4];
            expect!(fs.read("/f", 10, &mut buf) == Ok(0), "read past EOF");
            Ok(())
        }),
        ("io/truncate-shrink-grow", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"0123456789").map(|_| ()), "write")?;
            ok(fs.truncate("/f", 4), "truncate down")?;
            expect!(fs.read_to_vec("/f") == Ok(b"0123".to_vec()), "shrunk");
            ok(fs.truncate("/f", 6), "truncate up")?;
            expect!(fs.read_to_vec("/f") == Ok(b"0123\0\0".to_vec()), "grown");
            Ok(())
        }),
        ("io/dir-io-fails", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            let mut buf = [0u8; 1];
            expect_err!(fs.read("/d", 0, &mut buf), FsError::IsDir);
            expect_err!(fs.write("/d", 0, b"x"), FsError::IsDir);
            expect_err!(fs.truncate("/d", 0), FsError::IsDir);
            Ok(())
        }),
        ("io/zero-length-write", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect!(fs.write("/f", 50, b"") == Ok(0), "empty write");
            expect!(fs.stat("/f").map(|m| m.size) == Ok(0), "size unchanged");
            Ok(())
        }),
        ("dir/readdir-lists", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.mknod("/d/a"), "mknod")?;
            ok(fs.mkdir("/d/b"), "mkdir")?;
            let mut names = ok(fs.readdir("/d"), "readdir")?;
            names.sort();
            expect!(names == ["a", "b"], "listing {names:?}");
            Ok(())
        }),
        ("dir/readdir-file-enotdir", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            expect_err!(fs.readdir("/f"), FsError::NotDir);
            Ok(())
        }),
        ("dir/readdir-root", |fs| {
            expect!(fs.readdir("/") == Ok(vec![]), "empty root");
            ok(fs.mknod("/x"), "mknod")?;
            expect!(fs.readdir("/") == Ok(vec!["x".to_string()]), "one entry");
            Ok(())
        }),
        ("dir/stat-counts", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.mkdir("/d/s"), "mkdir")?;
            ok(fs.mknod("/d/f"), "mknod")?;
            let m = ok(fs.stat("/d"), "stat")?;
            expect!(m.size == 2, "entry count {}", m.size);
            Ok(())
        }),
        ("path/dot-and-dotdot", |fs| {
            ok(fs.mkdir("/a"), "mkdir")?;
            ok(fs.mknod("/a/./f"), "dot")?;
            expect!(fs.exists("/a/f"), "dot resolved");
            expect!(fs.exists("/a/x/../f"), "dotdot resolved lexically");
            Ok(())
        }),
        ("path/duplicate-slashes", |fs| {
            ok(fs.mkdir("//a"), "mkdir")?;
            expect!(fs.exists("/a"), "slashes collapsed");
            Ok(())
        }),
        ("path/relative-rejected", |fs| {
            expect_err!(fs.mkdir("rel"), FsError::InvalidArgument);
            expect_err!(fs.stat(""), FsError::InvalidArgument);
            Ok(())
        }),
        ("path/long-name", |fs| {
            let long = format!("/{}", "x".repeat(300));
            expect_err!(fs.mknod(&long), FsError::NameTooLong);
            let max = format!("/{}", "y".repeat(255));
            ok(fs.mknod(&max), "255-byte name")?;
            Ok(())
        }),
        ("path/deep-nesting", |fs| {
            let mut p = String::new();
            for i in 0..32 {
                p.push_str(&format!("/n{i}"));
                ok(fs.mkdir(&p), "deep mkdir")?;
            }
            expect!(fs.exists(&p), "deep path exists");
            Ok(())
        }),
        ("misc/stat-root", |fs| {
            let m = ok(fs.stat("/"), "stat root")?;
            expect!(m.ftype.is_dir(), "root is dir");
            Ok(())
        }),
        ("misc/sync-noop", |fs| {
            ok(fs.sync(), "sync")?;
            Ok(())
        }),
        ("misc/many-files-one-dir", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            for i in 0..300 {
                ok(fs.mknod(&format!("/d/f{i}")), "mknod")?;
            }
            expect!(fs.readdir("/d").map(|v| v.len()) == Ok(300), "300 entries");
            for i in 0..300 {
                expect!(fs.exists(&format!("/d/f{i}")), "lookup f{i}");
            }
            Ok(())
        }),
    ]
}

/// Features the paper's prototype also lacks; these fail uniformly
/// (mirroring the 33 xfstests failures attributed to missing features).
//
/// Additional depth: corner cases xfstests-style suites sweep.
fn extended_cases() -> Vec<Case> {
    vec![
        ("rename/chain-of-renames", |fs| {
            ok(fs.mknod("/a"), "mknod")?;
            ok(fs.write("/a", 0, b"chained").map(|_| ()), "write")?;
            for i in 0..10 {
                ok(
                    fs.rename(
                        &if i == 0 {
                            "/a".to_string()
                        } else {
                            format!("/r{}", i - 1)
                        },
                        &format!("/r{i}"),
                    ),
                    "rename",
                )?;
            }
            expect!(fs.read_to_vec("/r9") == Ok(b"chained".to_vec()), "content");
            Ok(())
        }),
        ("rename/swap-via-temp", |fs| {
            ok(fs.mknod("/x"), "mknod")?;
            ok(fs.mknod("/y"), "mknod")?;
            ok(fs.write("/x", 0, b"X").map(|_| ()), "write")?;
            ok(fs.write("/y", 0, b"Y").map(|_| ()), "write")?;
            ok(fs.rename("/x", "/tmp_"), "r1")?;
            ok(fs.rename("/y", "/x"), "r2")?;
            ok(fs.rename("/tmp_", "/y"), "r3")?;
            expect!(fs.read_to_vec("/x") == Ok(b"Y".to_vec()), "swapped x");
            expect!(fs.read_to_vec("/y") == Ok(b"X".to_vec()), "swapped y");
            Ok(())
        }),
        ("rename/same-name-different-parents", |fs| {
            ok(fs.mkdir("/p1"), "mkdir")?;
            ok(fs.mkdir("/p2"), "mkdir")?;
            ok(fs.mknod("/p1/same"), "mknod")?;
            ok(fs.mknod("/p2/same"), "mknod")?;
            ok(fs.write("/p1/same", 0, b"one").map(|_| ()), "write")?;
            ok(fs.rename("/p1/same", "/p2/same"), "replace")?;
            expect!(fs.read_to_vec("/p2/same") == Ok(b"one".to_vec()), "moved");
            expect!(!fs.exists("/p1/same"), "source gone");
            Ok(())
        }),
        ("rename/deep-to-shallow-and-back", |fs| {
            ok(fs.mkdir_all("/d1/d2/d3/d4"), "mkdir_all")?;
            ok(fs.mknod("/d1/d2/d3/d4/f"), "mknod")?;
            ok(fs.rename("/d1/d2/d3/d4/f", "/f"), "up")?;
            ok(fs.rename("/f", "/d1/d2/d3/d4/f"), "down")?;
            expect!(fs.exists("/d1/d2/d3/d4/f"), "round trip");
            Ok(())
        }),
        ("rename/directory-with-contents-over-empty", |fs| {
            ok(fs.mkdir("/full"), "mkdir")?;
            for i in 0..20 {
                ok(fs.mknod(&format!("/full/f{i}")), "mknod")?;
            }
            ok(fs.mkdir("/empty"), "mkdir")?;
            ok(fs.rename("/full", "/empty"), "rename")?;
            expect!(
                fs.readdir("/empty").map(|v| v.len()) == Ok(20),
                "contents moved"
            );
            Ok(())
        }),
        ("rename/sibling-subtrees", |fs| {
            ok(fs.mkdir_all("/t/left/deep"), "mkdir_all")?;
            ok(fs.mkdir_all("/t/right"), "mkdir_all")?;
            ok(fs.rename("/t/left/deep", "/t/right/deep2"), "rename")?;
            expect!(fs.exists("/t/right/deep2"), "moved");
            expect!(
                fs.readdir("/t/left").map(|v| v.is_empty()) == Ok(true),
                "left empty"
            );
            Ok(())
        }),
        ("rename/einval-immediate-child", |fs| {
            ok(fs.mkdir("/a"), "mkdir")?;
            expect_err!(fs.rename("/a", "/a/b"), FsError::InvalidArgument);
            Ok(())
        }),
        ("rename/self-deep", |fs| {
            ok(fs.mkdir_all("/q/w"), "mkdir_all")?;
            ok(fs.mknod("/q/w/e"), "mknod")?;
            ok(fs.rename("/q/w/e", "/q/w/e"), "self")?;
            expect!(fs.exists("/q/w/e"), "still there");
            Ok(())
        }),
        ("io/overwrite-middle", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"aaaaaaaaaa").map(|_| ()), "write")?;
            ok(fs.write("/f", 3, b"BBB").map(|_| ()), "overwrite")?;
            expect!(
                fs.read_to_vec("/f") == Ok(b"aaaBBBaaaa".to_vec()),
                "spliced"
            );
            Ok(())
        }),
        ("io/write-at-exact-eof", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"12345").map(|_| ()), "write")?;
            ok(fs.write("/f", 5, b"678").map(|_| ()), "append via offset")?;
            expect!(fs.read_to_vec("/f") == Ok(b"12345678".to_vec()), "extended");
            Ok(())
        }),
        ("io/block-boundary-io", |fs| {
            // 4096-byte blocks: exercise reads/writes straddling the seam.
            ok(fs.mknod("/f"), "mknod")?;
            let data = vec![0x5Au8; 8192 + 7];
            ok(fs.write("/f", 0, &data).map(|_| ()), "write")?;
            let mut buf = vec![0u8; 10];
            expect!(fs.read("/f", 4091, &mut buf) == Ok(10), "straddling read");
            expect!(buf.iter().all(|&b| b == 0x5A), "content");
            ok(
                fs.write("/f", 4090, b"0123456789AB").map(|_| ()),
                "straddling write",
            )?;
            let mut buf2 = vec![0u8; 12];
            expect!(fs.read("/f", 4090, &mut buf2) == Ok(12), "read back");
            expect!(&buf2 == b"0123456789AB", "straddled bytes");
            Ok(())
        }),
        ("io/truncate-to-same-size", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"stay").map(|_| ()), "write")?;
            ok(fs.truncate("/f", 4), "truncate same")?;
            expect!(fs.read_to_vec("/f") == Ok(b"stay".to_vec()), "unchanged");
            Ok(())
        }),
        ("io/truncate-zero-then-write", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"old contents").map(|_| ()), "write")?;
            ok(fs.truncate("/f", 0), "truncate")?;
            expect!(fs.stat("/f").map(|m| m.size) == Ok(0), "empty");
            ok(fs.write("/f", 0, b"new").map(|_| ()), "rewrite")?;
            expect!(fs.read_to_vec("/f") == Ok(b"new".to_vec()), "fresh");
            Ok(())
        }),
        ("io/read-zero-length-buffer", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"abc").map(|_| ()), "write")?;
            let mut buf = [0u8; 0];
            expect!(fs.read("/f", 1, &mut buf) == Ok(0), "zero-length read");
            Ok(())
        }),
        ("io/interleaved-write-read-sizes", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            let mut expected = Vec::new();
            for i in 0..50u8 {
                let chunk = vec![i; (i as usize % 7) + 1];
                ok(
                    fs.write("/f", expected.len() as u64, &chunk).map(|_| ()),
                    "write",
                )?;
                expected.extend(chunk);
            }
            expect!(fs.read_to_vec("/f") == Ok(expected), "stream intact");
            Ok(())
        }),
        ("io/rewrite-shrinks-nothing", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            ok(fs.write("/f", 0, b"long contents here").map(|_| ()), "w1")?;
            ok(fs.write("/f", 0, b"short").map(|_| ()), "w2")?;
            expect!(
                fs.stat("/f").map(|m| m.size) == Ok(18),
                "write never truncates"
            );
            Ok(())
        }),
        ("dir/readdir-reflects-mutations", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.mknod("/d/a"), "mknod")?;
            ok(fs.mknod("/d/b"), "mknod")?;
            ok(fs.unlink("/d/a"), "unlink")?;
            ok(fs.rename("/d/b", "/d/c"), "rename")?;
            let mut names = ok(fs.readdir("/d"), "readdir")?;
            names.sort();
            expect!(names == ["c"], "after mutations: {names:?}");
            Ok(())
        }),
        ("dir/nlink-counts-subdirs", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.mkdir("/d/s1"), "mkdir")?;
            ok(fs.mkdir("/d/s2"), "mkdir")?;
            ok(fs.mknod("/d/f"), "mknod")?;
            let m = ok(fs.stat("/d"), "stat")?;
            expect!(m.nlink == 4, "2 + 2 subdirs, got {}", m.nlink);
            ok(fs.rmdir("/d/s1"), "rmdir")?;
            let m = ok(fs.stat("/d"), "stat")?;
            expect!(m.nlink == 3, "after rmdir, got {}", m.nlink);
            Ok(())
        }),
        ("dir/recreate-after-rmdir", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            ok(fs.rmdir("/d"), "rmdir")?;
            ok(fs.mkdir("/d"), "recreate")?;
            ok(fs.mknod("/d/f"), "use it")?;
            Ok(())
        }),
        ("dir/type-change-file-to-dir", |fs| {
            ok(fs.mknod("/x"), "mknod")?;
            ok(fs.unlink("/x"), "unlink")?;
            ok(fs.mkdir("/x"), "mkdir same name")?;
            expect!(
                fs.stat("/x").map(|m| m.ftype.is_dir()) == Ok(true),
                "now a dir"
            );
            Ok(())
        }),
        ("dir/wide-directory", |fs| {
            ok(fs.mkdir("/wide"), "mkdir")?;
            for i in 0..1000 {
                ok(fs.mknod(&format!("/wide/f{i:04}")), "mknod")?;
            }
            expect!(
                fs.readdir("/wide").map(|v| v.len()) == Ok(1000),
                "all listed"
            );
            expect!(fs.exists("/wide/f0999"), "last entry resolvable");
            for i in (0..1000).step_by(2) {
                ok(fs.unlink(&format!("/wide/f{i:04}")), "unlink even")?;
            }
            expect!(fs.readdir("/wide").map(|v| v.len()) == Ok(500), "half left");
            Ok(())
        }),
        ("path/embedded-dots", |fs| {
            ok(fs.mkdir("/a.b"), "dotted dir")?;
            ok(fs.mknod("/a.b/c.d.e"), "dotted file")?;
            expect!(fs.exists("/a.b/c.d.e"), "resolvable");
            Ok(())
        }),
        ("path/unicode-names", |fs| {
            ok(fs.mkdir("/ünïcødé"), "unicode dir")?;
            ok(fs.mknod("/ünïcødé/файл"), "unicode file")?;
            expect!(fs.exists("/ünïcødé/файл"), "resolvable");
            let names = ok(fs.readdir("/ünïcødé"), "readdir")?;
            expect!(names == ["файл"], "listing");
            Ok(())
        }),
        ("path/trailing-slash-on-dir", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            expect!(fs.stat("/d/").is_ok(), "trailing slash stats the dir");
            ok(fs.mknod("/d/f"), "mknod")?;
            expect!(fs.exists("/d/f"), "resolvable");
            Ok(())
        }),
        ("path/spaces-in-names", |fs| {
            ok(fs.mknod("/a file with spaces"), "mknod")?;
            expect!(fs.exists("/a file with spaces"), "resolvable");
            Ok(())
        }),
        ("misc/stat-after-every-op-kind", |fs| {
            ok(fs.mkdir("/m"), "mkdir")?;
            expect!(fs.stat("/m").map(|m| m.size) == Ok(0), "fresh dir");
            ok(fs.mknod("/m/f"), "mknod")?;
            expect!(fs.stat("/m").map(|m| m.size) == Ok(1), "one entry");
            ok(fs.write("/m/f", 0, b"xyz").map(|_| ()), "write")?;
            expect!(fs.stat("/m/f").map(|m| m.size) == Ok(3), "file size");
            ok(fs.rename("/m/f", "/m/g"), "rename")?;
            expect!(fs.stat("/m/g").map(|m| m.size) == Ok(3), "size follows");
            ok(fs.unlink("/m/g"), "unlink")?;
            expect!(fs.stat("/m").map(|m| m.size) == Ok(0), "empty again");
            Ok(())
        }),
        ("misc/create-delete-churn", |fs| {
            ok(fs.mkdir("/c"), "mkdir")?;
            for round in 0..50 {
                let p = format!("/c/f{}", round % 5);
                ok(fs.mknod(&p), "mknod")?;
                ok(fs.write(&p, 0, &[round as u8; 16]).map(|_| ()), "write")?;
                ok(fs.unlink(&p), "unlink")?;
            }
            expect!(fs.readdir("/c").map(|v| v.is_empty()) == Ok(true), "clean");
            Ok(())
        }),
        ("misc/inode-numbers-are-stable", |fs| {
            ok(fs.mknod("/f"), "mknod")?;
            let ino = ok(fs.stat("/f"), "stat")?.ino;
            ok(fs.write("/f", 0, b"data").map(|_| ()), "write")?;
            expect!(fs.stat("/f").map(|m| m.ino) == Ok(ino), "write keeps ino");
            ok(fs.rename("/f", "/g"), "rename")?;
            expect!(fs.stat("/g").map(|m| m.ino) == Ok(ino), "rename keeps ino");
            Ok(())
        }),
        ("misc/error-precedence-enotdir-before-enoent", |fs| {
            // An interior file component reports ENOTDIR even when the
            // rest of the path would also be missing.
            ok(fs.mknod("/file"), "mknod")?;
            expect_err!(fs.stat("/file/missing/deeper"), FsError::NotDir);
            Ok(())
        }),
        ("misc/readdir-order-insensitive-content", |fs| {
            ok(fs.mkdir("/d"), "mkdir")?;
            let mut expected = Vec::new();
            for name in ["zeta", "alpha", "mid", "0num", "~tilde"] {
                ok(fs.mknod(&format!("/d/{name}")), "mknod")?;
                expected.push(name.to_string());
            }
            expected.sort();
            let mut got = ok(fs.readdir("/d"), "readdir")?;
            got.sort();
            expect!(got == expected, "all names present: {got:?}");
            Ok(())
        }),
    ]
}

fn unsupported_cases() -> Vec<Case> {
    vec![
        ("unsupported/hard-links", |_fs| {
            Err("hard links are not implemented (paper §6)".into())
        }),
        ("unsupported/symlinks", |_fs| {
            Err("symbolic links are not implemented (paper §6)".into())
        }),
        ("unsupported/permissions", |_fs| {
            Err("permissions are not implemented (paper §6)".into())
        }),
        ("unsupported/timestamps", |_fs| {
            Err("atime/mtime are not implemented".into())
        }),
        ("unsupported/xattrs", |_fs| {
            Err("extended attributes are not implemented".into())
        }),
    ]
}

fn main() {
    let mut functional = functional_cases();
    functional.extend(extended_cases());
    let unsupported = unsupported_cases();
    let total = functional.len() + unsupported.len();
    println!("POSIX conformance suite (xfstests analog; paper: 418/451 pass on AtomFS)\n");
    let mut table = Table::new(&["file system", "pass", "fail", "score"]);
    let mut any_functional_failure = false;
    for sys in ALL_SYSTEMS {
        let mut pass = 0;
        let mut failures: Vec<String> = Vec::new();
        for (name, case) in functional.iter().chain(unsupported.iter()) {
            let fs = build(sys);
            match case(&*fs) {
                Ok(()) => pass += 1,
                Err(msg) => failures.push(format!("{name}: {msg}")),
            }
        }
        let fail = total - pass;
        table.row(vec![
            sys.to_string(),
            pass.to_string(),
            fail.to_string(),
            format!("{pass}/{total}"),
        ]);
        for f in &failures {
            if !f.starts_with("unsupported/") {
                any_functional_failure = true;
                eprintln!("  FAIL [{sys}] {f}");
            }
        }
    }
    table.print();
    println!(
        "\nAll failures are unsupported-feature cases (hard/symbolic links, permissions,\n\
         timestamps, xattrs) — the same categories behind the paper's 33 xfstests failures."
    );
    if any_functional_failure {
        std::process::exit(1);
    }
}
