//! Figure 10 — application workload running time.
//!
//! Regenerates the paper's Figure 10: running time (seconds) of the LFS
//! microbenchmarks and four application workloads on DFSCQ, AtomFS, tmpfs
//! and ext4 (all as the simulated deployments documented in DESIGN.md).
//! All workloads are single-threaded, matching §7.2.
//!
//! Usage: `cargo run --release -p atomfs-bench --bin fig10_apps [scale]`
//! where `scale` (default 1.0) shrinks the working sets for quick runs.

use atomfs_bench::report::{secs, Table};
use atomfs_bench::setups::{build, FIG10_SYSTEMS};
use atomfs_obs::{ClockSource, Registry};
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, MeteredFs};
use atomfs_workloads::{apps, lfs};

fn run_workload(fs: &dyn FileSystem, name: &str, scale: f64) -> std::time::Duration {
    fs.mkdir_all("/bench").expect("setup");
    // cp-qemu and ripgrep need a pre-built tree, excluded from timing.
    if name == "cp-qemu" || name == "ripgrep" {
        apps::build_source_tree(fs, "/bench/src", scale).expect("tree");
    }
    if name == "make-xv6" {
        apps::git_clone(fs, "/bench", scale).expect("clone");
    }
    let start = std::time::Instant::now();
    match name {
        // The paper: 10 MB largefile, 10k x 1 KB smallfile.
        "largefile" => {
            lfs::largefile(fs, "/bench", (10 * 1024 * 1024) as usize).expect("largefile");
        }
        "smallfile" => {
            lfs::smallfile(fs, "/bench", (10_000f64 * scale) as usize, 1024).expect("smallfile");
        }
        "git-clone" => {
            apps::git_clone(fs, "/bench", scale).expect("git-clone");
        }
        "make-xv6" => {
            apps::make_xv6(fs, "/bench", scale).expect("make");
        }
        "cp-qemu" => {
            apps::cp_tree(fs, "/bench/src", "/bench/dst").expect("cp");
        }
        "ripgrep" => {
            apps::ripgrep(fs, "/bench/src", 0x61).expect("rg");
        }
        other => panic!("unknown workload {other}"),
    }
    start.elapsed()
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(1.0);
    let workloads = [
        "largefile",
        "smallfile",
        "git-clone",
        "make-xv6",
        "cp-qemu",
        "ripgrep",
    ];
    println!("Figure 10: application workloads, running time in seconds (scale={scale})");
    println!("paper shape: dfscq slowest (1.38x-2.52x over atomfs); tmpfs/ext4 fastest\n");
    let mut header = vec!["workload"];
    header.extend(FIG10_SYSTEMS);
    let mut table = Table::new(&header);
    let mut lat_table = Table::new(&header);
    for w in workloads {
        let mut cells = vec![w.to_string()];
        let mut lat_cells = vec![w.to_string()];
        for sys in FIG10_SYSTEMS {
            // A fresh instance (and registry) per cell keeps workloads
            // independent; the metering wrapper sits above the deployment
            // shim, so latency includes the modeled crossing costs.
            let reg = Registry::new();
            let fs = MeteredFs::new(build(sys), &reg, ClockSource::monotonic());
            let d = run_workload(&fs, w, scale);
            cells.push(secs(d));
            let h = reg.snapshot().hist_merged("fs_op_ns");
            lat_cells.push(if h.count == 0 {
                "-".to_string()
            } else {
                format!(
                    "{:.1}/{:.1}",
                    h.quantile(0.50) as f64 / 1e3,
                    h.quantile(0.99) as f64 / 1e3
                )
            });
        }
        table.row(cells);
        lat_table.row(lat_cells);
        eprint!(".");
    }
    eprintln!();
    table.print();
    println!("\nper-op latency p50/p99 (us), all operation kinds merged:");
    lat_table.print();
}
