//! Overhead gate for the span layer and flight recorder.
//!
//! Runs the contended [`OpMix`] workload on two identically-built AtomFS
//! instances, differing only in the span layer's runtime switch: the
//! *instrumented* side records op spans at the default 1-in-
//! [`DEFAULT_SPAN_SAMPLE`] sampling into the flight recorder, the
//! *stripped* side sets the sampling kill switch
//! ([`set_sampling`]`(0)`), which makes every span constructor return an
//! inert guard — the same one-branch-per-site floor the `obs-off` build
//! compiles to. The gate bounds the instrumented side's per-op slowdown
//! at **5%**, using the same ABBA median-of-paired-ratios harness as
//! `metrics_overhead`: each round times
//! stripped-instrumented-instrumented-stripped back-to-back, disturbed
//! rounds (detected by self-inconsistency) are retried, and the gate
//! reads the median admitted ratio.
//!
//! Also emits a *sample black-box dump*: a small sharded-journal run with
//! one dying device, captured at quarantine time, written as
//! `BLACKBOX_sample.json` (analysis form) and `BLACKBOX_sample_trace.json`
//! (Chrome `trace_event` form, loadable in `about:tracing` / Perfetto) —
//! so CI archives a real artifact of the dump schema next to the numbers.
//!
//! Prints the comparison, writes machine-readable `BENCH_flightrec.json`,
//! and exits non-zero if the gate fails — CI runs this in release mode as
//! the `flightrec-overhead` job.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin flightrec_overhead -- [ops_per_round] [rounds] [span_sample]`

use std::sync::Arc;
use std::time::Instant;

use atomfs::AtomFs;
use atomfs_bench::report::Table;
use atomfs_journal::{
    shard_of, BlockDevice, Disk, FaultPlan, FaultyDisk, JournaledFs, ShardConfig,
};
use atomfs_obs::span::{set_sampling, DEFAULT_SPAN_SAMPLE};
use atomfs_obs::TriggerCause;
use atomfs_vfs::FileSystem;
use atomfs_workloads::opmix::OpMix;

/// Gate: spans-on may be at most this much slower than the kill switch.
const THRESHOLD_PCT: f64 = 5.0;

fn mix() -> OpMix {
    OpMix {
        dirs: 4,
        names: 8,
        rename_weight: 3,
    }
}

/// CPU time consumed by the calling thread, in nanoseconds (see
/// `metrics_overhead` for why the single-thread gate uses CPU time, not
/// wall time: host steal stalls swamp a few-percent effect).
#[cfg(target_os = "linux")]
fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        tv_sec: i64,
        tv_nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { tv_sec: 0, tv_nsec: 0 };
    let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) };
    assert_eq!(rc, 0, "clock_gettime(CLOCK_THREAD_CPUTIME_ID)");
    ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
}

#[cfg(not(target_os = "linux"))]
fn thread_cpu_ns() -> u64 {
    use std::time::UNIX_EPOCH;
    UNIX_EPOCH.elapsed().map_or(0, |d| d.as_nanos() as u64)
}

/// One timed round: `ops` mix operations on a fresh AtomFS with the span
/// switch set for this side. Sampling is process-global, so rounds set it
/// on entry; the workload itself is identical either way.
fn one_round(instrumented: bool, threads: usize, ops: usize, seed: u64, span_sample: u32) -> u64 {
    set_sampling(if instrumented { span_sample } else { 0 });
    let fs = Arc::new(AtomFs::new());
    let m = mix();
    m.setup(&*fs);
    if threads == 1 {
        let start = thread_cpu_ns();
        m.run(&*fs, seed, ops);
        thread_cpu_ns() - start
    } else {
        let barrier = Arc::new(std::sync::Barrier::new(threads + 1));
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let fs = Arc::clone(&fs);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    m.run(&*fs, seed ^ ((t as u64) << 32), ops);
                })
            })
            .collect();
        barrier.wait();
        let start = Instant::now();
        for h in handles {
            h.join().unwrap();
        }
        start.elapsed().as_nanos() as u64
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    xs[xs.len() / 2]
}

/// Two timings of the same configuration agree within `tol`.
fn steady(x: u64, y: u64, tol: f64) -> bool {
    (x.max(y) as f64) < tol * (x.min(y).max(1) as f64)
}

/// ABBA comparison, identical discipline to `metrics_overhead::compare`.
fn compare(threads: usize, ops: usize, rounds: usize, span_sample: u32) -> (f64, f64, f64) {
    let tol = if threads == 1 { 1.015 } else { 1.05 };
    let mut clean = Vec::with_capacity(rounds);
    let mut all = Vec::new();
    let mut base_ns = Vec::with_capacity(rounds);
    let mut instr_ns = Vec::with_capacity(rounds);
    let total_ops = (ops * threads) as f64;
    let mut attempt = 0;
    while clean.len() < rounds && attempt < rounds * 8 {
        let seed = 42 + attempt as u64;
        attempt += 1;
        let a1 = one_round(false, threads, ops, seed, span_sample);
        let b1 = one_round(true, threads, ops, seed, span_sample);
        let b2 = one_round(true, threads, ops, seed, span_sample);
        let a2 = one_round(false, threads, ops, seed, span_sample);
        let ratio = (b1 + b2) as f64 / (a1 + a2) as f64;
        all.push(ratio);
        if !(steady(a1, a2, tol) && steady(b1, b2, tol)) {
            eprint!(" x");
            continue;
        }
        clean.push(ratio);
        base_ns.push((a1 + a2) as f64 / 2.0 / total_ops);
        instr_ns.push((b1 + b2) as f64 / 2.0 / total_ops);
        eprint!(" {:+.2}%", (ratio - 1.0) * 100.0);
    }
    eprintln!();
    let mut ratios = if clean.len() >= 3 { clean } else { all };
    if base_ns.is_empty() {
        base_ns.push(0.0);
        instr_ns.push(0.0);
    }
    (
        median(&mut base_ns),
        median(&mut instr_ns),
        median(&mut ratios),
    )
}

/// A real quarantine dump for the artifact: one shard's device dies
/// mid-run (same storm as the `flightrec_blackbox` acceptance test, at
/// full span sampling), and the capture the trigger made is written out
/// in both serializations.
fn sample_dump() -> Option<(String, String)> {
    set_sampling(1);
    let _ = atomfs_obs::dump::drain();
    let cfg = ShardConfig::default();
    let shards = cfg.shard_count();
    let victim = (shard_of(atomfs_trace::ROOT_INUM, shards) + 1) % shards;
    let disk = Arc::new(Disk::new());
    let devices: Vec<Arc<dyn BlockDevice>> = (0..shards)
        .map(|s| {
            if s == victim {
                Arc::new(FaultyDisk::new(
                    Arc::clone(&disk),
                    FaultPlan::none(7).with_permanent_failure_after(4),
                )) as Arc<dyn BlockDevice>
            } else {
                Arc::clone(&disk) as Arc<dyn BlockDevice>
            }
        })
        .collect();
    let jfs = JournaledFs::create_sharded_with_devices(devices, cfg);
    for i in 0..100usize {
        let f = format!("/f{i}");
        let _ = jfs
            .mknod(&f)
            .and_then(|()| jfs.write(&f, 0, &[i as u8; 16]).map(|_| ()));
        if i % 5 == 4 {
            let _ = jfs.sync();
        }
    }
    set_sampling(DEFAULT_SPAN_SAMPLE);
    atomfs_obs::dump::drain()
        .into_iter()
        .find(|d| matches!(d.cause, TriggerCause::ShardQuarantine { .. }))
        .map(|d| (d.to_json(), d.to_chrome_trace()))
}

fn write_json(
    path: &str,
    ops: usize,
    rounds: usize,
    span_sample: u32,
    rows: &[(usize, f64, f64, f64)],
    pass: bool,
) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"flightrec_overhead\",\n");
    out.push_str(&format!(
        "  \"host_parallelism\": {},\n",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    ));
    out.push_str(&format!("  \"obs_enabled\": {},\n", atomfs_obs::ENABLED));
    out.push_str(&format!("  \"ops_per_round\": {ops},\n"));
    out.push_str(&format!("  \"rounds\": {rounds},\n"));
    out.push_str(&format!("  \"span_sample\": {span_sample},\n"));
    out.push_str(&format!(
        "  \"flightrec_rings\": {},\n",
        atomfs_obs::flightrec::RING_COUNT
    ));
    out.push_str(&format!("  \"threshold_pct\": {THRESHOLD_PCT},\n"));
    out.push_str(&format!("  \"pass\": {pass},\n"));
    out.push_str("  \"series\": [\n");
    let body: Vec<String> = rows
        .iter()
        .map(|(threads, base, instr, ratio)| {
            format!(
                "    {{\"threads\": {}, \"stripped_ns_per_op\": {:.1}, \"instrumented_ns_per_op\": {:.1}, \"overhead_pct\": {:.2}, \"gated\": {}}}",
                threads,
                base,
                instr,
                (ratio - 1.0) * 100.0,
                *threads == 1
            )
        })
        .collect();
    out.push_str(&body.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_flightrec.json");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ops: usize = args
        .first()
        .map(|s| s.parse().expect("ops_per_round"))
        .unwrap_or(200_000);
    let rounds: usize = args
        .get(1)
        .map(|s| s.parse().expect("rounds"))
        .unwrap_or(9);
    let span_sample: u32 = args
        .get(2)
        .map(|s| s.parse().expect("span_sample"))
        .unwrap_or(DEFAULT_SPAN_SAMPLE);
    println!(
        "Flight-recorder overhead, {ops} ops/round x {rounds} ABBA rounds, 1-in-{span_sample} span sampling ({} cores, obs {})",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        if atomfs_obs::ENABLED {
            "enabled"
        } else {
            "compiled out"
        }
    );
    let mut rows = Vec::new();
    for threads in [1usize, 8] {
        let (base, instr, ratio) = compare(threads, ops, rounds, span_sample);
        rows.push((threads, base, instr, ratio));
    }
    eprintln!();
    let mut table = Table::new(&["threads", "stripped ns/op", "instrumented ns/op", "overhead"]);
    for (threads, base, instr, ratio) in &rows {
        table.row(vec![
            threads.to_string(),
            format!("{base:.0}"),
            format!("{instr:.0}"),
            format!("{:+.2}%", (ratio - 1.0) * 100.0),
        ]);
    }
    table.print();
    let (_, _, _, ratio) = rows[0];
    let overhead_pct = (ratio - 1.0) * 100.0;
    let pass = overhead_pct <= THRESHOLD_PCT;
    write_json("BENCH_flightrec.json", ops, rounds, span_sample, &rows, pass);
    println!("\nwrote BENCH_flightrec.json");
    match sample_dump() {
        Some((json, trace)) => {
            std::fs::write("BLACKBOX_sample.json", json).expect("write BLACKBOX_sample.json");
            std::fs::write("BLACKBOX_sample_trace.json", trace)
                .expect("write BLACKBOX_sample_trace.json");
            println!("wrote BLACKBOX_sample.json, BLACKBOX_sample_trace.json");
        }
        None => println!("no sample dump (obs compiled out)"),
    }
    println!(
        "gate (1 thread): {overhead_pct:+.2}% vs threshold {THRESHOLD_PCT}% -> {}",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}
