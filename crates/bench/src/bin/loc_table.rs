//! Table 2 — lines of specifications, implementations, and proofs.
//!
//! The paper's Table 2 counts the Coq development behind AtomFS
//! (abstraction/Aops, invariants, R/G conditions, verified code, proofs).
//! This binary produces the analogous inventory for this reproduction by
//! counting non-blank, non-comment lines of each component, mapped onto
//! the paper's categories:
//!
//! | Paper category | Here |
//! |---|---|
//! | Abstraction and Aops | `crlh/src/state.rs`, `crlh/src/afs.rs` |
//! | Invariants | `crlh/src/invariants.rs`, `crlh/src/rollback.rs` |
//! | R-G conditions | `crlh/src/rg.rs` |
//! | Verified code (the FS) | `crates/core/src/*` |
//! | Proof (⇒ executable checking) | `crlh/src/{checker,helper,ghost,wgl,history,online}.rs` + tests |

use std::path::Path;

use atomfs_bench::report::Table;

/// Count non-blank, non-comment Rust lines in one file.
fn count_file(path: &Path) -> usize {
    let Ok(text) = std::fs::read_to_string(path) else {
        return 0;
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

/// Count all `.rs` files under a directory (recursively).
fn count_dir(path: &Path) -> usize {
    let Ok(entries) = std::fs::read_dir(path) else {
        return 0;
    };
    let mut total = 0;
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            total += count_dir(&p);
        } else if p.extension().is_some_and(|e| e == "rs") {
            total += count_file(&p);
        }
    }
    total
}

fn repo_root() -> std::path::PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn main() {
    let root = repo_root();
    let f = |rel: &str| count_file(&root.join(rel));
    let d = |rel: &str| count_dir(&root.join(rel));

    let abstraction = f("crates/crlh/src/state.rs") + f("crates/crlh/src/afs.rs");
    let invariants = f("crates/crlh/src/invariants.rs") + f("crates/crlh/src/rollback.rs");
    let rg = f("crates/crlh/src/rg.rs");
    let verified_code = d("crates/core/src");
    let proof = f("crates/crlh/src/checker.rs")
        + f("crates/crlh/src/helper.rs")
        + f("crates/crlh/src/ghost.rs")
        + f("crates/crlh/src/wgl.rs")
        + f("crates/crlh/src/history.rs")
        + f("crates/crlh/src/online.rs")
        + d("crates/crlh/tests")
        + d("tests");
    let total = abstraction + invariants + rg + verified_code + proof;

    println!("Table 2 analog: lines of specifications, implementation, and checking");
    println!("(paper's Coq proof becomes executable checking code here; see DESIGN.md)\n");
    let mut t = Table::new(&["Component", "Lines (this repo)", "Lines (paper, Coq)"]);
    t.row(vec![
        "Abstraction and Aops".into(),
        abstraction.to_string(),
        "344".into(),
    ]);
    t.row(vec![
        "Invariants".into(),
        invariants.to_string(),
        "1397".into(),
    ]);
    t.row(vec!["R-G conditions".into(), rg.to_string(), "451".into()]);
    t.row(vec![
        "Verified code".into(),
        verified_code.to_string(),
        "673".into(),
    ]);
    t.row(vec![
        "Proof / checking".into(),
        proof.to_string(),
        "60324".into(),
    ]);
    t.row(vec!["Total".into(), total.to_string(), "63099".into()]);
    t.print();

    println!("\nWhole-workspace inventory (non-blank, non-comment lines):");
    let mut t2 = Table::new(&["crate", "lines"]);
    for c in [
        "crates/vfs",
        "crates/trace",
        "crates/core",
        "crates/crlh",
        "crates/baselines",
        "crates/workloads",
        "crates/bench",
    ] {
        t2.row(vec![c.into(), d(c).to_string()]);
    }
    t2.row(vec!["tests/".into(), d("tests").to_string()]);
    t2.row(vec!["examples/".into(), d("examples").to_string()]);
    t2.print();
}
