//! Fault-path overhead of the fallible journal write path.
//!
//! The journal now writes through the fallible `BlockDevice` trait with
//! per-sector-op retry accounting (`RetryPolicy::run`). This bench
//! quantifies what that plumbing costs when no fault ever fires, against
//! a *seed-style* inline append loop that calls the raw `Disk`'s
//! infallible inherent methods exactly the way the pre-fault journal
//! did — same record encoding, same read-modify-write sector walk, same
//! commit cadence. Two more series show the trait-object wrapper
//! (`FaultyDisk` with an all-zero plan) and a live ~1.5% transient fault
//! rate being absorbed by retries.
//!
//! The acceptance bar is fault-free overhead < 5% vs the seed-style
//! loop. Prints a table and writes machine-readable `BENCH_journal.json`
//! to the current directory.
//!
//! Usage:
//! `cargo run --release -p atomfs-bench --bin journal_faults -- [batches]`

use std::sync::Arc;
use std::time::Instant;

use atomfs_bench::report::Table;
use atomfs_journal::device::{BlockDevice, Sector, SECTOR_SIZE};
use atomfs_journal::wire::encode_record;
use atomfs_journal::{Disk, FaultPlan, FaultyDisk, Journal, RetryPolicy};
use atomfs_trace::MicroOp;

/// Commit (flush) every this many batches — sync-every-op would measure
/// the flush, not the append plumbing under test.
const COMMIT_EVERY: u64 = 64;
const REPS: usize = 3;

fn batch() -> Vec<MicroOp> {
    (0..8)
        .map(|i| MicroOp::Ins {
            parent: 1,
            name: format!("entry{i}"),
            child: 100 + i,
        })
        .collect()
}

/// The seed path, inlined: encode + RMW sector walk + flush cadence on
/// the raw disk's infallible inherent methods.
fn seed_style(batches: u64, ops: &[MicroOp]) -> f64 {
    let disk = Disk::new();
    let start = Instant::now();
    let mut pos = 0usize;
    for seq in 0..batches {
        let rec = encode_record(1, seq, ops);
        let mut written = 0usize;
        while written < rec.len() {
            let lba = ((pos + written) / SECTOR_SIZE) as u64;
            let off = (pos + written) % SECTOR_SIZE;
            let chunk = (SECTOR_SIZE - off).min(rec.len() - written);
            let mut sector: Sector = disk.read(lba);
            sector[off..off + chunk].copy_from_slice(&rec[written..written + chunk]);
            disk.write(lba, &sector);
            written += chunk;
        }
        pos += rec.len();
        if (seq + 1) % COMMIT_EVERY == 0 {
            disk.flush();
        }
    }
    disk.flush();
    batches as f64 / start.elapsed().as_secs_f64()
}

/// The fallible path over an arbitrary device.
fn fallible(device: Arc<dyn BlockDevice>, batches: u64, ops: &[MicroOp]) -> f64 {
    let mut j = Journal::create_with(device, 1, RetryPolicy::default());
    let start = Instant::now();
    for seq in 0..batches {
        j.append(ops).expect("bench device never exhausts retries");
        if (seq + 1) % COMMIT_EVERY == 0 {
            j.commit().expect("bench device never exhausts retries");
        }
    }
    j.commit().expect("bench device never exhausts retries");
    batches as f64 / start.elapsed().as_secs_f64()
}

/// Best of [`REPS`] runs (allocator/cache warmup dominates the noise on
/// a bare-metal single-core runner).
fn best(mut run: impl FnMut() -> f64) -> f64 {
    (0..REPS).map(|_| run()).fold(f64::MIN, f64::max)
}

fn overhead_pct(seed: f64, path: f64) -> f64 {
    (seed / path - 1.0) * 100.0
}

fn write_json(path: &str, batches: u64, series: &[(&str, f64)], seed_bps: f64) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"journal_faults\",\n");
    out.push_str(&format!("  \"batches\": {batches},\n"));
    out.push_str("  \"ops_per_batch\": 8,\n");
    out.push_str(&format!("  \"commit_every\": {COMMIT_EVERY},\n"));
    out.push_str("  \"series\": [\n");
    let rows: Vec<String> = series
        .iter()
        .map(|(name, bps)| {
            format!(
                "    {{\"path\": \"{}\", \"batches_per_sec\": {:.1}, \"overhead_vs_seed_pct\": {:.2}}}",
                name,
                bps,
                overhead_pct(seed_bps, *bps)
            )
        })
        .collect();
    out.push_str(&rows.join(",\n"));
    out.push_str("\n  ]\n}\n");
    std::fs::write(path, out).expect("write BENCH_journal.json");
}

fn main() {
    let batches: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("batches"))
        .unwrap_or(30_000);
    let ops = batch();
    println!(
        "Journal fault-path overhead, {batches} batches of 8 ops, commit every {COMMIT_EVERY}"
    );

    let seed = best(|| seed_style(batches, &ops));
    let direct = best(|| fallible(Arc::new(Disk::new()), batches, &ops));
    let wrapped = best(|| {
        fallible(
            Arc::new(FaultyDisk::new(Arc::new(Disk::new()), FaultPlan::none(1))),
            batches,
            &ops,
        )
    });
    let transient = best(|| {
        fallible(
            Arc::new(FaultyDisk::new(
                Arc::new(Disk::new()),
                FaultPlan::none(2).with_transient(1_000, 1_000, 1_000),
            )),
            batches,
            &ops,
        )
    });

    let series = [
        ("seed_inline", seed),
        ("fallible_direct", direct),
        ("fallible_wrapped_nofault", wrapped),
        ("fallible_wrapped_transient_1p5", transient),
    ];
    let mut table = Table::new(&["path", "kbatches/s", "overhead vs seed"]);
    for (name, bps) in &series {
        table.row(vec![
            (*name).to_string(),
            format!("{:.1}", bps / 1e3),
            format!("{:+.2}%", overhead_pct(seed, *bps)),
        ]);
    }
    table.print();
    write_json("BENCH_journal.json", batches, &series, seed);
    println!("\nwrote BENCH_journal.json");
    let fault_free = overhead_pct(seed, direct);
    println!("fault-free fallible overhead: {fault_free:+.2}% (acceptance bar: < 5%)");
}
