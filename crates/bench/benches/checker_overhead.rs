//! Ablation: verification cost.
//!
//! Three measurements: (1) the instrumentation overhead an always-on
//! trace sink adds to AtomFS operations (untraced vs null-sink vs
//! buffering), (2) the offline LP-checker's replay throughput in events
//! per second, and (3) how the relation-check cadence changes checking
//! cost. Together they quantify what "runtime verification" costs next
//! to the paper's ahead-of-time proofs (which cost nothing at runtime).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{BufferSink, Event, NullSink, ShardedSink, TraceSink};
use atomfs_vfs::FileSystem;
use crlh::{CheckerConfig, HelperMode, LpChecker, RelationCadence};

fn ops_round(fs: &AtomFs, round: &mut u64) {
    let r = *round;
    *round += 1;
    let f = format!("/d/f{}", r % 4);
    let _ = fs.mknod(&f);
    let _ = fs.write(&f, 0, b"x");
    let _ = fs.stat(&f);
    let _ = fs.unlink(&f);
}

fn bench_instrumentation(c: &mut Criterion) {
    let mut group = c.benchmark_group("instrumentation");
    {
        let fs = AtomFs::new();
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        group.bench_function("untraced", |b| b.iter(|| ops_round(&fs, &mut round)));
    }
    {
        let fs = AtomFs::traced(Arc::new(NullSink));
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        group.bench_function("null_sink", |b| b.iter(|| ops_round(&fs, &mut round)));
    }
    {
        let sink = Arc::new(BufferSink::new());
        let fs = AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        group.bench_function("buffer_sink", |b| {
            b.iter(|| {
                ops_round(&fs, &mut round);
                // Keep the buffer bounded so allocation noise stays flat.
                if sink.len() > 100_000 {
                    sink.take();
                }
            })
        });
    }
    {
        let sink = Arc::new(ShardedSink::new());
        let fs = AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        // Single-threaded: measures the stamp + uncontended shard-lock
        // cost against buffer_sink's plain mutex push. Drains via
        // take_stamped — the recorder's native output, what
        // LpChecker::check_stamped consumes — which, like BufferSink's
        // take, moves segments out without a per-event transform.
        group.bench_function("sharded_sink", |b| {
            b.iter(|| {
                ops_round(&fs, &mut round);
                if sink.len() > 100_000 {
                    sink.take_stamped();
                }
            })
        });
    }
    group.finish();
}

fn sample_trace(ops: usize) -> Vec<Event> {
    let sink = Arc::new(BufferSink::new());
    let fs = AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
    fs.mkdir("/d").unwrap();
    let mut round = 0;
    for _ in 0..ops {
        ops_round(&fs, &mut round);
    }
    sink.take()
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker_replay");
    let trace = sample_trace(500);
    group.throughput(Throughput::Elements(trace.len() as u64));
    for (name, relation, invariants) in [
        ("at_end", RelationCadence::AtEnd, false),
        ("at_unlock", RelationCadence::AtUnlock, false),
        ("at_unlock+invariants", RelationCadence::AtUnlock, true),
        ("every_event+invariants", RelationCadence::EveryEvent, true),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let report = LpChecker::check(
                    CheckerConfig {
                        mode: HelperMode::Helpers,
                        relation,
                        invariants,
                    },
                    black_box(&trace),
                );
                assert!(report.is_ok());
                black_box(report.stats.lps)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_instrumentation, bench_replay);
criterion_main!(benches);
