//! Ablation: helping cost at a rename LP.
//!
//! `linothers` computes the linearize-before relation over all pending
//! threads, closes the help set recursively, and topologically orders it
//! (Figure 5). This bench scales the number of in-flight dependent
//! walkers and measures the ghost-state computation — the cost a rename's
//! (logical) LP pays in the checker, and the analogue of the proof-side
//! complexity the paper reports for helping.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atomfs_trace::{OpDesc, PathTag, Tid};
use crlh::ghost::ThreadPool;
use crlh::helper::{help_set, linearize_before_set, total_order};

/// Build a pool with `n` pending walkers whose lock paths all extend the
/// rename's source path `(1, 2, 3)`, forming chains of varying depth.
fn pool_with_walkers(n: u32) -> ThreadPool {
    let mut pool = ThreadPool::new();
    for t in 0..n {
        pool.begin(
            Tid(100 + t),
            OpDesc::Stat {
                path: vec!["a".into(), "e".into(), format!("w{t}")],
            },
        );
        let e = pool.get_mut(Tid(100 + t)).unwrap();
        for ino in [1u64, 2, 3] {
            e.desc.push_lock(ino, PathTag::Common);
        }
        // Walkers go progressively deeper below the moved subtree, so
        // LockPathPrefix chains of length ~n/4 appear.
        for d in 0..(t % 4 + 1) {
            e.desc
                .push_lock(100 + u64::from(t * 8 + d), PathTag::Common);
        }
    }
    pool
}

fn bench_help_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("linothers_ghost_cost");
    for n in [1u32, 4, 16, 64, 256] {
        let pool = pool_with_walkers(n);
        let src_path = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::new("help_set", n), &n, |b, _| {
            b.iter(|| black_box(help_set(Tid(1), &src_path, &pool)));
        });
        group.bench_with_input(BenchmarkId::new("full_linothers", n), &n, |b, _| {
            b.iter(|| {
                let set = help_set(Tid(1), &src_path, &pool);
                let lbset = linearize_before_set(&pool);
                let order = total_order(&set, &lbset).expect("acyclic");
                black_box(order.len())
            });
        });
    }
    group.finish();
}

fn bench_unrelated_walkers(c: &mut Criterion) {
    // Walkers on disjoint paths: the help set is empty, but
    // linearize_before_set still scans the pool. Measures the fast path.
    let mut group = c.benchmark_group("linothers_no_deps");
    for n in [16u32, 256] {
        let mut pool = ThreadPool::new();
        for t in 0..n {
            pool.begin(
                Tid(500 + t),
                OpDesc::Stat {
                    path: vec![format!("x{t}")],
                },
            );
            let e = pool.get_mut(Tid(500 + t)).unwrap();
            e.desc.push_lock(1, PathTag::Common);
            e.desc.push_lock(1000 + u64::from(t), PathTag::Common);
        }
        let src_path = vec![1u64, 2, 3];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(help_set(Tid(1), &src_path, &pool).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_help_set, bench_unrelated_walkers);
criterion_main!(benches);
