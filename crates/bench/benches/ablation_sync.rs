//! Ablation: synchronization discipline (§5.1).
//!
//! Compares the per-operation cost of the three designs the paper
//! discusses for meeting the non-bypassable criterion — lock coupling
//! (AtomFS), one big lock, and Linux-VFS-style traversal retry — plus the
//! sequential tree for reference, on an identical single-threaded
//! operation mix. (Multicore behaviour is covered by the `fig11_scalability`
//! experiment via the lock simulator; this bench isolates the
//! uncontended overhead each discipline pays.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use atomfs::AtomFs;
use atomfs_baselines::{BigLockFs, RetryFs, SeqFs};
use atomfs_vfs::FileSystem;

fn mixed_ops(fs: &dyn FileSystem, round: &mut u64) {
    let r = *round;
    *round += 1;
    let f = format!("/work/f{}", r % 8);
    let g = format!("/work/g{}", r % 8);
    let _ = fs.mknod(&f);
    let _ = fs.write(&f, 0, b"ablation payload");
    let _ = fs.stat(&f);
    let mut buf = [0u8; 16];
    let _ = fs.read(&f, 0, &mut buf);
    let _ = fs.rename(&f, &g);
    let _ = fs.unlink(&g);
    black_box(buf);
}

fn bench_sync_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_discipline");
    let systems: Vec<(&str, Box<dyn FileSystem>)> = vec![
        ("lock_coupling", Box::new(AtomFs::new())),
        ("big_lock", Box::new(BigLockFs::new(AtomFs::new()))),
        ("traversal_retry", Box::new(RetryFs::new())),
        ("sequential", Box::new(SeqFs::new())),
    ];
    for (name, fs) in systems {
        fs.mkdir("/work").unwrap();
        let mut round = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            b.iter(|| mixed_ops(&*fs, &mut round));
        });
    }
    group.finish();
}

fn bench_deep_walk_ablation(c: &mut Criterion) {
    // Walk-dominated cost: stat at depth 12 compares a coupled walk
    // against a retry walk (which locks one inode at a time but checks
    // the rename seqlock) and a plain tree descent.
    let mut group = c.benchmark_group("deep_walk");
    let depth = 12usize;
    let mk = |fs: &dyn FileSystem| {
        let mut path = String::new();
        for i in 0..depth {
            path.push_str(&format!("/n{i}"));
            fs.mkdir(&path).unwrap();
        }
        path
    };
    let atom = AtomFs::new();
    let p1 = mk(&atom);
    group.bench_function("lock_coupling", |b| {
        b.iter(|| black_box(atom.stat(&p1).unwrap()))
    });
    let retry = RetryFs::new();
    let p2 = mk(&retry);
    group.bench_function("traversal_retry", |b| {
        b.iter(|| black_box(retry.stat(&p2).unwrap()))
    });
    let seq = SeqFs::new();
    let p3 = mk(&seq);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(seq.stat(&p3).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_sync_ablation, bench_deep_walk_ablation);
criterion_main!(benches);
