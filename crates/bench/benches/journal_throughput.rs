//! Journal extension: logging overhead and recovery speed.
//!
//! Measures (1) the per-operation cost the operation log adds to AtomFS
//! (journaled vs plain), (2) append+commit throughput of the journal
//! itself, and (3) recovery/replay speed as a function of log length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

use atomfs_journal::{recover, Disk, Journal, JournaledFs};
use atomfs_trace::MicroOp;
use atomfs_vfs::{FileSystem, FileType};

fn ops_round(fs: &dyn FileSystem, round: &mut u64) {
    let r = *round;
    *round += 1;
    let f = format!("/d/f{}", r % 4);
    let _ = fs.mknod(&f);
    let _ = fs.write(&f, 0, &[r as u8; 512]);
    let _ = fs.unlink(&f);
}

fn bench_journaled_vs_plain(c: &mut Criterion) {
    let mut group = c.benchmark_group("journaling_overhead");
    {
        let fs = atomfs::AtomFs::new();
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        group.bench_function("plain_atomfs", |b| b.iter(|| ops_round(&fs, &mut round)));
    }
    {
        let fs = JournaledFs::create(Arc::new(Disk::new()));
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        group.bench_function("journaled", |b| b.iter(|| ops_round(&fs, &mut round)));
    }
    {
        let fs = JournaledFs::create(Arc::new(Disk::new()));
        fs.mkdir("/d").unwrap();
        let mut round = 0;
        group.bench_function("journaled_sync_every_op", |b| {
            b.iter(|| {
                ops_round(&fs, &mut round);
                fs.sync().unwrap();
            })
        });
    }
    group.finish();
}

fn bench_append_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("journal_append");
    let batch: Vec<MicroOp> = (0..8)
        .map(|i| MicroOp::Ins {
            parent: 1,
            name: format!("entry{i}"),
            child: 100 + i,
        })
        .collect();
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_function("append_batch_of_8", |b| {
        let mut j = Journal::create(Arc::new(Disk::new()));
        b.iter(|| black_box(j.append(&batch).unwrap()));
    });
    group.bench_function("append_and_commit", |b| {
        let mut j = Journal::create(Arc::new(Disk::new()));
        b.iter(|| {
            j.append(&batch).unwrap();
            j.commit().unwrap();
        });
    });
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery_scan");
    for records in [100usize, 1000, 10_000] {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn atomfs_journal::BlockDevice>);
        for i in 0..records {
            j.append(&[
                MicroOp::Create {
                    ino: 100 + i as u64,
                    ftype: FileType::File,
                },
                MicroOp::Ins {
                    parent: 1,
                    name: format!("f{i}"),
                    child: 100 + i as u64,
                },
            ])
            .unwrap();
        }
        j.commit().unwrap();
        group.throughput(Throughput::Elements(records as u64));
        group.bench_with_input(BenchmarkId::from_parameter(records), &records, |b, _| {
            b.iter(|| {
                let r = recover(&disk);
                assert_eq!(r.batches.len(), records);
                black_box(r.end_pos)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_journaled_vs_plain,
    bench_append_commit,
    bench_recovery
);
criterion_main!(benches);
