//! Ablation: directory representation (§6).
//!
//! The paper's AtomFS uses "a hash table followed by linked lists for
//! directory lookups". This bench compares that structure (`DirHash`)
//! against the obvious alternative, an ordered map (`BTreeMap`), across
//! directory sizes — justifying the design choice for lookup-heavy
//! workloads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;

use atomfs::dirhash::DirHash;

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("dir_lookup");
    for size in [16usize, 256, 4096, 16384] {
        let mut hash = DirHash::new();
        let mut btree = BTreeMap::new();
        for i in 0..size {
            hash.insert(&format!("entry{i}"), i as u64, false);
            btree.insert(format!("entry{i}"), i as u64);
        }
        let probe: Vec<String> = (0..64).map(|i| format!("entry{}", i * size / 64)).collect();
        group.bench_with_input(BenchmarkId::new("dirhash", size), &size, |b, _| {
            b.iter(|| {
                for p in &probe {
                    black_box(hash.lookup(p));
                }
            });
        });
        group.bench_with_input(BenchmarkId::new("btreemap", size), &size, |b, _| {
            b.iter(|| {
                for p in &probe {
                    black_box(btree.get(p));
                }
            });
        });
    }
    group.finish();
}

fn bench_insert_remove(c: &mut Criterion) {
    let mut group = c.benchmark_group("dir_insert_remove");
    for size in [256usize, 4096] {
        group.bench_with_input(BenchmarkId::new("dirhash", size), &size, |b, &n| {
            b.iter(|| {
                let mut d = DirHash::new();
                for i in 0..n {
                    d.insert(&format!("e{i}"), i as u64, false);
                }
                for i in 0..n {
                    d.remove(&format!("e{i}"), false);
                }
                black_box(d.len())
            });
        });
        group.bench_with_input(BenchmarkId::new("btreemap", size), &size, |b, &n| {
            b.iter(|| {
                let mut d = BTreeMap::new();
                for i in 0..n {
                    d.insert(format!("e{i}"), i as u64);
                }
                for i in 0..n {
                    d.remove(&format!("e{i}"));
                }
                black_box(d.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_insert_remove);
criterion_main!(benches);
