//! Per-operation microbenchmarks of AtomFS: lookup cost versus path
//! depth (the lock-coupling walk is O(depth) lock hops), create/unlink,
//! rename within and across directories, and data-path throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use atomfs::AtomFs;
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::FileSystem;

fn bench_stat_by_depth(c: &mut Criterion) {
    let mut group = c.benchmark_group("stat_by_depth");
    for depth in [1usize, 2, 4, 8, 16] {
        let fs = AtomFs::new();
        let mut path = String::new();
        for i in 0..depth {
            path.push_str(&format!("/d{i}"));
            fs.mkdir(&path).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(fs.stat(&path).unwrap()));
        });
    }
    group.finish();
}

fn bench_create_unlink(c: &mut Criterion) {
    let fs = AtomFs::new();
    fs.mkdir("/d").unwrap();
    c.bench_function("create_unlink", |b| {
        b.iter(|| {
            fs.mknod("/d/f").unwrap();
            fs.unlink("/d/f").unwrap();
        });
    });
}

fn bench_rename(c: &mut Criterion) {
    let mut group = c.benchmark_group("rename");
    {
        let fs = AtomFs::new();
        fs.mkdir("/d").unwrap();
        fs.mknod("/d/a").unwrap();
        let mut flip = false;
        group.bench_function("same_dir", |b| {
            b.iter(|| {
                let (s, d) = if flip {
                    ("/d/b", "/d/a")
                } else {
                    ("/d/a", "/d/b")
                };
                fs.rename(s, d).unwrap();
                flip = !flip;
            });
        });
    }
    {
        let fs = AtomFs::new();
        fs.mkdir_all("/x/y").unwrap();
        fs.mkdir_all("/p/q").unwrap();
        fs.mknod("/x/y/a").unwrap();
        let mut flip = false;
        group.bench_function("cross_dir", |b| {
            b.iter(|| {
                let (s, d) = if flip {
                    ("/p/q/a", "/x/y/a")
                } else {
                    ("/x/y/a", "/p/q/a")
                };
                fs.rename(s, d).unwrap();
                flip = !flip;
            });
        });
    }
    group.finish();
}

fn bench_data_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("data_path");
    let fs = AtomFs::new();
    fs.mknod("/f").unwrap();
    let data = vec![0xABu8; 64 * 1024];
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("write_64k", |b| {
        b.iter(|| fs.write("/f", 0, black_box(&data)).unwrap());
    });
    let mut buf = vec![0u8; 64 * 1024];
    group.bench_function("read_64k", |b| {
        b.iter(|| fs.read("/f", 0, black_box(&mut buf)).unwrap());
    });
    group.finish();
}

fn bench_readdir(c: &mut Criterion) {
    let mut group = c.benchmark_group("readdir");
    for entries in [10usize, 100, 1000] {
        let fs = AtomFs::new();
        fs.mkdir("/d").unwrap();
        for i in 0..entries {
            fs.mknod(&format!("/d/f{i}")).unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(entries), &entries, |b, _| {
            b.iter(|| black_box(fs.readdir("/d").unwrap()));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_stat_by_depth,
    bench_create_unlink,
    bench_rename,
    bench_data_path,
    bench_readdir
);
criterion_main!(benches);
