//! Property tests for the discrete-event engine.
//!
//! For any well-formed set of scripts:
//!
//! * **lower bound** — the makespan is at least the longest single
//!   thread's serial time (a thread cannot finish early);
//! * **upper bound** — the makespan never exceeds the sum of all serial
//!   times (the engine never invents extra waiting beyond full
//!   serialization);
//! * **determinism** — simulating twice gives identical results.
//!
//! Notably *absent*: "adding a thread never shortens the makespan".
//! That property is false for FIFO lock queues — a classic scheduling
//! anomaly (cf. Graham's anomalies): an extra contender can reorder the
//! acquisition sequence of existing threads and finish the critical path
//! earlier. Proptest found a counterexample within its first few cases.

use atomfs_locksim::{simulate, SimEvent, ThreadPlan};
use proptest::prelude::*;

/// Generate one well-formed script: lock sections are properly nested
/// per thread and every acquire has a release.
fn script_strategy() -> impl Strategy<Value = Vec<SimEvent>> {
    // A sequence of (lock_id, work_in, work_out) sections over few locks,
    // so cross-thread contention actually occurs.
    proptest::collection::vec((0u64..4, 1u64..50, 0u64..30), 0..12).prop_map(|sections| {
        let mut ev = Vec::new();
        for (lock, inside, outside) in sections {
            ev.push(SimEvent::Work(outside));
            ev.push(SimEvent::Acquire(lock));
            ev.push(SimEvent::Work(inside));
            ev.push(SimEvent::Release(lock));
        }
        ev.push(SimEvent::Work(1));
        ev
    })
}

fn serial_time(plan: &ThreadPlan) -> u64 {
    plan.events
        .iter()
        .map(|e| match e {
            SimEvent::Work(d) => *d,
            _ => 0,
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_bounds(scripts in proptest::collection::vec(script_strategy(), 1..6)) {
        let plans: Vec<ThreadPlan> = scripts
            .into_iter()
            .map(|events| ThreadPlan { events, ops: 1 })
            .collect();
        let serials: Vec<u64> = plans.iter().map(serial_time).collect();
        let r = simulate(&plans);
        let max = *serials.iter().max().unwrap();
        let sum: u64 = serials.iter().sum();
        prop_assert!(r.makespan >= max, "makespan {} < max serial {}", r.makespan, max);
        prop_assert!(r.makespan <= sum, "makespan {} > sum of serials {}", r.makespan, sum);
        prop_assert_eq!(r.ops, plans.len() as u64);
    }

    #[test]
    fn simulation_is_deterministic(scripts in proptest::collection::vec(script_strategy(), 1..6)) {
        let plans: Vec<ThreadPlan> = scripts
            .into_iter()
            .map(|events| ThreadPlan { events, ops: 1 })
            .collect();
        let a = simulate(&plans);
        let b = simulate(&plans);
        prop_assert_eq!(a.makespan, b.makespan);
        prop_assert_eq!(a.ops, b.ops);
    }

    #[test]
    fn lock_free_scripts_are_embarrassingly_parallel(
        works in proptest::collection::vec(
            proptest::collection::vec(1u64..100, 1..8), 1..6
        )
    ) {
        let plans: Vec<ThreadPlan> = works
            .into_iter()
            .map(|w| ThreadPlan {
                events: w.into_iter().map(SimEvent::Work).collect(),
                ops: 1,
            })
            .collect();
        let serials: Vec<u64> = plans.iter().map(serial_time).collect();
        let r = simulate(&plans);
        prop_assert_eq!(r.makespan, *serials.iter().max().unwrap());
    }

    #[test]
    fn single_global_lock_fully_serializes(
        insides in proptest::collection::vec(1u64..100, 1..6)
    ) {
        let plans: Vec<ThreadPlan> = insides
            .iter()
            .map(|&d| ThreadPlan {
                events: vec![
                    SimEvent::Acquire(0),
                    SimEvent::Work(d),
                    SimEvent::Release(0),
                ],
                ops: 1,
            })
            .collect();
        let r = simulate(&plans);
        prop_assert_eq!(r.makespan, insides.iter().sum::<u64>());
    }
}
