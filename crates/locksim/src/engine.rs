//! The discrete-event engine.
//!
//! Threads execute their event lists in program order. `Work(d)` advances
//! the thread's clock by `d` virtual nanoseconds; `Acquire(l)` either
//! takes the free lock immediately or suspends the thread on the lock's
//! FIFO queue; `Release(l)` hands the lock to the first waiter (which
//! resumes at the release instant). The machine is assumed to have at
//! least as many cores as runnable threads (the paper's experiment never
//! oversubscribes its 16 cores), so CPU scheduling never delays anyone —
//! only locks do.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};

/// Virtual nanoseconds.
pub type Time = u64;

/// One step of a thread's script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Block until the lock is available, then hold it.
    Acquire(u64),
    /// Release a held lock.
    Release(u64),
    /// Compute for the given virtual duration.
    Work(Time),
}

/// A thread's whole execution: a flat event list plus the number of
/// operations it represents (for throughput accounting).
#[derive(Debug, Clone, Default)]
pub struct ThreadPlan {
    /// The events, in program order.
    pub events: Vec<SimEvent>,
    /// Operations this plan performs.
    pub ops: u64,
}

/// Result of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SimResult {
    /// Virtual time at which the last thread finished.
    pub makespan: Time,
    /// Total operations across all threads.
    pub ops: u64,
}

impl SimResult {
    /// Operations per virtual second.
    pub fn throughput(&self) -> f64 {
        self.ops as f64 / (self.makespan as f64 / 1e9).max(1e-12)
    }
}

#[derive(Debug, Default)]
struct Lock {
    holder: Option<usize>,
    waiters: VecDeque<usize>,
}

/// Execute `plans` on an ideal machine with ≥ `plans.len()` cores.
///
/// Deterministic: FIFO lock queues, ties in the ready queue broken by
/// thread index.
///
/// # Panics
///
/// Panics on malformed scripts (releasing a lock not held, acquiring a
/// lock already held by the same thread).
pub fn simulate(plans: &[ThreadPlan]) -> SimResult {
    let n = plans.len();
    let mut pc = vec![0usize; n];
    let mut locks: HashMap<u64, Lock> = HashMap::new();
    // Ready queue of (time, tid): thread `tid` may execute its next event
    // at `time`.
    let mut ready: BinaryHeap<Reverse<(Time, usize)>> = (0..n).map(|t| Reverse((0, t))).collect();
    let mut finish = vec![0u64; n];

    // One event per dequeue: a thread must never run ahead in virtual
    // time past instants at which other threads could interact with the
    // same locks (the heap keeps global virtual-time order).
    while let Some(Reverse((now, t))) = ready.pop() {
        let Some(ev) = plans[t].events.get(pc[t]) else {
            finish[t] = now;
            continue;
        };
        match *ev {
            SimEvent::Work(d) => {
                pc[t] += 1;
                ready.push(Reverse((now + d, t)));
            }
            SimEvent::Release(l) => {
                let lock = locks.entry(l).or_default();
                assert_eq!(lock.holder, Some(t), "thread {t} released unheld lock {l}");
                pc[t] += 1;
                if let Some(w) = lock.waiters.pop_front() {
                    lock.holder = Some(w);
                    // The waiter resumes past its Acquire at `now`.
                    pc[w] += 1;
                    ready.push(Reverse((now, w)));
                } else {
                    lock.holder = None;
                }
                ready.push(Reverse((now, t)));
            }
            SimEvent::Acquire(l) => {
                let lock = locks.entry(l).or_default();
                match lock.holder {
                    None => {
                        lock.holder = Some(t);
                        pc[t] += 1;
                        ready.push(Reverse((now, t)));
                    }
                    Some(h) => {
                        assert_ne!(h, t, "thread {t} re-acquired lock {l}");
                        // Suspended; resumed by the releaser.
                        lock.waiters.push_back(t);
                    }
                }
            }
        }
    }

    for (l, lock) in &locks {
        assert!(
            lock.waiters.is_empty(),
            "deadlock: lock {l} still has waiters {:?} (holder {:?})",
            lock.waiters,
            lock.holder
        );
    }
    SimResult {
        makespan: finish.iter().copied().max().unwrap_or(0),
        ops: plans.iter().map(|p| p.ops).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use SimEvent::{Acquire, Release, Work};

    fn plan(events: Vec<SimEvent>, ops: u64) -> ThreadPlan {
        ThreadPlan { events, ops }
    }

    #[test]
    fn independent_threads_run_in_parallel() {
        let plans = vec![
            plan(vec![Work(100)], 1),
            plan(vec![Work(100)], 1),
            plan(vec![Work(100)], 1),
        ];
        let r = simulate(&plans);
        assert_eq!(r.makespan, 100, "parallel, not 300");
        assert_eq!(r.ops, 3);
    }

    #[test]
    fn one_lock_serializes() {
        let script = vec![Acquire(1), Work(100), Release(1)];
        let plans = vec![
            plan(script.clone(), 1),
            plan(script.clone(), 1),
            plan(script, 1),
        ];
        let r = simulate(&plans);
        assert_eq!(r.makespan, 300, "fully serialized");
    }

    #[test]
    fn amdahl_mixed_workload() {
        // 100ns parallel + 100ns under a global lock, two threads:
        // thread A: [0,100) work, [100,200) lock.
        // thread B: [0,100) work, waits, [200,300) lock.
        let script = vec![Work(100), Acquire(9), Work(100), Release(9)];
        let r = simulate(&[plan(script.clone(), 1), plan(script, 1)]);
        assert_eq!(r.makespan, 300);
    }

    #[test]
    fn fifo_ordering_is_fair() {
        // Three contenders queue up; each holds for 10.
        let script = vec![Acquire(5), Work(10), Release(5), Work(1)];
        let r = simulate(&[
            plan(script.clone(), 1),
            plan(script.clone(), 1),
            plan(script, 1),
        ]);
        // Serialized holds: 30; last finisher does +1 work after.
        assert_eq!(r.makespan, 31);
    }

    #[test]
    fn hand_over_hand_pipeline() {
        // Two threads lock-couple A then B; the second starts on A as
        // soon as the first moves to B.
        let script = vec![
            Acquire(1),
            Work(10),
            Acquire(2),
            Release(1),
            Work(10),
            Release(2),
        ];
        let r = simulate(&[plan(script.clone(), 1), plan(script, 1)]);
        // T0: A[0,10) then B[10,20). T1: A[10,20) then B[20,30).
        assert_eq!(r.makespan, 30);
    }

    #[test]
    fn throughput_accounting() {
        let r = simulate(&[plan(vec![Work(1_000_000_000)], 5)]);
        assert!((r.throughput() - 5.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "released unheld lock")]
    fn bad_release_panics() {
        simulate(&[plan(vec![Release(1)], 0)]);
    }

    #[test]
    fn empty_simulation() {
        let r = simulate(&[]);
        assert_eq!(r.makespan, 0);
        assert_eq!(r.ops, 0);
    }
}
