//! Discrete-event lock-contention simulation.
//!
//! The paper's Figure 11 measures multicore scalability on a 16-core
//! Xeon. When the reproduction host lacks real cores (this workspace is
//! routinely built on single-core machines), wall-clock threading cannot
//! exhibit speedup, so the scalability experiment runs on *virtual time*
//! instead: each worker thread becomes a script of `Acquire` / `Release`
//! / `Work` events, and a discrete-event engine executes the scripts on
//! an ideal N-core machine where blocked threads wait in FIFO lock
//! queues. Speedup is then a property of the locking discipline and the
//! work distribution — exactly what Figure 11 studies — rather than of
//! the host.
//!
//! Crucially the scripts are not invented: [`script`] converts the event
//! trace of the *real instrumented AtomFS* (which inode locks each
//! operation takes, in which order, around which mutations) into
//! simulator scripts, so lock-coupling's actual footprint — including the
//! root-lock hot spot that ultimately limits AtomFS's scaling (§7.3) —
//! drives the simulation. The big-lock variant wraps the same scripts in
//! one global lock, and deployment costs (FUSE round trip, in-kernel
//! syscall, VFS-side lookup work) appear as lock-free `Work` segments.

pub mod engine;
pub mod script;

pub use engine::{simulate, SimEvent, SimResult, ThreadPlan, Time};
pub use script::{plan_from_scripts, scripts_from_trace, CostModel, OpScript, ScriptConverter};
