//! Trace-to-script conversion and cost models.
//!
//! [`scripts_from_trace`] turns the event trace of an instrumented file
//! system run into per-operation simulator scripts: `Lock`/`Unlock`
//! become `Acquire`/`Release` of the same inode ids, and a [`CostModel`]
//! inserts virtual work — per lock hop, per mutation, per byte of data
//! moved, and per operation *outside* any lock (the deployment overhead:
//! FUSE round trip or syscall entry, plus VFS-side path work).
//!
//! Two kernel-side mechanisms the paper highlights are modelled because
//! they shape Figure 11:
//!
//! * **kernel caches** (§6): VFS/page-cache can serve read-only
//!   operations without entering the file system at all — which is why
//!   the read-heavy Webproxy personality still scales under the big-lock
//!   variant. A cache-hit read costs only the VFS work and takes no FS
//!   locks (and, for the big-lock configuration, bypasses the big lock).
//! * **lockless path walk** (ext4/RCU): the in-kernel baseline resolves
//!   paths without per-inode locks, locking only the inodes it mutates.

use atomfs_trace::{Event, MicroOp, OpDesc};

use crate::engine::{SimEvent, ThreadPlan, Time};

/// Virtual lock id reserved for the global big lock.
pub const BIG_LOCK: u64 = u64::MAX;

/// Virtual-time costs, in nanoseconds.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Deployment cost per FS-entering operation, outside all locks
    /// (FUSE ≈ 6 µs round trip; in-kernel syscall ≈ 0.7 µs).
    pub per_op_overhead: Time,
    /// VFS-side lookup work per operation (dcache walk), outside the FS.
    pub vfs_lookup: Time,
    /// Cost of each lock/lookup step inside the FS.
    pub per_lock_step: Time,
    /// Cost of each inode mutation, excluding data movement.
    pub per_mutation: Time,
    /// Cost per byte of file data moved, in milli-ns (150 ≈ 6.6 GB/s).
    pub per_byte_milli: Time,
    /// Wrap the in-FS portion of every operation in one global lock
    /// (the AtomFS-biglock configuration).
    pub big_lock: bool,
    /// Percentage (0–100) of read-only operations served entirely from
    /// kernel caches, never entering the FS (§6).
    pub cache_hit_pct: u8,
    /// Resolve paths without locks (RCU walk); only locks held across a
    /// mutation are kept. Models the in-kernel ext4 baseline.
    pub lockless_walk: bool,
}

impl CostModel {
    /// AtomFS under FUSE (the paper's deployment).
    pub fn atomfs_fuse() -> Self {
        CostModel {
            per_op_overhead: 14_000,
            vfs_lookup: 1_200,
            per_lock_step: 1_000,
            per_mutation: 400,
            per_byte_milli: 150,
            big_lock: false,
            cache_hit_pct: 85,
            lockless_walk: false,
        }
    }

    /// AtomFS-biglock under FUSE.
    pub fn biglock_fuse() -> Self {
        CostModel {
            big_lock: true,
            ..Self::atomfs_fuse()
        }
    }

    /// An in-kernel file system with RCU path walk (the ext4 stand-in).
    pub fn ext4_syscall() -> Self {
        CostModel {
            per_op_overhead: 700,
            vfs_lookup: 600,
            per_lock_step: 150,
            per_mutation: 300,
            per_byte_milli: 150,
            big_lock: false,
            cache_hit_pct: 85,
            lockless_walk: true,
        }
    }

    fn data_bytes(op: &OpDesc) -> u64 {
        match op {
            OpDesc::Read { len, .. } => *len as u64,
            OpDesc::Write { data, .. } => data.len() as u64,
            _ => 0,
        }
    }

    fn is_read_only(op: &OpDesc) -> bool {
        matches!(
            op,
            OpDesc::Stat { .. } | OpDesc::Readdir { .. } | OpDesc::Read { .. }
        )
    }
}

/// One operation's script (events between `OpBegin` and `OpEnd`).
#[derive(Debug, Clone, Default)]
pub struct OpScript {
    /// Simulator events for this operation.
    pub events: Vec<SimEvent>,
}

/// Deterministic per-op hash for the cache-hit decision.
fn op_hash(index: usize, op: &OpDesc) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ index as u64;
    for b in op.kind().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    for c in op.path() {
        for b in c.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// Raw per-op event list plus metadata, before cost weighting.
struct RawOp {
    op: OpDesc,
    body: Vec<Event>,
}

/// Stateful trace-to-script converter.
///
/// Worker streams are generated *sequentially* on one shared file system,
/// so a freed inode number is immediately recycled by the next worker's
/// creations — but in a real concurrent run those are distinct,
/// coexisting inodes with distinct locks. The converter therefore assigns
/// every `Create` a fresh virtual lock id (an *incarnation*), shared
/// across all the streams it converts, while pre-existing inodes keep
/// their ids so contention on the shared tree is preserved.
#[derive(Debug)]
pub struct ScriptConverter {
    model: CostModel,
    current_vid: std::collections::HashMap<u64, u64>,
    next_vid: u64,
}

impl ScriptConverter {
    /// A converter with no incarnations yet.
    pub fn new(model: CostModel) -> Self {
        ScriptConverter {
            model,
            current_vid: std::collections::HashMap::new(),
            next_vid: 1 << 40,
        }
    }

    fn vid(&self, ino: u64) -> u64 {
        self.current_vid.get(&ino).copied().unwrap_or(ino)
    }

    /// Convert one worker's single-threaded run into per-op scripts.
    pub fn convert(&mut self, events: &[Event]) -> Vec<OpScript> {
        // Re-map inode ids event by event, bumping incarnations at Create.
        let mapped: Vec<Event> = events
            .iter()
            .map(|ev| match ev {
                Event::Lock { tid, ino, tag } => Event::Lock {
                    tid: *tid,
                    ino: self.vid(*ino),
                    tag: *tag,
                },
                Event::Unlock { tid, ino } => Event::Unlock {
                    tid: *tid,
                    ino: self.vid(*ino),
                },
                Event::Mutate { tid, mop } => {
                    if let MicroOp::Create { ino, .. } = mop {
                        let vid = self.next_vid;
                        self.next_vid += 1;
                        self.current_vid.insert(*ino, vid);
                    }
                    Event::Mutate {
                        tid: *tid,
                        mop: mop.clone(),
                    }
                }
                other => other.clone(),
            })
            .collect();
        convert_mapped(&mapped, &self.model)
    }
}

/// Convert a single-threaded run with a one-shot converter (convenience
/// for single-stream uses; see [`ScriptConverter`] for multi-stream).
pub fn scripts_from_trace(events: &[Event], model: &CostModel) -> Vec<OpScript> {
    ScriptConverter::new(*model).convert(events)
}

fn convert_mapped(events: &[Event], model: &CostModel) -> Vec<OpScript> {
    // Split into operations.
    let mut raw: Vec<RawOp> = Vec::new();
    let mut cur: Option<RawOp> = None;
    for ev in events {
        match ev {
            Event::OpBegin { op, .. } => {
                assert!(cur.is_none(), "nested OpBegin in single-threaded trace");
                cur = Some(RawOp {
                    op: op.clone(),
                    body: Vec::new(),
                });
            }
            Event::OpEnd { .. } => raw.push(cur.take().expect("OpEnd without OpBegin")),
            other => {
                if let Some(r) = cur.as_mut() {
                    r.body.push(other.clone());
                }
            }
        }
    }
    assert!(cur.is_none(), "trace ended mid-operation");

    raw.iter()
        .enumerate()
        .map(|(i, r)| weigh_op(i, r, model))
        .collect()
}

fn weigh_op(index: usize, raw: &RawOp, model: &CostModel) -> OpScript {
    let bytes = CostModel::data_bytes(&raw.op);
    let data_work = bytes * model.per_byte_milli / 1000;

    // Kernel-cache hit: the request never reaches the file system.
    if CostModel::is_read_only(&raw.op)
        && (op_hash(index, &raw.op) % 100) < u64::from(model.cache_hit_pct)
    {
        return OpScript {
            events: vec![SimEvent::Work(model.vfs_lookup + data_work)],
        };
    }

    // Which lock intervals to keep: all of them, or (lockless walk) only
    // those with a mutation inside.
    let keep = |body: &[Event], acquire_pos: usize| -> bool {
        if !model.lockless_walk {
            return true;
        }
        let Event::Lock { ino, .. } = &body[acquire_pos] else {
            unreachable!("caller passes Lock positions");
        };
        // Find the matching unlock and look for a mutation in between.
        let mut depth = 0;
        for e in &body[acquire_pos + 1..] {
            match e {
                Event::Lock { ino: i2, .. } if i2 == ino => depth += 1,
                Event::Unlock { ino: i2, .. } if i2 == ino => {
                    if depth == 0 {
                        return false;
                    }
                    depth -= 1;
                }
                Event::Mutate { .. } => return true,
                _ => {}
            }
        }
        // Held to the end of the op (no unlock recorded): keep.
        true
    };

    let mut events = Vec::new();
    // Request path: deployment hop + VFS work, outside all FS locks.
    events.push(SimEvent::Work(model.per_op_overhead / 2 + model.vfs_lookup));
    if model.big_lock {
        events.push(SimEvent::Acquire(BIG_LOCK));
    }
    let mut dropped: std::collections::HashSet<u64> = std::collections::HashSet::new();
    for (pos, ev) in raw.body.iter().enumerate() {
        match ev {
            Event::Lock { ino, .. } => {
                if keep(&raw.body, pos) {
                    events.push(SimEvent::Acquire(*ino));
                } else {
                    dropped.insert(*ino);
                }
                // The lookup step costs the same either way.
                events.push(SimEvent::Work(model.per_lock_step));
            }
            Event::Unlock { ino, .. } => {
                if !dropped.remove(ino) {
                    events.push(SimEvent::Release(*ino));
                }
            }
            Event::Mutate { mop, .. } => {
                let mbytes = match mop {
                    MicroOp::SetData { old, new, .. } => (old.len() + new.len()) as u64,
                    _ => 0,
                };
                events.push(SimEvent::Work(
                    model.per_mutation + mbytes * model.per_byte_milli / 1000,
                ));
            }
            Event::Lp { .. } => {}
            // Optimistic-walk steps: a lockless lookup costs the same
            // per-component work as a locked step but takes no lock;
            // validation/retry bookkeeping is negligible at this scale.
            Event::OptRead { .. } => events.push(SimEvent::Work(model.per_lock_step)),
            Event::OptValidate { .. } | Event::OptRetry { .. } => {}
            Event::OpBegin { .. } | Event::OpEnd { .. } => unreachable!("split above"),
        }
    }
    if model.big_lock {
        events.push(SimEvent::Release(BIG_LOCK));
    }
    // Reply path: data copy to/from the caller plus the return hop.
    events.push(SimEvent::Work(model.per_op_overhead / 2 + data_work));
    OpScript { events }
}

/// Assemble a thread plan from one worker's op scripts.
pub fn plan_from_scripts(scripts: &[OpScript]) -> ThreadPlan {
    ThreadPlan {
        events: scripts
            .iter()
            .flat_map(|s| s.events.iter().copied())
            .collect(),
        ops: scripts.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::simulate;
    use atomfs_trace::{BufferSink, TraceSink};
    use atomfs_vfs::FileSystem;
    use std::sync::Arc;

    fn trace_of(ops: impl FnOnce(&atomfs::AtomFs)) -> Vec<Event> {
        let sink = Arc::new(BufferSink::new());
        let fs = atomfs::AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
        ops(&fs);
        sink.take()
    }

    fn no_cache(mut m: CostModel) -> CostModel {
        m.cache_hit_pct = 0;
        m
    }

    fn acquires(s: &OpScript) -> usize {
        s.events
            .iter()
            .filter(|e| matches!(e, SimEvent::Acquire(_)))
            .count()
    }

    #[test]
    fn scripts_preserve_lock_structure() {
        let trace = trace_of(|fs| {
            fs.mkdir("/a").unwrap();
            fs.mkdir("/a/b").unwrap();
        });
        let scripts = scripts_from_trace(&trace, &no_cache(CostModel::atomfs_fuse()));
        assert_eq!(scripts.len(), 2);
        // The optimistic walk reaches each parent locklessly, so every
        // mkdir acquires exactly one lock: the directory it mutates.
        assert_eq!(acquires(&scripts[0]), 1);
        assert_eq!(acquires(&scripts[1]), 1);
        // The deeper path still pays the extra per-component walk step.
        let work = |s: &OpScript| {
            s.events
                .iter()
                .filter(|e| matches!(e, SimEvent::Work(_)))
                .count()
        };
        assert_eq!(work(&scripts[1]), work(&scripts[0]) + 1);
    }

    #[test]
    fn scripts_are_balanced_and_simulate() {
        let trace = trace_of(|fs| {
            fs.mkdir("/d").unwrap();
            fs.mknod("/d/f").unwrap();
            fs.write("/d/f", 0, &[7u8; 8192]).unwrap();
            let mut buf = [0u8; 4096];
            fs.read("/d/f", 0, &mut buf).unwrap();
            fs.rename("/d/f", "/d/g").unwrap();
            fs.unlink("/d/g").unwrap();
        });
        for model in [
            no_cache(CostModel::atomfs_fuse()),
            no_cache(CostModel::biglock_fuse()),
            no_cache(CostModel::ext4_syscall()),
            CostModel::atomfs_fuse(),
            CostModel::ext4_syscall(),
        ] {
            let scripts = scripts_from_trace(&trace, &model);
            let plan = plan_from_scripts(&scripts);
            let r = simulate(&[plan]);
            assert_eq!(r.ops, 6);
            assert!(r.makespan > 0);
        }
    }

    #[test]
    fn cache_hits_take_no_locks() {
        let trace = trace_of(|fs| {
            fs.mknod("/f").unwrap();
            for _ in 0..50 {
                fs.stat("/f").unwrap();
            }
        });
        let mut always = CostModel::atomfs_fuse();
        always.cache_hit_pct = 100;
        let scripts = scripts_from_trace(&trace, &always);
        // The mknod still locks; every stat is served by the kernel cache.
        assert!(acquires(&scripts[0]) >= 1);
        for s in &scripts[1..] {
            assert_eq!(acquires(s), 0);
            assert_eq!(s.events.len(), 1);
        }
    }

    #[test]
    fn lockless_walk_keeps_only_mutated_locks() {
        let trace = trace_of(|fs| {
            fs.mkdir("/a").unwrap();
            fs.mkdir("/a/b").unwrap();
            fs.mknod("/a/b/f").unwrap(); // walk locks root, a; mutates b only
            fs.stat("/a/b/f").unwrap(); // read-only: no locks at all
        });
        let model = no_cache(CostModel::ext4_syscall());
        let scripts = scripts_from_trace(&trace, &model);
        // mknod(/a/b/f): only /a/b (the mutated parent) stays locked.
        assert_eq!(acquires(&scripts[2]), 1);
        // stat: lockless.
        assert_eq!(acquires(&scripts[3]), 0);
        // Balanced: simulation does not panic.
        simulate(&[plan_from_scripts(&scripts)]);
    }

    #[test]
    fn big_lock_serializes_in_fs_portion() {
        let trace = trace_of(|fs| {
            for i in 0..5 {
                fs.mknod(&format!("/f{i}")).unwrap();
            }
        });
        let fine = plan_from_scripts(&scripts_from_trace(
            &trace,
            &no_cache(CostModel::atomfs_fuse()),
        ));
        let big = plan_from_scripts(&scripts_from_trace(
            &trace,
            &no_cache(CostModel::biglock_fuse()),
        ));
        let r_fine = simulate(&[fine.clone(), fine]);
        let r_big = simulate(&[big.clone(), big]);
        assert!(
            r_big.makespan >= r_fine.makespan,
            "big lock cannot be faster"
        );
    }

    #[test]
    fn parallel_speedup_shows_up_in_virtual_time() {
        // Two threads working in disjoint directories scale ~2x under
        // fine-grained locking.
        let sink = Arc::new(BufferSink::new());
        let fs = atomfs::AtomFs::traced(sink.clone() as Arc<dyn TraceSink>);
        fs.mkdir("/t0").unwrap();
        fs.mkdir("/t1").unwrap();
        sink.take(); // discard setup
        let mut plans = Vec::new();
        for t in 0..2 {
            for i in 0..20 {
                fs.mknod(&format!("/t{t}/f{i}")).unwrap();
            }
            let scripts = scripts_from_trace(&sink.take(), &no_cache(CostModel::atomfs_fuse()));
            plans.push(plan_from_scripts(&scripts));
        }
        let serial: u64 = plans
            .iter()
            .map(|p| simulate(std::slice::from_ref(p)).makespan)
            .sum();
        let parallel = simulate(&plans).makespan;
        let speedup = serial as f64 / parallel as f64;
        assert!(
            speedup > 1.5,
            "disjoint dirs should scale, got {speedup:.2}"
        );
    }

    #[test]
    fn cache_decision_is_deterministic() {
        let trace = trace_of(|fs| {
            fs.mknod("/f").unwrap();
            fs.stat("/f").unwrap();
        });
        let a = scripts_from_trace(&trace, &CostModel::atomfs_fuse());
        let b = scripts_from_trace(&trace, &CostModel::atomfs_fuse());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.events, y.events);
        }
    }
}
