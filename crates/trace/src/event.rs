//! Trace events — the atomic steps of an instrumented execution.

use serde::{Deserialize, Serialize};

use crate::{Inum, MicroOp, OpDesc, OpRet, Tid};

/// Which logical path of the current operation a lock acquisition extends.
///
/// Non-rename operations traverse a single path, so all their locks carry
/// [`PathTag::Common`]. A rename first walks to the last common ancestor of
/// source and destination (`Common`), then walks the source branch (`Src`)
/// and the destination branch (`Dst`). The CRL-H ghost `Descriptor` keeps a
/// *pair* of lock paths for renames (`SrcPath`, `DestPath`, §5.2); the tag
/// tells the checker which one each lock extends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PathTag {
    /// The shared prefix (all locks of non-rename operations).
    Common,
    /// The source branch of a rename, below the common ancestor.
    Src,
    /// The destination branch of a rename, below the common ancestor.
    Dst,
}

/// One atomic step of an instrumented execution.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Event {
    /// Thread `tid` invokes operation `op`. Initializes the thread-pool
    /// ghost entry to `AopState::Pending(op)` with an empty descriptor.
    OpBegin { tid: Tid, op: OpDesc },
    /// Thread `tid` acquired the lock of inode `ino` (emitted while the
    /// lock is held). Appends `ino` to the thread's `LockPath` ghost state.
    Lock { tid: Tid, ino: Inum, tag: PathTag },
    /// Thread `tid` is about to release the lock of inode `ino` (emitted
    /// while still holding it).
    Unlock { tid: Tid, ino: Inum },
    /// Thread `tid` performed a concrete mutation inside its critical
    /// section. Advances the checker's shadow concrete state.
    Mutate { tid: Tid, mop: MicroOp },
    /// Thread `tid` passed its linearization point. For renames the
    /// checker runs `linothers` first (helping); for other operations the
    /// abstract op executes here unless it was already helped.
    Lp { tid: Tid },
    /// Thread `tid` returned `ret`. Must match the abstract result stored
    /// in the ghost state (`AopState::Done(ret)`).
    OpEnd { tid: Tid, ret: OpRet },
    /// Thread `tid` visited inode `ino` on the optimistic (lockless) walk:
    /// it read `ino`'s seqlock, resolved the next component from `ino`'s
    /// directory without locking, and re-checked the seqlock afterwards
    /// (hand-over-hand validation). Appends `ino` to the thread's candidate
    /// validation chain; no ghost lock state changes.
    OptRead { tid: Tid, ino: Inum },
    /// Thread `tid` finished an optimistic traversal and re-validated the
    /// whole chain. `ok: true` admits the chain as a legal `LockPath`
    /// witness (the checker retrofits it as the descriptor's common path);
    /// `ok: false` discards it — the thread must follow with [`Event::OptRetry`]
    /// or a pessimistic fallback ([`Event::Lock`]).
    OptValidate { tid: Tid, ok: bool },
    /// Thread `tid` abandons its optimistic attempt (after a failed
    /// validation, or after a post-claim re-check failed) and starts over.
    OptRetry { tid: Tid },
}

impl Event {
    /// The thread performing this step.
    pub fn tid(&self) -> Tid {
        match self {
            Event::OpBegin { tid, .. }
            | Event::Lock { tid, .. }
            | Event::Unlock { tid, .. }
            | Event::Mutate { tid, .. }
            | Event::Lp { tid }
            | Event::OpEnd { tid, .. }
            | Event::OptRead { tid, .. }
            | Event::OptValidate { tid, .. }
            | Event::OptRetry { tid } => *tid,
        }
    }
}

impl std::fmt::Display for Event {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Event::OpBegin { tid, op } => write!(f, "{tid}: begin {op}"),
            Event::Lock { tid, ino, tag } => write!(f, "{tid}: lock {ino} ({tag:?})"),
            Event::Unlock { tid, ino } => write!(f, "{tid}: unlock {ino}"),
            Event::Mutate { tid, mop } => write!(f, "{tid}: {mop}"),
            Event::Lp { tid } => write!(f, "{tid}: LP"),
            Event::OpEnd { tid, ret } => write!(f, "{tid}: end {ret}"),
            Event::OptRead { tid, ino } => write!(f, "{tid}: opt-read {ino}"),
            Event::OptValidate { tid, ok } => {
                write!(f, "{tid}: opt-validate {}", if *ok { "ok" } else { "fail" })
            }
            Event::OptRetry { tid } => write!(f, "{tid}: opt-retry"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_projection() {
        let e = Event::Lp { tid: Tid(3) };
        assert_eq!(e.tid(), Tid(3));
        let e = Event::Lock {
            tid: Tid(7),
            ino: 1,
            tag: PathTag::Common,
        };
        assert_eq!(e.tid(), Tid(7));
    }

    #[test]
    fn display_is_line_oriented() {
        let e = Event::OpBegin {
            tid: Tid(1),
            op: OpDesc::Mkdir {
                path: vec!["a".into()],
            },
        };
        assert_eq!(e.to_string(), "t1: begin mkdir(/a)");
    }
}
