//! Instrumentation vocabulary shared by AtomFS (the emitter) and CRL-H
//! (the consumer).
//!
//! The executable CRL-H checker replays a totally-ordered trace of the
//! *atomic instrumentation points* of a concurrent execution:
//!
//! * [`Event::OpBegin`] / [`Event::OpEnd`] — invocation and response of a
//!   file system operation, carrying its abstract description ([`OpDesc`])
//!   and concrete result ([`OpRet`]);
//! * [`Event::Lock`] / [`Event::Unlock`] — per-inode lock transitions,
//!   from which the checker maintains each thread's `LockPath` ghost state;
//! * [`Event::Mutate`] — inode-granularity concrete mutations
//!   ([`MicroOp`]), from which the checker maintains a shadow concrete
//!   file system;
//! * [`Event::Lp`] — the operation's linearization point, at which the
//!   checker steps the abstract file system (running the `linothers`
//!   helper first when the operation is a `rename`).
//!
//! Events are pushed through a [`TraceSink`]. The emitting file system
//! calls the sink *while holding the locks that make the step atomic*
//! (lock events are emitted after acquiring / before releasing), so the
//! order in which events reach a serializing sink is a legal total order
//! of the execution's atomic steps.

pub mod event;
pub mod gate;
pub mod micro;
pub mod op;
pub mod sink;
pub mod tid;

pub use event::{Event, PathTag};
pub use gate::{GateId, GateSink};
pub use micro::MicroOp;
pub use op::{OpDesc, OpRet, StatRet, Tid};
pub use sink::{BufferSink, FanoutSink, NullSink, TraceSink};
pub use tid::{current_tid, set_current_tid};

/// Inode numbers, shared between the concrete systems and the checker.
pub type Inum = u64;

/// The root inode number used by every file system in this workspace.
pub const ROOT_INUM: Inum = 1;
