//! Instrumentation vocabulary shared by AtomFS (the emitter) and CRL-H
//! (the consumer).
//!
//! The executable CRL-H checker replays a totally-ordered trace of the
//! *atomic instrumentation points* of a concurrent execution:
//!
//! * [`Event::OpBegin`] / [`Event::OpEnd`] — invocation and response of a
//!   file system operation, carrying its abstract description ([`OpDesc`])
//!   and concrete result ([`OpRet`]);
//! * [`Event::Lock`] / [`Event::Unlock`] — per-inode lock transitions,
//!   from which the checker maintains each thread's `LockPath` ghost state;
//! * [`Event::Mutate`] — inode-granularity concrete mutations
//!   ([`MicroOp`]), from which the checker maintains a shadow concrete
//!   file system;
//! * [`Event::Lp`] — the operation's linearization point, at which the
//!   checker steps the abstract file system (running the `linothers`
//!   helper first when the operation is a `rename`).
//!
//! Events are pushed through a [`TraceSink`]. The emitting file system
//! calls the sink *while holding the locks that make the step atomic*
//! (lock events are emitted after acquiring / before releasing). A sink
//! that serializes its callers ([`BufferSink`]) therefore observes a
//! legal total order of the execution's atomic steps — and so does a
//! sink that merely *stamps* each call from one global atomic counter
//! ([`ShardedSink`]), because stamps taken inside the emitters' critical
//! sections respect both program order and per-inode critical-section
//! order (see `shard`'s module docs for the full argument). The stamped
//! recorder is the low-contention default for multi-threaded
//! experiments; the mutex recorder stays as the reference
//! implementation, with a differential test pinning the two to
//! order-equivalent traces.

pub mod event;
pub mod follow;
pub mod gate;
pub mod micro;
pub mod op;
pub mod shard;
pub mod sink;
pub mod tid;

pub use event::{Event, PathTag};
pub use follow::{CursorStats, TailCursor};
pub use gate::{GateId, GateSink};
pub use micro::MicroOp;
pub use op::{OpDesc, OpRet, StatRet, Tid};
pub use shard::{ShardedSink, Stamped};
pub use sink::{BufferSink, FanoutSink, NullSink, TraceSink};
pub use tid::{current_tid, set_current_tid};

/// Inode numbers, shared between the concrete systems and the checker.
pub type Inum = u64;

/// The root inode number used by every file system in this workspace.
pub const ROOT_INUM: Inum = 1;
