//! Inode-granularity micro-operations.
//!
//! The paper's roll-back mechanism (§4.4, §5.3) records a helped
//! operation's `Effect` as a list of micro-operations at inode granularity
//! — e.g. `INS` has effect `(OPins:(pinum,name,cinum), OPcreat:cinum)` —
//! so the abstraction relation can roll abstract inodes back to their
//! concrete-time content. This module defines those micro-operations.
//!
//! The same vocabulary describes the *concrete* mutations AtomFS performs
//! inside its critical sections ([`crate::Event::Mutate`] events), which is
//! what lets the checker maintain a shadow concrete file system and close
//! the simulation loop: concrete mutations move the shadow state forward,
//! helping moves the abstract state forward early, and roll-back reconciles
//! the two.
//!
//! Each micro-op carries enough information to be applied *and* inverted
//! (`OPdel` remembers the deleted child, file updates remember the old
//! bytes), because rolling back applies inverses in reverse `Helplist`
//! order.

use serde::{Deserialize, Serialize};

use crate::Inum;
use atomfs_vfs::FileType;

/// One inode-granularity mutation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MicroOp {
    /// `OPcreat`: allocate inode `ino` with type `ftype` (empty contents).
    Create { ino: Inum, ftype: FileType },
    /// Inverse of `OPcreat`: free inode `ino`. Used when `unlink`/`rmdir`
    /// release an inode, or when rolling back a creation.
    Remove { ino: Inum, ftype: FileType },
    /// `OPins`: insert link `name -> child` into directory `parent`.
    Ins {
        parent: Inum,
        name: String,
        child: Inum,
    },
    /// `OPdel`: remove link `name -> child` from directory `parent`.
    Del {
        parent: Inum,
        name: String,
        child: Inum,
    },
    /// Replace the contents of file `ino` (covers write and truncate).
    /// Old contents are retained so the op can be inverted by roll-back.
    SetData {
        ino: Inum,
        old: Vec<u8>,
        new: Vec<u8>,
    },
}

impl MicroOp {
    /// The inode this micro-op modifies (the *parent* for link changes —
    /// link micro-ops mutate the directory inode's content).
    pub fn target(&self) -> Inum {
        match self {
            MicroOp::Create { ino, .. }
            | MicroOp::Remove { ino, .. }
            | MicroOp::SetData { ino, .. } => *ino,
            MicroOp::Ins { parent, .. } | MicroOp::Del { parent, .. } => *parent,
        }
    }

    /// All inodes mentioned by this micro-op (used by effect search).
    pub fn touched(&self) -> Vec<Inum> {
        match self {
            MicroOp::Create { ino, .. }
            | MicroOp::Remove { ino, .. }
            | MicroOp::SetData { ino, .. } => vec![*ino],
            MicroOp::Ins { parent, child, .. } | MicroOp::Del { parent, child, .. } => {
                vec![*parent, *child]
            }
        }
    }

    /// The inverse micro-op, applied during roll-back.
    ///
    /// # Examples
    ///
    /// ```
    /// use atomfs_trace::MicroOp;
    /// use atomfs_vfs::FileType;
    /// let ins = MicroOp::Ins { parent: 1, name: "a".into(), child: 2 };
    /// let del = MicroOp::Del { parent: 1, name: "a".into(), child: 2 };
    /// assert_eq!(ins.inverse(), del);
    /// assert_eq!(del.inverse(), ins);
    /// let cr = MicroOp::Create { ino: 3, ftype: FileType::File };
    /// assert_eq!(cr.inverse().inverse(), cr);
    /// ```
    pub fn inverse(&self) -> MicroOp {
        match self {
            MicroOp::Create { ino, ftype } => MicroOp::Remove {
                ino: *ino,
                ftype: *ftype,
            },
            MicroOp::Remove { ino, ftype } => MicroOp::Create {
                ino: *ino,
                ftype: *ftype,
            },
            MicroOp::Ins {
                parent,
                name,
                child,
            } => MicroOp::Del {
                parent: *parent,
                name: name.clone(),
                child: *child,
            },
            MicroOp::Del {
                parent,
                name,
                child,
            } => MicroOp::Ins {
                parent: *parent,
                name: name.clone(),
                child: *child,
            },
            MicroOp::SetData { ino, old, new } => MicroOp::SetData {
                ino: *ino,
                old: new.clone(),
                new: old.clone(),
            },
        }
    }
}

impl std::fmt::Display for MicroOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MicroOp::Create { ino, ftype } => write!(f, "OPcreat({ino}, {ftype:?})"),
            MicroOp::Remove { ino, .. } => write!(f, "OPremove({ino})"),
            MicroOp::Ins {
                parent,
                name,
                child,
            } => write!(f, "OPins({parent}, {name}, {child})"),
            MicroOp::Del {
                parent,
                name,
                child,
            } => write!(f, "OPdel({parent}, {name}, {child})"),
            MicroOp::SetData { ino, old, new } => {
                write!(f, "OPsetdata({ino}, {} -> {} bytes)", old.len(), new.len())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inverse_is_an_involution() {
        let ops = [
            MicroOp::Create {
                ino: 5,
                ftype: FileType::Dir,
            },
            MicroOp::Ins {
                parent: 1,
                name: "x".into(),
                child: 5,
            },
            MicroOp::SetData {
                ino: 5,
                old: b"old".to_vec(),
                new: b"new!".to_vec(),
            },
        ];
        for op in &ops {
            assert_eq!(&op.inverse().inverse(), op);
        }
    }

    #[test]
    fn target_is_mutated_inode() {
        let ins = MicroOp::Ins {
            parent: 1,
            name: "x".into(),
            child: 9,
        };
        assert_eq!(ins.target(), 1);
        assert_eq!(ins.touched(), vec![1, 9]);
        let sd = MicroOp::SetData {
            ino: 4,
            old: vec![],
            new: vec![1],
        };
        assert_eq!(sd.target(), 4);
    }
}
