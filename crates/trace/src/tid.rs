//! Logical thread identities.
//!
//! The CRL-H ghost thread pool is keyed by thread IDs. Instrumented file
//! systems discover the current logical thread through this module: tests
//! pin specific IDs with [`set_current_tid`] so traces match scripted
//! scenarios; otherwise a fresh ID is assigned per OS thread on first use.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};

use crate::Tid;

static NEXT_TID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    static CURRENT: Cell<Option<Tid>> = const { Cell::new(None) };
}

/// The calling thread's logical ID, assigning a fresh one on first use.
pub fn current_tid() -> Tid {
    CURRENT.with(|c| match c.get() {
        Some(t) => t,
        None => {
            let t = Tid(NEXT_TID.fetch_add(1, Ordering::Relaxed));
            c.set(Some(t));
            t
        }
    })
}

/// Pin the calling thread's logical ID (used by scripted scenario tests).
pub fn set_current_tid(tid: Tid) {
    CURRENT.with(|c| c.set(Some(tid)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_stable_per_thread() {
        let a = current_tid();
        let b = current_tid();
        assert_eq!(a, b);
    }

    #[test]
    fn set_overrides() {
        let handle = std::thread::spawn(|| {
            set_current_tid(Tid(777));
            current_tid()
        });
        assert_eq!(handle.join().unwrap(), Tid(777));
    }

    #[test]
    fn distinct_threads_get_distinct_ids() {
        let a = std::thread::spawn(current_tid).join().unwrap();
        let b = std::thread::spawn(current_tid).join().unwrap();
        assert_ne!(a, b);
    }
}
