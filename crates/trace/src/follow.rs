//! Tail-follow cursors over a live [`ShardedSink`] — the feed for
//! streaming (online) checking.
//!
//! [`ShardedSink::take_stamped`] is a quiescent-point drain: racing it
//! against live emitters can split concurrent events across two takes
//! so their concatenation is not stamp-sorted. A [`TailCursor`] instead
//! follows the shards *while they are being written* and still hands
//! its consumer a strictly stamp-increasing merged stream, by releasing
//! only the prefix below a **cross-shard stable watermark**.
//!
//! # The watermark rule
//!
//! On every [`TailCursor::poll`], the cursor visits each shard in turn.
//! With shard *i*'s lock held it (a) copies (or drains) the events that
//! arrived since the previous poll and (b) reads the global sequence
//! counter: `low_i = seq.load()`. Because stamps are taken *under the
//! shard lock* inside `emit`, any event that lands in shard *i* after
//! the cursor releases that lock will draw its stamp from a counter
//! state that happens-after the `low_i` read — its stamp is `>= low_i`.
//!
//! The watermark is `W = min_i(low_i)`. Every future emit, into *any*
//! shard, is stamped `>= low_i >= W` for its shard's frontier, so every
//! event with stamp `< W` is already sitting in the cursor's per-shard
//! buffers. Those events can be k-way merged and released in stamp
//! order; events stamped `>= W` stay buffered until a later poll raises
//! the watermark past them. The released stream is therefore a strictly
//! increasing stamp prefix of exactly the trace a quiescent
//! `take_stamped` would have produced — `tests/` pins this
//! differentially.
//!
//! # Following vs consuming
//!
//! A *following* cursor ([`ShardedSink::follow`]) leaves the events in
//! the sink, so an end-of-run `take_stamped` still sees the whole trace
//! (differential harnesses want both views). A *consuming* cursor
//! ([`ShardedSink::follow_consuming`]) drains segments as it goes, so
//! sink memory stays proportional to the in-flight window — the mode a
//! production checker pump runs in.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::shard::{ShardedSink, Stamped};

/// Counters describing how far a [`TailCursor`] has progressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorStats {
    /// Current stable watermark: every event stamped below this has
    /// been released (merged, in stamp order) to the consumer.
    pub watermark: u64,
    /// Stamps issued by the sink at the last poll — the emit frontier.
    pub frontier: u64,
    /// Events released to the consumer so far.
    pub released: u64,
    /// Events copied/drained from the sink but still held back because
    /// their stamp is at or above the watermark.
    pub buffered: usize,
}

impl CursorStats {
    /// Watermark lag in stamps: how far the released prefix trails the
    /// emit frontier. The streaming checker exports this as a gauge.
    pub fn lag(&self) -> u64 {
        self.frontier.saturating_sub(self.watermark)
    }
}

/// An incremental follower of a live [`ShardedSink`]; see the module
/// docs for the watermark rule that makes its output stamp-ordered.
pub struct TailCursor {
    sink: Arc<ShardedSink>,
    /// Per-shard read offset into the live segment (following mode).
    positions: Vec<usize>,
    /// Per-shard events copied out of the sink but not yet released
    /// (stamp >= watermark). Each deque is stamp-sorted; heads across
    /// deques are what the release step k-way merges.
    pending: Vec<VecDeque<Stamped>>,
    /// Drain segments instead of copying (production pump mode).
    consume: bool,
    watermark: u64,
    frontier: u64,
    released: u64,
    /// Set if a concurrent `take_stamped` yanked events out from under
    /// a following cursor (segment shrank below our position). The
    /// cursor can no longer prove its prefix is complete.
    invalidated: bool,
}

impl ShardedSink {
    /// Open a non-destructive tail cursor: events stay in the sink, so
    /// a later quiescent [`ShardedSink::take_stamped`] still returns the
    /// full trace. Do not mix with concurrent `take`/`take_stamped`
    /// calls while the cursor is live (the cursor detects this and
    /// reports itself [`TailCursor::invalidated`]).
    pub fn follow(self: &Arc<Self>) -> TailCursor {
        TailCursor::new(Arc::clone(self), false)
    }

    /// Open a consuming tail cursor: polled events are drained out of
    /// the sink (counting against [`ShardedSink::len`] like a take), so
    /// sink memory stays bounded by the in-flight window.
    pub fn follow_consuming(self: &Arc<Self>) -> TailCursor {
        TailCursor::new(Arc::clone(self), true)
    }
}

impl TailCursor {
    fn new(sink: Arc<ShardedSink>, consume: bool) -> Self {
        let n = sink.shard_count();
        TailCursor {
            sink,
            positions: vec![0; n],
            pending: (0..n).map(|_| VecDeque::new()).collect(),
            consume,
            watermark: 0,
            frontier: 0,
            released: 0,
            invalidated: false,
        }
    }

    /// Visit every shard, pull in newly arrived events, advance the
    /// watermark, and return the newly stable prefix merged in strictly
    /// increasing stamp order. Safe to call concurrently with emitters;
    /// returns an empty vector when nothing new became stable.
    pub fn poll(&mut self) -> Vec<Stamped> {
        let mut low = u64::MAX;
        let mut drained = 0u64;
        for i in 0..self.positions.len() {
            let shard = &self.sink.shards[i];
            let mut segment = shard.events.lock();
            // Read the frontier under the shard lock: any later emit
            // into this shard stamps itself >= this value.
            let low_i = self.sink.seq.load(Ordering::Acquire);
            if self.consume {
                drained += segment.len() as u64;
                self.pending[i].extend(segment.drain(..));
            } else {
                let pos = self.positions[i];
                if pos > segment.len() {
                    // Someone take()'d the sink out from under us; the
                    // events between our position and the head are gone
                    // and the watermark argument no longer holds.
                    self.invalidated = true;
                    self.positions[i] = segment.len();
                } else {
                    self.pending[i].extend(segment[pos..].iter().cloned());
                    self.positions[i] = segment.len();
                }
            }
            low = low.min(low_i);
        }
        if drained > 0 {
            // A consuming cursor is a take: keep `len()` meaningful.
            self.sink.taken.fetch_add(drained, Ordering::Relaxed);
        }
        self.frontier = self.sink.seq.load(Ordering::Relaxed);
        if low != u64::MAX && low > self.watermark {
            self.watermark = low;
        }
        self.release_below(self.watermark)
    }

    /// Release everything still buffered, regardless of watermark. Only
    /// legal at a quiescent point (emitting threads joined/drained) —
    /// exactly like `take_stamped`. Runs a final poll first so nothing
    /// recorded is left behind.
    pub fn finish(mut self) -> Vec<Stamped> {
        let mut out = self.poll();
        out.extend(self.release_below(u64::MAX));
        out
    }

    /// K-way merge-pop every buffered event with stamp < `bound`.
    ///
    /// Each shard's deque is stamp-sorted, so the releasable prefix per
    /// shard is found by binary search, the single-shard case is a bulk
    /// drain, and the multi-shard merge pops *runs* (all of one shard's
    /// events below the next shard's head) instead of rescanning every
    /// head per event — emitters write bursts of consecutive stamps into
    /// one shard, so runs are long.
    fn release_below(&mut self, bound: u64) -> Vec<Stamped> {
        // Releasable prefix length per shard.
        let mut take: Vec<usize> = Vec::with_capacity(self.pending.len());
        let mut total = 0usize;
        let mut live = 0usize;
        let mut last_live = 0usize;
        for (i, q) in self.pending.iter().enumerate() {
            let k = q.partition_point(|&(s, _)| s < bound);
            take.push(k);
            if k > 0 {
                total += k;
                live += 1;
                last_live = i;
            }
        }
        if total == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(total);
        if live == 1 {
            out.extend(self.pending[last_live].drain(..take[last_live]));
        } else {
            while out.len() < total {
                // Shard with the smallest head, and the runner-up head
                // bounding how far its run extends.
                let mut best: Option<(u64, usize)> = None;
                let mut next = u64::MAX;
                for (i, q) in self.pending.iter().enumerate() {
                    if take[i] == 0 {
                        continue;
                    }
                    let stamp = q.front().expect("count checked").0;
                    match best {
                        Some((b, _)) if stamp >= b => next = next.min(stamp),
                        Some((b, _)) => {
                            next = next.min(b);
                            best = Some((stamp, i));
                        }
                        None => best = Some((stamp, i)),
                    }
                }
                let (_, i) = best.expect("total > released so a head exists");
                let q = &mut self.pending[i];
                let run = q
                    .partition_point(|&(s, _)| s < next)
                    .min(take[i]);
                take[i] -= run;
                out.extend(q.drain(..run));
            }
        }
        self.released += out.len() as u64;
        out
    }

    /// Progress counters for metrics export.
    pub fn stats(&self) -> CursorStats {
        CursorStats {
            watermark: self.watermark,
            frontier: self.frontier,
            released: self.released,
            buffered: self.pending.iter().map(VecDeque::len).sum(),
        }
    }

    /// True if a concurrent drain invalidated a following cursor's
    /// completeness guarantee (see [`ShardedSink::follow`]).
    pub fn invalidated(&self) -> bool {
        self.invalidated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, Tid, TraceSink};
    use std::sync::Barrier;

    #[test]
    fn follow_releases_full_trace_in_stamp_order_at_quiescence() {
        let sink = Arc::new(ShardedSink::with_shards(4));
        let mut cursor = sink.follow();
        for t in 0..3u32 {
            sink.emit(Event::Lp { tid: Tid(t) });
        }
        let mut got = cursor.poll();
        got.extend(cursor.finish());
        assert_eq!(got.len(), 3);
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        // Non-destructive: the sink still holds everything.
        assert_eq!(sink.take_stamped().len(), 3);
    }

    #[test]
    fn consuming_cursor_drains_the_sink() {
        let sink = Arc::new(ShardedSink::with_shards(2));
        let cursor = sink.follow_consuming();
        for t in 0..5u32 {
            sink.emit(Event::Lp { tid: Tid(t) });
        }
        let got = cursor.finish();
        assert_eq!(got.len(), 5);
        assert!(sink.is_empty(), "consuming cursor must count as a take");
    }

    #[test]
    fn released_prefix_is_always_strictly_increasing_under_live_emitters() {
        let sink = Arc::new(ShardedSink::with_shards(4));
        let mut cursor = sink.follow();
        let threads = 4;
        let per = 500usize;
        let barrier = Arc::new(Barrier::new(threads + 1));
        let mut handles = Vec::new();
        for t in 0..threads as u32 {
            let sink = Arc::clone(&sink);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..per {
                    sink.emit(Event::Lp { tid: Tid(t) });
                }
            }));
        }
        barrier.wait();
        let mut all = Vec::new();
        while all.len() < threads * per {
            all.extend(cursor.poll());
        }
        for h in handles {
            h.join().unwrap();
        }
        all.extend(cursor.finish());
        assert_eq!(all.len(), threads * per);
        for w in all.windows(2) {
            assert!(w[0].0 < w[1].0, "streamed stamps must strictly increase");
        }
        // The streamed trace equals the quiescent merge.
        let offline = sink.take_stamped();
        assert_eq!(all, offline);
    }

    #[test]
    fn concurrent_take_invalidates_a_following_cursor() {
        let sink = Arc::new(ShardedSink::with_shards(2));
        let mut cursor = sink.follow();
        sink.emit(Event::Lp { tid: Tid(1) });
        cursor.poll();
        sink.emit(Event::Lp { tid: Tid(1) });
        let _ = sink.take_stamped();
        cursor.poll();
        assert!(cursor.invalidated());
    }

    #[test]
    fn watermark_lag_is_reported() {
        let sink = Arc::new(ShardedSink::with_shards(2));
        let mut cursor = sink.follow();
        sink.emit(Event::Lp { tid: Tid(1) });
        cursor.poll();
        let stats = cursor.stats();
        assert_eq!(stats.frontier, 1);
        assert_eq!(stats.watermark, 1);
        assert_eq!(stats.lag(), 0);
        assert_eq!(stats.released, 1);
    }
}
