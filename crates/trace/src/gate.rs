//! Deterministic interleaving control for concurrency tests.
//!
//! [`GateSink`] wraps any [`TraceSink`] and *parks* the emitting thread
//! immediately **before** an event matching a registered gate is
//! recorded — while that thread holds exactly the locks it held at that
//! point of its critical section. This turns the paper's interleaving
//! diagrams (Figures 1, 4, 8, 9) into repeatable tests: park a `mkdir`
//! just before its first mutation (holding only its parent directory's
//! lock), run a full `rename(/a, /e)`, then release the `mkdir` and check
//! the trace.
//!
//! Pick gate events at which the thread holds only its deepest lock —
//! the first `Mutate` of an updating operation, or the `Lp` of a
//! read-only/failing one. Gating on a `Lock` event would park while the
//! *previous* inode of the hand-over-hand walk is still held (its
//! `Unlock` is emitted after the child's `Lock`), which deadlocks
//! scenarios that need that inode.
//!
//! Gates are one-shot: each parks the first matching emission and ignores
//! later ones.

use parking_lot::{Condvar, Mutex};

use crate::{Event, TraceSink};

/// Identifies a registered gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateId(usize);

type Matcher = Box<dyn Fn(&Event) -> bool + Send + Sync>;

struct GateState {
    matcher: Matcher,
    open: bool,
    parked: bool,
    hit: bool,
}

/// A sink wrapper that parks emitting threads at registered gates.
pub struct GateSink<S> {
    inner: S,
    gates: Mutex<Vec<GateState>>,
    cv: Condvar,
}

impl<S: TraceSink> GateSink<S> {
    /// Wrap `inner` with no gates.
    pub fn new(inner: S) -> Self {
        GateSink {
            inner,
            gates: Mutex::new(Vec::new()),
            cv: Condvar::new(),
        }
    }

    /// The wrapped sink.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Register a gate: the first emission matching `matcher` parks its
    /// thread until [`GateSink::open`] is called.
    pub fn add_gate(&self, matcher: impl Fn(&Event) -> bool + Send + Sync + 'static) -> GateId {
        let mut gates = self.gates.lock();
        gates.push(GateState {
            matcher: Box::new(matcher),
            open: false,
            parked: false,
            hit: false,
        });
        GateId(gates.len() - 1)
    }

    /// Block until some thread is parked at `gate`.
    ///
    /// # Panics
    ///
    /// Panics after ten seconds — a deadlocked test is reported rather
    /// than hung.
    pub fn wait_parked(&self, gate: GateId) {
        let mut gates = self.gates.lock();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while !gates[gate.0].parked {
            if self.cv.wait_until(&mut gates, deadline).timed_out() {
                panic!("no thread reached gate {gate:?} within 10s");
            }
        }
    }

    /// Whether a thread is currently parked at `gate`.
    pub fn is_parked(&self, gate: GateId) -> bool {
        self.gates.lock()[gate.0].parked
    }

    /// Release the thread parked at `gate` (or let the next matching
    /// emission pass straight through).
    pub fn open(&self, gate: GateId) {
        let mut gates = self.gates.lock();
        gates[gate.0].open = true;
        self.cv.notify_all();
    }
}

impl<S: TraceSink> GateSink<S> {
    /// Park the calling thread if `event` matches a registered unopened
    /// gate; returns once the gate opens (or immediately on no match).
    fn pass_gates(&self, event: &Event) {
        let mut gates = self.gates.lock();
        let hit = gates
            .iter()
            .position(|g| !g.hit && !g.open && (g.matcher)(event));
        if let Some(i) = hit {
            gates[i].hit = true;
            gates[i].parked = true;
            self.cv.notify_all();
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            while !gates[i].open {
                if self.cv.wait_until(&mut gates, deadline).timed_out() {
                    panic!("gate {i} never opened within 10s (test deadlock)");
                }
            }
            gates[i].parked = false;
            self.cv.notify_all();
        }
    }
}

impl<S: TraceSink> TraceSink for GateSink<S> {
    fn emit(&self, event: Event) {
        self.pass_gates(&event);
        // The event is recorded only when the thread resumes: parking
        // happens *before* the matched step, so the trace order remains
        // the true order of atomic steps.
        self.inner.emit(event);
    }

    fn emit_ref(&self, event: &Event) {
        self.pass_gates(event);
        self.inner.emit_ref(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BufferSink, Tid};
    use std::sync::Arc;

    #[test]
    fn gate_parks_and_releases() {
        let sink = Arc::new(GateSink::new(BufferSink::new()));
        let gate = sink.add_gate(|e| matches!(e, Event::Lp { tid } if *tid == Tid(5)));
        let s2 = Arc::clone(&sink);
        let h = std::thread::spawn(move || {
            s2.emit(Event::Lp { tid: Tid(4) }); // passes through
            s2.emit(Event::Lp { tid: Tid(5) }); // parks here
            s2.emit(Event::Lp { tid: Tid(6) });
        });
        sink.wait_parked(gate);
        assert_eq!(sink.inner().len(), 1, "parking happens before recording");
        assert!(sink.is_parked(gate));
        sink.open(gate);
        h.join().unwrap();
        assert_eq!(sink.inner().len(), 3);
    }

    #[test]
    fn gates_apply_to_borrowed_emissions_too() {
        let sink = Arc::new(GateSink::new(BufferSink::new()));
        let gate = sink.add_gate(|e| matches!(e, Event::Lp { tid } if *tid == Tid(9)));
        let s2 = Arc::clone(&sink);
        let h = std::thread::spawn(move || {
            s2.emit_ref(&Event::Lp { tid: Tid(9) }); // parks here
        });
        sink.wait_parked(gate);
        assert_eq!(sink.inner().len(), 0, "parking happens before recording");
        sink.open(gate);
        h.join().unwrap();
        assert_eq!(sink.inner().len(), 1);
    }

    #[test]
    fn gate_is_one_shot() {
        let sink = Arc::new(GateSink::new(BufferSink::new()));
        let gate = sink.add_gate(|e| matches!(e, Event::Lp { .. }));
        sink.open(gate); // pre-open: emission passes straight through
        sink.emit(Event::Lp { tid: Tid(1) });
        sink.emit(Event::Lp { tid: Tid(2) });
        assert_eq!(sink.inner().len(), 2);
    }
}
