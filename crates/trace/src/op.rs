//! Operation descriptions and results.
//!
//! [`OpDesc`] is the *abstract* description of a file system call — the
//! operation name plus its arguments with paths already normalized into
//! components. It doubles as the "intended abstract operation" stored in
//! the CRL-H thread pool ghost state (the `(aop, args)` of the paper's
//! `AopState`), and as the alphabet of the generic linearizability checker.

use serde::{Deserialize, Serialize};

use atomfs_vfs::{FileType, FsError, Metadata};

/// A logical thread identifier assigned by the harness.
///
/// The paper's ghost thread pool maps thread IDs to descriptors; traces use
/// the same identifiers so the checker can rebuild that pool.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Tid(pub u32);

impl std::fmt::Display for Tid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Path components (already normalized; see `atomfs_vfs::path::normalize`).
pub type Comps = Vec<String>;

/// Abstract description of one file system operation and its arguments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpDesc {
    /// Create an empty regular file.
    Mknod { path: Comps },
    /// Create an empty directory.
    Mkdir { path: Comps },
    /// Remove a regular file.
    Unlink { path: Comps },
    /// Remove an empty directory.
    Rmdir { path: Comps },
    /// Atomically move `src` to `dst`.
    Rename { src: Comps, dst: Comps },
    /// Query metadata.
    Stat { path: Comps },
    /// List a directory.
    Readdir { path: Comps },
    /// Read `len` bytes at `offset`.
    Read {
        path: Comps,
        offset: u64,
        len: usize,
    },
    /// Write `data` at `offset`.
    Write {
        path: Comps,
        offset: u64,
        data: Vec<u8>,
    },
    /// Set file size.
    Truncate { path: Comps, size: u64 },
}

impl OpDesc {
    /// Short operation name for reports.
    pub fn kind(&self) -> &'static str {
        match self {
            OpDesc::Mknod { .. } => "mknod",
            OpDesc::Mkdir { .. } => "mkdir",
            OpDesc::Unlink { .. } => "unlink",
            OpDesc::Rmdir { .. } => "rmdir",
            OpDesc::Rename { .. } => "rename",
            OpDesc::Stat { .. } => "stat",
            OpDesc::Readdir { .. } => "readdir",
            OpDesc::Read { .. } => "read",
            OpDesc::Write { .. } => "write",
            OpDesc::Truncate { .. } => "truncate",
        }
    }

    /// Whether this is the `rename` operation — the only POSIX interface
    /// that can break other operations' path integrity (§3.2), and hence
    /// the only helper.
    pub fn is_rename(&self) -> bool {
        matches!(self, OpDesc::Rename { .. })
    }

    /// Whether the operation mutates the tree or file contents.
    pub fn is_mutation(&self) -> bool {
        matches!(
            self,
            OpDesc::Mknod { .. }
                | OpDesc::Mkdir { .. }
                | OpDesc::Unlink { .. }
                | OpDesc::Rmdir { .. }
                | OpDesc::Rename { .. }
                | OpDesc::Write { .. }
                | OpDesc::Truncate { .. }
        )
    }

    /// The primary path argument (the source path for `rename`).
    pub fn path(&self) -> &Comps {
        match self {
            OpDesc::Mknod { path }
            | OpDesc::Mkdir { path }
            | OpDesc::Unlink { path }
            | OpDesc::Rmdir { path }
            | OpDesc::Stat { path }
            | OpDesc::Readdir { path }
            | OpDesc::Read { path, .. }
            | OpDesc::Write { path, .. }
            | OpDesc::Truncate { path, .. } => path,
            OpDesc::Rename { src, .. } => src,
        }
    }
}

impl std::fmt::Display for OpDesc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn p(c: &Comps) -> String {
            atomfs_vfs::path::to_string(c)
        }
        match self {
            OpDesc::Rename { src, dst } => write!(f, "rename({}, {})", p(src), p(dst)),
            OpDesc::Read { path, offset, len } => {
                write!(f, "read({}, off={offset}, len={len})", p(path))
            }
            OpDesc::Write { path, offset, data } => {
                write!(f, "write({}, off={offset}, len={})", p(path), data.len())
            }
            OpDesc::Truncate { path, size } => write!(f, "truncate({}, {size})", p(path)),
            other => write!(f, "{}({})", other.kind(), p(other.path())),
        }
    }
}

/// Stat result in abstract terms (inode numbers are implementation detail,
/// so only shape-relevant fields are compared by the checkers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatRet {
    /// File or directory.
    pub is_dir: bool,
    /// Size in bytes (files) or entry count (directories).
    pub size: u64,
}

impl StatRet {
    /// Project a concrete [`Metadata`] onto the comparable fields.
    pub fn from_metadata(m: &Metadata) -> Self {
        StatRet {
            is_dir: m.ftype == FileType::Dir,
            size: m.size,
        }
    }
}

/// The result of an operation, in abstract terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OpRet {
    /// Success with no payload (mknod/mkdir/unlink/rmdir/rename/truncate).
    Ok,
    /// Successful `stat`.
    Stat(StatRet),
    /// Successful `readdir`; names are compared order-insensitively, so
    /// constructors must sort them.
    Names(Vec<String>),
    /// Successful `read` payload.
    Data(Vec<u8>),
    /// Successful `write`, with the byte count.
    Written(usize),
    /// Failure with an errno-style error.
    Err(FsError),
}

impl OpRet {
    /// Build a sorted [`OpRet::Names`].
    pub fn names(mut names: Vec<String>) -> Self {
        names.sort_unstable();
        OpRet::Names(names)
    }

    /// Whether this is a success result.
    pub fn is_ok(&self) -> bool {
        !matches!(self, OpRet::Err(_))
    }
}

impl std::fmt::Display for OpRet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpRet::Ok => write!(f, "ok"),
            OpRet::Stat(s) => write!(f, "stat(dir={}, size={})", s.is_dir, s.size),
            OpRet::Names(n) => write!(f, "names[{}]", n.len()),
            OpRet::Data(d) => write!(f, "data[{}]", d.len()),
            OpRet::Written(n) => write!(f, "written={n}"),
            OpRet::Err(e) => write!(f, "err({e})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comps(s: &[&str]) -> Comps {
        s.iter().map(|c| c.to_string()).collect()
    }

    #[test]
    fn kind_and_rename_detection() {
        let r = OpDesc::Rename {
            src: comps(&["a"]),
            dst: comps(&["b"]),
        };
        assert!(r.is_rename());
        assert!(r.is_mutation());
        assert_eq!(r.kind(), "rename");
        let s = OpDesc::Stat {
            path: comps(&["a"]),
        };
        assert!(!s.is_rename());
        assert!(!s.is_mutation());
    }

    #[test]
    fn display_formats() {
        let op = OpDesc::Mkdir {
            path: comps(&["a", "b"]),
        };
        assert_eq!(op.to_string(), "mkdir(/a/b)");
        let r = OpDesc::Rename {
            src: comps(&["a"]),
            dst: comps(&["e"]),
        };
        assert_eq!(r.to_string(), "rename(/a, /e)");
    }

    #[test]
    fn names_are_sorted_for_comparison() {
        let a = OpRet::names(vec!["b".into(), "a".into()]);
        let b = OpRet::names(vec!["a".into(), "b".into()]);
        assert_eq!(a, b);
    }

    #[test]
    fn ret_is_ok() {
        assert!(OpRet::Ok.is_ok());
        assert!(OpRet::Written(3).is_ok());
        assert!(!OpRet::Err(FsError::NotFound).is_ok());
    }

    #[test]
    fn primary_path_of_rename_is_src() {
        let r = OpDesc::Rename {
            src: comps(&["x"]),
            dst: comps(&["y"]),
        };
        assert_eq!(r.path(), &comps(&["x"]));
    }
}
