//! Trace sinks.
//!
//! A [`TraceSink`] receives the atomic steps of an instrumented execution.
//! The default production configuration uses no sink at all (the emitting
//! file system holds an `Option` and skips all instrumentation); tests and
//! the CRL-H checker install a recorder ([`BufferSink`] or the sharded
//! [`crate::ShardedSink`]) for offline replay, or an online checking sink
//! defined in the `crlh` crate.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::{Event, Inum, Tid};

/// Receiver of trace events.
///
/// Implementations must be cheap and must not call back into the file
/// system being traced. The emitter guarantees that `emit` is called at
/// the atomic instant the event describes (e.g. while holding the lock a
/// [`Event::Lock`] reports), so a sink that serializes its callers — or
/// stamps each call from a single atomic counter, as
/// [`crate::ShardedSink`] does — observes a legal total order of the
/// execution.
pub trait TraceSink: Send + Sync {
    /// Record one event, taking ownership.
    fn emit(&self, event: Event);

    /// Record one event by reference.
    ///
    /// Sinks that only *inspect* events (checkers, journals, filters)
    /// override this to avoid a deep clone; recording sinks keep the
    /// default, which clones into [`TraceSink::emit`]. [`FanoutSink`]
    /// routes through this method for every sink but the last, so
    /// multi-consumer setups pay at most one clone per extra *recording*
    /// consumer instead of one per consumer.
    fn emit_ref(&self, event: &Event) {
        self.emit(event.clone());
    }

    /// Routing hint: the *primary* inode of the operation thread `tid` is
    /// about to mutate (the locked parent directory for namespace ops, the
    /// file inode for data ops, the **source** parent for renames).
    ///
    /// Emitters call this once per operation, before the first
    /// [`Event::Mutate`], while already inside the critical section. A
    /// sharded journal sink uses it to route every micro-op of the
    /// operation to one shard (chosen by inode-range hash) instead of
    /// scattering them by per-op target; recording and checking sinks
    /// ignore it — it carries no semantic content, only placement.
    fn shard_hint(&self, _tid: Tid, _primary: Inum) {}

    /// Whether a mutation whose primary inode is `primary` may proceed.
    ///
    /// Emitters ask *before* [`TraceSink::shard_hint`] and before taking
    /// any observable step of the mutation. A sink that has lost the
    /// durability domain backing `primary` (e.g. a journal whose shard
    /// for that inode range is quarantined) answers `false`, and the
    /// emitter fails the operation read-only *without mutating* — so the
    /// trace never contains a mutation the sink could not have logged.
    /// Pure observers keep the default `true`.
    fn admit_mutation(&self, _primary: Inum) -> bool {
        true
    }
}

/// A sink that discards everything (useful as an explicit default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: Event) {}
    fn emit_ref(&self, _event: &Event) {}
}

/// A sink that appends events to an in-memory buffer under a mutex.
///
/// The mutex both protects the buffer and serializes concurrent emitters,
/// making the buffer order a legal total order of atomic steps — the input
/// the offline CRL-H checker replays. It is also a global serialization
/// point: every emitting thread contends on the one lock, which is what
/// [`crate::ShardedSink`] exists to avoid. `BufferSink` stays as the
/// reference recorder; a differential test in `tests/trace_sharded.rs`
/// pins the two recorders to order-equivalent traces.
///
/// [`BufferSink::len`]/[`BufferSink::is_empty`] read a relaxed atomic
/// counter, so progress polling never touches the buffer mutex.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<Event>>,
    count: AtomicUsize,
}

impl BufferSink {
    /// Create an empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far (O(1), lock-free).
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether no events have been recorded (O(1), lock-free).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Take the recorded events, leaving the buffer empty.
    pub fn take(&self) -> Vec<Event> {
        let mut guard = self.events.lock();
        let events = std::mem::take(&mut *guard);
        self.count.store(0, Ordering::Relaxed);
        events
    }

    /// Clone the recorded events without clearing the buffer.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

impl TraceSink for BufferSink {
    fn emit(&self, event: Event) {
        let mut guard = self.events.lock();
        guard.push(event);
        self.count.fetch_add(1, Ordering::Relaxed);
    }
}

/// A sink that forwards every event to several sinks, in order.
///
/// Lets one instrumented file system feed both a checker/recorder and an
/// operation journal at the same time. Events are routed by reference
/// ([`TraceSink::emit_ref`]) to every sink but the last, which receives
/// the owned event — so inspecting consumers (checker, journal) cost no
/// clone at all, and the single owned event should go to the recording
/// sink by placing it last.
pub struct FanoutSink(pub Vec<std::sync::Arc<dyn TraceSink>>);

impl TraceSink for FanoutSink {
    fn emit(&self, event: Event) {
        let Some((last, rest)) = self.0.split_last() else {
            return;
        };
        for sink in rest {
            sink.emit_ref(&event);
        }
        last.emit(event);
    }

    fn emit_ref(&self, event: &Event) {
        for sink in &self.0 {
            sink.emit_ref(event);
        }
    }

    fn shard_hint(&self, tid: Tid, primary: Inum) {
        for sink in &self.0 {
            sink.shard_hint(tid, primary);
        }
    }

    fn admit_mutation(&self, primary: Inum) -> bool {
        self.0.iter().all(|sink| sink.admit_mutation(primary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpDesc, Tid};
    use std::sync::Arc;

    #[test]
    fn buffer_sink_records_in_order() {
        let sink = BufferSink::new();
        sink.emit(Event::Lp { tid: Tid(1) });
        sink.emit(Event::Lp { tid: Tid(2) });
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tid(), Tid(1));
        assert_eq!(events[1].tid(), Tid(2));
        assert!(sink.is_empty());
    }

    #[test]
    fn buffer_sink_is_concurrent() {
        let sink = Arc::new(BufferSink::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    sink.emit(Event::Lp { tid: Tid(t) });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 800);
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.emit(Event::OpBegin {
            tid: Tid(0),
            op: OpDesc::Stat { path: vec![] },
        });
        sink.emit_ref(&Event::Lp { tid: Tid(0) });
        // Nothing to observe — the point is it compiles and is free.
    }

    #[test]
    fn snapshot_does_not_clear() {
        let sink = BufferSink::new();
        sink.emit(Event::Lp { tid: Tid(1) });
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn len_tracks_take_and_emit() {
        let sink = BufferSink::new();
        assert!(sink.is_empty());
        sink.emit(Event::Lp { tid: Tid(1) });
        sink.emit_ref(&Event::Lp { tid: Tid(2) });
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert_eq!(sink.len(), 0);
        sink.emit(Event::Lp { tid: Tid(3) });
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn fanout_delivers_to_all_sinks() {
        let a = Arc::new(BufferSink::new());
        let b = Arc::new(BufferSink::new());
        let fan = FanoutSink(vec![
            Arc::clone(&a) as Arc<dyn TraceSink>,
            Arc::clone(&b) as Arc<dyn TraceSink>,
        ]);
        fan.emit(Event::Lp { tid: Tid(1) });
        fan.emit_ref(&Event::Lp { tid: Tid(2) });
        assert_eq!(a.take(), b.take());
    }

    #[test]
    fn empty_fanout_is_fine() {
        let fan = FanoutSink(Vec::new());
        fan.emit(Event::Lp { tid: Tid(1) });
        fan.emit_ref(&Event::Lp { tid: Tid(1) });
    }
}
