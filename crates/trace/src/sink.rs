//! Trace sinks.
//!
//! A [`TraceSink`] receives the atomic steps of an instrumented execution.
//! The default production configuration uses no sink at all (the emitting
//! file system holds an `Option` and skips all instrumentation); tests and
//! the CRL-H checker install a [`BufferSink`] (offline replay) or an online
//! checking sink defined in the `crlh` crate.

use parking_lot::Mutex;

use crate::Event;

/// Receiver of trace events.
///
/// Implementations must be cheap and must not call back into the file
/// system being traced. The emitter guarantees that `emit` is called at
/// the atomic instant the event describes (e.g. while holding the lock a
/// [`Event::Lock`] reports), so a sink that serializes its callers observes
/// a legal total order of the execution.
pub trait TraceSink: Send + Sync {
    /// Record one event.
    fn emit(&self, event: Event);
}

/// A sink that discards everything (useful as an explicit default).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn emit(&self, _event: Event) {}
}

/// A sink that appends events to an in-memory buffer under a mutex.
///
/// The mutex both protects the buffer and serializes concurrent emitters,
/// making the buffer order a legal total order of atomic steps — the input
/// the offline CRL-H checker replays.
#[derive(Debug, Default)]
pub struct BufferSink {
    events: Mutex<Vec<Event>>,
}

impl BufferSink {
    /// Create an empty buffer sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Take the recorded events, leaving the buffer empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Clone the recorded events without clearing the buffer.
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }
}

impl TraceSink for BufferSink {
    fn emit(&self, event: Event) {
        self.events.lock().push(event);
    }
}

/// A sink that forwards every event to several sinks, in order.
///
/// Lets one instrumented file system feed both a checker/recorder and an
/// operation journal at the same time.
pub struct FanoutSink(pub Vec<std::sync::Arc<dyn TraceSink>>);

impl TraceSink for FanoutSink {
    fn emit(&self, event: Event) {
        let Some((last, rest)) = self.0.split_last() else {
            return;
        };
        for sink in rest {
            sink.emit(event.clone());
        }
        last.emit(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{OpDesc, Tid};
    use std::sync::Arc;

    #[test]
    fn buffer_sink_records_in_order() {
        let sink = BufferSink::new();
        sink.emit(Event::Lp { tid: Tid(1) });
        sink.emit(Event::Lp { tid: Tid(2) });
        let events = sink.take();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].tid(), Tid(1));
        assert_eq!(events[1].tid(), Tid(2));
        assert!(sink.is_empty());
    }

    #[test]
    fn buffer_sink_is_concurrent() {
        let sink = Arc::new(BufferSink::new());
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    sink.emit(Event::Lp { tid: Tid(t) });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 800);
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.emit(Event::OpBegin {
            tid: Tid(0),
            op: OpDesc::Stat { path: vec![] },
        });
        // Nothing to observe — the point is it compiles and is free.
    }

    #[test]
    fn snapshot_does_not_clear() {
        let sink = BufferSink::new();
        sink.emit(Event::Lp { tid: Tid(1) });
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1);
    }
}
