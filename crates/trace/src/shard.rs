//! The sharded, sequence-stamped trace recorder.
//!
//! [`BufferSink`](crate::BufferSink) funnels every instrumented atomic
//! step of every thread through one global mutex, so under heavy
//! concurrency the *tracer* — not the file system being measured —
//! becomes the bottleneck. [`ShardedSink`] removes that serialization
//! point: each emitting thread appends to its own shard (a mutex that is
//! uncontended as long as threads outnumber shards at most lightly), and
//! each event is stamped from one global `AtomicU64` sequence counter at
//! the instant `emit` is called.
//!
//! # Why the stamp order is a legal total order
//!
//! The checker does not need a *physically serialized* recording — it
//! needs *some* legal total order of the execution's atomic steps. The
//! emitter guarantees that `emit` runs at the atomic instant the event
//! describes, while the locks making that step atomic are held (`Lock`
//! after acquiring, `Unlock`/`Mutate`/`Lp` before releasing). The stamp
//! is taken inside `emit`, hence inside that critical section, so:
//!
//! * **Per-thread program order** is preserved: a thread stamps its own
//!   events one after another, so its stamps increase monotonically.
//! * **Per-inode critical-section order** is preserved: if thread A's
//!   event and thread B's event are ordered by the same inode lock, A's
//!   stamp is taken before A releases and B's after B acquires; atomic
//!   read-modify-writes on one counter are coherent with happens-before,
//!   so A's stamp is smaller.
//!
//! Any two events *not* ordered by one of those relations were genuinely
//! concurrent, and either order is a legal interleaving. Stamp order is
//! therefore a legal total order — exactly the contract the offline
//! CRL-H checker, `wgl` cross-validation, and the journal fanout rely
//! on. `DESIGN.md` ("Trace recording and the legal-total-order
//! contract") spells the argument out.
//!
//! Taking the stamp *under the shard lock* additionally keeps every
//! shard's segment sorted, so [`ShardedSink::take`] can k-way merge the
//! segments by stamp instead of sorting.
//!
//! # Draining
//!
//! [`ShardedSink::take`]/[`ShardedSink::snapshot`] are meant for
//! quiescent points (emitting threads joined), like every existing
//! consumer in this workspace. A drain that races live emitters is safe
//! (no events are lost or duplicated) but may split concurrent events
//! across two takes such that their concatenation is not stamp-sorted.

use std::cell::Cell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use parking_lot::Mutex;

use crate::{Event, TraceSink};

/// A recorded event with its global sequence stamp.
pub type Stamped = (u64, Event);

/// Round-robin assignment of OS threads to shard slots. Process-global:
/// a thread keeps one slot for its lifetime, so every [`ShardedSink`]
/// maps it to a stable shard and long-lived emitter threads never
/// migrate (which would break the sorted-segment property).
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn thread_slot() -> usize {
    SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let v = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            s.set(v);
            v
        }
    })
}

/// One per-thread segment. Padded to a cache line so shard locks on
/// adjacent slots do not false-share.
#[repr(align(64))]
pub(crate) struct Shard {
    pub(crate) events: Mutex<Vec<Stamped>>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            events: Mutex::new(Vec::new()),
        }
    }
}

/// A low-contention trace recorder: per-thread shards, one global
/// sequence counter.
///
/// Produces the same totally-ordered `Vec<Event>` as
/// [`BufferSink`](crate::BufferSink) (see [`ShardedSink::take`]), so the
/// CRL-H checker and every other replay consumer work unchanged;
/// [`ShardedSink::take_stamped`] additionally exposes the stamps so
/// consumers can assert monotonicity (`crlh::LpChecker::check_stamped`).
pub struct ShardedSink {
    pub(crate) seq: AtomicU64,
    /// Events drained by [`ShardedSink::take_stamped`] so far. `len()` is
    /// derived as `seq - taken`, so `emit` pays exactly one atomic RMW
    /// (the stamp) — the same count as `BufferSink`'s length counter.
    pub(crate) taken: AtomicU64,
    pub(crate) shards: Box<[Shard]>,
    mask: usize,
}

impl Default for ShardedSink {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedSink {
    /// Create a recorder with one shard per available hardware thread
    /// (rounded up to a power of two).
    pub fn new() -> Self {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(8);
        Self::with_shards(n)
    }

    /// Create a recorder with at least `shards` shards (rounded up to a
    /// power of two, minimum 1).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        let shards: Vec<Shard> = (0..n).map(|_| Shard::new()).collect();
        ShardedSink {
            seq: AtomicU64::new(0),
            taken: AtomicU64::new(0),
            shards: shards.into_boxed_slice(),
            mask: n - 1,
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of events recorded and not yet taken (O(1), lock-free).
    ///
    /// Derived from stamps issued minus events drained, so an event whose
    /// emitter has taken its stamp but not yet finished pushing is already
    /// counted — fine for the progress polling this exists for.
    pub fn len(&self) -> usize {
        (self.seq.load(Ordering::Relaxed) - self.taken.load(Ordering::Relaxed)) as usize
    }

    /// Whether no events are recorded (O(1), lock-free).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sequence stamps handed out so far (including taken events).
    pub fn stamps_issued(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Drain all shards and merge into one stamp-ordered trace.
    pub fn take_stamped(&self) -> Vec<Stamped> {
        let segments: Vec<Vec<Stamped>> = self
            .shards
            .iter()
            .map(|s| std::mem::take(&mut *s.events.lock()))
            .collect();
        let merged = merge_by_stamp(segments);
        self.taken.fetch_add(merged.len() as u64, Ordering::Relaxed);
        merged
    }

    /// Drain all shards into the same totally-ordered `Vec<Event>` a
    /// [`BufferSink`](crate::BufferSink) would have recorded.
    pub fn take(&self) -> Vec<Event> {
        self.take_stamped().into_iter().map(|(_, e)| e).collect()
    }

    /// Copy the recorded events (stamped, merged) without clearing.
    pub fn snapshot_stamped(&self) -> Vec<Stamped> {
        let segments: Vec<Vec<Stamped>> = self
            .shards
            .iter()
            .map(|s| s.events.lock().clone())
            .collect();
        merge_by_stamp(segments)
    }

    /// Copy the recorded events (merged) without clearing.
    pub fn snapshot(&self) -> Vec<Event> {
        self.snapshot_stamped()
            .into_iter()
            .map(|(_, e)| e)
            .collect()
    }
}

impl TraceSink for ShardedSink {
    fn emit(&self, event: Event) {
        let shard = &self.shards[thread_slot() & self.mask];
        let mut segment = shard.events.lock();
        // Stamped under the shard lock: the segment stays sorted even
        // when two threads share a shard. The stamp is still taken
        // inside the emitter's critical section (we are inside
        // `emit`), which is what makes stamp order legal.
        let stamp = self.seq.fetch_add(1, Ordering::Relaxed);
        segment.push((stamp, event));
    }
}

/// K-way merge of per-shard segments, each already sorted by stamp,
/// into one stamp-sorted vector. O(n log k).
fn merge_by_stamp(segments: Vec<Vec<Stamped>>) -> Vec<Stamped> {
    let mut iters: Vec<std::vec::IntoIter<Stamped>> = segments
        .into_iter()
        .filter(|s| !s.is_empty())
        .map(Vec::into_iter)
        .collect();
    match iters.len() {
        0 => return Vec::new(),
        1 => return iters.pop().expect("checked").collect(),
        _ => {}
    }
    let total: usize = iters.iter().map(|it| it.len()).sum();
    let mut out = Vec::with_capacity(total);
    // The heap holds (stamp, iterator index); the event itself sits in
    // `heads` so it never needs an `Ord` impl.
    let mut heads: Vec<Option<Event>> = Vec::with_capacity(iters.len());
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        match it.next() {
            Some((stamp, event)) => {
                heads.push(Some(event));
                heap.push(Reverse((stamp, i)));
            }
            None => heads.push(None),
        }
    }
    while let Some(Reverse((stamp, i))) = heap.pop() {
        let event = heads[i].take().expect("head present for queued stamp");
        out.push((stamp, event));
        if let Some((next_stamp, next_event)) = iters[i].next() {
            debug_assert!(next_stamp > stamp, "shard segment not sorted");
            heads[i] = Some(next_event);
            heap.push(Reverse((next_stamp, i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tid;
    use std::sync::Arc;

    #[test]
    fn records_and_merges_single_thread() {
        let sink = ShardedSink::with_shards(4);
        sink.emit(Event::Lp { tid: Tid(1) });
        sink.emit(Event::Lp { tid: Tid(2) });
        assert_eq!(sink.len(), 2);
        let stamped = sink.take_stamped();
        assert_eq!(stamped.len(), 2);
        assert!(stamped[0].0 < stamped[1].0);
        assert_eq!(stamped[0].1.tid(), Tid(1));
        assert_eq!(stamped[1].1.tid(), Tid(2));
        assert!(sink.is_empty());
    }

    #[test]
    fn concurrent_emitters_yield_strictly_increasing_stamps() {
        let sink = Arc::new(ShardedSink::with_shards(4));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let sink = Arc::clone(&sink);
            handles.push(std::thread::spawn(move || {
                for _ in 0..250 {
                    sink.emit(Event::Lp { tid: Tid(t) });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.len(), 2000);
        let stamped = sink.take_stamped();
        assert_eq!(stamped.len(), 2000);
        for w in stamped.windows(2) {
            assert!(w[0].0 < w[1].0, "stamps must be strictly increasing");
        }
        // Per-thread program order is preserved in the merged trace.
        let mut last_idx = std::collections::HashMap::new();
        let mut counts = std::collections::HashMap::new();
        for (i, (_, e)) in stamped.iter().enumerate() {
            let prev = last_idx.insert(e.tid(), i);
            assert!(prev.is_none_or(|p| p < i));
            *counts.entry(e.tid()).or_insert(0usize) += 1;
        }
        assert!(counts.values().all(|c| *c == 250));
    }

    #[test]
    fn snapshot_does_not_clear_and_take_does() {
        let sink = ShardedSink::with_shards(2);
        sink.emit(Event::Lp { tid: Tid(1) });
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.take().len(), 1);
        assert!(sink.take().is_empty());
        assert_eq!(sink.stamps_issued(), 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedSink::with_shards(0).shard_count(), 1);
        assert_eq!(ShardedSink::with_shards(3).shard_count(), 4);
        assert_eq!(ShardedSink::with_shards(8).shard_count(), 8);
    }

    #[test]
    fn merge_handles_empty_and_skewed_segments() {
        let merged = merge_by_stamp(vec![]);
        assert!(merged.is_empty());
        let a = vec![
            (0, Event::Lp { tid: Tid(1) }),
            (3, Event::Lp { tid: Tid(1) }),
        ];
        let b = vec![
            (1, Event::Lp { tid: Tid(2) }),
            (2, Event::Lp { tid: Tid(2) }),
        ];
        let merged = merge_by_stamp(vec![a, Vec::new(), b]);
        let stamps: Vec<u64> = merged.iter().map(|(s, _)| *s).collect();
        assert_eq!(stamps, vec![0, 1, 2, 3]);
    }
}
