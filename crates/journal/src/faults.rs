//! Deterministic fault injection for the simulated storage stack.
//!
//! [`FaultyDisk`] wraps a [`Disk`] behind the [`BlockDevice`] trait and
//! injects faults driven by a [`FaultPlan`]: a seeded splitmix64 stream
//! makes every schedule exactly reproducible from a `u64`. Four fault
//! classes, each independently togglable:
//!
//! * **transient errors** — a read/write/flush fails this once; a retry
//!   draws fresh luck (this is what the journal's
//!   [`crate::health::RetryPolicy`] absorbs);
//! * **permanent failure** — after a budgeted number of device ops the
//!   device dies and every later op returns [`DiskError::Gone`];
//! * **torn writes** — a sector write silently persists only a prefix of
//!   the new bytes over the old contents (the record checksum is what
//!   catches this at recovery);
//! * **bit flips** — after a flush, one random bit of one random durable
//!   sector is silently inverted (media rot; again caught by checksums).
//!
//! Determinism caveat: the fault stream is serialized under one mutex, so
//! a multi-threaded workload is reproducible only up to its own thread
//! interleaving. The fault-storm tests drive single-threaded workloads.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::device::{BlockDevice, Disk, DiskError, DiskOp, Sector, SECTOR_SIZE};

/// A per-65536 probability (0 = never, 65536 = always).
pub type Rate = u32;

/// One draw of a splitmix64 stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// What faults to inject, reproducible from `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seeds the fault stream; equal plans replay identical schedules.
    pub seed: u64,
    /// Transient failure rate for sector reads.
    pub transient_read: Rate,
    /// Transient failure rate for sector writes.
    pub transient_write: Rate,
    /// Transient failure rate for flush barriers.
    pub transient_flush: Rate,
    /// Rate at which a sector write silently persists only a prefix.
    pub torn_write: Rate,
    /// Rate at which a flush silently flips one durable bit.
    pub bit_flip: Rate,
    /// Device ops after which the device fails permanently.
    pub fail_after: Option<u64>,
    /// When set, faults strike only sector ops targeting LBAs in this
    /// half-open range — out-of-range ops bypass the fault layer
    /// entirely (they neither fail nor advance the fault stream), and
    /// bit-flip victims are drawn from the range. This models a
    /// *localized* media failure, e.g. one shard region of a sharded
    /// journal dying while its siblings stay healthy. Flush is a
    /// device-wide barrier with no LBA, so a region-scoped plan leaves
    /// it fault-free.
    pub region: Option<(u64, u64)>,
}

impl FaultPlan {
    /// No faults at all: the fallible plumbing with a perfect device.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            transient_read: 0,
            transient_write: 0,
            transient_flush: 0,
            torn_write: 0,
            bit_flip: 0,
            fail_after: None,
            region: None,
        }
    }

    /// Enable transient read/write/flush errors at the given rates.
    pub fn with_transient(mut self, read: Rate, write: Rate, flush: Rate) -> Self {
        self.transient_read = read;
        self.transient_write = write;
        self.transient_flush = flush;
        self
    }

    /// Enable torn sector writes at the given rate.
    pub fn with_torn_writes(mut self, rate: Rate) -> Self {
        self.torn_write = rate;
        self
    }

    /// Enable post-flush durable bit flips at the given rate.
    pub fn with_bit_flips(mut self, rate: Rate) -> Self {
        self.bit_flip = rate;
        self
    }

    /// Kill the device permanently after `ops` device operations.
    pub fn with_permanent_failure_after(mut self, ops: u64) -> Self {
        self.fail_after = Some(ops);
        self
    }

    /// Confine every fault class to LBAs in `[start, end)` (see
    /// [`FaultPlan::region`]).
    pub fn with_region(mut self, start: u64, end: u64) -> Self {
        self.region = Some((start, end));
        self
    }

    /// A randomized storm: moderate transient rates always on, and the
    /// silent-corruption / permanent classes enabled or not depending on
    /// bits of the seed — so a seed sweep covers every combination.
    ///
    /// `corrupts_silently` tells callers whether this plan can destroy
    /// acked data (torn writes / bit flips), which weakens the durability
    /// property they may assert from *exact* to *prefix of the last
    /// surviving sync*.
    pub fn storm(seed: u64) -> Self {
        let mut s = seed ^ 0xA076_1D64_78BD_642F;
        let draw = |s: &mut u64, lo: u32, hi: u32| lo + (splitmix(s) % u64::from(hi - lo)) as u32;
        let mut plan = FaultPlan::none(seed).with_transient(
            draw(&mut s, 0, 2500),
            draw(&mut s, 0, 2500),
            draw(&mut s, 0, 2500),
        );
        if seed & 1 != 0 {
            plan = plan.with_torn_writes(draw(&mut s, 200, 2000));
        }
        if seed & 2 != 0 {
            plan = plan.with_bit_flips(draw(&mut s, 500, 4000));
        }
        if seed & 4 != 0 {
            plan = plan.with_permanent_failure_after(u64::from(draw(&mut s, 40, 400)));
        }
        plan
    }

    /// Whether the plan includes fault classes that can silently destroy
    /// already-acknowledged (flushed) data.
    pub fn corrupts_silently(&self) -> bool {
        self.torn_write > 0 || self.bit_flip > 0
    }
}

/// Counters of injected faults (and total device ops gated).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultStats {
    /// Device operations that reached the fault layer.
    pub ops: u64,
    /// Injected transient read failures.
    pub transient_reads: u64,
    /// Injected transient write failures.
    pub transient_writes: u64,
    /// Injected transient flush failures.
    pub transient_flushes: u64,
    /// Sector writes that silently persisted only a prefix.
    pub torn_writes: u64,
    /// Durable bits silently flipped after flushes.
    pub bit_flips: u64,
    /// Whether the device has failed permanently.
    pub gone: bool,
}

impl FaultStats {
    /// Total injected faults across every class.
    pub fn total_injected(&self) -> u64 {
        self.transient_reads
            + self.transient_writes
            + self.transient_flushes
            + self.torn_writes
            + self.bit_flips
    }
}

struct FaultState {
    rng: u64,
    stats: FaultStats,
    /// Highest LBA ever written through this wrapper (bit flips pick a
    /// victim in `0..=max_lba` so the choice is deterministic — durable
    /// map iteration order is not).
    max_lba: u64,
}

/// A [`BlockDevice`] that injects the faults a [`FaultPlan`] prescribes
/// into an underlying perfect [`Disk`].
pub struct FaultyDisk {
    inner: Arc<Disk>,
    plan: FaultPlan,
    state: Mutex<FaultState>,
}

impl FaultyDisk {
    /// Wrap `inner`, injecting faults per `plan`.
    pub fn new(inner: Arc<Disk>, plan: FaultPlan) -> Self {
        FaultyDisk {
            inner,
            plan,
            state: Mutex::new(FaultState {
                rng: plan.seed ^ 0x9E6C_63D0_876A_68EE,
                stats: FaultStats::default(),
                max_lba: 0,
            }),
        }
    }

    /// The underlying perfect disk (the "platter"): recovery after a
    /// power cycle reads it directly — the fault plan models one power
    /// session of the controller, not the medium.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.inner
    }

    /// The plan this wrapper executes.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Snapshot of the injected-fault counters.
    pub fn stats(&self) -> FaultStats {
        self.state.lock().stats
    }

    /// Crash the underlying disk (see [`Disk::crash`]).
    pub fn crash(&self, keep: impl FnMut(usize) -> bool) {
        self.inner.crash(keep);
    }

    /// Permanent-failure gate: counts the op and kills the device when
    /// the plan's budget is exhausted.
    fn gate(&self, st: &mut FaultState) -> Result<(), DiskError> {
        if st.stats.gone {
            return Err(DiskError::Gone);
        }
        st.stats.ops += 1;
        if let Some(limit) = self.plan.fail_after {
            if st.stats.ops > limit {
                st.stats.gone = true;
                return Err(DiskError::Gone);
            }
        }
        Ok(())
    }

    fn roll(st: &mut FaultState, rate: Rate) -> bool {
        rate > 0 && (splitmix(&mut st.rng) & 0xFFFF) < u64::from(rate)
    }

    /// Whether `lba` is subject to this plan's faults.
    fn in_region(&self, lba: u64) -> bool {
        self.plan.region.map_or(true, |(s, e)| lba >= s && lba < e)
    }
}

impl BlockDevice for FaultyDisk {
    fn read(&self, lba: u64) -> Result<Sector, DiskError> {
        if !self.in_region(lba) {
            return Ok(self.inner.read(lba));
        }
        let mut st = self.state.lock();
        self.gate(&mut st)?;
        if Self::roll(&mut st, self.plan.transient_read) {
            st.stats.transient_reads += 1;
            return Err(DiskError::Transient(DiskOp::Read));
        }
        Ok(self.inner.read(lba))
    }

    fn write(&self, lba: u64, data: &Sector) -> Result<(), DiskError> {
        if !self.in_region(lba) {
            self.inner.write(lba, data);
            return Ok(());
        }
        let mut st = self.state.lock();
        self.gate(&mut st)?;
        if Self::roll(&mut st, self.plan.transient_write) {
            st.stats.transient_writes += 1;
            return Err(DiskError::Transient(DiskOp::Write));
        }
        st.max_lba = st.max_lba.max(lba);
        if Self::roll(&mut st, self.plan.torn_write) {
            // Persist only a prefix of the new bytes over the old
            // contents and *report success*: the loss is silent, exactly
            // the failure mode record checksums exist to catch.
            st.stats.torn_writes += 1;
            let split = 1 + (splitmix(&mut st.rng) as usize) % (SECTOR_SIZE - 1);
            let mut torn = self.inner.read(lba);
            torn[..split].copy_from_slice(&data[..split]);
            self.inner.write(lba, &torn);
            return Ok(());
        }
        self.inner.write(lba, data);
        Ok(())
    }

    fn flush(&self) -> Result<(), DiskError> {
        let mut st = self.state.lock();
        if self.plan.region.is_none() {
            self.gate(&mut st)?;
            if Self::roll(&mut st, self.plan.transient_flush) {
                st.stats.transient_flushes += 1;
                return Err(DiskError::Transient(DiskOp::Flush));
            }
        }
        self.inner.flush();
        if Self::roll(&mut st, self.plan.bit_flip) {
            // Silent media rot: one random durable bit inverts. Victims
            // come from the written range, intersected with a region
            // when the plan is region-scoped.
            let (lo, hi) = self.plan.region.unwrap_or((0, u64::MAX));
            let hi = hi.min(st.max_lba + 1);
            if lo < hi {
                st.stats.bit_flips += 1;
                let lba = lo + splitmix(&mut st.rng) % (hi - lo);
                let byte = (splitmix(&mut st.rng) as usize) % SECTOR_SIZE;
                let mask = 1u8 << (splitmix(&mut st.rng) % 8);
                self.inner.corrupt_durable(lba, byte, mask);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sect(b: u8) -> Sector {
        [b; SECTOR_SIZE]
    }

    #[test]
    fn no_fault_plan_is_transparent() {
        let disk = Arc::new(Disk::new());
        let dev = FaultyDisk::new(Arc::clone(&disk), FaultPlan::none(7));
        dev.write(3, &sect(5)).unwrap();
        assert_eq!(dev.read(3).unwrap(), sect(5));
        dev.flush().unwrap();
        assert_eq!(dev.stats().total_injected(), 0);
        assert_eq!(dev.stats().ops, 3);
    }

    #[test]
    fn same_seed_replays_identical_fault_schedule() {
        let plan = FaultPlan::none(42).with_transient(20_000, 20_000, 20_000);
        let run = || {
            let dev = FaultyDisk::new(Arc::new(Disk::new()), plan);
            let mut outcomes = Vec::new();
            for i in 0..200u64 {
                outcomes.push(dev.write(i % 8, &sect(i as u8)).is_ok());
                outcomes.push(dev.read(i % 8).is_ok());
            }
            outcomes.push(dev.flush().is_ok());
            (outcomes, dev.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| {
            let dev = FaultyDisk::new(
                Arc::new(Disk::new()),
                FaultPlan::none(seed).with_transient(30_000, 30_000, 0),
            );
            let mut v = Vec::new();
            for i in 0..64u64 {
                v.push(dev.write(i, &sect(1)).is_ok());
            }
            v
        };
        assert_ne!(mk(1), mk(2), "seeds 1 and 2 drew identical schedules");
    }

    #[test]
    fn permanent_failure_is_permanent() {
        let dev = FaultyDisk::new(
            Arc::new(Disk::new()),
            FaultPlan::none(0).with_permanent_failure_after(3),
        );
        assert!(dev.write(0, &sect(1)).is_ok());
        assert!(dev.read(0).is_ok());
        assert!(dev.flush().is_ok());
        assert_eq!(dev.write(1, &sect(2)), Err(DiskError::Gone));
        assert_eq!(dev.read(0), Err(DiskError::Gone));
        assert_eq!(dev.flush(), Err(DiskError::Gone));
        assert!(dev.stats().gone);
    }

    #[test]
    fn torn_write_persists_a_prefix() {
        let disk = Arc::new(Disk::new());
        // torn_write = 65536: every write tears.
        let dev = FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(9).with_torn_writes(65_536),
        );
        disk.write(0, &sect(0xAA));
        disk.flush();
        dev.write(0, &sect(0xBB)).unwrap();
        let got = disk.read(0);
        assert_eq!(got[0], 0xBB, "a torn write still lands its prefix");
        assert_eq!(got[SECTOR_SIZE - 1], 0xAA, "the suffix keeps old bytes");
        assert_eq!(dev.stats().torn_writes, 1);
    }

    #[test]
    fn bit_flip_corrupts_one_durable_bit() {
        let disk = Arc::new(Disk::new());
        let dev = FaultyDisk::new(Arc::clone(&disk), FaultPlan::none(3).with_bit_flips(65_536));
        dev.write(0, &sect(0)).unwrap();
        dev.flush().unwrap();
        assert_eq!(dev.stats().bit_flips, 1);
        let flipped: u32 = disk.read(0).iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped");
    }

    #[test]
    fn region_scoped_plan_spares_out_of_region_lbas() {
        let disk = Arc::new(Disk::new());
        let dev = FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(0)
                .with_permanent_failure_after(0)
                .with_region(100, 200),
        );
        // Out-of-region traffic bypasses the fault layer entirely...
        dev.write(5, &sect(1)).unwrap();
        assert_eq!(dev.read(5).unwrap(), sect(1));
        dev.flush().unwrap();
        // ...while the region is dead on arrival.
        assert_eq!(dev.write(150, &sect(2)), Err(DiskError::Gone));
        assert_eq!(dev.read(150), Err(DiskError::Gone));
        assert!(dev.stats().gone);
        // Bit flips scoped to a region never leave it.
        let disk = Arc::new(Disk::new());
        let dev = FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(3).with_bit_flips(65_536).with_region(2, 4),
        );
        for lba in 0..6 {
            dev.write(lba, &sect(0)).unwrap();
        }
        dev.flush().unwrap();
        assert_eq!(dev.stats().bit_flips, 1);
        for lba in [0u64, 1, 4, 5] {
            assert_eq!(disk.read(lba), sect(0), "flip escaped to LBA {lba}");
        }
        let flipped: u32 = (2..4).map(|l| disk.read(l).iter().map(|b| b.count_ones()).sum::<u32>()).sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn storm_plans_cover_all_classes_across_seeds() {
        let mut torn = false;
        let mut flips = false;
        let mut permanent = false;
        let mut clean = false;
        for seed in 0..8 {
            let p = FaultPlan::storm(seed);
            torn |= p.torn_write > 0;
            flips |= p.bit_flip > 0;
            permanent |= p.fail_after.is_some();
            clean |= !p.corrupts_silently() && p.fail_after.is_none();
        }
        assert!(torn && flips && permanent && clean);
    }
}
