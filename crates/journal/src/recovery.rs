//! Parallel recovery of the sharded journal.
//!
//! Each shard region is an independent append stream, so recovery scans
//! them **in parallel** (one thread per shard) and then resolves the
//! scans into one replayable history:
//!
//! 1. **Scan** ([`scan_shard`]): walk the shard's region from byte 0,
//!    admitting checksummed frames with contiguous sequence numbers and
//!    a single generation (the first frame fixes it). Past the valid
//!    prefix, a scrub classifies what was left behind — same taxonomy
//!    as the single-stream journal, budgeted *per shard*.
//! 2. **Resolve** ([`resolve`]): the mount generation is the maximum
//!    over shards (a shard whose newest frames are older was simply not
//!    written since the last checkpoint — it contributes nothing).
//!    Rename intents are admitted only when their seal is present with
//!    the same transaction id and epoch ([`crlh::verify_pairing`]);
//!    then every shard's stamped ops are k-way merged and truncated at
//!    the first stamp gap ([`crlh::merge_stamped`]). A discarded
//!    unsealed intent leaves exactly such a gap, so nothing after a
//!    half-committed rename replays — prefix exactness at mutation
//!    granularity, mount-wide.
//!
//! **Quarantine windows** relax the gap rule in exactly one, explicitly
//! licensed way: when a shard was quarantined at run time, the commit
//! that caught the failure wrote a `Quarantine` frame to every survivor
//! recording the dead-shard mask and the half-open stamp windows that
//! died in the discarded buffer. `resolve` unions those records from
//! the clean prefixes and merges *around* the recorded windows
//! ([`crlh::merge_stamped_with_windows`]) — healthy shards' later
//! history replays instead of being truncated behind a loss the journal
//! itself documented. Any gap **not** covered by a window truncates as
//! before, so corruption can never widen what recovery may skip.
//!
//! [`recover_sharded_sequential`] performs the identical computation on
//! one thread; the fault-storm suite pins the two to equal results on
//! every seed.

use atomfs_obs::dump::{self, TriggerCause};
use atomfs_obs::{Span, SpanKind};
use atomfs_trace::MicroOp;

use crate::device::{Disk, SECTOR_SIZE};
use crate::journal::{RecordClass, SkipTotals, SkippedRecord, MAX_PAYLOAD};
use crate::shard::ShardConfig;
use crate::wire::{decode_frame, Frame, FrameKind, FRAME_HEADER, MAGIC2};

/// Result of scanning one shard's region.
#[derive(Debug)]
pub struct ShardScan {
    /// Shard index.
    pub shard: usize,
    /// Generation of the shard's valid frames (0 when it has none).
    pub gen: u32,
    /// The valid frame prefix, in append (sequence) order.
    pub frames: Vec<Frame>,
    /// Byte offset just past the last valid frame, relative to the
    /// region base.
    pub end_pos: u64,
    /// Frames past the valid prefix, classified (per-shard budget).
    /// Itemization is capped; `skip_totals` keeps counting past it.
    pub skipped: Vec<SkippedRecord>,
    /// Complete per-class census of this shard's scrub, cap-independent.
    pub skip_totals: SkipTotals,
}

fn ensure(disk: &Disk, base_lba: u64, bytes: &mut Vec<u8>, upto: usize) {
    while bytes.len() < upto {
        let lba = base_lba + (bytes.len() / SECTOR_SIZE) as u64;
        bytes.extend_from_slice(&disk.read(lba));
    }
}

/// Scan shard `shard`'s region of `disk`. Reads the raw platter (a
/// fresh power session — the old session's fault plan died with it).
pub fn scan_shard(disk: &Disk, shard: usize, cfg: &ShardConfig) -> ShardScan {
    let base_lba = cfg.region_base(shard);
    let region_bytes = cfg.region_bytes() as usize;
    let mut bytes: Vec<u8> = Vec::new();
    let mut frames: Vec<Frame> = Vec::new();
    let mut pos = 0usize;
    let mut gen: Option<u32> = None;
    loop {
        if pos + FRAME_HEADER > region_bytes {
            break; // a frame can't start this close to the region end
        }
        ensure(disk, base_lba, &mut bytes, pos + FRAME_HEADER);
        if bytes[pos..pos + 4] != MAGIC2.to_le_bytes() {
            break;
        }
        let payload_len = u32::from_le_bytes(
            bytes[pos + FRAME_HEADER - 4..pos + FRAME_HEADER]
                .try_into()
                .expect("4"),
        ) as usize;
        if payload_len > MAX_PAYLOAD {
            break;
        }
        let total = FRAME_HEADER + payload_len + 8;
        if pos + total > region_bytes {
            break; // claims to extend past the region: not ours
        }
        ensure(disk, base_lba, &mut bytes, pos + total);
        match decode_frame(&bytes[pos..pos + total]) {
            Some((frame, len))
                if len == total
                    && frame.shard as usize == shard
                    && frame.seq == frames.len() as u64
                    && gen.map(|g| g == frame.gen).unwrap_or(true) =>
            {
                // The first frame fixes the generation; a frame of an
                // older, overwritten generation ends the scan.
                gen = Some(frame.gen);
                frames.push(frame);
                pos += total;
            }
            _ => break,
        }
    }
    let (skipped, skip_totals) = scrub(
        disk,
        base_lba,
        region_bytes,
        &mut bytes,
        pos,
        gen,
        shard,
        cfg.max_skipped,
    );
    ShardScan {
        shard,
        gen: gen.unwrap_or(0),
        frames,
        end_pos: pos as u64,
        skipped,
        skip_totals,
    }
}

/// Classify the frames (if any) past the valid prefix at `pos`, same
/// taxonomy as the single-stream scrub. Itemization stops at the
/// per-shard budget; classification runs to the end of the debris so
/// the returned totals are a complete census.
#[allow(clippy::too_many_arguments)]
fn scrub(
    disk: &Disk,
    base_lba: u64,
    region_bytes: usize,
    bytes: &mut Vec<u8>,
    mut pos: usize,
    gen: Option<u32>,
    shard: usize,
    max_skipped: usize,
) -> (Vec<SkippedRecord>, SkipTotals) {
    let mut skipped = Vec::new();
    let mut totals = SkipTotals::default();
    let mut note = |rec: SkippedRecord, skipped: &mut Vec<SkippedRecord>| {
        totals.count(rec.class);
        if skipped.len() < max_skipped {
            skipped.push(rec);
        }
    };
    while pos + FRAME_HEADER <= region_bytes {
        ensure(disk, base_lba, bytes, pos + FRAME_HEADER);
        let header = &bytes[pos..pos + FRAME_HEADER];
        if header.iter().all(|&b| b == 0) {
            break; // never-written space: the clean end of the shard
        }
        let magic_ok = header[..4] == MAGIC2.to_le_bytes();
        let payload_len = u32::from_le_bytes(
            header[FRAME_HEADER - 4..FRAME_HEADER]
                .try_into()
                .expect("4"),
        ) as usize;
        let total = FRAME_HEADER + payload_len + 8;
        if !magic_ok || payload_len > MAX_PAYLOAD || pos + total > region_bytes {
            // Not a sizeable frame of this region: the scrub cannot
            // step past it.
            note(
                SkippedRecord {
                    offset: pos as u64,
                    class: RecordClass::Garbage,
                    len: 0,
                    shard: shard as u32,
                },
                &mut skipped,
            );
            break;
        }
        ensure(disk, base_lba, bytes, pos + total);
        let raw = &bytes[pos..pos + total];
        let class = match decode_frame(raw) {
            Some((frame, _)) if gen.map(|g| g != frame.gen).unwrap_or(false) => {
                RecordClass::StaleEpoch
            }
            // Valid frame of this generation, but the history between
            // the prefix and here has a hole (or it claims a foreign
            // shard / broken sequence).
            Some(_) => RecordClass::Orphaned,
            None => {
                if raw[total - 8..].iter().all(|&b| b == 0) {
                    RecordClass::Torn
                } else {
                    RecordClass::ChecksumMismatch
                }
            }
        };
        note(
            SkippedRecord {
                offset: pos as u64,
                class,
                len: total,
                shard: shard as u32,
            },
            &mut skipped,
        );
        pos += total;
    }
    (skipped, totals)
}

/// The resolved result of recovering a sharded log.
#[derive(Debug)]
pub struct ShardedRecovered {
    /// The mount generation (max over shards; 1 for a blank disk).
    pub gen: u32,
    /// The admitted history: stamp-contiguous from 0, in stamp order.
    pub ops: Vec<(u64, MicroOp)>,
    /// First missing stamp when the merge hit a gap.
    pub truncated_at: Option<u64>,
    /// Ops present on disk but behind the gap (not replayed).
    pub dropped_ops: usize,
    /// Rename intent/seal matching outcome (unsealed intents are the
    /// discarded two-phase renames).
    pub pairing: crlh::PairingReport,
    /// Highest epoch sealed on *every* current-generation shard (shards
    /// the quarantine mask names are excluded — a dead shard stops
    /// sealing without holding back the survivors' high-water mark).
    pub sealed_epoch: u64,
    /// Union of the dead-shard bitmasks from `Quarantine` frames in the
    /// clean prefixes (0 when the run saw no quarantine).
    pub quarantined_mask: u64,
    /// Union of the recorded lost-stamp windows, sorted, coalesced,
    /// half-open `[lo, hi)`.
    pub lost_windows: Vec<(u64, u64)>,
    /// Stamps the merge skipped under the windows' license: mutations
    /// known lost with a quarantined shard.
    pub lost_ops: usize,
    /// Per-shard scans, index = shard.
    pub scans: Vec<ShardScan>,
}

impl ShardedRecovered {
    /// Transactions whose intent never found its seal.
    pub fn unsealed_txns(&self) -> Vec<u64> {
        self.pairing.unsealed.iter().map(|t| t.txn).collect()
    }

    /// Total valid log bytes across shards.
    pub fn log_bytes(&self) -> u64 {
        self.scans.iter().map(|s| s.end_pos).sum()
    }

    /// Every shard's skipped records, flattened (itemization is capped
    /// per shard; [`ShardedRecovered::skip_totals`] is the full census).
    pub fn skipped(&self) -> Vec<SkippedRecord> {
        self.scans.iter().flat_map(|s| s.skipped.clone()).collect()
    }

    /// Complete per-class scrub census summed over shards — counts every
    /// classified record even past the per-shard itemization cap.
    pub fn skip_totals(&self) -> SkipTotals {
        let mut totals = SkipTotals::default();
        for scan in &self.scans {
            totals.merge(&scan.skip_totals);
        }
        totals
    }

    /// Replay the admitted history into an abstract state.
    pub fn replay(&self) -> Result<crlh::FsState, crlh::state::StateError> {
        crlh::shardlog::replay(&self.ops)
    }

    /// Tolerant replay for histories with quarantine losses: ops
    /// orphaned by a lost window (e.g. a link whose target's creation
    /// died with the dead shard) are skipped and counted instead of
    /// failing recovery. Returns the state and the skip count.
    pub fn replay_tolerant(&self) -> (crlh::FsState, usize) {
        crlh::shardlog::replay_tolerant(&self.ops)
    }

    /// Shards named dead by the recovered quarantine records.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        (0..self.scans.len())
            .filter(|&i| self.quarantined_mask & (1u64 << i) != 0)
            .collect()
    }
}

/// Scan every shard **in parallel** (one thread each) and resolve.
pub fn recover_sharded(disk: &Disk, cfg: &ShardConfig) -> ShardedRecovered {
    // Always-recorded replay tree: the root covers the whole recovery,
    // one child per scan thread (linked by explicit id — the scanners
    // run off-thread).
    let sp = Span::root(SpanKind::Replay, "recover_sharded");
    let root_id = sp.id();
    let n = cfg.shard_count();
    let mut scans: Vec<Option<ShardScan>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        for (i, slot) in scans.iter_mut().enumerate() {
            s.spawn(move || {
                let mut ssp = Span::child_of(root_id, SpanKind::Replay, "scan_shard");
                ssp.set_shard(i as u32);
                *slot = Some(scan_shard(disk, i, cfg));
            });
        }
    });
    resolve(scans.into_iter().map(|s| s.expect("scan joined")).collect())
}

/// The same recovery on one thread — the equivalence oracle for the
/// parallel path.
pub fn recover_sharded_sequential(disk: &Disk, cfg: &ShardConfig) -> ShardedRecovered {
    let scans = (0..cfg.shard_count())
        .map(|i| scan_shard(disk, i, cfg))
        .collect();
    resolve(scans)
}

/// Combine per-shard scans into one replayable history. Deterministic:
/// the parallel and sequential scanners feed it identical inputs.
pub fn resolve(scans: Vec<ShardScan>) -> ShardedRecovered {
    let gen = scans.iter().map(|s| s.gen).max().unwrap_or(0).max(1);
    // Shards whose frames are all from an older generation were not
    // written since the checkpoint that started `gen`: the checkpoint
    // subsumed their content.
    let current = |s: &&ShardScan| s.gen == gen;

    // Pair rename intents with seals across all current shards.
    let mut intents = Vec::new();
    let mut seals = Vec::new();
    for scan in scans.iter().filter(current) {
        for f in &scan.frames {
            match f.kind {
                FrameKind::RenameIntent => intents.push(crlh::TxnRecord {
                    txn: f.txn,
                    epoch: f.epoch,
                }),
                FrameKind::RenameSeal => seals.push(crlh::TxnRecord {
                    txn: f.txn,
                    epoch: f.epoch,
                }),
                _ => {}
            }
        }
    }
    let pairing = crlh::verify_pairing(&intents, &seals);
    let sealed: std::collections::HashSet<u64> = pairing.sealed.iter().copied().collect();

    // Union the quarantine records in the clean prefixes: the dead-shard
    // mask and the lost-stamp windows. Each frame carries the cumulative
    // list as of its write, so the union over frames (and shards) is the
    // complete loss record; coalescing keeps the window list canonical.
    let mut quarantined_mask = 0u64;
    let mut windows: Vec<(u64, u64)> = Vec::new();
    for scan in scans.iter().filter(current) {
        for f in &scan.frames {
            if f.kind == FrameKind::Quarantine {
                quarantined_mask |= f.txn;
                windows.extend(f.windows.iter().copied());
            }
        }
    }
    windows.sort_unstable();
    let mut coalesced: Vec<(u64, u64)> = Vec::with_capacity(windows.len());
    for (lo, hi) in windows {
        match coalesced.last_mut() {
            Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
            _ => coalesced.push((lo, hi)),
        }
    }
    let windows = coalesced;

    // Per-shard stamped streams: batches plus sealed intents. Seal-less
    // intents are excluded — their ops are discarded — but they still
    // truncate the history at their first stamp, which the merge alone
    // only notices when something was stamped after them; record their
    // stamps so the tail case reports its truncation too (unless every
    // one of them is covered by a lost window, in which case the loss is
    // already licensed and accounted).
    let mut discarded_stamps: Vec<u64> = Vec::new();
    let streams: Vec<Vec<(u64, MicroOp)>> = scans
        .iter()
        .filter(current)
        .map(|scan| {
            let mut ops = Vec::new();
            for f in &scan.frames {
                match f.kind {
                    FrameKind::Batch => ops.extend(f.ops.iter().cloned()),
                    FrameKind::RenameIntent if sealed.contains(&f.txn) => {
                        ops.extend(f.ops.iter().cloned())
                    }
                    FrameKind::RenameIntent => {
                        discarded_stamps.extend(f.ops.iter().map(|(s, _)| *s))
                    }
                    _ => {}
                }
            }
            ops
        })
        .collect();
    let mut merged = crlh::merge_stamped_with_windows(streams, &windows);
    let in_window =
        |s: u64| windows.iter().any(|&(lo, hi)| s >= lo && s < hi);
    if merged.truncated_at.is_none() && discarded_stamps.iter().any(|&s| !in_window(s)) {
        // The admitted prefix cannot extend past the discarded intent's
        // first uncovered stamp; `next_stamp` is the first stamp the
        // merge never saw, which is where that intent's gap begins.
        merged.truncated_at = Some(merged.next_stamp);
    }
    merged.dropped += discarded_stamps.len();

    // The mount's durable epoch high-water mark: the highest epoch every
    // current *non-quarantined* shard has sealed (a dead shard stopped
    // sealing at its quarantine and must not drag the mark back; if every
    // current shard is masked, fall back to all of them).
    let seal_max = |scan: &ShardScan| {
        scan.frames
            .iter()
            .filter(|f| f.kind == FrameKind::EpochSeal)
            .map(|f| f.epoch)
            .max()
            .unwrap_or(0)
    };
    let masked = |s: &&ShardScan| quarantined_mask & (1u64 << s.shard) != 0;
    let sealed_epoch = scans
        .iter()
        .filter(current)
        .filter(|s| !masked(s))
        .map(seal_max)
        .min()
        .or_else(|| scans.iter().filter(current).map(seal_max).min())
        .unwrap_or(0);

    let recovered = ShardedRecovered {
        gen,
        ops: merged.ops,
        truncated_at: merged.truncated_at,
        dropped_ops: merged.dropped,
        pairing,
        sealed_epoch,
        quarantined_mask,
        lost_windows: windows,
        lost_ops: merged.lost,
        scans,
    };
    if recovered.lost_ops > 0 {
        // Loss was licensed by durable windows, but it is still loss:
        // capture a black box so the post-mortem carries the replay
        // spans and the window arithmetic that admitted it.
        let mut sp = Span::root(SpanKind::Trigger, "recovery_loss");
        sp.fail();
        drop(sp);
        dump::trigger(
            TriggerCause::RecoveryLoss {
                lost_ops: recovered.lost_ops as u64,
                detail: format!(
                    "gen {} mask {:#x} windows {:?}",
                    recovered.gen, recovered.quarantined_mask, recovered.lost_windows
                ),
            },
            None,
        );
    }
    recovered
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::BlockDevice;
    use crate::shard::{ShardConfig, ShardWriter};
    use atomfs_vfs::FileType;
    use std::sync::Arc;

    fn op(stamp: u64) -> (u64, MicroOp) {
        (
            stamp,
            MicroOp::Create {
                ino: 100 + stamp,
                ftype: FileType::File,
            },
        )
    }

    fn writers(disk: &Arc<Disk>, cfg: &ShardConfig, gen: u32) -> Vec<ShardWriter> {
        (0..cfg.shard_count())
            .map(|i| ShardWriter::new(Arc::clone(disk) as Arc<dyn BlockDevice>, i, gen, cfg))
            .collect()
    }

    #[test]
    fn empty_disk_recovers_empty_at_gen_one() {
        let disk = Disk::new();
        let cfg = ShardConfig::default();
        let r = recover_sharded(&disk, &cfg);
        assert_eq!(r.gen, 1);
        assert!(r.ops.is_empty());
        assert_eq!(r.truncated_at, None);
        assert!(r.pairing.is_clean());
        assert_eq!(r.scans.len(), 4);
    }

    #[test]
    fn parallel_and_sequential_recovery_agree() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        // Spray ops across shards round-robin by stamp.
        for s in 0..40u64 {
            let shard = (s % 4) as usize;
            ws[shard]
                .append_frame(FrameKind::Batch, 1, 0, &[op(s)])
                .unwrap();
        }
        Disk::flush(&disk);
        let p = recover_sharded(&disk, &cfg);
        let q = recover_sharded_sequential(&disk, &cfg);
        assert_eq!(p.ops, q.ops);
        assert_eq!(p.gen, q.gen);
        assert_eq!(p.truncated_at, q.truncated_at);
        assert_eq!(p.ops.len(), 40);
    }

    #[test]
    fn stamp_gap_truncates_across_shards() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        ws[0].append_frame(FrameKind::Batch, 1, 0, &[op(0), op(1)]).unwrap();
        // Stamp 2 never made it to shard 1; stamps 3..5 did land on shard 2.
        ws[2].append_frame(FrameKind::Batch, 1, 0, &[op(3), op(4), op(5)]).unwrap();
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert_eq!(r.ops.len(), 2, "only the contiguous prefix replays");
        assert_eq!(r.truncated_at, Some(2));
        assert_eq!(r.dropped_ops, 3);
    }

    #[test]
    fn unsealed_intent_is_discarded_and_truncates() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        ws[0].append_frame(FrameKind::Batch, 1, 0, &[op(0)]).unwrap();
        // A rename intent (stamps 1,2) whose seal never became durable,
        // then a later plain op (stamp 3).
        ws[1].append_frame(FrameKind::RenameIntent, 1, 7, &[op(1), op(2)]).unwrap();
        ws[0].append_frame(FrameKind::Batch, 1, 0, &[op(3)]).unwrap();
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert_eq!(r.unsealed_txns(), vec![7]);
        assert_eq!(r.ops.len(), 1, "history stops before the broken rename");
        assert_eq!(r.truncated_at, Some(1));
    }

    #[test]
    fn sealed_intent_replays_with_seal_in_another_shard() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        ws[1].append_frame(FrameKind::RenameIntent, 1, 7, &[op(0), op(1)]).unwrap();
        ws[3].append_frame(FrameKind::RenameSeal, 1, 7, &[]).unwrap();
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert!(r.pairing.is_clean());
        assert_eq!(r.pairing.sealed, vec![7]);
        assert_eq!(r.ops.len(), 2);
    }

    #[test]
    fn epoch_mismatched_seal_does_not_admit_the_intent() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        ws[1].append_frame(FrameKind::RenameIntent, 1, 7, &[op(0)]).unwrap();
        ws[3].append_frame(FrameKind::RenameSeal, 2, 7, &[]).unwrap();
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert!(r.ops.is_empty());
        assert_eq!(r.pairing.epoch_mismatches.len(), 1);
    }

    #[test]
    fn older_generation_shards_contribute_nothing() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        {
            let mut ws = writers(&disk, &cfg, 1);
            ws[3].append_frame(FrameKind::Batch, 1, 0, &[op(0)]).unwrap();
        }
        {
            // Generation 2 checkpoint wrote shards 0..3 but never 3.
            let mut ws = writers(&disk, &cfg, 2);
            ws[0].append_frame(FrameKind::Batch, 1, 0, &[op(0)]).unwrap();
            ws[1].append_frame(FrameKind::EpochSeal, 1, 0, &[]).unwrap();
            ws[2].append_frame(FrameKind::EpochSeal, 1, 0, &[]).unwrap();
        }
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert_eq!(r.gen, 2);
        assert_eq!(r.ops.len(), 1, "gen-1 shard 3 is ignored");
        assert_eq!(r.scans[3].gen, 1);
    }

    #[test]
    fn torn_tail_is_classified_per_shard() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        ws[2].append_frame(FrameKind::Batch, 1, 0, &[op(0)]).unwrap();
        let end = ws[2].position() as usize;
        Disk::flush(&disk);
        // Zero the trailing checksum of shard 2's only frame.
        let base = cfg.region_base(2);
        for byte in end - 8..end {
            let lba = base + (byte / SECTOR_SIZE) as u64;
            let cur = Disk::read(&disk, lba)[byte % SECTOR_SIZE];
            disk.corrupt_durable(lba, byte % SECTOR_SIZE, cur);
        }
        let r = recover_sharded(&disk, &cfg);
        assert!(r.ops.is_empty());
        let skipped = r.skipped();
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].class, RecordClass::Torn);
        assert_eq!(skipped[0].shard, 2, "attributed to the right shard");
        assert_eq!(skipped[0].offset, 0, "offset is region-relative");
    }

    #[test]
    fn per_shard_census_counts_past_the_itemization_cap() {
        let disk = Arc::new(Disk::new());
        let mut cfg = ShardConfig::default();
        cfg.max_skipped = 4;
        let mut ws = writers(&disk, &cfg, 1);
        for s in 0..10u64 {
            ws[1].append_frame(FrameKind::Batch, 1, 0, &[op(s)]).unwrap();
        }
        Disk::flush(&disk);
        // Flip a payload bit in shard 1's first frame: the whole stream
        // behind it scrubs — one checksum mismatch, nine orphans.
        let byte = cfg.region_base(1) as usize * SECTOR_SIZE + FRAME_HEADER + 3;
        disk.corrupt_durable((byte / SECTOR_SIZE) as u64, byte % SECTOR_SIZE, 0x01);
        let r = recover_sharded(&disk, &cfg);
        assert!(r.ops.is_empty());
        assert_eq!(r.skipped().len(), 4, "itemization honors the budget");
        let totals = r.skip_totals();
        assert_eq!(totals.total, 10, "the census counts past the cap");
        assert_eq!(totals.checksum_mismatch, 1);
        assert_eq!(totals.orphaned, 9);
    }

    #[test]
    fn quarantine_windows_let_survivors_replay_past_the_loss() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        // Shard 1 died holding stamps 2..4; the survivors hold the rest
        // plus the Quarantine frame recording the loss.
        ws[0].append_frame(FrameKind::Batch, 1, 0, &[op(0), op(1)]).unwrap();
        ws[2].append_frame(FrameKind::Batch, 1, 0, &[op(4), op(5)]).unwrap();
        ws[0].append_quarantine(1, 1 << 1, &[(2, 4)]).unwrap();
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        let stamps: Vec<u64> = r.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(stamps, vec![0, 1, 4, 5], "merge steps over the recorded loss");
        assert_eq!(r.truncated_at, None);
        assert_eq!(r.lost_ops, 2);
        assert_eq!(r.quarantined_shards(), vec![1]);
        assert_eq!(r.lost_windows, vec![(2, 4)]);
        // Parallel and sequential recovery agree on the degraded log too.
        let q = recover_sharded_sequential(&disk, &cfg);
        assert_eq!(r.ops, q.ops);
        assert_eq!(r.quarantined_mask, q.quarantined_mask);
    }

    #[test]
    fn unrecorded_gap_still_truncates_despite_a_quarantine() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        // The quarantine licenses skipping stamp 1 only; stamp 2 is
        // missing without a record, so everything after it truncates.
        ws[0].append_frame(FrameKind::Batch, 1, 0, &[op(0)]).unwrap();
        ws[2].append_frame(FrameKind::Batch, 1, 0, &[op(3)]).unwrap();
        ws[0].append_quarantine(1, 1 << 1, &[(1, 2)]).unwrap();
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert_eq!(r.ops.len(), 1);
        assert_eq!(r.truncated_at, Some(2), "the uncovered stamp truncates");
        assert_eq!(r.lost_ops, 1);
    }

    #[test]
    fn quarantined_shard_does_not_drag_the_sealed_epoch_back() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut ws = writers(&disk, &cfg, 1);
        // Shard 1 sealed only epoch 1 before dying; shards 0 and 2 went
        // on to seal epoch 3 and recorded the quarantine.
        ws[1].append_frame(FrameKind::EpochSeal, 1, 0, &[]).unwrap();
        for i in [0usize, 2] {
            ws[i].append_frame(FrameKind::EpochSeal, 3, 0, &[]).unwrap();
            ws[i].append_quarantine(3, 1 << 1, &[]).unwrap();
        }
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert_eq!(r.sealed_epoch, 3, "the dead shard is excluded from the min");
        assert_eq!(r.quarantined_shards(), vec![1]);
    }

    #[test]
    fn foreign_shard_frame_stops_the_scan() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        // A frame stamped shard=1 sitting in shard 0's region (e.g. a
        // firmware misdirected write): the scan must not admit it.
        let frame = crate::wire::encode_frame(&Frame {
            gen: 1,
            shard: 1,
            kind: FrameKind::Batch,
            epoch: 1,
            seq: 0,
            txn: 0,
            ops: vec![op(0)],
            windows: Vec::new(),
        });
        let mut sector = [0u8; SECTOR_SIZE];
        sector[..frame.len()].copy_from_slice(&frame);
        Disk::write(&disk, cfg.region_base(0), &sector);
        Disk::flush(&disk);
        let r = recover_sharded(&disk, &cfg);
        assert!(r.ops.is_empty());
        let skipped = r.skipped();
        assert_eq!(skipped.len(), 1);
        assert_eq!(skipped[0].class, RecordClass::Orphaned);
    }
}
