//! Shards of the sharded journal: configuration, inode→shard mapping,
//! and the per-shard region writer.
//!
//! The sharded journal splits the log into `N` independent append
//! streams. Each shard owns a contiguous region of the device
//! (`region_sectors` sectors starting at `shard * region_sectors`), its
//! own frame sequence space, its own fault/retry counters, and its own
//! scrub budget at recovery. Which shard an operation's micro-ops land
//! in is decided by [`shard_of`] over the operation's *primary* inode
//! (delivered by the emitter through `TraceSink::shard_hint`), so all
//! micro-ops of one operation stay together in one stream — renames are
//! the only cross-shard case and get a two-phase intent/seal record
//! (see `group_commit`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use atomfs_trace::{Inum, MicroOp};

use crate::device::{BlockDevice, DiskError, Sector, SECTOR_SIZE};
use crate::health::{HealthCounters, RetryPolicy};
use crate::journal::DEFAULT_MAX_SKIPPED;
use crate::wire::{encode_frame_parts, encode_quarantine_parts, FrameKind};

/// Hard ceiling on shard count (the on-disk layout stores the shard
/// index in a `u16`, but 64 regions is already far past useful
/// parallelism for this device model).
pub const MAX_SHARDS: usize = 64;

/// Sizing and policy knobs for a sharded journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Number of independent append streams (clamped to 1..=[`MAX_SHARDS`]).
    pub shards: usize,
    /// Sectors per shard region. Shard `i`'s log occupies LBAs
    /// `[i * region_sectors, (i + 1) * region_sectors)`.
    pub region_sectors: u64,
    /// Per-shard bound on recovery scrub itemization — each shard gets
    /// its own budget, so one noisy shard cannot evict another shard's
    /// skip evidence.
    pub max_skipped: usize,
    /// Whether writers stage into per-epoch buffers flushed as one group
    /// commit (`true`), or append every micro-op to its shard eagerly
    /// (`false` — sharding without batching, the ablation baseline).
    pub group_commit: bool,
    /// Retry policy every shard's sector operations run under.
    pub policy: RetryPolicy,
}

impl Default for ShardConfig {
    /// Four shards of 16 MiB, group commit on.
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            region_sectors: 1 << 15,
            max_skipped: DEFAULT_MAX_SKIPPED,
            group_commit: true,
            policy: RetryPolicy::default(),
        }
    }
}

impl ShardConfig {
    /// A config with `shards` streams and defaults elsewhere.
    pub fn with_shards(shards: usize) -> Self {
        ShardConfig {
            shards,
            ..ShardConfig::default()
        }
    }

    /// Builder: disable epoch group commit (eager per-op appends).
    pub fn without_group_commit(mut self) -> Self {
        self.group_commit = false;
        self
    }

    /// Builder: set the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Shard count clamped to the legal range.
    pub fn shard_count(&self) -> usize {
        self.shards.clamp(1, MAX_SHARDS)
    }

    /// First LBA of shard `i`'s region.
    pub fn region_base(&self, shard: usize) -> u64 {
        shard as u64 * self.region_sectors
    }

    /// Bytes a shard region can hold.
    pub fn region_bytes(&self) -> u64 {
        self.region_sectors * SECTOR_SIZE as u64
    }
}

/// Map an inode to a shard: a multiplicative (Fibonacci) hash over the
/// inode number, taking the *high* bits so consecutive inode ranges
/// spread across shards instead of clustering. Deterministic and stable
/// across mounts — recovery does not depend on it (replay order comes
/// from stamps), but stable placement keeps a shard's history
/// self-contained.
pub fn shard_of(ino: Inum, shards: usize) -> usize {
    let shards = shards.clamp(1, MAX_SHARDS);
    let h = ino.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// Convenience: the shard of a micro-op's own target inode (the
/// fallback when no operation-level hint was delivered).
pub fn shard_of_op(op: &MicroOp, shards: usize) -> usize {
    shard_of(op.target(), shards)
}

/// One shard's live write state: an append cursor into its region.
///
/// Mirrors the single-stream `Journal` writer (RMW sector appends under
/// a retry policy; position/sequence do not advance on failure) but is
/// bounded by the region and charges a *per-shard* counter set.
pub struct ShardWriter {
    disk: Arc<dyn BlockDevice>,
    shard: u16,
    gen: u32,
    base_lba: u64,
    region_bytes: u64,
    /// Next free byte offset within the region's byte stream.
    pos: u64,
    /// Next frame sequence number.
    seq: u64,
    /// In-memory image of the sector `pos` points into (this writer is
    /// its region's only appender, so the cache is authoritative):
    /// appends never read the device back.
    tail: Sector,
    policy: RetryPolicy,
    counters: Arc<HealthCounters>,
}

impl ShardWriter {
    /// A fresh writer at byte 0 of shard `shard`'s region, generation `gen`.
    pub fn new(disk: Arc<dyn BlockDevice>, shard: usize, gen: u32, cfg: &ShardConfig) -> Self {
        ShardWriter {
            disk,
            shard: shard as u16,
            gen,
            base_lba: cfg.region_base(shard),
            region_bytes: cfg.region_bytes(),
            pos: 0,
            seq: 0,
            tail: [0u8; SECTOR_SIZE],
            // Each shard backs off on its own jitter schedule (when the
            // policy is seeded) so a correlated fault burst does not
            // exhaust every shard's budget in lockstep.
            policy: cfg.policy.reseeded(shard as u64),
            counters: Arc::new(HealthCounters::default()),
        }
    }

    /// Bytes appended to this shard so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Sequence number the next frame will carry.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// This shard's fault/retry counters.
    pub fn counters(&self) -> Arc<HealthCounters> {
        Arc::clone(&self.counters)
    }

    /// Append one frame (volatile until the device is flushed). On error
    /// the position and sequence number do not advance, so the owner can
    /// degrade without the log state drifting. A full region surfaces as
    /// [`DiskError::Gone`]: the shard is permanently out of space.
    pub fn append_frame(
        &mut self,
        kind: FrameKind,
        epoch: u64,
        txn: u64,
        ops: &[(u64, MicroOp)],
    ) -> Result<(), DiskError> {
        let bytes = encode_frame_parts(self.gen, self.shard, kind, epoch, self.seq, txn, ops);
        if self.pos + bytes.len() as u64 > self.region_bytes {
            return Err(DiskError::Gone);
        }
        self.write_bytes(&bytes)?;
        self.seq += 1;
        Ok(())
    }

    /// Append a [`FrameKind::Quarantine`] frame announcing that the
    /// shards in `mask` are dead and the stamps in `windows` were lost
    /// with them. Same durability/no-drift discipline as
    /// [`ShardWriter::append_frame`].
    pub fn append_quarantine(
        &mut self,
        epoch: u64,
        mask: u64,
        windows: &[(u64, u64)],
    ) -> Result<(), DiskError> {
        let bytes = encode_quarantine_parts(self.gen, self.shard, epoch, self.seq, mask, windows);
        if self.pos + bytes.len() as u64 > self.region_bytes {
            return Err(DiskError::Gone);
        }
        self.write_bytes(&bytes)?;
        self.seq += 1;
        Ok(())
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        // Work on a copy of the tail image: on error nothing advances
        // (position, sequence, or cache), so a retried append re-runs
        // from identical state.
        let mut tail = self.tail;
        let mut written = 0usize;
        while written < bytes.len() {
            let off_bytes = self.pos as usize + written;
            let lba = self.base_lba + (off_bytes / SECTOR_SIZE) as u64;
            let off = off_bytes % SECTOR_SIZE;
            let chunk = (SECTOR_SIZE - off).min(bytes.len() - written);
            if off == 0 {
                // Fresh sector: bytes past the stream tail are zeros,
                // which can never decode as a frame.
                tail = [0u8; SECTOR_SIZE];
            }
            tail[off..off + chunk].copy_from_slice(&bytes[written..written + chunk]);
            let disk = &*self.disk;
            // Each sector write individually rides out transient errors.
            self.policy.run(&self.counters, || disk.write(lba, &tail))?;
            written += chunk;
        }
        self.pos += bytes.len() as u64;
        self.tail = tail;
        Ok(())
    }
}

/// Live health/progress gauges of one shard, for reports and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Bytes appended to this shard's region.
    pub log_bytes: u64,
    /// Highest epoch this shard has durably sealed (0 before the first).
    pub sealed_epoch: u64,
    /// How far the mount's open epoch has run ahead of this shard's
    /// sealed epoch.
    pub epoch_lag: u64,
    /// Device faults charged to this shard.
    pub faults: u64,
    /// Retries charged to this shard.
    pub retries: u64,
    /// Whether this shard's device region has failed permanently. Under
    /// group commit the shard is *quarantined*: its inode range turns
    /// read-only while the surviving shards keep accepting writes (the
    /// whole mount degrades only when every shard is dead, or in eager
    /// mode, which keeps the old whole-mount semantics).
    pub dead: bool,
}

/// The always-on (atomic) half of a shard's state, shared with metrics
/// callbacks.
#[derive(Debug, Default)]
pub struct ShardGauges {
    /// Bytes appended (mirrors the writer position; readable without
    /// taking the writer lock).
    pub log_bytes: AtomicU64,
    /// Highest epoch durably sealed on this shard.
    pub sealed_epoch: AtomicU64,
    /// Set when this shard's region dies permanently.
    pub dead: AtomicBool,
}

impl ShardGauges {
    /// Record a successful seal of `epoch` (monotonic).
    pub fn seal(&self, epoch: u64) {
        self.sealed_epoch.fetch_max(epoch, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Disk;
    use crate::wire::decode_frame;
    use atomfs_vfs::FileType;

    fn op(i: u64) -> (u64, MicroOp) {
        (
            i,
            MicroOp::Create {
                ino: 100 + i,
                ftype: FileType::File,
            },
        )
    }

    #[test]
    fn shard_of_is_stable_and_in_range() {
        for ino in 0..1000u64 {
            let s = shard_of(ino, 4);
            assert!(s < 4);
            assert_eq!(s, shard_of(ino, 4), "mapping must be deterministic");
        }
        assert_eq!(shard_of(7, 1), 0, "one shard takes everything");
        // Degenerate configs clamp instead of dividing by zero.
        assert_eq!(shard_of(7, 0), 0);
    }

    #[test]
    fn shard_of_spreads_consecutive_inodes() {
        // The first handful of allocated inodes (2..10) must not all
        // collapse onto one shard, or small trees get zero parallelism.
        let shards: std::collections::HashSet<usize> =
            (2..10u64).map(|i| shard_of(i, 4)).collect();
        assert!(
            shards.len() >= 3,
            "consecutive inodes clustered onto {shards:?}"
        );
    }

    #[test]
    fn writer_appends_into_its_own_region() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let mut w = ShardWriter::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, 2, 1, &cfg);
        w.append_frame(FrameKind::Batch, 5, 0, &[op(0), op(1)])
            .unwrap();
        disk.flush();
        // The frame lives at the region base, not at LBA 0.
        let sector = disk.read(cfg.region_base(2));
        let (frame, _) = decode_frame(&sector).expect("frame at region base");
        assert_eq!(frame.shard, 2);
        assert_eq!(frame.epoch, 5);
        assert_eq!(frame.ops.len(), 2);
        assert!(disk.read(0).iter().all(|&b| b == 0), "LBA 0 untouched");
    }

    #[test]
    fn writer_state_does_not_drift_on_failure() {
        use crate::faults::{FaultPlan, FaultyDisk};
        let dev = Arc::new(FaultyDisk::new(
            Arc::new(Disk::new()),
            FaultPlan::none(0).with_permanent_failure_after(1),
        ));
        let cfg = ShardConfig::default();
        let mut w = ShardWriter::new(dev, 0, 1, &cfg);
        w.append_frame(FrameKind::Batch, 1, 0, &[op(0)]).unwrap();
        let before = (w.position(), w.next_seq());
        assert_eq!(
            w.append_frame(FrameKind::Batch, 1, 0, &[op(1)]),
            Err(DiskError::Gone)
        );
        assert_eq!((w.position(), w.next_seq()), before);
    }

    #[test]
    fn full_region_reports_gone() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig {
            region_sectors: 1,
            ..ShardConfig::default()
        };
        let mut w = ShardWriter::new(disk, 0, 1, &cfg);
        // Frames are ~60 bytes; a 512-byte region fills quickly.
        let mut filled = false;
        for i in 0..20 {
            match w.append_frame(FrameKind::Batch, 1, 0, &[op(i)]) {
                Ok(()) => {}
                Err(e) => {
                    assert_eq!(e, DiskError::Gone);
                    filled = true;
                    break;
                }
            }
        }
        assert!(filled, "a one-sector region never filled");
    }
}
