//! The journaled file system: AtomFS over an operation log.
//!
//! [`JournaledFs`] wires an instrumented [`AtomFs`] to a [`Journal`]
//! through its trace sink: every inode-granularity mutation the file
//! system performs is appended to the log in the global mutation order
//! (the same order the CRL-H shadow state replays, so the log always
//! replays cleanly). `sync()` is the durability barrier.
//!
//! [`JournaledFs::recover`] implements the crash path: scan the log,
//! replay the surviving prefix into an abstract state, and *materialize*
//! that state through a fresh instrumented AtomFS — whose mutations,
//! logged under a higher epoch, become the new generation's checkpoint.
//! Recovery therefore doubles as log compaction.

use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{Event, MicroOp, TraceSink};
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsError, FsResult, Metadata};
use parking_lot::Mutex;

use crate::device::Disk;
use crate::journal::{recover, Journal};

/// Trace sink that appends every mutation to the journal.
pub struct JournalSink {
    journal: Mutex<Journal>,
}

impl JournalSink {
    /// Wrap a journal writer.
    pub fn new(journal: Journal) -> Self {
        JournalSink {
            journal: Mutex::new(journal),
        }
    }

    /// Durability barrier.
    pub fn sync(&self) {
        self.journal.lock().commit();
    }

    /// Bytes appended to the log so far.
    pub fn log_bytes(&self) -> u64 {
        self.journal.lock().position()
    }
}

impl TraceSink for JournalSink {
    fn emit(&self, event: Event) {
        self.emit_ref(&event);
    }

    /// The journal serializes the micro-op straight out of the borrowed
    /// event, so fanning out to checker + journal never deep-clones the
    /// event for the journal's sake.
    fn emit_ref(&self, event: &Event) {
        if let Event::Mutate { mop, .. } = event {
            self.journal.lock().append(std::slice::from_ref(mop));
        }
    }
}

/// Statistics from a recovery.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryStats {
    /// Log generation recovered from.
    pub epoch: u64,
    /// Mutations replayed.
    pub ops_replayed: usize,
    /// Bytes of valid log scanned.
    pub log_bytes: u64,
    /// Live inodes in the recovered tree (including the root).
    pub inodes: usize,
}

/// AtomFS with an operation log under it.
pub struct JournaledFs {
    fs: Arc<AtomFs>,
    sink: Arc<JournalSink>,
}

impl JournaledFs {
    /// Format `disk` with a fresh (epoch-1) log and mount an empty
    /// file system over it.
    pub fn create(disk: Arc<Disk>) -> Self {
        Self::with_journal(Journal::create(disk))
    }

    fn with_journal(journal: Journal) -> Self {
        let sink = Arc::new(JournalSink::new(journal));
        let fs = Arc::new(AtomFs::traced(Arc::clone(&sink) as Arc<dyn TraceSink>));
        JournaledFs { fs, sink }
    }

    /// Recover after a crash: replay the surviving log prefix and mount
    /// a file system with that content, checkpointing it into a new log
    /// generation (which is committed before this returns).
    ///
    /// Fails with [`FsError::InvalidArgument`] only if the surviving
    /// prefix does not replay — which the append order makes impossible
    /// for logs this crate wrote, so it indicates a foreign or tampered
    /// disk.
    pub fn recover(disk: Arc<Disk>) -> FsResult<(Self, RecoveryStats)> {
        let recovered = recover(&disk);
        let state = recovered.replay().map_err(|_| FsError::InvalidArgument)?;
        let stats = RecoveryStats {
            epoch: recovered.epoch,
            ops_replayed: recovered.ops().count(),
            log_bytes: recovered.end_pos,
            inodes: state.map.len(),
        };
        let journal = Journal::create_epoch(disk, recovered.epoch + 1);
        let journaled = Self::with_journal(journal);
        materialize(&*journaled.fs, &state)?;
        journaled.sink.sync();
        Ok((journaled, stats))
    }

    /// The live file system.
    pub fn fs(&self) -> &Arc<AtomFs> {
        &self.fs
    }

    /// Bytes in the current log generation.
    pub fn log_bytes(&self) -> u64 {
        self.sink.log_bytes()
    }
}

impl FileSystem for JournaledFs {
    fn name(&self) -> &'static str {
        "atomfs-journaled"
    }
    fn mknod(&self, path: &str) -> FsResult<()> {
        self.fs.mknod(path)
    }
    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.fs.mkdir(path)
    }
    fn unlink(&self, path: &str) -> FsResult<()> {
        self.fs.unlink(path)
    }
    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.fs.rmdir(path)
    }
    fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        self.fs.rename(src, dst)
    }
    fn stat(&self, path: &str) -> FsResult<Metadata> {
        self.fs.stat(path)
    }
    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.fs.readdir(path)
    }
    fn read(&self, path: &str, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.fs.read(path, offset, buf)
    }
    fn write(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.fs.write(path, offset, data)
    }
    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        self.fs.truncate(path, size)
    }
    /// The durability barrier: everything before this call survives a
    /// crash; everything after may be lost (but never torn — recovery
    /// yields a prefix).
    fn sync(&self) -> FsResult<()> {
        self.sink.sync();
        Ok(())
    }
}

/// Rebuild a live file system from an abstract state: depth-first create
/// every directory and file and write every file's contents.
pub fn materialize(fs: &dyn FileSystem, state: &crlh::FsState) -> FsResult<()> {
    fn walk(
        fs: &dyn FileSystem,
        state: &crlh::FsState,
        id: atomfs_trace::Inum,
        path: &str,
    ) -> FsResult<()> {
        match state.node(id) {
            Some(crlh::Node::Dir(entries)) => {
                for (name, child) in entries {
                    let child_path = atomfs_vfs::path::join(path, name);
                    match state.node(*child) {
                        Some(crlh::Node::Dir(_)) => {
                            fs.mkdir(&child_path)?;
                            walk(fs, state, *child, &child_path)?;
                        }
                        Some(crlh::Node::File(data)) => {
                            fs.write_file(&child_path, data)?;
                        }
                        None => return Err(FsError::InvalidArgument),
                    }
                }
                Ok(())
            }
            _ => Err(FsError::NotDir),
        }
    }
    walk(fs, state, state.root, "/")
}

/// Extract just the mutation stream from a recorded trace (used by the
/// crash-consistency tests).
pub fn mutations_of(events: &[Event]) -> Vec<MicroOp> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Mutate { mop, .. } => Some(mop.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_sync_recover_roundtrip() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk));
        jfs.mkdir("/docs").unwrap();
        jfs.mknod("/docs/a").unwrap();
        jfs.write("/docs/a", 0, b"durable").unwrap();
        jfs.sync().unwrap();
        drop(jfs);
        // Clean power cut after sync: everything survives.
        disk.crash(|_| false);
        let (r, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert_eq!(r.read_to_vec("/docs/a").unwrap(), b"durable");
        assert_eq!(stats.epoch, 1);
        assert!(stats.ops_replayed >= 3);
        assert!(stats.inodes >= 3);
    }

    #[test]
    fn unsynced_tail_is_lost_cleanly() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk));
        jfs.mkdir("/kept").unwrap();
        jfs.sync().unwrap();
        jfs.mkdir("/lost").unwrap();
        drop(jfs);
        disk.crash(|_| false);
        let (r, _) = JournaledFs::recover(disk).unwrap();
        assert!(r.stat("/kept").is_ok());
        assert_eq!(r.stat("/lost"), Err(FsError::NotFound));
    }

    #[test]
    fn recovery_checkpoint_compacts_the_log() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk));
        jfs.mknod("/f").unwrap();
        // Lots of history on one file...
        for i in 0..200 {
            jfs.write("/f", 0, &[i as u8; 64]).unwrap();
        }
        jfs.sync().unwrap();
        let history_bytes = jfs.log_bytes();
        drop(jfs);
        let (r, _) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        // ...compacts to a checkpoint holding only the final state.
        assert!(
            r.log_bytes() < history_bytes / 4,
            "checkpoint {} should be much smaller than history {}",
            r.log_bytes(),
            history_bytes
        );
        let mut buf = [0u8; 64];
        r.read("/f", 0, &mut buf).unwrap();
        assert_eq!(buf, [199u8; 64]);
    }

    #[test]
    fn double_recovery_epochs_increase() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk));
        jfs.mkdir("/gen1").unwrap();
        jfs.sync().unwrap();
        drop(jfs);
        let (r1, s1) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert_eq!(s1.epoch, 1);
        r1.mkdir("/gen2").unwrap();
        r1.sync().unwrap();
        drop(r1);
        disk.crash(|_| false);
        let (r2, s2) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert_eq!(s2.epoch, 2, "second recovery sees the checkpoint epoch");
        assert!(r2.stat("/gen1").is_ok());
        assert!(r2.stat("/gen2").is_ok());
    }

    #[test]
    fn materialize_roundtrips_arbitrary_state() {
        use atomfs_trace::MicroOp;
        use atomfs_vfs::FileType;
        let mut state = crlh::FsState::new();
        for (i, (name, ftype)) in [("d", FileType::Dir), ("f", FileType::File)]
            .iter()
            .enumerate()
        {
            let ino = 10 + i as u64;
            state
                .apply_micro(&MicroOp::Create { ino, ftype: *ftype })
                .unwrap();
            state
                .apply_micro(&MicroOp::Ins {
                    parent: atomfs_trace::ROOT_INUM,
                    name: (*name).into(),
                    child: ino,
                })
                .unwrap();
        }
        state
            .apply_micro(&MicroOp::SetData {
                ino: 11,
                old: vec![],
                new: b"payload".to_vec(),
            })
            .unwrap();
        let fs = AtomFs::new();
        materialize(&fs, &state).unwrap();
        assert!(fs.stat("/d").unwrap().ftype.is_dir());
        assert_eq!(fs.read_to_vec("/f").unwrap(), b"payload");
    }

    /// Fresh-disk recovery mounts an empty file system.
    #[test]
    fn recover_empty_disk() {
        let disk = Arc::new(Disk::new());
        let (r, stats) = JournaledFs::recover(disk).unwrap();
        assert_eq!(stats.ops_replayed, 0);
        assert!(r.readdir("/").unwrap().is_empty());
        r.mkdir("/works").unwrap();
    }
}
