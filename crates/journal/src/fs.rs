//! The journaled file system: AtomFS over an operation log.
//!
//! [`JournaledFs`] wires an instrumented [`AtomFs`] to a [`Journal`]
//! through its trace sink: every inode-granularity mutation the file
//! system performs is appended to the log in the global mutation order
//! (the same order the CRL-H shadow state replays, so the log always
//! replays cleanly). `sync()` is the durability barrier.
//!
//! The write path is fallible: when the device defeats the journal's
//! retry policy the mount flips to read-only **degraded mode** — reads
//! keep serving from the in-memory AtomFS, mutations return
//! [`FsError::ReadOnly`] *before* touching AtomFS (so the trace the
//! CRL-H checker sees stays exactly the trace of the mutations that
//! happened), and `sync()` reports the failure so callers never treat
//! non-durable data as acked. [`JournaledFs::health`] exposes the state.
//!
//! [`JournaledFs::recover`] implements the crash path: scan the log,
//! replay the surviving prefix into an abstract state, and *materialize*
//! that state through a fresh instrumented AtomFS — whose mutations,
//! logged under a higher epoch, become the new generation's checkpoint.
//! Recovery therefore doubles as log compaction.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use atomfs::AtomFs;
use atomfs_trace::{Event, FanoutSink, MicroOp, TraceSink};
use atomfs_vfs::fs::FileSystemExt;
use atomfs_vfs::{FileSystem, FsError, FsResult, Metadata};
use parking_lot::Mutex;

use crate::device::{BlockDevice, Disk, DiskError};
use crate::group_commit::ShardedJournalSink;
use crate::health::{Health, HealthCounters, HealthReport, RecoverySummary, RetryPolicy};
use crate::journal::{recover, Journal, SkipTotals, SkippedRecord};
use crate::shard::ShardConfig;

/// Trace sink that appends every mutation to the journal, degrading the
/// mount instead of panicking when the device defeats the retry policy.
pub struct JournalSink {
    journal: Mutex<Journal>,
    health: Mutex<Health>,
    /// Lock-free mirror of `health.is_degraded()`, so the per-mutation
    /// and per-call degraded checks never touch the health mutex.
    degraded: AtomicBool,
    counters: Arc<HealthCounters>,
    /// Mutation events that arrived while already degraded (the FS above
    /// should be refusing mutations by then, so this staying 0 is itself
    /// a checked invariant of the degraded-mode tests).
    dropped: AtomicU64,
    /// How this mount generation was produced: set by recovery, `None`
    /// for a freshly created mount.
    recovery: Mutex<Option<RecoverySummary>>,
}

impl JournalSink {
    /// Wrap a journal writer.
    pub fn new(journal: Journal) -> Self {
        let counters = journal.counters();
        JournalSink {
            journal: Mutex::new(journal),
            health: Mutex::new(Health::Healthy),
            degraded: AtomicBool::new(false),
            counters,
            dropped: AtomicU64::new(0),
            recovery: Mutex::new(None),
        }
    }

    /// Durability barrier. Errors when the mount is (or just became)
    /// degraded: an `Err` here means *nothing since the last `Ok` sync
    /// is guaranteed durable*, so callers must not ack that data.
    pub fn sync(&self) -> Result<(), DiskError> {
        if self.degraded.load(Ordering::Relaxed) {
            if let Health::Degraded { cause, .. } = *self.health.lock() {
                return Err(cause);
            }
        }
        let result = self.journal.lock().commit();
        if let Err(cause) = result {
            let failed_at_seq = self.journal.lock().next_seq();
            self.degrade(cause, failed_at_seq);
        }
        result
    }

    /// Current mount health.
    pub fn health(&self) -> Health {
        *self.health.lock()
    }

    /// Health plus the fault/retry counters behind it and, for a mount
    /// produced by recovery, the scrub's skipped-record breakdown.
    pub fn health_report(&self) -> HealthReport {
        HealthReport {
            health: self.health(),
            device_faults: self.counters.device_faults(),
            retries: self.counters.retries(),
            degraded_flips: self.counters.degraded_flips(),
            dropped_events: self.dropped.load(Ordering::Relaxed),
            recovery: *self.recovery.lock(),
        }
    }

    /// The fault/retry/flip counters (shared with the journal).
    pub fn counters(&self) -> Arc<HealthCounters> {
        Arc::clone(&self.counters)
    }

    /// Events dropped while degraded.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    fn set_recovery(&self, summary: RecoverySummary) {
        *self.recovery.lock() = Some(summary);
    }

    /// Bytes appended to the log so far.
    pub fn log_bytes(&self) -> u64 {
        self.journal.lock().position()
    }

    fn degrade(&self, cause: DiskError, failed_at_seq: u64) {
        let mut health = self.health.lock();
        // First failure wins: keep the original cause for the report.
        if !health.is_degraded() {
            *health = Health::Degraded {
                cause,
                failed_at_seq,
            };
            self.degraded.store(true, Ordering::Relaxed);
            self.counters.degraded_flips.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Lock-free degraded check for per-operation fast paths.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

impl TraceSink for JournalSink {
    fn emit(&self, event: Event) {
        self.emit_ref(&event);
    }

    /// The journal serializes the micro-op straight out of the borrowed
    /// event, so fanning out to checker + journal never deep-clones the
    /// event for the journal's sake.
    fn emit_ref(&self, event: &Event) {
        if let Event::Mutate { mop, .. } = event {
            if self.degraded.load(Ordering::Relaxed) {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let result = {
                let mut journal = self.journal.lock();
                let at_seq = journal.next_seq();
                journal
                    .append(std::slice::from_ref(mop))
                    .map_err(|e| (e, at_seq))
            };
            if let Err((cause, failed_at_seq)) = result {
                self.degrade(cause, failed_at_seq);
            }
        }
    }
}

/// Statistics from a recovery.
#[derive(Debug, Clone)]
pub struct RecoveryStats {
    /// Log generation recovered from.
    pub epoch: u64,
    /// Mutations replayed.
    pub ops_replayed: usize,
    /// Bytes of valid log scanned.
    pub log_bytes: u64,
    /// Live inodes in the recovered tree (including the root).
    pub inodes: usize,
    /// Records past the replayed prefix that the recovery scrub refused,
    /// itemized with offset and classification (empty for a clean log).
    /// Itemization is capped by the scrub budget; `skip_totals` counts
    /// past the cap.
    pub skipped: Vec<SkippedRecord>,
    /// Complete per-class census of everything the scrub refused —
    /// cap-independent, so a heavily damaged region cannot undercount.
    pub skip_totals: SkipTotals,
    /// Stamps skipped under the license of recovered quarantine windows:
    /// mutations known lost with a dead shard (sharded mounts only;
    /// always 0 for a run that saw no quarantine).
    pub lost_ops: usize,
    /// Admitted ops the tolerant replay had to skip because a lost
    /// window orphaned them (e.g. a link whose target's creation died
    /// with the dead shard). Always 0 when `lost_ops` is 0 — a clean log
    /// replays strictly.
    pub unreplayable_ops: usize,
}

impl RecoveryStats {
    /// The `Copy` digest of these stats that [`HealthReport`] carries.
    /// Built from the cap-independent census, so the digest stays honest
    /// even when the itemized list overflowed its budget.
    pub fn summary(&self) -> RecoverySummary {
        RecoverySummary::from_totals(self.epoch, self.ops_replayed as u64, &self.skip_totals)
    }
}

/// Which log implementation a [`JournaledFs`] mount writes through: the
/// original single-stream [`JournalSink`] or the sharded, group-committed
/// [`ShardedJournalSink`]. Internal — callers reach the concrete sink via
/// [`JournaledFs::sink`] / [`JournaledFs::sharded_sink`].
pub(crate) enum SinkKind {
    Single(Arc<JournalSink>),
    Sharded(Arc<ShardedJournalSink>),
}

/// AtomFS with an operation log under it.
pub struct JournaledFs {
    fs: Arc<AtomFs>,
    sink: SinkKind,
}

impl JournaledFs {
    /// Format `device` with a fresh (epoch-1) log and mount an empty
    /// file system over it.
    pub fn create(device: Arc<dyn BlockDevice>) -> Self {
        Self::create_with(device, RetryPolicy::default())
    }

    /// [`JournaledFs::create`] with an explicit retry policy.
    pub fn create_with(device: Arc<dyn BlockDevice>, policy: RetryPolicy) -> Self {
        Self::with_journal(Journal::create_with(device, 1, policy), None)
    }

    /// [`JournaledFs::create_with`] plus an extra trace sink observing
    /// the same event stream the journal logs — this is how the fault
    /// tests keep the CRL-H checker watching a mount that may degrade.
    pub fn create_observed(
        device: Arc<dyn BlockDevice>,
        policy: RetryPolicy,
        observer: Arc<dyn TraceSink>,
    ) -> Self {
        Self::with_journal(Journal::create_with(device, 1, policy), Some(observer))
    }

    fn with_journal(journal: Journal, observer: Option<Arc<dyn TraceSink>>) -> Self {
        let sink = Arc::new(JournalSink::new(journal));
        let fs = Self::traced_over(Arc::clone(&sink) as Arc<dyn TraceSink>, observer);
        JournaledFs {
            fs,
            sink: SinkKind::Single(sink),
        }
    }

    /// Format `device` with a fresh sharded (generation-1) log laid out
    /// per `cfg` and mount an empty file system over it. Writers stage
    /// into per-shard buffers; [`FileSystem::sync`] group-commits an
    /// epoch across every shard.
    pub fn create_sharded(device: Arc<dyn BlockDevice>, cfg: ShardConfig) -> Self {
        Self::with_sharded(ShardedJournalSink::new(device, cfg), None)
    }

    /// [`JournaledFs::create_sharded`] plus an extra trace sink observing
    /// the same event stream (checker observation of sharded mounts).
    pub fn create_sharded_observed(
        device: Arc<dyn BlockDevice>,
        cfg: ShardConfig,
        observer: Arc<dyn TraceSink>,
    ) -> Self {
        Self::with_sharded(ShardedJournalSink::new(device, cfg), Some(observer))
    }

    /// [`JournaledFs::create_sharded`] with one device per shard —
    /// distinct fault domains, so a failure confined to one device
    /// quarantines only that shard's inode range instead of degrading
    /// the whole mount. `devices.len()` must equal `cfg`'s shard count.
    pub fn create_sharded_with_devices(devices: Vec<Arc<dyn BlockDevice>>, cfg: ShardConfig) -> Self {
        Self::with_sharded(ShardedJournalSink::with_devices(devices, cfg), None)
    }

    /// [`JournaledFs::create_sharded_with_devices`] plus an extra trace
    /// sink observing the same event stream.
    pub fn create_sharded_observed_with_devices(
        devices: Vec<Arc<dyn BlockDevice>>,
        cfg: ShardConfig,
        observer: Arc<dyn TraceSink>,
    ) -> Self {
        Self::with_sharded(ShardedJournalSink::with_devices(devices, cfg), Some(observer))
    }

    fn with_sharded(sink: ShardedJournalSink, observer: Option<Arc<dyn TraceSink>>) -> Self {
        let sink = Arc::new(sink);
        let fs = Self::traced_over(Arc::clone(&sink) as Arc<dyn TraceSink>, observer);
        JournaledFs {
            fs,
            sink: SinkKind::Sharded(sink),
        }
    }

    fn traced_over(sink: Arc<dyn TraceSink>, observer: Option<Arc<dyn TraceSink>>) -> Arc<AtomFs> {
        let tap: Arc<dyn TraceSink> = match observer {
            None => sink,
            Some(observer) => Arc::new(FanoutSink(vec![sink, observer])),
        };
        Arc::new(AtomFs::traced(tap))
    }

    /// Recover after a crash: replay the surviving log prefix and mount
    /// a file system with that content, checkpointing it into a new log
    /// generation (which is committed before this returns).
    ///
    /// Fails with [`FsError::InvalidArgument`] only if the surviving
    /// prefix does not replay — which the append order makes impossible
    /// for logs this crate wrote, so it indicates a foreign or tampered
    /// disk.
    pub fn recover(disk: Arc<Disk>) -> FsResult<(Self, RecoveryStats)> {
        let device = Arc::clone(&disk) as Arc<dyn BlockDevice>;
        Self::recover_with(disk, device, RetryPolicy::default())
    }

    /// [`JournaledFs::recover`] writing the new generation's checkpoint
    /// through `device` (which may be fault-injected) under `policy`.
    /// The *scan* always reads the raw platter: recovery models a fresh
    /// power session, so the previous session's fault plan is gone while
    /// the corruption it left behind is exactly what the scrub reports.
    ///
    /// If the device defeats the checkpoint, the mount comes up already
    /// degraded — readable, refusing mutations, acking nothing — rather
    /// than failing the recovery.
    pub fn recover_with(
        disk: Arc<Disk>,
        device: Arc<dyn BlockDevice>,
        policy: RetryPolicy,
    ) -> FsResult<(Self, RecoveryStats)> {
        let recovered = recover(&disk);
        let state = recovered.replay().map_err(|_| FsError::InvalidArgument)?;
        let stats = RecoveryStats {
            epoch: recovered.epoch,
            ops_replayed: recovered.ops().count(),
            log_bytes: recovered.end_pos,
            inodes: state.map.len(),
            skipped: recovered.skipped.clone(),
            skip_totals: recovered.skip_totals,
            lost_ops: 0,
            unreplayable_ops: 0,
        };
        let journal = Journal::create_with(device, recovered.epoch + 1, policy);
        let journaled = Self::with_journal(journal, None);
        if let SinkKind::Single(sink) = &journaled.sink {
            sink.set_recovery(stats.summary());
        }
        materialize(&*journaled.fs, &state)?;
        // Checkpoint barrier. On failure the sink has already flipped to
        // degraded: the mount is served from memory and acks nothing.
        if let SinkKind::Single(sink) = &journaled.sink {
            let _ = sink.sync();
        }
        Ok((journaled, stats))
    }

    /// Recover a sharded log after a crash: scan every shard region (in
    /// parallel), pair rename intents with their seals, replay the
    /// surviving global-stamp prefix, and mount a file system with that
    /// content, checkpointing it into a new log generation. The
    /// checkpoint commit is *forced*, so every shard carries at least an
    /// `EpochSeal` frame of the new generation — which is how the next
    /// recovery detects that older-generation frames are stale.
    pub fn recover_sharded(disk: Arc<Disk>, cfg: ShardConfig) -> FsResult<(Self, RecoveryStats)> {
        let device = Arc::clone(&disk) as Arc<dyn BlockDevice>;
        Self::recover_sharded_with(disk, device, cfg)
    }

    /// [`JournaledFs::recover_sharded`] writing the new generation's
    /// checkpoint through `device` (which may be fault-injected). As with
    /// [`JournaledFs::recover_with`], the scan reads the raw platter and
    /// a defeated checkpoint degrades the mount rather than failing the
    /// recovery.
    pub fn recover_sharded_with(
        disk: Arc<Disk>,
        device: Arc<dyn BlockDevice>,
        cfg: ShardConfig,
    ) -> FsResult<(Self, RecoveryStats)> {
        let recovered = crate::recovery::recover_sharded(&disk, &cfg);
        // A log with recovered quarantine windows is *expected* to have
        // holes the strict replay rejects (ops orphaned by the recorded
        // loss): replay tolerantly, counting the skips. A log without
        // windows keeps the strict contract — any replay failure there
        // still indicates a foreign or tampered disk.
        let (state, unreplayable_ops) = if recovered.lost_windows.is_empty() {
            (
                recovered.replay().map_err(|_| FsError::InvalidArgument)?,
                0,
            )
        } else {
            recovered.replay_tolerant()
        };
        let stats = RecoveryStats {
            epoch: recovered.gen as u64,
            ops_replayed: recovered.ops.len() - unreplayable_ops,
            log_bytes: recovered.log_bytes(),
            inodes: state.map.len(),
            skipped: recovered.skipped(),
            skip_totals: recovered.skip_totals(),
            lost_ops: recovered.lost_ops,
            unreplayable_ops,
        };
        let sink = ShardedJournalSink::with_gen(device, cfg, recovered.gen + 1);
        sink.set_recovery(stats.summary());
        let journaled = Self::with_sharded(sink, None);
        materialize(&*journaled.fs, &state)?;
        if let SinkKind::Sharded(sink) = &journaled.sink {
            // Forced checkpoint barrier: every shard gets a frame of the
            // new generation. On failure the sink has already degraded.
            let _ = sink.commit(true);
        }
        Ok((journaled, stats))
    }

    /// The live file system.
    pub fn fs(&self) -> &Arc<AtomFs> {
        &self.fs
    }

    /// The single-stream journal sink under the mount (for health
    /// inspection and metrics bridging).
    ///
    /// # Panics
    ///
    /// On a sharded mount — use [`JournaledFs::sharded_sink`] there.
    pub fn sink(&self) -> &Arc<JournalSink> {
        match &self.sink {
            SinkKind::Single(sink) => sink,
            SinkKind::Sharded(_) => panic!("sink(): this is a sharded mount"),
        }
    }

    /// The sharded journal sink under the mount, or `None` for a
    /// single-stream mount.
    pub fn sharded_sink(&self) -> Option<&Arc<ShardedJournalSink>> {
        match &self.sink {
            SinkKind::Single(_) => None,
            SinkKind::Sharded(sink) => Some(sink),
        }
    }

    pub(crate) fn sink_kind(&self) -> &SinkKind {
        &self.sink
    }

    /// Current storage health of the mount.
    pub fn health(&self) -> Health {
        match &self.sink {
            SinkKind::Single(sink) => sink.health(),
            SinkKind::Sharded(sink) => sink.health(),
        }
    }

    /// Health plus fault/retry counters.
    pub fn health_report(&self) -> HealthReport {
        match &self.sink {
            SinkKind::Single(sink) => sink.health_report(),
            SinkKind::Sharded(sink) => sink.health_report(),
        }
    }

    /// Bytes in the current log generation (summed over shards for a
    /// sharded mount).
    pub fn log_bytes(&self) -> u64 {
        match &self.sink {
            SinkKind::Single(sink) => sink.log_bytes(),
            SinkKind::Sharded(sink) => sink.log_bytes(),
        }
    }

    /// Refuse mutations on a degraded mount *before* they reach AtomFS,
    /// so the in-memory tree (and the trace the checker replays) only
    /// ever contains mutations the journal accepted for logging.
    fn guard_writable(&self) -> FsResult<()> {
        let degraded = match &self.sink {
            SinkKind::Single(sink) => sink.is_degraded(),
            SinkKind::Sharded(sink) => sink.is_degraded(),
        };
        if degraded {
            return Err(FsError::ReadOnly);
        }
        Ok(())
    }
}

impl FileSystem for JournaledFs {
    fn name(&self) -> &'static str {
        "atomfs-journaled"
    }
    fn mknod(&self, path: &str) -> FsResult<()> {
        self.guard_writable()?;
        self.fs.mknod(path)
    }
    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.guard_writable()?;
        self.fs.mkdir(path)
    }
    fn unlink(&self, path: &str) -> FsResult<()> {
        self.guard_writable()?;
        self.fs.unlink(path)
    }
    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.guard_writable()?;
        self.fs.rmdir(path)
    }
    fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        self.guard_writable()?;
        self.fs.rename(src, dst)
    }
    fn stat(&self, path: &str) -> FsResult<Metadata> {
        self.fs.stat(path)
    }
    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        self.fs.readdir(path)
    }
    fn read(&self, path: &str, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        self.fs.read(path, offset, buf)
    }
    fn write(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<usize> {
        self.guard_writable()?;
        self.fs.write(path, offset, data)
    }
    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        self.guard_writable()?;
        self.fs.truncate(path, size)
    }
    /// The durability barrier: everything before this call survives a
    /// crash; everything after may be lost (but never torn — recovery
    /// yields a prefix). Exhausted retries surface as [`FsError::Io`]
    /// and flip the mount to degraded mode.
    fn sync(&self) -> FsResult<()> {
        match &self.sink {
            SinkKind::Single(sink) => sink.sync().map_err(FsError::from),
            SinkKind::Sharded(sink) => sink.sync().map_err(FsError::from),
        }
    }
}

/// Rebuild a live file system from an abstract state: create every
/// directory and file and write every file's contents, parents before
/// children. Iterative (an explicit worklist), so a pathologically deep
/// recovered tree cannot overflow the stack.
pub fn materialize(fs: &dyn FileSystem, state: &crlh::FsState) -> FsResult<()> {
    let mut work: Vec<(atomfs_trace::Inum, String)> = Vec::new();
    match state.node(state.root) {
        Some(crlh::Node::Dir(_)) => work.push((state.root, "/".to_string())),
        _ => return Err(FsError::NotDir),
    }
    while let Some((id, path)) = work.pop() {
        let entries = match state.node(id) {
            Some(crlh::Node::Dir(entries)) => entries,
            _ => return Err(FsError::NotDir),
        };
        for (name, child) in entries {
            let child_path = atomfs_vfs::path::join(&path, name);
            match state.node(*child) {
                Some(crlh::Node::Dir(_)) => {
                    // mkdir now, descend later: every directory exists
                    // before anything is created inside it.
                    fs.mkdir(&child_path)?;
                    work.push((*child, child_path));
                }
                Some(crlh::Node::File(data)) => {
                    fs.write_file(&child_path, data)?;
                }
                None => return Err(FsError::InvalidArgument),
            }
        }
    }
    Ok(())
}

/// Extract just the mutation stream from a recorded trace (used by the
/// crash-consistency tests).
pub fn mutations_of(events: &[Event]) -> Vec<MicroOp> {
    events
        .iter()
        .filter_map(|e| match e {
            Event::Mutate { mop, .. } => Some(mop.clone()),
            _ => None,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultyDisk};

    #[test]
    fn create_sync_recover_roundtrip() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        jfs.mkdir("/docs").unwrap();
        jfs.mknod("/docs/a").unwrap();
        jfs.write("/docs/a", 0, b"durable").unwrap();
        jfs.sync().unwrap();
        drop(jfs);
        // Clean power cut after sync: everything survives.
        disk.crash(|_| false);
        let (r, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert_eq!(r.read_to_vec("/docs/a").unwrap(), b"durable");
        assert_eq!(stats.epoch, 1);
        assert!(stats.ops_replayed >= 3);
        assert!(stats.inodes >= 3);
        assert!(stats.skipped.is_empty());
    }

    #[test]
    fn unsynced_tail_is_lost_cleanly() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        jfs.mkdir("/kept").unwrap();
        jfs.sync().unwrap();
        jfs.mkdir("/lost").unwrap();
        drop(jfs);
        disk.crash(|_| false);
        let (r, _) = JournaledFs::recover(disk).unwrap();
        assert!(r.stat("/kept").is_ok());
        assert_eq!(r.stat("/lost"), Err(FsError::NotFound));
    }

    #[test]
    fn recovery_checkpoint_compacts_the_log() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        jfs.mknod("/f").unwrap();
        // Lots of history on one file...
        for i in 0..200 {
            jfs.write("/f", 0, &[i as u8; 64]).unwrap();
        }
        jfs.sync().unwrap();
        let history_bytes = jfs.log_bytes();
        drop(jfs);
        let (r, _) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        // ...compacts to a checkpoint holding only the final state.
        assert!(
            r.log_bytes() < history_bytes / 4,
            "checkpoint {} should be much smaller than history {}",
            r.log_bytes(),
            history_bytes
        );
        let mut buf = [0u8; 64];
        r.read("/f", 0, &mut buf).unwrap();
        assert_eq!(buf, [199u8; 64]);
    }

    #[test]
    fn double_recovery_epochs_increase() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        jfs.mkdir("/gen1").unwrap();
        jfs.sync().unwrap();
        drop(jfs);
        let (r1, s1) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert_eq!(s1.epoch, 1);
        r1.mkdir("/gen2").unwrap();
        r1.sync().unwrap();
        drop(r1);
        disk.crash(|_| false);
        let (r2, s2) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert_eq!(s2.epoch, 2, "second recovery sees the checkpoint epoch");
        assert!(r2.stat("/gen1").is_ok());
        assert!(r2.stat("/gen2").is_ok());
    }

    #[test]
    fn materialize_roundtrips_arbitrary_state() {
        use atomfs_trace::MicroOp;
        use atomfs_vfs::FileType;
        let mut state = crlh::FsState::new();
        for (i, (name, ftype)) in [("d", FileType::Dir), ("f", FileType::File)]
            .iter()
            .enumerate()
        {
            let ino = 10 + i as u64;
            state
                .apply_micro(&MicroOp::Create { ino, ftype: *ftype })
                .unwrap();
            state
                .apply_micro(&MicroOp::Ins {
                    parent: atomfs_trace::ROOT_INUM,
                    name: (*name).into(),
                    child: ino,
                })
                .unwrap();
        }
        state
            .apply_micro(&MicroOp::SetData {
                ino: 11,
                old: vec![],
                new: b"payload".to_vec(),
            })
            .unwrap();
        let fs = AtomFs::new();
        materialize(&fs, &state).unwrap();
        assert!(fs.stat("/d").unwrap().ftype.is_dir());
        assert_eq!(fs.read_to_vec("/f").unwrap(), b"payload");
    }

    /// Fresh-disk recovery mounts an empty file system.
    #[test]
    fn recover_empty_disk() {
        let disk = Arc::new(Disk::new());
        let (r, stats) = JournaledFs::recover(disk).unwrap();
        assert_eq!(stats.ops_replayed, 0);
        assert!(r.readdir("/").unwrap().is_empty());
        r.mkdir("/works").unwrap();
    }

    #[test]
    fn dead_device_degrades_the_mount_instead_of_panicking() {
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            // One device write per appended event (the writer caches its
            // tail sector, so appends never read). A budget of 7 puts the
            // failure on the final event of a two-event mknod — a mutation
            // boundary — so the health gate stops everything after it and
            // nothing is dropped mid-mutation.
            FaultPlan::none(0).with_permanent_failure_after(7),
        ));
        let jfs = JournaledFs::create(dev);
        // Mutate until the device dies under the journal.
        let mut hit_degraded = false;
        for i in 0..100 {
            match jfs.mknod(&format!("/f{i}")) {
                Ok(()) => {}
                Err(FsError::ReadOnly) => {
                    hit_degraded = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_degraded, "the mount never degraded");
        assert!(jfs.health().is_degraded());
        // Reads still serve from memory; /f0 was created pre-failure.
        assert!(jfs.stat("/f0").is_ok());
        assert!(jfs.readdir("/").is_ok());
        // Every mutating op is refused.
        assert_eq!(jfs.mkdir("/d"), Err(FsError::ReadOnly));
        assert_eq!(jfs.write("/f0", 0, b"x"), Err(FsError::ReadOnly));
        assert_eq!(jfs.truncate("/f0", 0), Err(FsError::ReadOnly));
        assert_eq!(jfs.unlink("/f0"), Err(FsError::ReadOnly));
        assert_eq!(jfs.rename("/f0", "/f1"), Err(FsError::ReadOnly));
        // And sync refuses to ack anything, with the EIO mapping.
        assert_eq!(jfs.sync(), Err(FsError::Io));
        let report = jfs.health_report();
        assert!(report.health.is_degraded());
        assert_eq!(report.dropped_events, 0, "gating beat the sink to it");
    }

    #[test]
    fn recovery_onto_a_dead_device_comes_up_degraded_but_readable() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        jfs.mkdir("/survives").unwrap();
        jfs.sync().unwrap();
        drop(jfs);
        disk.crash(|_| false);
        // The replacement controller is dead on arrival.
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(0).with_permanent_failure_after(0),
        ));
        let (r, stats) = JournaledFs::recover_with(disk, dev, RetryPolicy::default()).unwrap();
        assert!(stats.ops_replayed >= 1);
        assert!(r.health().is_degraded(), "checkpoint failure must degrade");
        assert!(r.stat("/survives").is_ok(), "reads still serve from memory");
        assert_eq!(r.mkdir("/new"), Err(FsError::ReadOnly));
        assert_eq!(r.sync(), Err(FsError::Io));
    }

    #[test]
    fn health_report_carries_recovery_breakdown() {
        use crate::device::SECTOR_SIZE;
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        // A fresh mount was not produced by recovery.
        assert_eq!(jfs.health_report().recovery, None);
        for i in 0..5 {
            jfs.mknod(&format!("/f{i}")).unwrap();
        }
        jfs.sync().unwrap();
        let tail = jfs.log_bytes() as usize;
        drop(jfs);
        disk.crash(|_| false);
        // Bit-rot the log's last few bytes: the scrub classifies the final
        // record as corrupt and recovery proceeds with the prefix.
        let byte = tail - 10;
        disk.corrupt_durable((byte / SECTOR_SIZE) as u64, byte % SECTOR_SIZE, 0x40);
        let (r, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        assert!(!stats.skipped.is_empty(), "corruption was not detected");
        let report = r.health_report();
        let summary = report.recovery.expect("recovered mount carries summary");
        assert_eq!(summary, stats.summary(), "report and stats agree");
        assert_eq!(summary.epoch, stats.epoch);
        assert_eq!(summary.ops_replayed, stats.ops_replayed as u64);
        assert_eq!(summary.skipped_total, stats.skipped.len() as u64);
        // The per-class counts partition the total.
        assert_eq!(
            summary.torn
                + summary.checksum_mismatch
                + summary.stale_epoch
                + summary.orphaned
                + summary.garbage,
            summary.skipped_total
        );
        assert!(summary.checksum_mismatch >= 1, "bit rot shows in its class");
    }

    #[test]
    fn degraded_flips_counts_exactly_one_transition() {
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(0).with_permanent_failure_after(4),
        ));
        let jfs = JournaledFs::create(dev);
        assert_eq!(jfs.health_report().degraded_flips, 0);
        for i in 0..100 {
            if jfs.mknod(&format!("/f{i}")).is_err() {
                break;
            }
        }
        let _ = jfs.sync();
        assert!(jfs.health().is_degraded());
        // Several appends may fail, but the transition is counted once.
        assert_eq!(jfs.health_report().degraded_flips, 1);
    }

    #[test]
    fn sharded_create_sync_recover_roundtrip() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let jfs = JournaledFs::create_sharded(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg);
        jfs.mkdir("/docs").unwrap();
        jfs.mknod("/docs/a").unwrap();
        jfs.write("/docs/a", 0, b"durable").unwrap();
        jfs.rename("/docs/a", "/a").unwrap();
        jfs.sync().unwrap();
        let sink = jfs.sharded_sink().unwrap();
        assert!(sink.sealed_epoch() >= 1, "sync seals an epoch");
        drop(jfs);
        disk.crash(|_| false);
        let (r, stats) = JournaledFs::recover_sharded(Arc::clone(&disk), cfg).unwrap();
        assert_eq!(r.read_to_vec("/a").unwrap(), b"durable");
        assert_eq!(r.stat("/docs/a"), Err(FsError::NotFound));
        assert_eq!(stats.epoch, 1);
        assert!(stats.ops_replayed >= 4);
        assert!(stats.skipped.is_empty());
        // Second-generation mount keeps working and re-recovers.
        r.mkdir("/gen2").unwrap();
        r.sync().unwrap();
        drop(r);
        disk.crash(|_| false);
        let (r2, s2) = JournaledFs::recover_sharded(disk, ShardConfig::default()).unwrap();
        assert_eq!(s2.epoch, 2, "checkpoint bumped the generation");
        assert!(r2.stat("/a").is_ok());
        assert!(r2.stat("/gen2").is_ok());
    }

    #[test]
    fn sharded_unsynced_tail_is_lost_cleanly() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default();
        let jfs = JournaledFs::create_sharded(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg);
        jfs.mkdir("/kept").unwrap();
        jfs.sync().unwrap();
        jfs.mkdir("/lost").unwrap();
        drop(jfs);
        disk.crash(|_| false);
        let (r, _) = JournaledFs::recover_sharded(disk, cfg).unwrap();
        assert!(r.stat("/kept").is_ok());
        assert_eq!(r.stat("/lost"), Err(FsError::NotFound));
    }

    #[test]
    fn sharded_mount_spreads_load_and_reports_per_shard() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::with_shards(4);
        let jfs = JournaledFs::create_sharded(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg);
        for i in 0..32 {
            jfs.mkdir(&format!("/d{i}")).unwrap();
            jfs.mknod(&format!("/d{i}/f")).unwrap();
        }
        jfs.sync().unwrap();
        let sink = jfs.sharded_sink().unwrap();
        let reports = sink.shard_reports();
        assert_eq!(reports.len(), 4);
        let busy = reports.iter().filter(|r| r.log_bytes > 0).count();
        assert!(busy >= 2, "files under distinct parents hit >1 shard");
        assert_eq!(jfs.log_bytes(), reports.iter().map(|r| r.log_bytes).sum());
    }

    #[test]
    fn sharded_dead_device_degrades_instead_of_panicking() {
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(0).with_permanent_failure_after(6),
        ));
        let jfs = JournaledFs::create_sharded(dev, ShardConfig::default());
        let mut hit_degraded = false;
        for i in 0..200 {
            match jfs.mkdir(&format!("/d{i}")).and_then(|_| jfs.sync()) {
                Ok(()) => {}
                Err(FsError::ReadOnly) | Err(FsError::Io) => {
                    hit_degraded = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(hit_degraded, "the mount never degraded");
        assert!(jfs.health().is_degraded());
        assert_eq!(jfs.mkdir("/more"), Err(FsError::ReadOnly));
        assert_eq!(jfs.sync(), Err(FsError::Io));
        assert!(jfs.readdir("/").is_ok(), "reads still serve from memory");
        let report = jfs.health_report();
        assert!(report.health.is_degraded());
        assert_eq!(report.degraded_flips, 1);
    }

    #[test]
    fn transient_faults_stay_healthy_and_durable() {
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(5).with_transient(6_000, 6_000, 6_000),
        ));
        let jfs = JournaledFs::create(dev);
        for i in 0..40 {
            jfs.mknod(&format!("/f{i}")).unwrap();
        }
        jfs.sync().unwrap();
        assert_eq!(jfs.health(), Health::Healthy);
        assert!(
            jfs.health_report().retries > 0,
            "a ~9% fault rate should have forced retries"
        );
        drop(jfs);
        disk.crash(|_| false);
        let (r, _) = JournaledFs::recover(disk).unwrap();
        for i in 0..40 {
            assert!(r.stat(&format!("/f{i}")).is_ok(), "/f{i} was acked");
        }
    }
}
