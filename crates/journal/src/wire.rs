//! Binary encoding of micro-operations for the on-disk log.
//!
//! Hand-rolled little-endian encoding (no format crates in the dependency
//! budget): every record is self-describing and checksummed, so recovery
//! can detect torn writes and out-of-order partial persistence.

use atomfs_trace::MicroOp;
use atomfs_vfs::FileType;

/// Record magic: "AJRN" little-endian.
pub const MAGIC: u32 = 0x4e524a41;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(<[u8]>::to_vec)
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
}

fn ftype_tag(f: FileType) -> u8 {
    match f {
        FileType::File => 0,
        FileType::Dir => 1,
    }
}

fn ftype_from(tag: u8) -> Option<FileType> {
    match tag {
        0 => Some(FileType::File),
        1 => Some(FileType::Dir),
        _ => None,
    }
}

/// Encode one micro-op.
pub fn encode_op(op: &MicroOp, out: &mut Vec<u8>) {
    match op {
        MicroOp::Create { ino, ftype } => {
            out.push(0);
            put_u64(out, *ino);
            out.push(ftype_tag(*ftype));
        }
        MicroOp::Remove { ino, ftype } => {
            out.push(1);
            put_u64(out, *ino);
            out.push(ftype_tag(*ftype));
        }
        MicroOp::Ins {
            parent,
            name,
            child,
        } => {
            out.push(2);
            put_u64(out, *parent);
            put_bytes(out, name.as_bytes());
            put_u64(out, *child);
        }
        MicroOp::Del {
            parent,
            name,
            child,
        } => {
            out.push(3);
            put_u64(out, *parent);
            put_bytes(out, name.as_bytes());
            put_u64(out, *child);
        }
        MicroOp::SetData { ino, old, new } => {
            out.push(4);
            put_u64(out, *ino);
            put_bytes(out, old);
            put_bytes(out, new);
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Option<MicroOp> {
    Some(match r.u8()? {
        0 => MicroOp::Create {
            ino: r.u64()?,
            ftype: ftype_from(r.u8()?)?,
        },
        1 => MicroOp::Remove {
            ino: r.u64()?,
            ftype: ftype_from(r.u8()?)?,
        },
        2 => MicroOp::Ins {
            parent: r.u64()?,
            name: r.string()?,
            child: r.u64()?,
        },
        3 => MicroOp::Del {
            parent: r.u64()?,
            name: r.string()?,
            child: r.u64()?,
        },
        4 => MicroOp::SetData {
            ino: r.u64()?,
            old: r.bytes()?,
            new: r.bytes()?,
        },
        _ => return None,
    })
}

/// Smallest encoding of any micro-op: a `Create`/`Remove` is
/// tag(1) + ino(8) + ftype(1) bytes. Used to sanity-bound the op count
/// a record header claims.
const MIN_OP_BYTES: usize = 10;

/// FNV-1a over a byte slice — the record checksum.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Encode one journal record: an epoch (log generation — a recovery
/// checkpoint rewrites the log under a higher epoch, so stale records
/// from the previous generation can never be replayed), a sequence
/// number, and a batch of ops.
///
/// Layout: `MAGIC u32 | epoch u64 | seq u64 | payload_len u32 | payload | fnv u64`
/// where the checksum covers everything before it.
pub fn encode_record(epoch: u64, seq: u64, ops: &[MicroOp]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        encode_op(op, &mut payload);
    }
    let mut rec = Vec::with_capacity(payload.len() + 32);
    put_u32(&mut rec, MAGIC);
    put_u64(&mut rec, epoch);
    put_u64(&mut rec, seq);
    put_u32(&mut rec, payload.len() as u32);
    rec.extend_from_slice(&payload);
    let sum = checksum(&rec);
    put_u64(&mut rec, sum);
    rec
}

/// Try to decode one record at the start of `buf`.
///
/// Returns the record's `(epoch, seq, ops, total_len)` or `None` when the
/// bytes are not a complete, checksummed record (recovery stops there).
pub fn decode_record(buf: &[u8]) -> Option<(u64, u64, Vec<MicroOp>, usize)> {
    let mut r = Reader { buf, pos: 0 };
    if r.u32()? != MAGIC {
        return None;
    }
    let epoch = r.u64()?;
    let seq = r.u64()?;
    let payload_len = r.u32()? as usize;
    // The length came off the wire: clamp it against the bytes actually
    // present before using it for anything, so a corrupted field can
    // never drive a huge allocation or an overflowing index.
    if payload_len > buf.len().saturating_sub(r.pos) {
        return None;
    }
    let payload_start = r.pos;
    let payload = r.take(payload_len)?;
    let stored_sum = r.u64()?;
    let total = r.pos;
    if checksum(&buf[..payload_start + payload_len]) != stored_sum {
        return None;
    }
    let mut pr = Reader {
        buf: payload,
        pos: 0,
    };
    let count = pr.u32()? as usize;
    // Same clamp for the op count: every op encodes to at least
    // MIN_OP_BYTES, so a count the remaining payload cannot possibly
    // hold is corrupt — reject it before `Vec::with_capacity`.
    if count > payload.len().saturating_sub(pr.pos) / MIN_OP_BYTES {
        return None;
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(decode_op(&mut pr)?);
    }
    if pr.pos != payload.len() {
        return None; // trailing garbage inside the payload
    }
    Some((epoch, seq, ops, total))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::Create {
                ino: 7,
                ftype: FileType::Dir,
            },
            MicroOp::Ins {
                parent: 1,
                name: "directory name".into(),
                child: 7,
            },
            MicroOp::SetData {
                ino: 9,
                old: b"before".to_vec(),
                new: vec![0xEE; 1000],
            },
            MicroOp::Del {
                parent: 1,
                name: "x".into(),
                child: 3,
            },
            MicroOp::Remove {
                ino: 3,
                ftype: FileType::File,
            },
        ]
    }

    #[test]
    fn record_roundtrip() {
        let ops = sample_ops();
        let rec = encode_record(3, 42, &ops);
        let (epoch, seq, decoded, len) = decode_record(&rec).expect("valid record");
        assert_eq!(epoch, 3);
        assert_eq!(seq, 42);
        assert_eq!(decoded, ops);
        assert_eq!(len, rec.len());
    }

    #[test]
    fn empty_batch_roundtrip() {
        let rec = encode_record(1, 0, &[]);
        let (_, seq, ops, _) = decode_record(&rec).unwrap();
        assert_eq!(seq, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let ops = sample_ops();
        let rec = encode_record(1, 1, &ops);
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_record(&bad).is_none(),
                "flipping byte {i} must invalidate the record"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let rec = encode_record(1, 1, &sample_ops());
        for cut in 0..rec.len() {
            assert!(decode_record(&rec[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn back_to_back_records_parse_sequentially() {
        let a = encode_record(1, 1, &sample_ops());
        let b = encode_record(1, 2, &[]);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (_, s1, _, l1) = decode_record(&stream).unwrap();
        assert_eq!(s1, 1);
        let (_, s2, _, _) = decode_record(&stream[l1..]).unwrap();
        assert_eq!(s2, 2);
    }

    #[test]
    fn zeros_are_not_a_record() {
        assert!(decode_record(&[0u8; 64]).is_none());
    }

    #[test]
    fn huge_wire_length_is_rejected_without_allocating() {
        // A frame whose header claims a payload far past the buffer end.
        let mut rec = Vec::new();
        put_u32(&mut rec, MAGIC);
        put_u64(&mut rec, 1);
        put_u64(&mut rec, 0);
        put_u32(&mut rec, u32::MAX);
        rec.extend_from_slice(&[0xAB; 64]);
        assert!(decode_record(&rec).is_none());
    }

    #[test]
    fn huge_op_count_with_valid_checksum_is_rejected() {
        // The checksum only covers the bytes as written, so a record
        // *encoded* with a lying count field checksums fine — the count
        // clamp is the only thing standing between it and a huge
        // `Vec::with_capacity`.
        let mut rec = Vec::new();
        put_u32(&mut rec, MAGIC);
        put_u64(&mut rec, 1);
        put_u64(&mut rec, 0);
        put_u32(&mut rec, 4); // payload = just the count field
        put_u32(&mut rec, u32::MAX); // claims 4 billion ops
        let sum = checksum(&rec);
        put_u64(&mut rec, sum);
        assert!(decode_record(&rec).is_none());
    }

    /// splitmix64 — the same deterministic stream the fault layer uses.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn fuzz_arbitrary_bytes_never_panic() {
        let mut s = 0xF00Du64;
        for _ in 0..2000 {
            let len = (splitmix(&mut s) % 300) as usize;
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                *b = splitmix(&mut s) as u8;
            }
            // Half the runs get a plausible frame start, so the fuzz
            // exercises the post-magic paths too.
            if buf.len() >= 4 && splitmix(&mut s) & 1 == 0 {
                buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
            }
            if let Some((_, _, _, total)) = decode_record(&buf) {
                assert!(total <= buf.len());
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let rec = encode_record(2, 5, &sample_ops());
        let original = decode_record(&rec).unwrap();
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                match decode_record(&bad) {
                    None => {}
                    Some(got) => panic!(
                        "flip of byte {byte} bit {bit} decoded as {:?} (original {:?})",
                        got, original
                    ),
                }
            }
        }
    }

    #[test]
    fn fuzz_multi_flip_never_yields_a_different_record() {
        let mut s = 0xBEEFu64;
        let rec = encode_record(9, 77, &sample_ops());
        let original = decode_record(&rec).unwrap();
        for _ in 0..2000 {
            let mut bad = rec.clone();
            let flips = 1 + (splitmix(&mut s) % 6) as usize;
            for _ in 0..flips {
                let byte = (splitmix(&mut s) as usize) % bad.len();
                let bit = splitmix(&mut s) % 8;
                bad[byte] ^= 1 << bit;
            }
            if let Some(got) = decode_record(&bad) {
                // Flips may cancel out back to the original encoding —
                // but a *different* record must never surface.
                assert_eq!(got, original, "corruption produced a forged record");
            }
        }
    }

    #[test]
    fn fuzz_truncations_and_extensions_never_panic() {
        let mut s = 0xCAFEu64;
        let rec = encode_record(1, 3, &sample_ops());
        for cut in 0..rec.len() {
            assert!(decode_record(&rec[..cut]).is_none());
        }
        for _ in 0..500 {
            let mut extended = rec.clone();
            let extra = (splitmix(&mut s) % 64) as usize;
            for _ in 0..extra {
                extended.push(splitmix(&mut s) as u8);
            }
            // Trailing junk past a complete record is not this record's
            // problem; the parse must still succeed and size itself.
            let (_, _, ops, total) = decode_record(&extended).unwrap();
            assert_eq!(total, rec.len());
            assert_eq!(ops, sample_ops());
        }
    }
}
