//! Binary encoding of micro-operations for the on-disk log.
//!
//! Hand-rolled little-endian encoding (no format crates in the dependency
//! budget): every record is self-describing and checksummed, so recovery
//! can detect torn writes and out-of-order partial persistence.

use atomfs_trace::MicroOp;
use atomfs_vfs::FileType;

/// Record magic: "AJRN" little-endian.
pub const MAGIC: u32 = 0x4e524a41;

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().expect("4")))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().expect("8")))
    }

    fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = self.u32()? as usize;
        self.take(n).map(<[u8]>::to_vec)
    }

    fn string(&mut self) -> Option<String> {
        String::from_utf8(self.bytes()?).ok()
    }
}

fn ftype_tag(f: FileType) -> u8 {
    match f {
        FileType::File => 0,
        FileType::Dir => 1,
    }
}

fn ftype_from(tag: u8) -> Option<FileType> {
    match tag {
        0 => Some(FileType::File),
        1 => Some(FileType::Dir),
        _ => None,
    }
}

/// Encode one micro-op.
pub fn encode_op(op: &MicroOp, out: &mut Vec<u8>) {
    match op {
        MicroOp::Create { ino, ftype } => {
            out.push(0);
            put_u64(out, *ino);
            out.push(ftype_tag(*ftype));
        }
        MicroOp::Remove { ino, ftype } => {
            out.push(1);
            put_u64(out, *ino);
            out.push(ftype_tag(*ftype));
        }
        MicroOp::Ins {
            parent,
            name,
            child,
        } => {
            out.push(2);
            put_u64(out, *parent);
            put_bytes(out, name.as_bytes());
            put_u64(out, *child);
        }
        MicroOp::Del {
            parent,
            name,
            child,
        } => {
            out.push(3);
            put_u64(out, *parent);
            put_bytes(out, name.as_bytes());
            put_u64(out, *child);
        }
        MicroOp::SetData { ino, old, new } => {
            out.push(4);
            put_u64(out, *ino);
            put_bytes(out, old);
            put_bytes(out, new);
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> Option<MicroOp> {
    Some(match r.u8()? {
        0 => MicroOp::Create {
            ino: r.u64()?,
            ftype: ftype_from(r.u8()?)?,
        },
        1 => MicroOp::Remove {
            ino: r.u64()?,
            ftype: ftype_from(r.u8()?)?,
        },
        2 => MicroOp::Ins {
            parent: r.u64()?,
            name: r.string()?,
            child: r.u64()?,
        },
        3 => MicroOp::Del {
            parent: r.u64()?,
            name: r.string()?,
            child: r.u64()?,
        },
        4 => MicroOp::SetData {
            ino: r.u64()?,
            old: r.bytes()?,
            new: r.bytes()?,
        },
        _ => return None,
    })
}

/// Smallest encoding of any micro-op: a `Create`/`Remove` is
/// tag(1) + ino(8) + ftype(1) bytes. Used to sanity-bound the op count
/// a record header claims.
const MIN_OP_BYTES: usize = 10;

/// The record checksum: an FNV-style multiply-xor absorbing 64-bit words
/// (with a length fold and a splitmix64 finalizer) instead of single
/// bytes. Byte-at-a-time FNV-1a was the single largest slice of the
/// group-commit path — three dependent ops per byte — and a word-wise
/// mix is ~8x faster at the same job. Every absorption step is bijective
/// in the accumulator, so any single-bit flip provably changes the sum;
/// the finalizer spreads the difference across all 64 output bits.
///
/// Only self-consistency matters: recovery verifies sums this same
/// function produced. There is no cross-version log compatibility to
/// preserve.
pub fn checksum(bytes: &[u8]) -> u64 {
    const M: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut h: u64 = 0xcbf29ce484222325;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let w = u64::from_le_bytes(c.try_into().expect("8"));
        h = (h ^ w).wrapping_mul(M);
        h ^= h >> 29;
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut w = 0u64;
        for (i, b) in rem.iter().enumerate() {
            w |= u64::from(*b) << (8 * i);
        }
        h = (h ^ w).wrapping_mul(M);
        h ^= h >> 29;
    }
    h ^= bytes.len() as u64;
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^ (h >> 31)
}

/// Encode one journal record: an epoch (log generation — a recovery
/// checkpoint rewrites the log under a higher epoch, so stale records
/// from the previous generation can never be replayed), a sequence
/// number, and a batch of ops.
///
/// Layout: `MAGIC u32 | epoch u64 | seq u64 | payload_len u32 | payload | fnv u64`
/// where the checksum covers everything before it.
pub fn encode_record(epoch: u64, seq: u64, ops: &[MicroOp]) -> Vec<u8> {
    let mut payload = Vec::new();
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        encode_op(op, &mut payload);
    }
    let mut rec = Vec::with_capacity(payload.len() + 32);
    put_u32(&mut rec, MAGIC);
    put_u64(&mut rec, epoch);
    put_u64(&mut rec, seq);
    put_u32(&mut rec, payload.len() as u32);
    rec.extend_from_slice(&payload);
    let sum = checksum(&rec);
    put_u64(&mut rec, sum);
    rec
}

/// Try to decode one record at the start of `buf`.
///
/// Returns the record's `(epoch, seq, ops, total_len)` or `None` when the
/// bytes are not a complete, checksummed record (recovery stops there).
pub fn decode_record(buf: &[u8]) -> Option<(u64, u64, Vec<MicroOp>, usize)> {
    let mut r = Reader { buf, pos: 0 };
    if r.u32()? != MAGIC {
        return None;
    }
    let epoch = r.u64()?;
    let seq = r.u64()?;
    let payload_len = r.u32()? as usize;
    // The length came off the wire: clamp it against the bytes actually
    // present before using it for anything, so a corrupted field can
    // never drive a huge allocation or an overflowing index.
    if payload_len > buf.len().saturating_sub(r.pos) {
        return None;
    }
    let payload_start = r.pos;
    let payload = r.take(payload_len)?;
    let stored_sum = r.u64()?;
    let total = r.pos;
    if checksum(&buf[..payload_start + payload_len]) != stored_sum {
        return None;
    }
    let mut pr = Reader {
        buf: payload,
        pos: 0,
    };
    let count = pr.u32()? as usize;
    // Same clamp for the op count: every op encodes to at least
    // MIN_OP_BYTES, so a count the remaining payload cannot possibly
    // hold is corrupt — reject it before `Vec::with_capacity`.
    if count > payload.len().saturating_sub(pr.pos) / MIN_OP_BYTES {
        return None;
    }
    let mut ops = Vec::with_capacity(count);
    for _ in 0..count {
        ops.push(decode_op(&mut pr)?);
    }
    if pr.pos != payload.len() {
        return None; // trailing garbage inside the payload
    }
    Some((epoch, seq, ops, total))
}

// ---------------------------------------------------------------------------
// Sharded-journal frames (wire format v2)
// ---------------------------------------------------------------------------

/// Frame magic for the sharded log: "AJS2" little-endian. Distinct from
/// [`MAGIC`] so a scan can never misparse one format as the other.
pub const MAGIC2: u32 = 0x32534a41;

/// Fixed frame header size:
/// `MAGIC2 u32 | gen u32 | shard u16 | kind u8 | pad u8 | epoch u64 | seq u64 | txn u64 | payload_len u32`.
pub const FRAME_HEADER: usize = 40;

/// What a sharded-log frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A batch of stamped micro-ops staged by ordinary (single-shard) ops.
    Batch,
    /// "Every frame of this shard up to here belongs to epochs ≤ `epoch`,
    /// and epoch `epoch` is complete on this shard."
    EpochSeal,
    /// The source-shard half of a rename transaction: the rename's full
    /// stamped op list, tagged with the transaction id.
    RenameIntent,
    /// The destination-shard half: same epoch + txn id, no ops. An intent
    /// whose seal never became durable is discarded at recovery.
    RenameSeal,
    /// A shard-death record written to every *surviving* shard when the
    /// commit path quarantines a dead shard. `txn` carries the dead-shard
    /// bitmask (shard ids fit in a u64, `MAX_SHARDS` ≤ 64); the payload
    /// lists the half-open `[lo, hi)` stamp windows that were staged to
    /// the dead shard and discarded with it. Recovery may skip exactly
    /// these stamps when merging — any *unrecorded* gap still truncates.
    Quarantine,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Batch => 0,
            FrameKind::EpochSeal => 1,
            FrameKind::RenameIntent => 2,
            FrameKind::RenameSeal => 3,
            FrameKind::Quarantine => 4,
        }
    }

    fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => FrameKind::Batch,
            1 => FrameKind::EpochSeal,
            2 => FrameKind::RenameIntent,
            3 => FrameKind::RenameSeal,
            4 => FrameKind::Quarantine,
            _ => return None,
        })
    }

    /// Whether this kind carries a (possibly empty) op payload.
    fn carries_ops(self) -> bool {
        matches!(self, FrameKind::Batch | FrameKind::RenameIntent)
    }

    /// Whether this kind carries lost-stamp windows instead of ops.
    fn carries_windows(self) -> bool {
        matches!(self, FrameKind::Quarantine)
    }
}

/// One frame of a sharded log stream.
///
/// `gen` is the log generation (bumped by recovery checkpoints, the role
/// `epoch` plays in the v1 single-stream format); `epoch` is the group-
/// commit epoch; `seq` is the per-shard frame sequence number; `stamp`s
/// on the ops come from the mount-wide staging counter, so merging every
/// shard's ops by stamp reconstructs one legal total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    pub gen: u32,
    pub shard: u16,
    pub kind: FrameKind,
    pub epoch: u64,
    pub seq: u64,
    pub txn: u64,
    pub ops: Vec<(u64, MicroOp)>,
    /// Lost-stamp windows, half-open `[lo, hi)`. Non-empty only for
    /// [`FrameKind::Quarantine`] frames.
    pub windows: Vec<(u64, u64)>,
}

/// Smallest encoding of one stamped op: stamp(8) + MIN_OP_BYTES.
const MIN_STAMPED_OP_BYTES: usize = 8 + MIN_OP_BYTES;

/// Encode one sharded-log frame (header | payload | fnv trailer, checksum
/// over everything before the trailer — same discipline as v1 records).
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    if f.kind.carries_windows() {
        encode_quarantine_parts(f.gen, f.shard, f.epoch, f.seq, f.txn, &f.windows)
    } else {
        debug_assert!(f.windows.is_empty());
        encode_frame_parts(f.gen, f.shard, f.kind, f.epoch, f.seq, f.txn, &f.ops)
    }
}

/// [`encode_frame`] from borrowed parts — the append path encodes its
/// staged batch straight from the staging buffer without assembling an
/// owning [`Frame`] first.
#[allow(clippy::too_many_arguments)]
pub fn encode_frame_parts(
    gen: u32,
    shard: u16,
    kind: FrameKind,
    epoch: u64,
    seq: u64,
    txn: u64,
    ops: &[(u64, MicroOp)],
) -> Vec<u8> {
    debug_assert!(kind.carries_ops() || ops.is_empty());
    debug_assert!(!kind.carries_windows(), "use encode_quarantine_parts");
    let mut payload = Vec::new();
    put_u32(&mut payload, ops.len() as u32);
    for (stamp, op) in ops {
        put_u64(&mut payload, *stamp);
        encode_op(op, &mut payload);
    }
    assemble_frame(gen, shard, kind, epoch, seq, txn, payload)
}

/// Encode a [`FrameKind::Quarantine`] frame: `mask` (the dead-shard
/// bitmask) rides in the `txn` header field, the lost-stamp windows in
/// the payload as `count u32 | (lo u64 | hi u64)…`. Windows must be
/// well-formed (`lo < hi`) — decode rejects anything else, so a bit flip
/// can never widen what recovery is allowed to skip.
pub fn encode_quarantine_parts(
    gen: u32,
    shard: u16,
    epoch: u64,
    seq: u64,
    mask: u64,
    windows: &[(u64, u64)],
) -> Vec<u8> {
    debug_assert!(windows.iter().all(|&(lo, hi)| lo < hi));
    let mut payload = Vec::new();
    put_u32(&mut payload, windows.len() as u32);
    for (lo, hi) in windows {
        put_u64(&mut payload, *lo);
        put_u64(&mut payload, *hi);
    }
    assemble_frame(gen, shard, FrameKind::Quarantine, epoch, seq, mask, payload)
}

fn assemble_frame(
    gen: u32,
    shard: u16,
    kind: FrameKind,
    epoch: u64,
    seq: u64,
    txn: u64,
    payload: Vec<u8>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len() + 8);
    put_u32(&mut out, MAGIC2);
    put_u32(&mut out, gen);
    out.extend_from_slice(&shard.to_le_bytes());
    out.push(kind.tag());
    out.push(0); // pad — must be zero, checked on decode
    put_u64(&mut out, epoch);
    put_u64(&mut out, seq);
    put_u64(&mut out, txn);
    put_u32(&mut out, payload.len() as u32);
    debug_assert_eq!(out.len(), FRAME_HEADER);
    out.extend_from_slice(&payload);
    let sum = checksum(&out);
    put_u64(&mut out, sum);
    out
}

/// Try to decode one frame at the start of `buf`.
///
/// Returns the frame and its total encoded length, or `None` when the
/// bytes are not a complete, checksummed, well-formed frame. The same
/// clamping rules as [`decode_record`] apply: wire-supplied lengths and
/// counts are bounded by the bytes actually present before any
/// allocation. Seal frames (`EpochSeal`, `RenameSeal`) must carry zero
/// ops — a "seal" smuggling ops is corrupt by definition.
pub fn decode_frame(buf: &[u8]) -> Option<(Frame, usize)> {
    let mut r = Reader { buf, pos: 0 };
    if r.u32()? != MAGIC2 {
        return None;
    }
    let gen = r.u32()?;
    let shard = u16::from_le_bytes(r.take(2)?.try_into().expect("2"));
    let kind = FrameKind::from_tag(r.u8()?)?;
    if r.u8()? != 0 {
        return None; // pad byte must be zero
    }
    let epoch = r.u64()?;
    let seq = r.u64()?;
    let txn = r.u64()?;
    let payload_len = r.u32()? as usize;
    if payload_len > buf.len().saturating_sub(r.pos) {
        return None;
    }
    let payload_start = r.pos;
    let payload = r.take(payload_len)?;
    let stored_sum = r.u64()?;
    let total = r.pos;
    if checksum(&buf[..payload_start + payload_len]) != stored_sum {
        return None;
    }
    let mut pr = Reader {
        buf: payload,
        pos: 0,
    };
    let count = pr.u32()? as usize;
    let mut ops = Vec::new();
    let mut windows = Vec::new();
    if kind.carries_windows() {
        // Quarantine payload: `count` half-open stamp windows, each
        // exactly 16 bytes, strictly ascending and well-formed. The
        // strictness matters: these windows *license* recovery to skip
        // stamps, so a malformed list must fail the whole frame rather
        // than decode to something more permissive.
        if count > payload.len().saturating_sub(pr.pos) / 16 {
            return None;
        }
        windows.reserve(count);
        let mut prev_hi = 0u64;
        for _ in 0..count {
            let lo = pr.u64()?;
            let hi = pr.u64()?;
            if lo >= hi || (prev_hi > 0 && lo < prev_hi) {
                return None;
            }
            prev_hi = hi;
            windows.push((lo, hi));
        }
    } else {
        if count > payload.len().saturating_sub(pr.pos) / MIN_STAMPED_OP_BYTES {
            return None;
        }
        if !kind.carries_ops() && count != 0 {
            return None;
        }
        ops.reserve(count);
        for _ in 0..count {
            let stamp = pr.u64()?;
            ops.push((stamp, decode_op(&mut pr)?));
        }
    }
    if pr.pos != payload.len() {
        return None;
    }
    Some((
        Frame {
            gen,
            shard,
            kind,
            epoch,
            seq,
            txn,
            ops,
            windows,
        },
        total,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<MicroOp> {
        vec![
            MicroOp::Create {
                ino: 7,
                ftype: FileType::Dir,
            },
            MicroOp::Ins {
                parent: 1,
                name: "directory name".into(),
                child: 7,
            },
            MicroOp::SetData {
                ino: 9,
                old: b"before".to_vec(),
                new: vec![0xEE; 1000],
            },
            MicroOp::Del {
                parent: 1,
                name: "x".into(),
                child: 3,
            },
            MicroOp::Remove {
                ino: 3,
                ftype: FileType::File,
            },
        ]
    }

    #[test]
    fn record_roundtrip() {
        let ops = sample_ops();
        let rec = encode_record(3, 42, &ops);
        let (epoch, seq, decoded, len) = decode_record(&rec).expect("valid record");
        assert_eq!(epoch, 3);
        assert_eq!(seq, 42);
        assert_eq!(decoded, ops);
        assert_eq!(len, rec.len());
    }

    #[test]
    fn empty_batch_roundtrip() {
        let rec = encode_record(1, 0, &[]);
        let (_, seq, ops, _) = decode_record(&rec).unwrap();
        assert_eq!(seq, 0);
        assert!(ops.is_empty());
    }

    #[test]
    fn corruption_is_detected() {
        let ops = sample_ops();
        let rec = encode_record(1, 1, &ops);
        for i in 0..rec.len() {
            let mut bad = rec.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_record(&bad).is_none(),
                "flipping byte {i} must invalidate the record"
            );
        }
    }

    #[test]
    fn truncation_is_detected() {
        let rec = encode_record(1, 1, &sample_ops());
        for cut in 0..rec.len() {
            assert!(decode_record(&rec[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn back_to_back_records_parse_sequentially() {
        let a = encode_record(1, 1, &sample_ops());
        let b = encode_record(1, 2, &[]);
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (_, s1, _, l1) = decode_record(&stream).unwrap();
        assert_eq!(s1, 1);
        let (_, s2, _, _) = decode_record(&stream[l1..]).unwrap();
        assert_eq!(s2, 2);
    }

    #[test]
    fn zeros_are_not_a_record() {
        assert!(decode_record(&[0u8; 64]).is_none());
    }

    #[test]
    fn huge_wire_length_is_rejected_without_allocating() {
        // A frame whose header claims a payload far past the buffer end.
        let mut rec = Vec::new();
        put_u32(&mut rec, MAGIC);
        put_u64(&mut rec, 1);
        put_u64(&mut rec, 0);
        put_u32(&mut rec, u32::MAX);
        rec.extend_from_slice(&[0xAB; 64]);
        assert!(decode_record(&rec).is_none());
    }

    #[test]
    fn huge_op_count_with_valid_checksum_is_rejected() {
        // The checksum only covers the bytes as written, so a record
        // *encoded* with a lying count field checksums fine — the count
        // clamp is the only thing standing between it and a huge
        // `Vec::with_capacity`.
        let mut rec = Vec::new();
        put_u32(&mut rec, MAGIC);
        put_u64(&mut rec, 1);
        put_u64(&mut rec, 0);
        put_u32(&mut rec, 4); // payload = just the count field
        put_u32(&mut rec, u32::MAX); // claims 4 billion ops
        let sum = checksum(&rec);
        put_u64(&mut rec, sum);
        assert!(decode_record(&rec).is_none());
    }

    /// splitmix64 — the same deterministic stream the fault layer uses.
    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn fuzz_arbitrary_bytes_never_panic() {
        let mut s = 0xF00Du64;
        for _ in 0..2000 {
            let len = (splitmix(&mut s) % 300) as usize;
            let mut buf = vec![0u8; len];
            for b in &mut buf {
                *b = splitmix(&mut s) as u8;
            }
            // Half the runs get a plausible frame start, so the fuzz
            // exercises the post-magic paths too.
            if buf.len() >= 4 && splitmix(&mut s) & 1 == 0 {
                buf[..4].copy_from_slice(&MAGIC.to_le_bytes());
            }
            if let Some((_, _, _, total)) = decode_record(&buf) {
                assert!(total <= buf.len());
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let rec = encode_record(2, 5, &sample_ops());
        let original = decode_record(&rec).unwrap();
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut bad = rec.clone();
                bad[byte] ^= 1 << bit;
                match decode_record(&bad) {
                    None => {}
                    Some(got) => panic!(
                        "flip of byte {byte} bit {bit} decoded as {:?} (original {:?})",
                        got, original
                    ),
                }
            }
        }
    }

    #[test]
    fn fuzz_multi_flip_never_yields_a_different_record() {
        let mut s = 0xBEEFu64;
        let rec = encode_record(9, 77, &sample_ops());
        let original = decode_record(&rec).unwrap();
        for _ in 0..2000 {
            let mut bad = rec.clone();
            let flips = 1 + (splitmix(&mut s) % 6) as usize;
            for _ in 0..flips {
                let byte = (splitmix(&mut s) as usize) % bad.len();
                let bit = splitmix(&mut s) % 8;
                bad[byte] ^= 1 << bit;
            }
            if let Some(got) = decode_record(&bad) {
                // Flips may cancel out back to the original encoding —
                // but a *different* record must never surface.
                assert_eq!(got, original, "corruption produced a forged record");
            }
        }
    }

    #[test]
    fn fuzz_truncations_and_extensions_never_panic() {
        let mut s = 0xCAFEu64;
        let rec = encode_record(1, 3, &sample_ops());
        for cut in 0..rec.len() {
            assert!(decode_record(&rec[..cut]).is_none());
        }
        for _ in 0..500 {
            let mut extended = rec.clone();
            let extra = (splitmix(&mut s) % 64) as usize;
            for _ in 0..extra {
                extended.push(splitmix(&mut s) as u8);
            }
            // Trailing junk past a complete record is not this record's
            // problem; the parse must still succeed and size itself.
            let (_, _, ops, total) = decode_record(&extended).unwrap();
            assert_eq!(total, rec.len());
            assert_eq!(ops, sample_ops());
        }
    }

    fn sample_frame(kind: FrameKind) -> Frame {
        let ops = if kind.carries_ops() {
            sample_ops()
                .into_iter()
                .enumerate()
                .map(|(i, op)| (100 + i as u64, op))
                .collect()
        } else {
            Vec::new()
        };
        let windows = if kind.carries_windows() {
            vec![(10, 14), (20, 21)]
        } else {
            Vec::new()
        };
        Frame {
            gen: 3,
            shard: 2,
            kind,
            epoch: 17,
            seq: 42,
            txn: 9,
            ops,
            windows,
        }
    }

    #[test]
    fn frame_roundtrip_all_kinds() {
        for kind in [
            FrameKind::Batch,
            FrameKind::EpochSeal,
            FrameKind::RenameIntent,
            FrameKind::RenameSeal,
            FrameKind::Quarantine,
        ] {
            let f = sample_frame(kind);
            let bytes = encode_frame(&f);
            let (got, total) = decode_frame(&bytes).expect("valid frame");
            assert_eq!(got, f);
            assert_eq!(total, bytes.len());
        }
    }

    #[test]
    fn frame_formats_do_not_cross_parse() {
        let rec = encode_record(1, 0, &sample_ops());
        assert!(decode_frame(&rec).is_none(), "v1 record parsed as frame");
        let frame = encode_frame(&sample_frame(FrameKind::Batch));
        assert!(decode_record(&frame).is_none(), "frame parsed as v1 record");
    }

    #[test]
    fn frame_single_bit_flips_are_caught() {
        let bytes = encode_frame(&sample_frame(FrameKind::RenameIntent));
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_none(),
                    "flip of byte {byte} bit {bit} forged a frame"
                );
            }
        }
    }

    #[test]
    fn frame_truncations_are_detected() {
        let bytes = encode_frame(&sample_frame(FrameKind::Batch));
        for cut in 0..bytes.len() {
            assert!(decode_frame(&bytes[..cut]).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn seal_frames_smuggling_ops_are_rejected() {
        // Hand-encode a RenameSeal that claims an op payload: structurally
        // valid, correctly checksummed, semantically illegal.
        let mut f = sample_frame(FrameKind::RenameSeal);
        f.ops = vec![(
            7,
            MicroOp::Create {
                ino: 1,
                ftype: FileType::File,
            },
        )];
        let mut payload = Vec::new();
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 7);
        encode_op(&f.ops[0].1, &mut payload);
        let mut out = Vec::new();
        put_u32(&mut out, MAGIC2);
        put_u32(&mut out, f.gen);
        out.extend_from_slice(&f.shard.to_le_bytes());
        out.push(3); // RenameSeal
        out.push(0);
        put_u64(&mut out, f.epoch);
        put_u64(&mut out, f.seq);
        put_u64(&mut out, f.txn);
        put_u32(&mut out, payload.len() as u32);
        out.extend_from_slice(&payload);
        let sum = checksum(&out);
        put_u64(&mut out, sum);
        assert!(decode_frame(&out).is_none());
    }

    #[test]
    fn malformed_quarantine_windows_are_rejected() {
        // Empty, inverted, and overlapping window lists: the first is
        // legal, the rest must fail the whole frame even though the
        // checksum is honest — a quarantine frame that could be read
        // more permissively than written would license recovery to skip
        // stamps nobody recorded as lost.
        let build = |windows: &[(u64, u64)]| {
            let mut payload = Vec::new();
            put_u32(&mut payload, windows.len() as u32);
            for (lo, hi) in windows {
                put_u64(&mut payload, *lo);
                put_u64(&mut payload, *hi);
            }
            assemble_frame(3, 2, FrameKind::Quarantine, 17, 42, 0b10, payload)
        };
        assert!(decode_frame(&build(&[])).is_some(), "empty list is legal");
        assert!(decode_frame(&build(&[(5, 5)])).is_none(), "empty window");
        assert!(decode_frame(&build(&[(9, 4)])).is_none(), "inverted");
        assert!(
            decode_frame(&build(&[(4, 9), (7, 12)])).is_none(),
            "overlapping"
        );
        assert!(
            decode_frame(&build(&[(10, 12), (4, 6)])).is_none(),
            "descending"
        );
    }

    #[test]
    fn quarantine_bit_flips_are_caught() {
        let bytes = encode_frame(&sample_frame(FrameKind::Quarantine));
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_frame(&bad).is_none(),
                    "flip of byte {byte} bit {bit} forged a quarantine frame"
                );
            }
        }
    }

    #[test]
    fn frames_parse_back_to_back() {
        let a = encode_frame(&sample_frame(FrameKind::Batch));
        let b = encode_frame(&sample_frame(FrameKind::EpochSeal));
        let mut stream = a.clone();
        stream.extend_from_slice(&b);
        let (fa, la) = decode_frame(&stream).unwrap();
        assert_eq!(fa.kind, FrameKind::Batch);
        let (fb, _) = decode_frame(&stream[la..]).unwrap();
        assert_eq!(fb.kind, FrameKind::EpochSeal);
    }
}
