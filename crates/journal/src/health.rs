//! Retry policy and mount-health reporting for the fallible write path.
//!
//! Transient device errors are absorbed by [`RetryPolicy`]: a bounded
//! number of attempts under a *virtual-time* exponential backoff budget —
//! the policy accounts backoff ticks deterministically instead of
//! sleeping, so fault tests replay bit-for-bit and never wait on a wall
//! clock. When the budget is exhausted (or the device fails permanently)
//! the journal's owner flips the mount to [`Health::Degraded`]: reads
//! keep serving from the in-memory AtomFS, mutations are refused with
//! `FsError::ReadOnly`, and `sync()` reports the cause so callers never
//! treat non-durable data as acked.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::device::DiskError;

/// Bounded, deterministic retry for transient device errors.
///
/// An operation is attempted up to `max_attempts` times; after the n-th
/// failure the policy charges `backoff_base << n` virtual ticks against
/// `backoff_budget` and gives up once the budget is exceeded. No wall
/// clock is involved anywhere.
///
/// With a non-zero `jitter_seed` each backoff wait gains a deterministic
/// pseudo-random increment of up to half the exponential base, derived
/// by splitmix64 from `(seed, attempt)`. Two policies carrying different
/// seeds (e.g. [`reseeded`](RetryPolicy::reseeded) per shard) charge
/// their budgets on desynchronized schedules — a correlated fault burst
/// does not exhaust every shard's budget on the same attempt — while a
/// given policy still produces the identical wait sequence on every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts per device operation (including the first).
    pub max_attempts: u32,
    /// Virtual ticks charged for the first retry; doubles per attempt.
    pub backoff_base: u64,
    /// Total virtual ticks a single operation may spend backing off.
    pub backoff_budget: u64,
    /// Seed for deterministic backoff jitter; 0 disables jitter and
    /// reproduces the exact exponential waits.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    /// Up to 6 attempts within a 1024-tick budget — rides out fault
    /// rates well past anything a real bus would survive, while still
    /// giving up fast enough that tests exercise degraded mode. Jitter
    /// is off by default.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            backoff_base: 1,
            backoff_budget: 1 << 10,
            jitter_seed: 0,
        }
    }
}

/// splitmix64: the one-shot mixer the fault plans use, here hashing
/// (seed, attempt) into a jitter draw. Pure — no global RNG state, so
/// the schedule is a function of the policy alone.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl RetryPolicy {
    /// Fail on the first error: the policy the infallible seed behaved
    /// as if it had (useful to measure what retrying buys).
    pub fn no_retries() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff_base: 0,
            backoff_budget: 0,
            jitter_seed: 0,
        }
    }

    /// Builder: enable deterministic backoff jitter under `seed`.
    pub fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Derive the policy a sub-unit (e.g. one shard) should run under:
    /// same bounds, jitter seed remixed with `salt` so sibling units
    /// back off on desynchronized schedules. Identity when jitter is
    /// off — an unseeded policy stays exactly exponential everywhere.
    pub fn reseeded(mut self, salt: u64) -> Self {
        if self.jitter_seed != 0 {
            // Feed the salt through the mixer (never yielding 0, which
            // would silently turn jitter off for one unlucky salt).
            self.jitter_seed = splitmix64(self.jitter_seed ^ salt) | 1;
        }
        self
    }

    /// Virtual ticks charged after the `attempt`-th failure (1-based):
    /// the exponential base plus, when jitter is seeded, a deterministic
    /// increment in `[0, base/2]` drawn from `(seed, attempt)`.
    pub fn backoff_wait(&self, attempt: u32) -> u64 {
        let base = self.backoff_base << (attempt.saturating_sub(1)).min(63);
        if self.jitter_seed == 0 || base == 0 {
            return base;
        }
        base + splitmix64(self.jitter_seed ^ u64::from(attempt)) % (base / 2 + 1)
    }

    /// Run `op`, retrying transient failures within the attempt and
    /// virtual-time budgets. Every observed fault and every retry is
    /// counted on `counters`.
    pub fn run<T>(
        &self,
        counters: &HealthCounters,
        mut op: impl FnMut() -> Result<T, DiskError>,
    ) -> Result<T, DiskError> {
        let mut elapsed = 0u64;
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => {
                    counters.device_faults.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                    if !e.is_transient() || attempt >= self.max_attempts {
                        return Err(e);
                    }
                    let wait = self.backoff_wait(attempt);
                    elapsed = elapsed.saturating_add(wait);
                    if elapsed > self.backoff_budget {
                        return Err(e);
                    }
                    counters.retries.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Fault/retry counters shared by a journal and its owner.
#[derive(Debug, Default)]
pub struct HealthCounters {
    /// Device errors observed (before retry absorption).
    pub device_faults: AtomicU64,
    /// Retries issued after transient errors.
    pub retries: AtomicU64,
    /// Healthy→degraded transitions (0 or 1 per mount generation: the
    /// first failure wins and the mount stays degraded).
    pub degraded_flips: AtomicU64,
}

impl HealthCounters {
    /// Device errors observed so far.
    pub fn device_faults(&self) -> u64 {
        self.device_faults.load(Ordering::Relaxed)
    }

    /// Retries issued so far.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Healthy→degraded transitions so far.
    pub fn degraded_flips(&self) -> u64 {
        self.degraded_flips.load(Ordering::Relaxed)
    }
}

/// The mount's storage health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// The write path is fully functional.
    Healthy,
    /// The device defeated the retry policy: the mount is read-only.
    Degraded {
        /// The error that exhausted the policy.
        cause: DiskError,
        /// Sequence number of the first record that failed to persist
        /// (nothing at or after this seq is durable in this generation).
        failed_at_seq: u64,
    },
}

impl Health {
    /// Whether the mount has flipped to read-only degraded mode.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Health::Degraded { .. })
    }
}

/// Fixed-field digest of a recovery's [`RecoveryStats`], kept `Copy` so
/// [`HealthReport`] stays a plain value: the skipped-record breakdown is
/// collapsed to per-class counts instead of carrying the itemized list.
///
/// [`RecoveryStats`]: crate::fs::RecoveryStats
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoverySummary {
    /// Log generation the mount recovered from.
    pub epoch: u64,
    /// Mutations replayed from the surviving prefix.
    pub ops_replayed: u64,
    /// Total records the recovery scrub refused.
    pub skipped_total: u64,
    /// Skipped: frame intact, tail zeroed (torn write).
    pub torn: u64,
    /// Skipped: frame intact, checksum mismatch (bit rot).
    pub checksum_mismatch: u64,
    /// Skipped: valid record of an older, overwritten generation.
    pub stale_epoch: u64,
    /// Skipped: valid current-generation record stranded past a hole.
    pub orphaned: u64,
    /// Skipped: unframeable bytes (scan stops there).
    pub garbage: u64,
}

impl RecoverySummary {
    /// Build from the scrub's cap-independent census
    /// ([`crate::journal::SkipTotals`]) — the preferred constructor:
    /// unlike [`RecoverySummary::new`], the counts stay complete even
    /// when the itemized list overflowed its budget.
    pub fn from_totals(epoch: u64, ops_replayed: u64, totals: &crate::journal::SkipTotals) -> Self {
        RecoverySummary {
            epoch,
            ops_replayed,
            skipped_total: totals.total,
            torn: totals.torn,
            checksum_mismatch: totals.checksum_mismatch,
            stale_epoch: totals.stale_epoch,
            orphaned: totals.orphaned,
            garbage: totals.garbage,
        }
    }

    /// Collapse an itemized skip list into per-class counts. Undercounts
    /// when the list was capped; prefer [`RecoverySummary::from_totals`].
    pub fn new(epoch: u64, ops_replayed: u64, skipped: &[crate::journal::SkippedRecord]) -> Self {
        use crate::journal::RecordClass;
        let mut s = RecoverySummary {
            epoch,
            ops_replayed,
            skipped_total: skipped.len() as u64,
            ..RecoverySummary::default()
        };
        for rec in skipped {
            match rec.class {
                RecordClass::Torn => s.torn += 1,
                RecordClass::ChecksumMismatch => s.checksum_mismatch += 1,
                RecordClass::StaleEpoch => s.stale_epoch += 1,
                RecordClass::Orphaned => s.orphaned += 1,
                RecordClass::Garbage => s.garbage += 1,
            }
        }
        s
    }
}

/// One-stop health snapshot for operators and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HealthReport {
    /// Current mount health.
    pub health: Health,
    /// Device errors observed (before retry absorption).
    pub device_faults: u64,
    /// Retries issued after transient errors.
    pub retries: u64,
    /// Healthy→degraded transitions.
    pub degraded_flips: u64,
    /// Mutation events dropped because the mount was already degraded
    /// (should stay 0: degraded mounts refuse mutations up front).
    pub dropped_events: u64,
    /// How this mount generation came to be: `Some` iff it was produced
    /// by recovery, with the scrub's skipped-record breakdown.
    pub recovery: Option<RecoverySummary>,
}

impl HealthReport {
    /// Hand-rolled JSON rendering — embedded verbatim as the `health`
    /// section of a black-box dump ([`atomfs_obs::dump`]).
    pub fn to_json(&self) -> String {
        // `{:?}` of `Health`/`DiskError` never produces JSON-special
        // characters (quotes, backslashes, control bytes), so the value
        // can be quoted directly.
        let mut s = format!(
            "{{\"health\":\"{:?}\",\"device_faults\":{},\"retries\":{},\
             \"degraded_flips\":{},\"dropped_events\":{}",
            self.health,
            self.device_faults,
            self.retries,
            self.degraded_flips,
            self.dropped_events
        );
        match &self.recovery {
            Some(r) => s.push_str(&format!(
                ",\"recovery\":{{\"epoch\":{},\"ops_replayed\":{},\
                 \"skipped_total\":{},\"torn\":{},\"checksum_mismatch\":{},\
                 \"stale_epoch\":{},\"orphaned\":{},\"garbage\":{}}}",
                r.epoch,
                r.ops_replayed,
                r.skipped_total,
                r.torn,
                r.checksum_mismatch,
                r.stale_epoch,
                r.orphaned,
                r.garbage
            )),
            None => s.push_str(",\"recovery\":null"),
        }
        // Flight-recorder state rides along: a health scrape is exactly
        // when an operator wants to know whether the rings hold a usable
        // last-moments record (and a static `{"rings":0,...}` under
        // `obs-off`).
        s.push_str(",\"flightrec\":");
        s.push_str(&atomfs_obs::flightrec::stats_json());
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DiskOp;

    #[test]
    fn first_try_success_needs_no_retry() {
        let c = HealthCounters::default();
        let r = RetryPolicy::default().run(&c, || Ok::<_, DiskError>(7));
        assert_eq!(r, Ok(7));
        assert_eq!(c.retries(), 0);
        assert_eq!(c.device_faults(), 0);
    }

    #[test]
    fn transient_errors_are_retried_until_success() {
        let c = HealthCounters::default();
        let mut left = 3;
        let r = RetryPolicy::default().run(&c, || {
            if left > 0 {
                left -= 1;
                Err(DiskError::Transient(DiskOp::Write))
            } else {
                Ok(42)
            }
        });
        assert_eq!(r, Ok(42));
        assert_eq!(c.retries(), 3);
        assert_eq!(c.device_faults(), 3);
    }

    #[test]
    fn attempts_are_bounded() {
        let c = HealthCounters::default();
        let mut calls = 0u32;
        let r = RetryPolicy::default().run(&c, || {
            calls += 1;
            Err::<(), _>(DiskError::Transient(DiskOp::Read))
        });
        assert_eq!(r, Err(DiskError::Transient(DiskOp::Read)));
        assert_eq!(calls, RetryPolicy::default().max_attempts);
    }

    #[test]
    fn virtual_budget_limits_attempts_before_the_count_does() {
        let c = HealthCounters::default();
        let policy = RetryPolicy {
            max_attempts: 100,
            backoff_base: 1,
            backoff_budget: 4, // 1 + 2 = 3 ok, +4 = 7 > 4 → stop at 3 retries
            jitter_seed: 0,
        };
        let mut calls = 0u32;
        let _ = policy.run(&c, || {
            calls += 1;
            Err::<(), _>(DiskError::Transient(DiskOp::Flush))
        });
        assert!(calls < 100, "budget never kicked in ({calls} calls)");
    }

    #[test]
    fn permanent_failure_is_not_retried() {
        let c = HealthCounters::default();
        let mut calls = 0u32;
        let r = RetryPolicy::default().run(&c, || {
            calls += 1;
            Err::<(), _>(DiskError::Gone)
        });
        assert_eq!(r, Err(DiskError::Gone));
        assert_eq!(calls, 1);
        assert_eq!(c.retries(), 0);
    }

    #[test]
    fn no_retries_policy_fails_immediately() {
        let c = HealthCounters::default();
        let mut calls = 0u32;
        let _ = RetryPolicy::no_retries().run(&c, || {
            calls += 1;
            Err::<(), _>(DiskError::Transient(DiskOp::Write))
        });
        assert_eq!(calls, 1);
    }

    #[test]
    fn unseeded_backoff_is_exactly_exponential() {
        let p = RetryPolicy::default();
        for attempt in 1..=6u32 {
            assert_eq!(p.backoff_wait(attempt), 1u64 << (attempt - 1));
        }
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let p = RetryPolicy::default().with_jitter(0xABCD);
        let q = RetryPolicy::default().with_jitter(0xABCD);
        for attempt in 1..=10u32 {
            let base = 1u64 << (attempt - 1);
            let w = p.backoff_wait(attempt);
            assert_eq!(w, q.backoff_wait(attempt), "same seed, same schedule");
            assert!(w >= base && w <= base + base / 2, "jitter stays in [0, base/2]");
        }
    }

    #[test]
    fn reseeded_policies_desynchronize() {
        let base = RetryPolicy::default().with_jitter(7);
        let a = base.reseeded(0);
        let b = base.reseeded(1);
        assert_ne!(a.jitter_seed, b.jitter_seed);
        assert!(
            (2..=10u32).any(|n| a.backoff_wait(n) != b.backoff_wait(n)),
            "sibling schedules should diverge somewhere"
        );
        // Reseeding an unjittered policy is the identity: determinism of
        // the exact exponential waits is preserved.
        assert_eq!(RetryPolicy::default().reseeded(3), RetryPolicy::default());
    }

    #[test]
    fn health_predicates() {
        assert!(!Health::Healthy.is_degraded());
        assert!(Health::Degraded {
            cause: DiskError::Gone,
            failed_at_seq: 3
        }
        .is_degraded());
    }
}
