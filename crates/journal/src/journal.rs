//! The append-only operation journal.
//!
//! Records are packed back-to-back into a byte stream laid over the
//! disk's sectors. Appends buffer into the current tail sector (which is
//! rewritten as it fills — write amplification traded for simplicity);
//! [`Journal::commit`] issues the flush barrier that makes everything
//! appended so far durable. [`recover`] scans from sector zero and stops
//! at the first byte position that does not parse as a checksummed
//! record — everything before it is a *prefix* of the appended history,
//! which is the property the crash-consistency tests assert.
//!
//! The writer talks to storage through the fallible [`BlockDevice`]
//! trait: transient errors are absorbed per sector operation by a
//! [`RetryPolicy`] (virtual-time backoff, no sleeping), and an exhausted
//! policy surfaces as `Err(DiskError)` from [`Journal::append`] /
//! [`Journal::commit`] so the mount above can degrade to read-only.
//! Recovery additionally runs a *scrub* past the valid prefix,
//! classifying each unusable record (torn / checksum mismatch / stale
//! epoch / orphaned / garbage) into [`Recovered::skipped`] instead of
//! silently ending the scan.

use std::sync::Arc;

use atomfs_trace::MicroOp;

use crate::device::{BlockDevice, Disk, DiskError, Sector, SECTOR_SIZE};
use crate::health::{HealthCounters, RetryPolicy};
use crate::wire::{decode_record, encode_record};

/// Writer half of the journal.
pub struct Journal {
    disk: Arc<dyn BlockDevice>,
    /// Log generation this writer appends under.
    epoch: u64,
    /// Next free byte offset in the log's byte stream.
    pos: u64,
    /// Next record sequence number.
    seq: u64,
    /// In-memory image of the sector `pos` points into, so appends never
    /// read the device back. `None` until first touch when resuming an
    /// existing log (the tail sector's earlier bytes live on the device).
    tail: Option<Sector>,
    policy: RetryPolicy,
    counters: Arc<HealthCounters>,
}

impl Journal {
    /// Start a fresh journal at byte 0 of `device`, under epoch 1.
    pub fn create(device: Arc<dyn BlockDevice>) -> Self {
        Self::create_epoch(device, 1)
    }

    /// Start a fresh journal generation at byte 0. The epoch must exceed
    /// every previously used epoch on this disk so stale records from the
    /// overwritten generation can never parse as part of the new log.
    pub fn create_epoch(device: Arc<dyn BlockDevice>, epoch: u64) -> Self {
        Self::create_with(device, epoch, RetryPolicy::default())
    }

    /// [`Journal::create_epoch`] with an explicit retry policy.
    pub fn create_with(device: Arc<dyn BlockDevice>, epoch: u64, policy: RetryPolicy) -> Self {
        Journal {
            disk: device,
            epoch,
            pos: 0,
            seq: 0,
            tail: Some([0u8; SECTOR_SIZE]),
            policy,
            counters: Arc::new(HealthCounters::default()),
        }
    }

    /// Continue an existing journal after [`recover`]: append after the
    /// last valid record, under the same epoch.
    pub fn resume(device: Arc<dyn BlockDevice>, recovered: &Recovered) -> Self {
        Journal {
            disk: device,
            epoch: recovered.epoch,
            pos: recovered.end_pos,
            seq: recovered.batches.len() as u64,
            tail: None,
            policy: RetryPolicy::default(),
            counters: Arc::new(HealthCounters::default()),
        }
    }

    /// The epoch this writer appends under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes appended so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.seq
    }

    /// The fault/retry counters this writer charges.
    pub fn counters(&self) -> Arc<HealthCounters> {
        Arc::clone(&self.counters)
    }

    /// Append one batch of operations as a record (volatile until
    /// [`Journal::commit`]). Returns the record's sequence number, or the
    /// device error that defeated the retry policy — in which case the
    /// sequence number and log position do *not* advance, so the caller
    /// can degrade without the log state drifting.
    pub fn append(&mut self, ops: &[MicroOp]) -> Result<u64, DiskError> {
        let rec = encode_record(self.epoch, self.seq, ops);
        self.write_bytes(&rec)?;
        let seq = self.seq;
        self.seq += 1;
        Ok(seq)
    }

    /// Flush barrier: everything appended so far becomes durable.
    pub fn commit(&self) -> Result<(), DiskError> {
        let disk = &*self.disk;
        self.policy.run(&self.counters, || disk.flush())
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), DiskError> {
        // Work on a copy of the tail image: on error nothing advances
        // (position, sequence, or cache), so a retried append re-runs
        // from identical state.
        let mut tail = self.tail;
        let mut written = 0usize;
        while written < bytes.len() {
            let lba = ((self.pos as usize + written) / SECTOR_SIZE) as u64;
            let off = (self.pos as usize + written) % SECTOR_SIZE;
            let chunk = (SECTOR_SIZE - off).min(bytes.len() - written);
            let disk = &*self.disk;
            let mut sector: Sector = if off == 0 {
                // Fresh sector: bytes past the stream tail are zeros,
                // which can never decode as a record.
                [0u8; SECTOR_SIZE]
            } else {
                match tail {
                    Some(s) => s,
                    // Resuming an existing log: fetch the partial tail
                    // sector once; every later append hits the cache.
                    None => self.policy.run(&self.counters, || disk.read(lba))?,
                }
            };
            sector[off..off + chunk].copy_from_slice(&bytes[written..written + chunk]);
            // Each sector write individually rides out transient errors.
            self.policy
                .run(&self.counters, || disk.write(lba, &sector))?;
            tail = Some(sector);
            written += chunk;
        }
        self.pos += bytes.len() as u64;
        self.tail = tail;
        Ok(())
    }
}

/// Why the recovery scrub refused a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordClass {
    /// The record frame is intact but its tail reads as zeroes: a write
    /// that persisted only a prefix (torn by a crash or a faulty drive).
    Torn,
    /// The record frame is intact but the checksum disagrees: silent
    /// corruption of durable bytes (bit rot).
    ChecksumMismatch,
    /// A validly checksummed record from an older, overwritten log
    /// generation showing through past the current generation's end.
    StaleEpoch,
    /// A validly checksummed record of the current generation stranded
    /// past a corruption hole — unusable because the history it extends
    /// is incomplete.
    Orphaned,
    /// Bytes that are not a record frame at all; the scrub cannot size
    /// them and must stop.
    Garbage,
}

/// One record the recovery scrub skipped, with where and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkippedRecord {
    /// Byte offset of the record frame in the log stream (relative to the
    /// shard's region base for sharded logs).
    pub offset: u64,
    /// Why it was skipped.
    pub class: RecordClass,
    /// Frame length in bytes (0 when the frame could not be sized).
    pub len: usize,
    /// Which shard's scrub reported it (always 0 for the single-stream
    /// journal).
    pub shard: u32,
}

/// Per-class totals of everything a scrub classified — including
/// records past the itemization cap. The itemized [`SkippedRecord`]
/// list is bounded evidence; these counters are the complete census, so
/// a noisy region cannot silently undercount its damage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SkipTotals {
    /// Everything the scrub refused.
    pub total: u64,
    /// Frame intact, tail zeroed (torn write).
    pub torn: u64,
    /// Frame intact, checksum mismatch (bit rot).
    pub checksum_mismatch: u64,
    /// Valid record of an older, overwritten generation.
    pub stale_epoch: u64,
    /// Valid current-generation record stranded past a hole.
    pub orphaned: u64,
    /// Unframeable bytes (the scan stops there).
    pub garbage: u64,
}

impl SkipTotals {
    /// Count one classified record.
    pub fn count(&mut self, class: RecordClass) {
        self.total += 1;
        match class {
            RecordClass::Torn => self.torn += 1,
            RecordClass::ChecksumMismatch => self.checksum_mismatch += 1,
            RecordClass::StaleEpoch => self.stale_epoch += 1,
            RecordClass::Orphaned => self.orphaned += 1,
            RecordClass::Garbage => self.garbage += 1,
        }
    }

    /// Fold another census in (summing per-shard totals).
    pub fn merge(&mut self, other: &SkipTotals) {
        self.total += other.total;
        self.torn += other.torn;
        self.checksum_mismatch += other.checksum_mismatch;
        self.stale_epoch += other.stale_epoch;
        self.orphaned += other.orphaned;
        self.garbage += other.garbage;
    }
}

/// The result of scanning a disk.
#[derive(Debug)]
pub struct Recovered {
    /// The log generation the records belong to (1 for a never-
    /// checkpointed disk, even when empty).
    pub epoch: u64,
    /// Complete record batches, in append order.
    pub batches: Vec<Vec<MicroOp>>,
    /// Byte offset just past the last valid record.
    pub end_pos: u64,
    /// Records past the valid prefix that the scrub classified and
    /// skipped (empty when the log simply ends cleanly). Itemization is
    /// capped (see [`DEFAULT_MAX_SKIPPED`]); [`Recovered::skip_totals`]
    /// keeps counting past the cap.
    pub skipped: Vec<SkippedRecord>,
    /// Complete per-class census of the scrub, cap-independent.
    pub skip_totals: SkipTotals,
}

impl Recovered {
    /// All recovered operations flattened in order.
    pub fn ops(&self) -> impl Iterator<Item = &MicroOp> {
        self.batches.iter().flatten()
    }

    /// Replay the recovered history into an abstract file system state.
    pub fn replay(&self) -> Result<crlh::FsState, crlh::state::StateError> {
        let mut state = crlh::FsState::new();
        for op in self.ops() {
            state.apply_micro(op)?;
        }
        Ok(state)
    }
}

/// Largest payload a recovery scan will trust; garbage that happens to
/// carry the magic bytes cannot make the scanner allocate unboundedly.
/// Shared with the sharded scanner in [`crate::recovery`].
pub(crate) const MAX_PAYLOAD: usize = 1 << 26;

/// Default bound on how many records a scrub will classify past the
/// valid prefix (a bounded report, not a full forensic pass). The limit
/// is *per scanned stream*: every shard of a sharded log gets its own
/// budget, so one noisy shard cannot evict another shard's skip
/// evidence. Override per call with [`recover_with_limit`] or per shard
/// via `ShardConfig::max_skipped`.
pub const DEFAULT_MAX_SKIPPED: usize = 64;

/// Header bytes: magic(4) + epoch(8) + seq(8) + payload_len(4).
const HEADER: usize = 24;

fn ensure(disk: &Disk, bytes: &mut Vec<u8>, upto: usize) {
    while bytes.len() < upto {
        let lba = (bytes.len() / SECTOR_SIZE) as u64;
        bytes.extend_from_slice(&disk.read(lba));
    }
}

/// Scan `disk` from sector zero, returning every complete record up to
/// the first corruption/torn write/end of log, then scrub past that
/// point to classify what was left behind (see [`Recovered::skipped`]).
///
/// Recovery reads the raw [`Disk`] rather than a fallible device: it
/// models a fresh power session of the controller — the previous
/// session's fault plan died with the crash, while corruption that
/// session left on the platter is exactly what the scrub reports.
pub fn recover(disk: &Disk) -> Recovered {
    recover_with_limit(disk, DEFAULT_MAX_SKIPPED)
}

/// [`recover`] with an explicit bound on scrub itemization.
pub fn recover_with_limit(disk: &Disk, max_skipped: usize) -> Recovered {
    let mut bytes: Vec<u8> = Vec::new();
    let mut batches = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 0u64;
    let mut log_epoch: Option<u64> = None;
    loop {
        ensure(disk, &mut bytes, pos + HEADER);
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
        if magic != crate::wire::MAGIC {
            break;
        }
        let payload_len =
            u32::from_le_bytes(bytes[pos + HEADER - 4..pos + HEADER].try_into().expect("4"))
                as usize;
        if payload_len > MAX_PAYLOAD {
            break;
        }
        let total = HEADER + payload_len + 8;
        ensure(disk, &mut bytes, pos + total);
        match decode_record(&bytes[pos..pos + total]) {
            Some((epoch, seq, ops, len))
                if seq == expected_seq
                    && len == total
                    && log_epoch.map(|e| e == epoch).unwrap_or(true) =>
            {
                // The first record fixes the log's epoch; a stale record
                // from an older, overwritten generation ends the scan.
                log_epoch = Some(epoch);
                batches.push(ops);
                pos += len;
                expected_seq += 1;
            }
            _ => break,
        }
    }
    let (skipped, skip_totals) = scrub(disk, &mut bytes, pos, log_epoch, max_skipped);
    Recovered {
        epoch: log_epoch.unwrap_or(1),
        batches,
        end_pos: pos as u64,
        skipped,
        skip_totals,
    }
}

/// Classify the records (if any) past the valid prefix at `pos`. The
/// itemized list is capped at `max_skipped` entries, but classification
/// continues to the end of the debris so the returned totals are a
/// complete census (the walk is bounded by the log's own framing: it
/// stops at zeroed space or the first unsizeable bytes).
fn scrub(
    disk: &Disk,
    bytes: &mut Vec<u8>,
    mut pos: usize,
    log_epoch: Option<u64>,
    max_skipped: usize,
) -> (Vec<SkippedRecord>, SkipTotals) {
    let mut skipped = Vec::new();
    let mut totals = SkipTotals::default();
    let mut note = |rec: SkippedRecord, skipped: &mut Vec<SkippedRecord>| {
        totals.count(rec.class);
        if skipped.len() < max_skipped {
            skipped.push(rec);
        }
    };
    loop {
        ensure(disk, bytes, pos + HEADER);
        let header = &bytes[pos..pos + HEADER];
        if header.iter().all(|&b| b == 0) {
            // Never-written space: the clean end of the log.
            break;
        }
        let magic = u32::from_le_bytes(header[..4].try_into().expect("4"));
        let payload_len = u32::from_le_bytes(header[HEADER - 4..].try_into().expect("4")) as usize;
        if magic != crate::wire::MAGIC || payload_len > MAX_PAYLOAD {
            // Not a frame: unsizeable, so the scrub cannot step past it.
            note(
                SkippedRecord {
                    offset: pos as u64,
                    class: RecordClass::Garbage,
                    len: 0,
                    shard: 0,
                },
                &mut skipped,
            );
            break;
        }
        let total = HEADER + payload_len + 8;
        ensure(disk, bytes, pos + total);
        let frame = &bytes[pos..pos + total];
        let class = match decode_record(frame) {
            Some((epoch, _, _, _)) if log_epoch.map(|e| e != epoch).unwrap_or(false) => {
                RecordClass::StaleEpoch
            }
            // Valid record of this generation, but the history between
            // the prefix and here has a hole.
            Some(_) => RecordClass::Orphaned,
            None => {
                // A torn write persists a prefix of the frame; the rest
                // reads as whatever was there before — zeroes, in the
                // append-only region past the tail. A frame whose last
                // bytes are zero therefore tore; a frame that is fully
                // populated but fails its checksum was flipped.
                if frame[total - 8..].iter().all(|&b| b == 0) {
                    RecordClass::Torn
                } else {
                    RecordClass::ChecksumMismatch
                }
            }
        };
        note(
            SkippedRecord {
                offset: pos as u64,
                class,
                len: total,
                shard: 0,
            },
            &mut skipped,
        );
        pos += total;
    }
    (skipped, totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs_vfs::FileType;

    fn op(i: u64) -> MicroOp {
        MicroOp::Create {
            ino: 100 + i,
            ftype: FileType::File,
        }
    }

    #[test]
    fn append_commit_recover_roundtrip() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        for i in 0..20 {
            j.append(&[op(i), op(1000 + i)]).unwrap();
        }
        j.commit().unwrap();
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 20);
        assert_eq!(r.ops().count(), 40);
        assert_eq!(r.end_pos, j.position());
        assert!(r.skipped.is_empty(), "clean log has nothing to scrub");
    }

    #[test]
    fn clean_crash_recovers_committed_prefix() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        for i in 0..10 {
            j.append(&[op(i)]).unwrap();
        }
        j.commit().unwrap();
        for i in 10..15 {
            j.append(&[op(i)]).unwrap();
        }
        // Power cut: the five uncommitted records vanish.
        disk.crash(|_| false);
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 10);
    }

    #[test]
    fn adversarial_crash_still_yields_a_prefix() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        for i in 0..30 {
            j.append(&[op(i)]).unwrap();
        }
        // The drive persisted a random-looking subset of queued sector
        // writes; recovery must still return a clean prefix.
        disk.crash(|i| i % 3 == 0);
        let r = recover(&disk);
        assert!(r.batches.len() <= 30);
        for (i, batch) in r.batches.iter().enumerate() {
            assert_eq!(batch[0], op(i as u64), "prefix property broken at {i}");
        }
    }

    #[test]
    fn resume_appends_after_recovery() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        j.append(&[op(0)]).unwrap();
        j.commit().unwrap();
        let r = recover(&disk);
        let mut j2 = Journal::resume(Arc::clone(&disk) as Arc<dyn BlockDevice>, &r);
        j2.append(&[op(1)]).unwrap();
        j2.commit().unwrap();
        let r2 = recover(&disk);
        assert_eq!(r2.batches.len(), 2);
        assert_eq!(r2.batches[1][0], op(1));
    }

    #[test]
    fn replay_builds_state() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        j.append(&[
            MicroOp::Create {
                ino: 2,
                ftype: FileType::Dir,
            },
            MicroOp::Ins {
                parent: atomfs_trace::ROOT_INUM,
                name: "d".into(),
                child: 2,
            },
        ])
        .unwrap();
        j.commit().unwrap();
        let state = recover(&disk).replay().unwrap();
        let (trail, err) = state.resolve(&["d".to_string()]);
        assert!(err.is_none());
        assert_eq!(trail.last(), Some(&2));
    }

    #[test]
    fn empty_disk_recovers_empty() {
        let disk = Disk::new();
        let r = recover(&disk);
        assert!(r.batches.is_empty());
        assert_eq!(r.end_pos, 0);
        assert!(r.skipped.is_empty());
    }

    /// Writes and flushes `n` single-op records, returning the disk and
    /// the byte offset of each record frame.
    fn committed_log(n: u64) -> (Arc<Disk>, Vec<u64>) {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        let mut offsets = Vec::new();
        for i in 0..n {
            offsets.push(j.position());
            j.append(&[op(i)]).unwrap();
        }
        j.commit().unwrap();
        (disk, offsets)
    }

    #[test]
    fn scrub_classifies_a_bit_flip_as_checksum_mismatch() {
        let (disk, offsets) = committed_log(5);
        // Flip one payload bit of record 3 (the payload of a one-op
        // record spans frame bytes 24..38, so +30 is inside it).
        let abs = offsets[3] as usize + 30;
        disk.corrupt_durable((abs / SECTOR_SIZE) as u64, abs % SECTOR_SIZE, 0x10);
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 3, "prefix stops before the flipped record");
        assert_eq!(r.skipped[0].offset, offsets[3]);
        assert_eq!(r.skipped[0].class, RecordClass::ChecksumMismatch);
        // Record 4 is intact but stranded past the hole.
        assert_eq!(r.skipped[1].class, RecordClass::Orphaned);
        assert_eq!(r.skipped[1].offset, offsets[4]);
    }

    #[test]
    fn scrub_classifies_a_zeroed_tail_as_torn() {
        let (disk, offsets) = committed_log(3);
        // Zero the trailing checksum bytes of the final record: the shape
        // a partially-persisted append leaves behind.
        let r0 = recover(&disk);
        let end = r0.end_pos as usize;
        for byte in end - 8..end {
            let lba = (byte / SECTOR_SIZE) as u64;
            let cur = Disk::read(&disk, lba)[byte % SECTOR_SIZE];
            disk.corrupt_durable(lba, byte % SECTOR_SIZE, cur); // XOR x with x → 0
        }
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 2);
        assert_eq!(r.skipped.len(), 1);
        assert_eq!(r.skipped[0].class, RecordClass::Torn);
        assert_eq!(r.skipped[0].offset, offsets[2]);
    }

    #[test]
    fn scrub_classifies_non_frame_bytes_as_garbage() {
        let (disk, _) = committed_log(2);
        let r0 = recover(&disk);
        // Stamp junk (not MAGIC) right past the valid prefix.
        let end = r0.end_pos as usize;
        let lba = (end / SECTOR_SIZE) as u64;
        let cur = Disk::read(&disk, lba)[end % SECTOR_SIZE];
        disk.corrupt_durable(lba, end % SECTOR_SIZE, cur ^ 0xDE);
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 2, "valid prefix is untouched");
        assert_eq!(r.skipped.len(), 1);
        assert_eq!(r.skipped[0].class, RecordClass::Garbage);
        assert_eq!(r.skipped[0].len, 0);
    }

    #[test]
    fn scrub_is_bounded() {
        let (disk, offsets) = committed_log(DEFAULT_MAX_SKIPPED as u64 + 40);
        // Corrupt record 0: everything after it is scrubbed, not replayed.
        disk.corrupt_durable(0, offsets[0] as usize + 30, 0x01);
        let r = recover(&disk);
        assert!(r.batches.is_empty());
        assert_eq!(r.skipped.len(), DEFAULT_MAX_SKIPPED);
        // The itemized list stops at the cap, but the census keeps
        // counting to the end of the debris.
        assert_eq!(r.skip_totals.total, DEFAULT_MAX_SKIPPED as u64 + 40);
        assert_eq!(r.skip_totals.checksum_mismatch, 1, "the flipped record");
        assert_eq!(
            r.skip_totals.orphaned,
            DEFAULT_MAX_SKIPPED as u64 + 39,
            "everything stranded past it, including past the cap"
        );
        assert_eq!(
            r.skip_totals.torn
                + r.skip_totals.checksum_mismatch
                + r.skip_totals.stale_epoch
                + r.skip_totals.orphaned
                + r.skip_totals.garbage,
            r.skip_totals.total,
            "per-class counts partition the total"
        );
    }

    #[test]
    fn scrub_limit_is_configurable() {
        let (disk, offsets) = committed_log(30);
        disk.corrupt_durable(0, offsets[0] as usize + 30, 0x01);
        let r = recover_with_limit(&disk, 5);
        assert!(r.batches.is_empty());
        assert_eq!(r.skipped.len(), 5, "explicit limit bounds the itemization");
        assert_eq!(r.skip_totals.total, 30, "the census ignores the cap");
        let r = recover_with_limit(&disk, 1000);
        assert_eq!(r.skipped.len(), 30, "a loose limit itemizes everything");
        assert_eq!(r.skip_totals.total, 30, "census and itemization agree under the cap");
    }

    #[test]
    fn transient_faults_are_invisible_when_retries_absorb_them() {
        use crate::faults::{FaultPlan, FaultyDisk};
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(11).with_transient(8_000, 8_000, 8_000),
        ));
        let mut j = Journal::create_with(dev, 1, RetryPolicy::default());
        for i in 0..50 {
            j.append(&[op(i)]).unwrap();
        }
        j.commit().unwrap();
        assert!(
            j.counters().retries() > 0,
            "a 12% fault rate over 50 records should have needed retries"
        );
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 50);
    }

    #[test]
    fn permanent_failure_surfaces_and_freezes_log_state() {
        use crate::faults::{FaultPlan, FaultyDisk};
        let dev = Arc::new(FaultyDisk::new(
            Arc::new(Disk::new()),
            FaultPlan::none(0).with_permanent_failure_after(8),
        ));
        let mut j = Journal::create(dev);
        let mut failed_at = None;
        for i in 0..100 {
            let before = (j.next_seq(), j.position());
            match j.append(&[op(i)]) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e, DiskError::Gone);
                    assert_eq!((j.next_seq(), j.position()), before, "state must not drift");
                    failed_at = Some(i);
                    break;
                }
            }
        }
        assert!(failed_at.is_some(), "the device never died");
        assert_eq!(j.commit(), Err(DiskError::Gone));
    }
}
