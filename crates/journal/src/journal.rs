//! The append-only operation journal.
//!
//! Records are packed back-to-back into a byte stream laid over the
//! disk's sectors. Appends buffer into the current tail sector (which is
//! rewritten as it fills — write amplification traded for simplicity);
//! [`Journal::commit`] issues the flush barrier that makes everything
//! appended so far durable. [`recover`] scans from sector zero and stops
//! at the first byte position that does not parse as a checksummed
//! record — everything before it is a *prefix* of the appended history,
//! which is the property the crash-consistency tests assert.

use std::sync::Arc;

use atomfs_trace::MicroOp;

use crate::device::{Disk, Sector, SECTOR_SIZE};
use crate::wire::{decode_record, encode_record};

/// Writer half of the journal.
pub struct Journal {
    disk: Arc<Disk>,
    /// Log generation this writer appends under.
    epoch: u64,
    /// Next free byte offset in the log's byte stream.
    pos: u64,
    /// Next record sequence number.
    seq: u64,
}

impl Journal {
    /// Start a fresh journal at byte 0 of `disk`, under epoch 1.
    pub fn create(disk: Arc<Disk>) -> Self {
        Self::create_epoch(disk, 1)
    }

    /// Start a fresh journal generation at byte 0. The epoch must exceed
    /// every previously used epoch on this disk so stale records from the
    /// overwritten generation can never parse as part of the new log.
    pub fn create_epoch(disk: Arc<Disk>, epoch: u64) -> Self {
        Journal {
            disk,
            epoch,
            pos: 0,
            seq: 0,
        }
    }

    /// Continue an existing journal after [`recover`]: append after the
    /// last valid record, under the same epoch.
    pub fn resume(disk: Arc<Disk>, recovered: &Recovered) -> Self {
        Journal {
            disk,
            epoch: recovered.epoch,
            pos: recovered.end_pos,
            seq: recovered.batches.len() as u64,
        }
    }

    /// The epoch this writer appends under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Bytes appended so far.
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Append one batch of operations as a record (volatile until
    /// [`Journal::commit`]). Returns the record's sequence number.
    pub fn append(&mut self, ops: &[MicroOp]) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        let rec = encode_record(self.epoch, seq, ops);
        self.write_bytes(&rec);
        seq
    }

    /// Flush barrier: everything appended so far becomes durable.
    pub fn commit(&self) {
        self.disk.flush();
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        let mut written = 0usize;
        while written < bytes.len() {
            let lba = (self.pos as usize + written) / SECTOR_SIZE;
            let off = (self.pos as usize + written) % SECTOR_SIZE;
            let chunk = (SECTOR_SIZE - off).min(bytes.len() - written);
            // Read-modify-write the sector (the tail sector is partial).
            let mut sector: Sector = self.disk.read(lba as u64);
            sector[off..off + chunk].copy_from_slice(&bytes[written..written + chunk]);
            self.disk.write(lba as u64, &sector);
            written += chunk;
        }
        self.pos += bytes.len() as u64;
    }
}

/// The result of scanning a disk.
#[derive(Debug)]
pub struct Recovered {
    /// The log generation the records belong to (1 for a never-
    /// checkpointed disk, even when empty).
    pub epoch: u64,
    /// Complete record batches, in append order.
    pub batches: Vec<Vec<MicroOp>>,
    /// Byte offset just past the last valid record.
    pub end_pos: u64,
}

impl Recovered {
    /// All recovered operations flattened in order.
    pub fn ops(&self) -> impl Iterator<Item = &MicroOp> {
        self.batches.iter().flatten()
    }

    /// Replay the recovered history into an abstract file system state.
    pub fn replay(&self) -> Result<crlh::FsState, crlh::state::StateError> {
        let mut state = crlh::FsState::new();
        for op in self.ops() {
            state.apply_micro(op)?;
        }
        Ok(state)
    }
}

/// Largest payload a recovery scan will trust; garbage that happens to
/// carry the magic bytes cannot make the scanner allocate unboundedly.
const MAX_PAYLOAD: usize = 1 << 26;

/// Scan `disk` from sector zero, returning every complete record up to
/// the first corruption/torn write/end of log.
pub fn recover(disk: &Disk) -> Recovered {
    fn ensure(disk: &Disk, bytes: &mut Vec<u8>, upto: usize) {
        while bytes.len() < upto {
            let lba = (bytes.len() / SECTOR_SIZE) as u64;
            bytes.extend_from_slice(&disk.read(lba));
        }
    }
    let mut bytes: Vec<u8> = Vec::new();
    let mut batches = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 0u64;
    let mut log_epoch: Option<u64> = None;
    loop {
        // Header: magic(4) + epoch(8) + seq(8) + payload_len(4).
        ensure(disk, &mut bytes, pos + 24);
        let magic = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4"));
        if magic != crate::wire::MAGIC {
            break;
        }
        let payload_len =
            u32::from_le_bytes(bytes[pos + 20..pos + 24].try_into().expect("4")) as usize;
        if payload_len > MAX_PAYLOAD {
            break;
        }
        let total = 24 + payload_len + 8;
        ensure(disk, &mut bytes, pos + total);
        match decode_record(&bytes[pos..pos + total]) {
            Some((epoch, seq, ops, len))
                if seq == expected_seq
                    && len == total
                    && log_epoch.map(|e| e == epoch).unwrap_or(true) =>
            {
                // The first record fixes the log's epoch; a stale record
                // from an older, overwritten generation ends the scan.
                log_epoch = Some(epoch);
                batches.push(ops);
                pos += len;
                expected_seq += 1;
            }
            _ => break,
        }
    }
    Recovered {
        epoch: log_epoch.unwrap_or(1),
        batches,
        end_pos: pos as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs_vfs::FileType;

    fn op(i: u64) -> MicroOp {
        MicroOp::Create {
            ino: 100 + i,
            ftype: FileType::File,
        }
    }

    #[test]
    fn append_commit_recover_roundtrip() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk));
        for i in 0..20 {
            j.append(&[op(i), op(1000 + i)]);
        }
        j.commit();
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 20);
        assert_eq!(r.ops().count(), 40);
        assert_eq!(r.end_pos, j.position());
    }

    #[test]
    fn clean_crash_recovers_committed_prefix() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk));
        for i in 0..10 {
            j.append(&[op(i)]);
        }
        j.commit();
        for i in 10..15 {
            j.append(&[op(i)]);
        }
        // Power cut: the five uncommitted records vanish.
        disk.crash(|_| false);
        let r = recover(&disk);
        assert_eq!(r.batches.len(), 10);
    }

    #[test]
    fn adversarial_crash_still_yields_a_prefix() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk));
        for i in 0..30 {
            j.append(&[op(i)]);
        }
        // The drive persisted a random-looking subset of queued sector
        // writes; recovery must still return a clean prefix.
        disk.crash(|i| i % 3 == 0);
        let r = recover(&disk);
        assert!(r.batches.len() <= 30);
        for (i, batch) in r.batches.iter().enumerate() {
            assert_eq!(batch[0], op(i as u64), "prefix property broken at {i}");
        }
    }

    #[test]
    fn resume_appends_after_recovery() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk));
        j.append(&[op(0)]);
        j.commit();
        let r = recover(&disk);
        let mut j2 = Journal::resume(Arc::clone(&disk), &r);
        j2.append(&[op(1)]);
        j2.commit();
        let r2 = recover(&disk);
        assert_eq!(r2.batches.len(), 2);
        assert_eq!(r2.batches[1][0], op(1));
    }

    #[test]
    fn replay_builds_state() {
        let disk = Arc::new(Disk::new());
        let mut j = Journal::create(Arc::clone(&disk));
        j.append(&[
            MicroOp::Create {
                ino: 2,
                ftype: FileType::Dir,
            },
            MicroOp::Ins {
                parent: atomfs_trace::ROOT_INUM,
                name: "d".into(),
                child: 2,
            },
        ]);
        j.commit();
        let state = recover(&disk).replay().unwrap();
        let (trail, err) = state.resolve(&["d".to_string()]);
        assert!(err.is_none());
        assert_eq!(trail.last(), Some(&2));
    }

    #[test]
    fn empty_disk_recovers_empty() {
        let disk = Disk::new();
        let r = recover(&disk);
        assert!(r.batches.is_empty());
        assert_eq!(r.end_pos, 0);
    }
}
