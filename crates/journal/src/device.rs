//! A simulated block device with crash injection.
//!
//! Writes land in a volatile cache; [`Disk::flush`] makes everything
//! written so far durable; [`Disk::crash`] throws the volatile cache away
//! — optionally keeping a caller-chosen subset of unflushed sector
//! writes, modelling a drive that persisted some queued writes out of
//! order before power was lost (the adversarial reordering that journal
//! checksums exist to survive).
//!
//! The journal writes through the fallible [`BlockDevice`] trait rather
//! than `Disk` directly, so a [`crate::faults::FaultyDisk`] can sit in
//! between and inject errors; `Disk` itself is the perfect device whose
//! trait impl never fails.

use std::fmt;

use parking_lot::Mutex;

/// Which device operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskOp {
    /// A sector read.
    Read,
    /// A sector write.
    Write,
    /// A flush barrier.
    Flush,
}

/// Why a device operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskError {
    /// The operation failed this time but may succeed if retried
    /// (a bus hiccup, a recoverable media error).
    Transient(DiskOp),
    /// The device has failed permanently; every future operation fails.
    Gone,
}

impl DiskError {
    /// Whether retrying the operation can possibly succeed.
    pub fn is_transient(self) -> bool {
        matches!(self, DiskError::Transient(_))
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Transient(op) => write!(f, "transient {op:?} failure"),
            DiskError::Gone => write!(f, "device failed permanently"),
        }
    }
}

impl std::error::Error for DiskError {}

/// At the [`atomfs_vfs::FileSystem`] boundary every device error that
/// defeated the retry policy surfaces as `EIO`, like a kernel FS would
/// report an exhausted block-layer retry.
impl From<DiskError> for atomfs_vfs::FsError {
    fn from(_: DiskError) -> Self {
        atomfs_vfs::FsError::Io
    }
}

/// The fallible storage interface the journal writes through.
///
/// [`Disk`] implements it infallibly; [`crate::faults::FaultyDisk`]
/// implements it with seeded fault injection.
pub trait BlockDevice: Send + Sync {
    /// Read sector `lba` (unwritten sectors read as zeroes).
    fn read(&self, lba: u64) -> Result<Sector, DiskError>;
    /// Write sector `lba` into the volatile cache.
    fn write(&self, lba: u64, data: &Sector) -> Result<(), DiskError>;
    /// Write barrier: make everything written so far durable.
    fn flush(&self) -> Result<(), DiskError>;
}

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 512;

/// One sector's payload.
pub type Sector = [u8; SECTOR_SIZE];

/// Sectors per durable-store page (one allocation, one dirty bitmap).
const PAGE_SECTORS: usize = 64;

/// One page of durable sectors: a 32 KiB block plus a bitmap telling
/// written sectors apart from never-written (zero-reading) ones.
struct Page {
    written: u64,
    data: Box<[Sector; PAGE_SECTORS]>,
}

impl Page {
    fn zeroed() -> Self {
        Page {
            written: 0,
            data: Box::new([[0u8; SECTOR_SIZE]; PAGE_SECTORS]),
        }
    }
}

/// Store `data` as the durable contents of sector `lba`. Free function so
/// flush/crash can drain the volatile queue while holding the same state
/// borrow.
fn insert_durable(durable: &mut Vec<Option<Page>>, lba: u64, data: &Sector) {
    let (pi, si) = (lba as usize / PAGE_SECTORS, lba as usize % PAGE_SECTORS);
    if pi >= durable.len() {
        durable.resize_with(pi + 1, || None);
    }
    let page = durable[pi].get_or_insert_with(Page::zeroed);
    page.data[si] = *data;
    page.written |= 1 << si;
}

#[derive(Default)]
struct DiskState {
    /// Durable contents, paged by LBA. Flushing a sector into a page is
    /// an index plus a memcpy — this sits on the journal's group-commit
    /// barrier, where a hashed store's per-sector probe cost was the
    /// single largest slice of the commit.
    durable: Vec<Option<Page>>,
    /// Written but not yet flushed, in write order.
    volatile: Vec<(u64, Sector)>,
    writes: u64,
    flushes: u64,
}

impl DiskState {
    fn durable_read(&self, lba: u64) -> Option<Sector> {
        let (pi, si) = (lba as usize / PAGE_SECTORS, lba as usize % PAGE_SECTORS);
        let page = self.durable.get(pi)?.as_ref()?;
        if page.written & (1 << si) != 0 {
            Some(page.data[si])
        } else {
            None
        }
    }
}

/// The simulated device.
#[derive(Default)]
pub struct Disk {
    state: Mutex<DiskState>,
    /// Simulated cost of a non-empty flush barrier (zero by default).
    flush_latency: std::time::Duration,
}

impl Disk {
    /// A fresh, zeroed disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// A disk whose flush barriers take `latency` of wall time when any
    /// writes are queued (an empty barrier stays free, like a real
    /// drive acking a flush with nothing in its cache).
    ///
    /// The default device flushes in ~zero time, which no storage does:
    /// a write barrier on real hardware costs tens to hundreds of
    /// microseconds, and that latency is precisely what group commit
    /// exists to amortize. Benchmarks comparing commit strategies use
    /// this constructor so every layout pays the same realistic barrier
    /// price; correctness tests keep the free default.
    pub fn with_flush_latency(latency: std::time::Duration) -> Self {
        Disk {
            state: Mutex::default(),
            flush_latency: latency,
        }
    }

    /// Read sector `lba` (unwritten sectors read as zeroes), observing
    /// the volatile cache like a real drive would.
    pub fn read(&self, lba: u64) -> Sector {
        let st = self.state.lock();
        // The newest volatile write to this sector wins over durable data.
        if let Some((_, data)) = st.volatile.iter().rev().find(|(l, _)| *l == lba) {
            return *data;
        }
        st.durable_read(lba).unwrap_or([0u8; SECTOR_SIZE])
    }

    /// Write sector `lba` into the volatile cache.
    pub fn write(&self, lba: u64, data: &Sector) {
        let mut st = self.state.lock();
        st.volatile.push((lba, *data));
        st.writes += 1;
    }

    /// Make everything written so far durable (a write barrier + flush).
    pub fn flush(&self) {
        let drained = {
            let mut st = self.state.lock();
            let DiskState {
                durable, volatile, ..
            } = &mut *st;
            for (lba, data) in volatile.iter() {
                insert_durable(durable, *lba, data);
            }
            let drained = volatile.len();
            // Clear in place: the queue's capacity is reused by the next
            // burst of writes instead of being regrown from empty each
            // cycle.
            volatile.clear();
            st.flushes += 1;
            drained
        };
        // The simulated barrier latency runs outside the state lock, and
        // it sleeps rather than spins: the device is busy but the CPU is
        // not, exactly like a thread in io-wait. Writes issued while the
        // barrier is in flight queue up behind it (they stay volatile
        // until the *next* flush), like a real drive's cache accepting
        // writes while it drains.
        if drained > 0 && !self.flush_latency.is_zero() {
            std::thread::sleep(self.flush_latency);
        }
    }

    /// Crash: drop the volatile cache, except that for each queued write
    /// `keep(i)` decides whether the drive happened to persist it anyway
    /// (indices are in write order). Pass `|_| false` for a clean
    /// power-cut, or a random predicate for adversarial reordering.
    pub fn crash(&self, mut keep: impl FnMut(usize) -> bool) {
        let mut st = self.state.lock();
        let DiskState {
            durable, volatile, ..
        } = &mut *st;
        for (i, (lba, data)) in volatile.iter().enumerate() {
            if keep(i) {
                insert_durable(durable, *lba, data);
            }
        }
        volatile.clear();
    }

    /// Crash, keeping exactly the queued writes whose target LBA
    /// satisfies `keep` — modelling a drive that persisted one region's
    /// queued writes (one flash channel, one platter zone) but not
    /// another's. This is how the sharded-journal tests land a rename's
    /// intent durably while its seal (queued for a different shard's
    /// region) is lost.
    pub fn crash_keep_lbas(&self, mut keep: impl FnMut(u64) -> bool) {
        let mut st = self.state.lock();
        let DiskState {
            durable, volatile, ..
        } = &mut *st;
        for (lba, data) in volatile.iter() {
            if keep(*lba) {
                insert_durable(durable, *lba, data);
            }
        }
        volatile.clear();
    }

    /// Total sector writes issued.
    pub fn write_count(&self) -> u64 {
        self.state.lock().writes
    }

    /// Total flush barriers issued.
    pub fn flush_count(&self) -> u64 {
        self.state.lock().flushes
    }

    /// Fault-injection hook: XOR `mask` into byte `byte` of the *durable*
    /// copy of sector `lba`, modelling silent media corruption (bit rot).
    /// Volatile (unflushed) writes of the sector are unaffected and still
    /// win on read, exactly like a real drive's cache would.
    pub fn corrupt_durable(&self, lba: u64, byte: usize, mask: u8) {
        let mut st = self.state.lock();
        let (pi, si) = (lba as usize / PAGE_SECTORS, lba as usize % PAGE_SECTORS);
        if pi >= st.durable.len() {
            st.durable.resize_with(pi + 1, || None);
        }
        let page = st.durable[pi].get_or_insert_with(Page::zeroed);
        page.written |= 1 << si;
        page.data[si][byte % SECTOR_SIZE] ^= mask;
    }

    /// The highest LBA that currently holds durable data, if any.
    pub fn max_durable_lba(&self) -> Option<u64> {
        let st = self.state.lock();
        for (pi, page) in st.durable.iter().enumerate().rev() {
            if let Some(page) = page {
                if page.written != 0 {
                    let top = 63 - page.written.leading_zeros() as usize;
                    return Some((pi * PAGE_SECTORS + top) as u64);
                }
            }
        }
        None
    }
}

/// The perfect device: every operation succeeds.
impl BlockDevice for Disk {
    fn read(&self, lba: u64) -> Result<Sector, DiskError> {
        Ok(Disk::read(self, lba))
    }
    fn write(&self, lba: u64, data: &Sector) -> Result<(), DiskError> {
        Disk::write(self, lba, data);
        Ok(())
    }
    fn flush(&self) -> Result<(), DiskError> {
        Disk::flush(self);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sect(b: u8) -> Sector {
        [b; SECTOR_SIZE]
    }

    #[test]
    fn read_your_writes_before_flush() {
        let d = Disk::new();
        d.write(3, &sect(7));
        assert_eq!(d.read(3), sect(7));
        assert_eq!(d.read(4), sect(0), "unwritten sectors are zero");
    }

    #[test]
    fn clean_crash_loses_unflushed() {
        let d = Disk::new();
        d.write(1, &sect(1));
        d.flush();
        d.write(2, &sect(2));
        d.crash(|_| false);
        assert_eq!(d.read(1), sect(1), "flushed data survives");
        assert_eq!(d.read(2), sect(0), "unflushed data is gone");
    }

    #[test]
    fn adversarial_crash_keeps_arbitrary_subset() {
        let d = Disk::new();
        d.write(1, &sect(1));
        d.write(2, &sect(2));
        d.write(3, &sect(3));
        // The drive persisted only the *middle* write before dying.
        d.crash(|i| i == 1);
        assert_eq!(d.read(1), sect(0));
        assert_eq!(d.read(2), sect(2));
        assert_eq!(d.read(3), sect(0));
    }

    #[test]
    fn newest_volatile_write_wins() {
        let d = Disk::new();
        d.write(5, &sect(1));
        d.write(5, &sect(2));
        assert_eq!(d.read(5), sect(2));
        d.flush();
        assert_eq!(d.read(5), sect(2));
    }

    #[test]
    fn corrupt_durable_flips_bits_silently() {
        let d = Disk::new();
        d.write(2, &sect(0xF0));
        d.flush();
        d.corrupt_durable(2, 10, 0x01);
        let mut expect = sect(0xF0);
        expect[10] ^= 0x01;
        assert_eq!(d.read(2), expect);
        assert_eq!(d.max_durable_lba(), Some(2));
    }

    #[test]
    fn block_device_impl_is_infallible() {
        let d = Disk::new();
        let dev: &dyn BlockDevice = &d;
        dev.write(1, &sect(9)).unwrap();
        assert_eq!(dev.read(1).unwrap(), sect(9));
        dev.flush().unwrap();
    }

    #[test]
    fn counters() {
        let d = Disk::new();
        d.write(0, &sect(0));
        d.write(1, &sect(0));
        d.flush();
        assert_eq!(d.write_count(), 2);
        assert_eq!(d.flush_count(), 1);
    }
}
