//! A simulated block device with crash injection.
//!
//! Writes land in a volatile cache; [`Disk::flush`] makes everything
//! written so far durable; [`Disk::crash`] throws the volatile cache away
//! — optionally keeping a caller-chosen subset of unflushed sector
//! writes, modelling a drive that persisted some queued writes out of
//! order before power was lost (the adversarial reordering that journal
//! checksums exist to survive).

use std::collections::HashMap;

use parking_lot::Mutex;

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 512;

/// One sector's payload.
pub type Sector = [u8; SECTOR_SIZE];

#[derive(Default)]
struct DiskState {
    /// Durable contents.
    durable: HashMap<u64, Sector>,
    /// Written but not yet flushed, in write order.
    volatile: Vec<(u64, Sector)>,
    writes: u64,
    flushes: u64,
}

/// The simulated device.
#[derive(Default)]
pub struct Disk {
    state: Mutex<DiskState>,
}

impl Disk {
    /// A fresh, zeroed disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read sector `lba` (unwritten sectors read as zeroes), observing
    /// the volatile cache like a real drive would.
    pub fn read(&self, lba: u64) -> Sector {
        let st = self.state.lock();
        // The newest volatile write to this sector wins over durable data.
        if let Some((_, data)) = st.volatile.iter().rev().find(|(l, _)| *l == lba) {
            return *data;
        }
        st.durable.get(&lba).copied().unwrap_or([0u8; SECTOR_SIZE])
    }

    /// Write sector `lba` into the volatile cache.
    pub fn write(&self, lba: u64, data: &Sector) {
        let mut st = self.state.lock();
        st.volatile.push((lba, *data));
        st.writes += 1;
    }

    /// Make everything written so far durable (a write barrier + flush).
    pub fn flush(&self) {
        let mut st = self.state.lock();
        let queued = std::mem::take(&mut st.volatile);
        for (lba, data) in queued {
            st.durable.insert(lba, data);
        }
        st.flushes += 1;
    }

    /// Crash: drop the volatile cache, except that for each queued write
    /// `keep(i)` decides whether the drive happened to persist it anyway
    /// (indices are in write order). Pass `|_| false` for a clean
    /// power-cut, or a random predicate for adversarial reordering.
    pub fn crash(&self, mut keep: impl FnMut(usize) -> bool) {
        let mut st = self.state.lock();
        let queued = std::mem::take(&mut st.volatile);
        for (i, (lba, data)) in queued.into_iter().enumerate() {
            if keep(i) {
                st.durable.insert(lba, data);
            }
        }
    }

    /// Total sector writes issued.
    pub fn write_count(&self) -> u64 {
        self.state.lock().writes
    }

    /// Total flush barriers issued.
    pub fn flush_count(&self) -> u64 {
        self.state.lock().flushes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sect(b: u8) -> Sector {
        [b; SECTOR_SIZE]
    }

    #[test]
    fn read_your_writes_before_flush() {
        let d = Disk::new();
        d.write(3, &sect(7));
        assert_eq!(d.read(3), sect(7));
        assert_eq!(d.read(4), sect(0), "unwritten sectors are zero");
    }

    #[test]
    fn clean_crash_loses_unflushed() {
        let d = Disk::new();
        d.write(1, &sect(1));
        d.flush();
        d.write(2, &sect(2));
        d.crash(|_| false);
        assert_eq!(d.read(1), sect(1), "flushed data survives");
        assert_eq!(d.read(2), sect(0), "unflushed data is gone");
    }

    #[test]
    fn adversarial_crash_keeps_arbitrary_subset() {
        let d = Disk::new();
        d.write(1, &sect(1));
        d.write(2, &sect(2));
        d.write(3, &sect(3));
        // The drive persisted only the *middle* write before dying.
        d.crash(|i| i == 1);
        assert_eq!(d.read(1), sect(0));
        assert_eq!(d.read(2), sect(2));
        assert_eq!(d.read(3), sect(0));
    }

    #[test]
    fn newest_volatile_write_wins() {
        let d = Disk::new();
        d.write(5, &sect(1));
        d.write(5, &sect(2));
        assert_eq!(d.read(5), sect(2));
        d.flush();
        assert_eq!(d.read(5), sect(2));
    }

    #[test]
    fn counters() {
        let d = Disk::new();
        d.write(0, &sect(0));
        d.write(1, &sect(0));
        d.flush();
        assert_eq!(d.write_count(), 2);
        assert_eq!(d.flush_count(), 1);
    }
}
