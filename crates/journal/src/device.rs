//! A simulated block device with crash injection.
//!
//! Writes land in a volatile cache; [`Disk::flush`] makes everything
//! written so far durable; [`Disk::crash`] throws the volatile cache away
//! — optionally keeping a caller-chosen subset of unflushed sector
//! writes, modelling a drive that persisted some queued writes out of
//! order before power was lost (the adversarial reordering that journal
//! checksums exist to survive).
//!
//! The journal writes through the fallible [`BlockDevice`] trait rather
//! than `Disk` directly, so a [`crate::faults::FaultyDisk`] can sit in
//! between and inject errors; `Disk` itself is the perfect device whose
//! trait impl never fails.

use std::collections::HashMap;
use std::fmt;

use parking_lot::Mutex;

/// Which device operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskOp {
    /// A sector read.
    Read,
    /// A sector write.
    Write,
    /// A flush barrier.
    Flush,
}

/// Why a device operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskError {
    /// The operation failed this time but may succeed if retried
    /// (a bus hiccup, a recoverable media error).
    Transient(DiskOp),
    /// The device has failed permanently; every future operation fails.
    Gone,
}

impl DiskError {
    /// Whether retrying the operation can possibly succeed.
    pub fn is_transient(self) -> bool {
        matches!(self, DiskError::Transient(_))
    }
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::Transient(op) => write!(f, "transient {op:?} failure"),
            DiskError::Gone => write!(f, "device failed permanently"),
        }
    }
}

impl std::error::Error for DiskError {}

/// At the [`atomfs_vfs::FileSystem`] boundary every device error that
/// defeated the retry policy surfaces as `EIO`, like a kernel FS would
/// report an exhausted block-layer retry.
impl From<DiskError> for atomfs_vfs::FsError {
    fn from(_: DiskError) -> Self {
        atomfs_vfs::FsError::Io
    }
}

/// The fallible storage interface the journal writes through.
///
/// [`Disk`] implements it infallibly; [`crate::faults::FaultyDisk`]
/// implements it with seeded fault injection.
pub trait BlockDevice: Send + Sync {
    /// Read sector `lba` (unwritten sectors read as zeroes).
    fn read(&self, lba: u64) -> Result<Sector, DiskError>;
    /// Write sector `lba` into the volatile cache.
    fn write(&self, lba: u64, data: &Sector) -> Result<(), DiskError>;
    /// Write barrier: make everything written so far durable.
    fn flush(&self) -> Result<(), DiskError>;
}

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 512;

/// One sector's payload.
pub type Sector = [u8; SECTOR_SIZE];

#[derive(Default)]
struct DiskState {
    /// Durable contents.
    durable: HashMap<u64, Sector>,
    /// Written but not yet flushed, in write order.
    volatile: Vec<(u64, Sector)>,
    writes: u64,
    flushes: u64,
}

/// The simulated device.
#[derive(Default)]
pub struct Disk {
    state: Mutex<DiskState>,
}

impl Disk {
    /// A fresh, zeroed disk.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read sector `lba` (unwritten sectors read as zeroes), observing
    /// the volatile cache like a real drive would.
    pub fn read(&self, lba: u64) -> Sector {
        let st = self.state.lock();
        // The newest volatile write to this sector wins over durable data.
        if let Some((_, data)) = st.volatile.iter().rev().find(|(l, _)| *l == lba) {
            return *data;
        }
        st.durable.get(&lba).copied().unwrap_or([0u8; SECTOR_SIZE])
    }

    /// Write sector `lba` into the volatile cache.
    pub fn write(&self, lba: u64, data: &Sector) {
        let mut st = self.state.lock();
        st.volatile.push((lba, *data));
        st.writes += 1;
    }

    /// Make everything written so far durable (a write barrier + flush).
    pub fn flush(&self) {
        let mut st = self.state.lock();
        let queued = std::mem::take(&mut st.volatile);
        for (lba, data) in queued {
            st.durable.insert(lba, data);
        }
        st.flushes += 1;
    }

    /// Crash: drop the volatile cache, except that for each queued write
    /// `keep(i)` decides whether the drive happened to persist it anyway
    /// (indices are in write order). Pass `|_| false` for a clean
    /// power-cut, or a random predicate for adversarial reordering.
    pub fn crash(&self, mut keep: impl FnMut(usize) -> bool) {
        let mut st = self.state.lock();
        let queued = std::mem::take(&mut st.volatile);
        for (i, (lba, data)) in queued.into_iter().enumerate() {
            if keep(i) {
                st.durable.insert(lba, data);
            }
        }
    }

    /// Total sector writes issued.
    pub fn write_count(&self) -> u64 {
        self.state.lock().writes
    }

    /// Total flush barriers issued.
    pub fn flush_count(&self) -> u64 {
        self.state.lock().flushes
    }

    /// Fault-injection hook: XOR `mask` into byte `byte` of the *durable*
    /// copy of sector `lba`, modelling silent media corruption (bit rot).
    /// Volatile (unflushed) writes of the sector are unaffected and still
    /// win on read, exactly like a real drive's cache would.
    pub fn corrupt_durable(&self, lba: u64, byte: usize, mask: u8) {
        let mut st = self.state.lock();
        let sector = st.durable.entry(lba).or_insert([0u8; SECTOR_SIZE]);
        sector[byte % SECTOR_SIZE] ^= mask;
    }

    /// The highest LBA that currently holds durable data, if any.
    pub fn max_durable_lba(&self) -> Option<u64> {
        self.state.lock().durable.keys().copied().max()
    }
}

/// The perfect device: every operation succeeds.
impl BlockDevice for Disk {
    fn read(&self, lba: u64) -> Result<Sector, DiskError> {
        Ok(Disk::read(self, lba))
    }
    fn write(&self, lba: u64, data: &Sector) -> Result<(), DiskError> {
        Disk::write(self, lba, data);
        Ok(())
    }
    fn flush(&self) -> Result<(), DiskError> {
        Disk::flush(self);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sect(b: u8) -> Sector {
        [b; SECTOR_SIZE]
    }

    #[test]
    fn read_your_writes_before_flush() {
        let d = Disk::new();
        d.write(3, &sect(7));
        assert_eq!(d.read(3), sect(7));
        assert_eq!(d.read(4), sect(0), "unwritten sectors are zero");
    }

    #[test]
    fn clean_crash_loses_unflushed() {
        let d = Disk::new();
        d.write(1, &sect(1));
        d.flush();
        d.write(2, &sect(2));
        d.crash(|_| false);
        assert_eq!(d.read(1), sect(1), "flushed data survives");
        assert_eq!(d.read(2), sect(0), "unflushed data is gone");
    }

    #[test]
    fn adversarial_crash_keeps_arbitrary_subset() {
        let d = Disk::new();
        d.write(1, &sect(1));
        d.write(2, &sect(2));
        d.write(3, &sect(3));
        // The drive persisted only the *middle* write before dying.
        d.crash(|i| i == 1);
        assert_eq!(d.read(1), sect(0));
        assert_eq!(d.read(2), sect(2));
        assert_eq!(d.read(3), sect(0));
    }

    #[test]
    fn newest_volatile_write_wins() {
        let d = Disk::new();
        d.write(5, &sect(1));
        d.write(5, &sect(2));
        assert_eq!(d.read(5), sect(2));
        d.flush();
        assert_eq!(d.read(5), sect(2));
    }

    #[test]
    fn corrupt_durable_flips_bits_silently() {
        let d = Disk::new();
        d.write(2, &sect(0xF0));
        d.flush();
        d.corrupt_durable(2, 10, 0x01);
        let mut expect = sect(0xF0);
        expect[10] ^= 0x01;
        assert_eq!(d.read(2), expect);
        assert_eq!(d.max_durable_lba(), Some(2));
    }

    #[test]
    fn block_device_impl_is_infallible() {
        let d = Disk::new();
        let dev: &dyn BlockDevice = &d;
        dev.write(1, &sect(9)).unwrap();
        assert_eq!(dev.read(1).unwrap(), sect(9));
        dev.flush().unwrap();
    }

    #[test]
    fn counters() {
        let d = Disk::new();
        d.write(0, &sect(0));
        d.write(1, &sect(0));
        d.flush();
        assert_eq!(d.write_count(), 2);
        assert_eq!(d.flush_count(), 1);
    }
}
