//! Epoch group commit over the sharded journal.
//!
//! [`ShardedJournalSink`] is the sharded counterpart of
//! [`crate::fs::JournalSink`]: a trace sink that turns every
//! [`Event::Mutate`] into log state, but into `N` independent append
//! streams instead of one. Writers *stage* stamped micro-ops into
//! per-shard in-memory buffers (one brief shard-buffer lock plus one
//! atomic stamp each — no device I/O on the mutation path); `sync()`
//! runs the **group commit**: it atomically cuts epoch `E` across all
//! shards, writes each shard's `E`-batch as one frame, seals `E` on
//! every shard, and issues a single flush barrier. An epoch is durable
//! only when *every* shard sealed it.
//!
//! # Stamps, epochs, and why nothing acked is ever lost
//!
//! Each staged micro-op carries a stamp from one global counter, taken
//! inside the emitter's critical section — so stamp order is a legal
//! total order of the execution's mutations, contiguous from 0 per
//! mount generation (the same argument as `atomfs_trace::ShardedSink`).
//! The epoch cut is an `RwLock` barrier: staging holds it shared,
//! the cut takes it exclusively while swapping *all* shard buffers and
//! advancing the epoch. Every stamp therefore lands in exactly one
//! epoch and epochs are **stamp-prefix-closed**: all stamps of epoch
//! `E` precede all stamps of epoch `E+1`. Recovery merges the shard
//! streams by stamp and truncates at the first gap, so what replays is
//! a stamp-prefix of history — which, by prefix-closedness, includes
//! every sealed (acked) epoch in full.
//!
//! # Renames: the only cross-shard transaction
//!
//! A rename mutates two directories that may hash to different shards.
//! Its micro-ops are staged as a **RenameIntent** (in the *source*
//! parent's shard, keyed by a fresh transaction id) and sealed by a
//! **RenameSeal** (in the *destination* parent's shard) when the rename
//! passes its linearization point. An open transaction holds the
//! transaction gate, which `sync()` drains before cutting — so intent
//! and seal always land in the *same epoch* on their two shards.
//! Recovery replays an intent's ops only if its seal is present with
//! the same epoch; a seal-less intent is discarded, and the stamp gap
//! it leaves truncates everything after it (prefix-exactness).
//!
//! # Quarantine and partial degradation
//!
//! A shard whose appends or flushes defeat the retry policy is
//! **quarantined**: its staging buffer is discarded, its inode range
//! refuses new mutations (via [`TraceSink::admit_mutation`], which the
//! emitter consults *before* mutating), and the commit that caught the
//! failure writes a `Quarantine` frame to every surviving shard. That
//! frame records the dead-shard mask and the half-open stamp windows
//! that died in the discarded buffer — the explicit permission recovery
//! needs to merge *around* those stamps instead of truncating all later
//! history on the healthy shards. Rename seals stranded in a dead
//! shard's buffer are redirected to a survivor (recovery pairs intents
//! against seals found on *any* shard, so placement is free).
//!
//! Syncs racing a quarantine follow the fsync-after-EIO discipline: an
//! errseq-style loss counter is sampled at entry and re-checked before
//! any `Ok`, so no caller is told "durable" across an event that may
//! have discarded its stamps. The whole mount flips to sticky degraded
//! mode only when *every* shard is dead (or in eager mode, which keeps
//! the single-stream semantics as the ablation baseline).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use atomfs_obs::dump::{self, TriggerCause};
use atomfs_obs::{Span, SpanKind};
use atomfs_trace::{Event, Inum, MicroOp, Tid, TraceSink};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::device::{BlockDevice, DiskError};
use crate::health::{Health, HealthCounters, RecoverySummary};
use crate::shard::{shard_of, ShardConfig, ShardGauges, ShardReport, ShardWriter};
use crate::wire::FrameKind;

/// Stripes of the thread-state map: per-mutate bookkeeping locks one of
/// these instead of one global map mutex.
const TID_STRIPES: usize = 16;

/// In-memory staging buffer of one shard for the open epoch.
#[derive(Default)]
struct ShardBuf {
    /// Stamped micro-ops of ordinary (single-shard) operations.
    plain: Vec<(u64, MicroOp)>,
    /// Open/sealed rename transactions staged here (source side):
    /// `(txn id, stamped ops)`.
    intents: Vec<(u64, Vec<(u64, MicroOp)>)>,
    /// Rename transactions sealed here (destination side).
    seals: Vec<u64>,
}

impl ShardBuf {
    fn is_empty(&self) -> bool {
        self.plain.is_empty() && self.intents.is_empty() && self.seals.is_empty()
    }

    /// Staged micro-ops in this buffer (the commit's parallelism gate).
    fn op_count(&self) -> usize {
        self.plain.len() + self.intents.iter().map(|(_, ops)| ops.len()).sum::<usize>()
    }
}

/// Epochs staging at least this many micro-ops write their shard slices
/// on scoped threads; smaller epochs encode inline. The crossover is
/// where per-shard encode+checksum work clearly outweighs a thread
/// spawn/join round trip.
const PARALLEL_EPOCH_OPS: usize = 48;

/// Upper bound on the leader's batching window (see
/// [`ShardedJournalSink::batching_window`]). Sized to a realistic flush
/// barrier: holding the cut open longer than one barrier costs more
/// latency than the barrier it would save.
const BATCH_WINDOW_CAP: std::time::Duration = std::time::Duration::from_micros(200);

/// One shard: its staging buffer, its region writer, its device (may be
/// shared with other shards or private to this one), and its gauges.
struct ShardState {
    buf: Mutex<ShardBuf>,
    writer: Mutex<ShardWriter>,
    dev: Arc<dyn BlockDevice>,
    gauges: Arc<ShardGauges>,
    counters: Arc<HealthCounters>,
    /// Why this shard was quarantined (`None` while healthy).
    cause: Mutex<Option<DiskError>>,
}

/// An open rename transaction of one thread.
struct OpenTxn {
    id: u64,
    /// Shard holding the intent (the source parent's shard).
    src: usize,
    /// Shard that will hold the seal (the destination parent's shard,
    /// learned when the rename's `Ins` is staged; `src` until then).
    dst: Option<usize>,
    /// The source shard died mid-transaction: the intent can never
    /// become durable, so remaining ops and the seal are dropped too
    /// (a seal without its intent would just be an orphan at recovery).
    dropped: bool,
}

/// Per-operation routing state of one thread, inserted at `OpBegin` and
/// removed at `OpEnd`.
#[derive(Default)]
struct TidState {
    is_rename: bool,
    /// Shard chosen by the emitter's `shard_hint` (the operation's
    /// primary inode), routing every micro-op of the operation together.
    hint: Option<usize>,
    txn: Option<OpenTxn>,
}

/// Blocks the epoch cut while rename transactions are open (and new
/// transactions while a cut is draining), so an intent/seal pair can
/// never straddle an epoch boundary.
#[derive(Default)]
struct TxnGate {
    state: Mutex<GateState>,
    cv: Condvar,
}

#[derive(Default)]
struct GateState {
    open: usize,
    draining: bool,
}

impl TxnGate {
    /// Open a transaction (waits out an in-progress cut).
    fn enter(&self) {
        let mut st = self.state.lock();
        while st.draining {
            self.cv.wait(&mut st);
        }
        st.open += 1;
    }

    /// Close a transaction.
    fn exit(&self) {
        let mut st = self.state.lock();
        st.open -= 1;
        if st.open == 0 {
            self.cv.notify_all();
        }
    }

    /// Stop new transactions and wait until all open ones sealed.
    fn drain(&self) {
        let mut st = self.state.lock();
        st.draining = true;
        while st.open > 0 {
            self.cv.wait(&mut st);
        }
    }

    /// Allow transactions again after the cut.
    fn release(&self) {
        let mut st = self.state.lock();
        st.draining = false;
        self.cv.notify_all();
    }
}

/// The sharded, group-committing journal sink. See the module docs.
pub struct ShardedJournalSink {
    cfg: ShardConfig,
    gen: u32,
    disk: Arc<dyn BlockDevice>,
    shards: Vec<ShardState>,
    /// Global mutation stamp, contiguous from 0 for this generation.
    stamp: AtomicU64,
    /// Rename transaction ids (0 is reserved for "no transaction").
    txn_ids: AtomicU64,
    /// The epoch-cut barrier: staging holds it shared, the cut exclusive.
    cut: RwLock<()>,
    txns: TxnGate,
    /// Epoch currently being staged (the next commit's epoch).
    open_epoch: AtomicU64,
    /// Highest epoch durably sealed on *all* shards.
    sealed_epoch: AtomicU64,
    /// Stamp high-water mark made durable by the last flushed commit:
    /// every stamp below it is on stable storage. Captured under the cut
    /// (staging quiesced, so issued == staged) — lets a syncer whose
    /// writes a concurrent commit already covered return without its own
    /// device round-trip. This absorption is what makes the commit a
    /// *group* commit.
    sealed_stamp: AtomicU64,
    commit_lock: Mutex<()>,
    /// Group-commit rendezvous: bumped (under its lock) after every
    /// leader commit completes — success or failure — then broadcast.
    /// Followers whose stamps an in-flight commit cannot cover park here
    /// instead of queueing to run their own redundant commit.
    commit_gen: Mutex<u64>,
    commit_cv: Condvar,
    /// Rendezvous gauges: syncs that led a commit, syncs that parked
    /// behind one, and syncs a concurrent commit covered entirely (the
    /// absorption ratio is the group in group commit).
    gc_leads: AtomicU64,
    gc_parks: AtomicU64,
    gc_absorbed: AtomicU64,
    health: Mutex<Health>,
    /// Fast-path mirror of `health.is_degraded()`.
    degraded: AtomicBool,
    /// errseq-style loss counter: bumped once per commit that discarded
    /// staged stamps (a quarantine event). `sync` samples it at entry
    /// and refuses to ack across a change.
    loss_seq: AtomicU64,
    /// Cause of the most recent loss event.
    loss_cause: Mutex<Option<DiskError>>,
    /// Cumulative lost-stamp windows, half-open `[lo, hi)`, sorted and
    /// coalesced — the same list the `Quarantine` frames persist.
    lost_windows: Mutex<Vec<(u64, u64)>>,
    /// Shards quarantined over the mount's lifetime.
    quarantines: AtomicU64,
    /// Mount-level counters (flush retries/faults; per-shard appends
    /// charge the shard's own counters).
    counters: Arc<HealthCounters>,
    dropped: AtomicU64,
    recovery: Mutex<Option<RecoverySummary>>,
    tids: Vec<Mutex<HashMap<u32, TidState>>>,
}

impl ShardedJournalSink {
    /// A fresh sharded log on `device`, generation 1.
    pub fn new(device: Arc<dyn BlockDevice>, cfg: ShardConfig) -> Self {
        Self::with_gen(device, cfg, 1)
    }

    /// A sharded log writing generation `gen` (used by recovery to start
    /// the checkpoint generation; it must exceed every generation
    /// previously written to this disk).
    pub fn with_gen(device: Arc<dyn BlockDevice>, cfg: ShardConfig, gen: u32) -> Self {
        let n = cfg.shard_count();
        Self::with_devices_gen((0..n).map(|_| Arc::clone(&device)).collect(), cfg, gen)
    }

    /// A fresh sharded log with one device per shard — the fault-domain
    /// isolation layout: each shard's appends and flushes go through its
    /// own device (typically a fault-injection wrapper over one shared
    /// platter), so one shard's device dying quarantines only that shard.
    /// The shards still share the platter's address space per `cfg`'s
    /// region layout, which is what lets recovery scan a single disk.
    ///
    /// # Panics
    ///
    /// When `devices.len() != cfg.shard_count()`.
    pub fn with_devices(devices: Vec<Arc<dyn BlockDevice>>, cfg: ShardConfig) -> Self {
        Self::with_devices_gen(devices, cfg, 1)
    }

    fn with_devices_gen(devices: Vec<Arc<dyn BlockDevice>>, cfg: ShardConfig, gen: u32) -> Self {
        assert_eq!(
            devices.len(),
            cfg.shard_count(),
            "one device per shard (clone the Arc to share one)"
        );
        let device = Arc::clone(&devices[0]);
        let shards = devices
            .into_iter()
            .enumerate()
            .map(|(i, dev)| {
                let writer = ShardWriter::new(Arc::clone(&dev), i, gen, &cfg);
                let counters = writer.counters();
                ShardState {
                    buf: Mutex::new(ShardBuf::default()),
                    writer: Mutex::new(writer),
                    dev,
                    gauges: Arc::new(ShardGauges::default()),
                    counters,
                    cause: Mutex::new(None),
                }
            })
            .collect();
        ShardedJournalSink {
            cfg,
            gen,
            disk: device,
            shards,
            stamp: AtomicU64::new(0),
            txn_ids: AtomicU64::new(1),
            cut: RwLock::new(()),
            txns: TxnGate::default(),
            open_epoch: AtomicU64::new(1),
            sealed_epoch: AtomicU64::new(0),
            sealed_stamp: AtomicU64::new(0),
            commit_lock: Mutex::new(()),
            commit_gen: Mutex::new(0),
            commit_cv: Condvar::new(),
            gc_leads: AtomicU64::new(0),
            gc_parks: AtomicU64::new(0),
            gc_absorbed: AtomicU64::new(0),
            health: Mutex::new(Health::Healthy),
            degraded: AtomicBool::new(false),
            loss_seq: AtomicU64::new(0),
            loss_cause: Mutex::new(None),
            lost_windows: Mutex::new(Vec::new()),
            quarantines: AtomicU64::new(0),
            counters: Arc::new(HealthCounters::default()),
            dropped: AtomicU64::new(0),
            recovery: Mutex::new(None),
            tids: (0..TID_STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configuration this sink runs under.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Generation this sink appends under.
    pub fn gen(&self) -> u32 {
        self.gen
    }

    /// The shard [`shard_of`] routes inode `ino` to under this config.
    pub fn shard_of_ino(&self, ino: Inum) -> usize {
        shard_of(ino, self.shards.len())
    }

    /// Stamps issued so far (== micro-ops accepted for logging).
    pub fn stamps_issued(&self) -> u64 {
        self.stamp.load(Ordering::Relaxed)
    }

    /// Epoch currently being staged.
    pub fn open_epoch(&self) -> u64 {
        self.open_epoch.load(Ordering::Relaxed)
    }

    /// Highest epoch durable on all shards (0 before the first commit).
    pub fn sealed_epoch(&self) -> u64 {
        self.sealed_epoch.load(Ordering::Relaxed)
    }

    /// Rendezvous gauges: `(leads, parks, absorbed)` — syncs that ran a
    /// commit, syncs that parked behind an in-flight one, and syncs that
    /// returned because a concurrent commit already covered their stamps.
    pub fn group_commit_stats(&self) -> (u64, u64, u64) {
        (
            self.gc_leads.load(Ordering::Relaxed),
            self.gc_parks.load(Ordering::Relaxed),
            self.gc_absorbed.load(Ordering::Relaxed),
        )
    }

    /// Current mount health.
    pub fn health(&self) -> Health {
        *self.health.lock()
    }

    /// Lock-free degraded check for per-operation fast paths.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }

    /// Events dropped while degraded.
    pub fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Mount-level counters (flush path; shard appends are per-shard).
    pub fn counters(&self) -> Arc<HealthCounters> {
        Arc::clone(&self.counters)
    }

    /// Total bytes appended across all shard regions.
    pub fn log_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.gauges.log_bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Fault/retry/progress gauges of shard `i`.
    pub fn shard_report(&self, i: usize) -> ShardReport {
        let s = &self.shards[i];
        let sealed = s.gauges.sealed_epoch.load(Ordering::Relaxed);
        // Last epoch that *could* have been sealed is open_epoch - 1.
        let assignable = self.open_epoch().saturating_sub(1);
        ShardReport {
            shard: i,
            log_bytes: s.gauges.log_bytes.load(Ordering::Relaxed),
            sealed_epoch: sealed,
            epoch_lag: assignable.saturating_sub(sealed),
            faults: s.counters.device_faults(),
            retries: s.counters.retries(),
            dead: s.gauges.dead.load(Ordering::Relaxed),
        }
    }

    /// Reports for every shard.
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        (0..self.shards.len()).map(|i| self.shard_report(i)).collect()
    }

    /// Metrics handle: shard `i`'s live gauges.
    pub fn shard_gauges(&self, i: usize) -> Arc<ShardGauges> {
        Arc::clone(&self.shards[i].gauges)
    }

    /// Metrics handle: shard `i`'s fault/retry counters.
    pub fn shard_counters(&self, i: usize) -> Arc<HealthCounters> {
        Arc::clone(&self.shards[i].counters)
    }

    /// Device faults summed over the mount: every shard plus the flush path.
    pub fn total_faults(&self) -> u64 {
        self.counters.device_faults()
            + self.shards.iter().map(|s| s.counters.device_faults()).sum::<u64>()
    }

    /// Retries summed over the mount.
    pub fn total_retries(&self) -> u64 {
        self.counters.retries()
            + self.shards.iter().map(|s| s.counters.retries()).sum::<u64>()
    }

    /// Health plus aggregate counters (shape-compatible with the
    /// single-stream sink's report).
    pub fn health_report(&self) -> crate::health::HealthReport {
        crate::health::HealthReport {
            health: self.health(),
            device_faults: self.total_faults(),
            retries: self.total_retries(),
            degraded_flips: self.counters.degraded_flips(),
            dropped_events: self.dropped.load(Ordering::Relaxed),
            recovery: *self.recovery.lock(),
        }
    }

    /// Record how this mount generation was produced (set by recovery).
    pub fn set_recovery(&self, summary: RecoverySummary) {
        *self.recovery.lock() = Some(summary);
    }

    fn degrade(&self, cause: DiskError, failed_at_seq: u64) {
        let flipped = {
            let mut health = self.health.lock();
            if health.is_degraded() {
                false
            } else {
                *health = Health::Degraded {
                    cause,
                    failed_at_seq,
                };
                self.degraded.store(true, Ordering::Relaxed);
                self.counters.degraded_flips.fetch_add(1, Ordering::Relaxed);
                true
            }
        };
        if flipped {
            // Black-box capture strictly after the health lock is
            // released: the dump's metrics snapshot runs registered
            // callbacks, and this sink's own bridges read health state.
            let mut sp = Span::root(SpanKind::Trigger, "degraded_flip");
            sp.fail();
            drop(sp);
            dump::trigger(
                TriggerCause::DegradedFlip {
                    detail: format!("{cause:?} at seq {failed_at_seq}"),
                },
                Some(self.health_report().to_json()),
            );
        }
    }

    /// Quarantine shard `i`: sticky-dead, remembered cause, and — when
    /// it was the last survivor — whole-mount degradation.
    fn quarantine_shard(&self, i: usize, cause: DiskError, at: u64) {
        let s = &self.shards[i];
        if !s.gauges.dead.swap(true, Ordering::Relaxed) {
            *s.cause.lock() = Some(cause);
            self.quarantines.fetch_add(1, Ordering::Relaxed);
            // Trigger span first (so it lands in the rings the dump
            // freezes), then the capture itself. No locks are held here
            // beyond the caller's commit lock, which no metrics callback
            // takes.
            let mut sp = Span::root(SpanKind::Trigger, "shard_quarantine");
            sp.set_shard(i as u32);
            sp.fail();
            drop(sp);
            dump::trigger(
                TriggerCause::ShardQuarantine {
                    shard: i as u32,
                    detail: format!("{cause:?} at seq {at}"),
                },
                Some(self.health_report().to_json()),
            );
        }
        if self
            .shards
            .iter()
            .all(|s| s.gauges.dead.load(Ordering::Relaxed))
        {
            self.degrade(cause, at);
        }
    }

    fn shard_dead(&self, i: usize) -> bool {
        self.shards[i].gauges.dead.load(Ordering::Relaxed)
    }

    fn first_live_shard(&self) -> Option<usize> {
        (0..self.shards.len()).find(|&i| !self.shard_dead(i))
    }

    /// Bitmask of quarantined shards (shard ids fit in a `u64`).
    pub fn dead_mask(&self) -> u64 {
        (0..self.shards.len())
            .filter(|&i| self.shard_dead(i))
            .fold(0u64, |m, i| m | (1u64 << i))
    }

    /// Shards currently quarantined.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        (0..self.shards.len()).filter(|&i| self.shard_dead(i)).collect()
    }

    /// Why shard `i` was quarantined (`None` while healthy).
    pub fn shard_quarantine_cause(&self, i: usize) -> Option<DiskError> {
        *self.shards[i].cause.lock()
    }

    /// Quarantine events over the mount's lifetime.
    pub fn quarantine_count(&self) -> u64 {
        self.quarantines.load(Ordering::Relaxed)
    }

    /// Commits that discarded staged stamps (the errseq the sync path
    /// refuses to ack across).
    pub fn loss_events(&self) -> u64 {
        self.loss_seq.load(Ordering::Relaxed)
    }

    /// The cumulative lost-stamp windows, as persisted in `Quarantine`
    /// frames: sorted, coalesced, half-open `[lo, hi)`.
    pub fn lost_stamp_windows(&self) -> Vec<(u64, u64)> {
        self.lost_windows.lock().clone()
    }

    /// Record a loss event: set the cause, then publish the bump (the
    /// Release pairs with `sync`'s Acquire re-check).
    fn note_loss(&self, cause: DiskError) {
        *self.loss_cause.lock() = Some(cause);
        self.loss_seq.fetch_add(1, Ordering::Release);
    }

    /// Fold `new_lost` stamps into the cumulative window list and return
    /// the full list (what the next `Quarantine` frame carries — writing
    /// the cumulative list keeps any single surviving shard sufficient
    /// for recovery, and recovery unions whatever it finds anyway).
    fn absorb_windows(&self, new_lost: &mut Vec<u64>) -> Vec<(u64, u64)> {
        let mut all = self.lost_windows.lock();
        all.extend(new_lost.drain(..).map(|s| (s, s + 1)));
        all.sort_unstable();
        let mut out: Vec<(u64, u64)> = Vec::with_capacity(all.len());
        for &(lo, hi) in all.iter() {
            match out.last_mut() {
                Some((_, phi)) if lo <= *phi => *phi = (*phi).max(hi),
                _ => out.push((lo, hi)),
            }
        }
        *all = out.clone();
        out
    }

    /// Spill a discarded staging buffer: every stamp it held becomes a
    /// lost window; seals stranded in it are collected for redirection
    /// to a surviving shard.
    fn spill_buf(b: &ShardBuf, lost: &mut Vec<u64>, redirects: &mut Vec<u64>) {
        lost.extend(b.plain.iter().map(|(s, _)| *s));
        for (_, ops) in &b.intents {
            lost.extend(ops.iter().map(|(s, _)| *s));
        }
        redirects.extend(b.seals.iter().copied());
    }

    fn stripe(&self, tid: Tid) -> &Mutex<HashMap<u32, TidState>> {
        &self.tids[tid.0 as usize % TID_STRIPES]
    }

    /// Stage one plain (non-rename) micro-op into `shard`.
    fn stage_plain(&self, shard: usize, mop: MicroOp) {
        if self.cfg.group_commit {
            // Shared-held barrier: the stamp and the push land atomically
            // with respect to the epoch cut. The phase span (child of the
            // sampled op root, inert otherwise) reads the open epoch under
            // the same guard, so its (shard, epoch, stamp) triple is the
            // one the next cut will assign.
            let mut sp = Span::child(SpanKind::ShardAppend, "stage_plain");
            sp.set_shard(shard as u32);
            let _r = self.cut.read();
            if self.shard_dead(shard) {
                // Quarantined range — the op raced the admission gate.
                // Count it dropped and consume no stamp, so the global
                // stamp stream stays gap-free for everyone else.
                sp.fail();
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            let mut buf = self.shards[shard].buf.lock();
            let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
            sp.set_stamp(stamp);
            sp.set_epoch(self.open_epoch.load(Ordering::Relaxed));
            buf.plain.push((stamp, mop));
        } else {
            // Eager mode (the ablation baseline): one frame per micro-op,
            // written immediately under the shard's writer lock.
            let s = &self.shards[shard];
            let mut w = s.writer.lock();
            let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
            let epoch = self.open_epoch.load(Ordering::Relaxed);
            let at = w.next_seq();
            let r = w.append_frame(FrameKind::Batch, epoch, 0, &[(stamp, mop)]);
            s.gauges.log_bytes.store(w.position(), Ordering::Relaxed);
            drop(w);
            if let Err(cause) = r {
                s.gauges.dead.store(true, Ordering::Relaxed);
                self.degrade(cause, at);
            }
        }
    }

    /// Stage one micro-op of the open rename transaction `txn`.
    fn stage_intent(&self, txn: &mut OpenTxn, mop: MicroOp) {
        if self.cfg.group_commit {
            if txn.dropped || self.shard_dead(txn.src) {
                // Source shard quarantined mid-rename: the intent can
                // never become durable, so the whole transaction drops —
                // ops take no stamps (no gap) and the seal is suppressed.
                txn.dropped = true;
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return;
            }
            // No cut guard needed: the transaction gate keeps the cut out
            // until this transaction seals.
            let mut sp = Span::child(SpanKind::ShardAppend, "stage_intent");
            sp.set_shard(txn.src as u32);
            let mut buf = self.shards[txn.src].buf.lock();
            let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
            sp.set_stamp(stamp);
            sp.set_epoch(self.open_epoch.load(Ordering::Relaxed));
            match buf.intents.iter_mut().find(|(id, _)| *id == txn.id) {
                Some((_, ops)) => ops.push((stamp, mop)),
                None => buf.intents.push((txn.id, vec![(stamp, mop)])),
            }
        } else {
            let s = &self.shards[txn.src];
            let mut w = s.writer.lock();
            let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
            let epoch = self.open_epoch.load(Ordering::Relaxed);
            let at = w.next_seq();
            let r = w.append_frame(
                FrameKind::RenameIntent,
                epoch,
                txn.id,
                &[(stamp, mop)],
            );
            s.gauges.log_bytes.store(w.position(), Ordering::Relaxed);
            drop(w);
            if let Err(cause) = r {
                s.gauges.dead.store(true, Ordering::Relaxed);
                self.degrade(cause, at);
            }
        }
    }

    /// Seal the rename transaction in its destination shard.
    fn stage_seal(&self, txn: &OpenTxn) {
        let dst = txn.dst.unwrap_or(txn.src);
        if self.cfg.group_commit {
            if txn.dropped || self.shard_dead(txn.src) {
                // The intent never reached (or will never reach) disk: a
                // seal would only show up as an orphan at recovery.
                return;
            }
            let dst = if self.shard_dead(dst) {
                // Redirect to any survivor: recovery pairs intents
                // against seals found on *any* shard, so placement is
                // free — what matters is that the seal lands in the same
                // epoch as its intent, which the transaction gate holds
                // open until this push completes.
                match self.first_live_shard() {
                    Some(i) => i,
                    None => return,
                }
            } else {
                dst
            };
            self.shards[dst].buf.lock().seals.push(txn.id);
        } else if !self.degraded.load(Ordering::Relaxed) {
            let s = &self.shards[dst];
            let mut w = s.writer.lock();
            let epoch = self.open_epoch.load(Ordering::Relaxed);
            let at = w.next_seq();
            let r = w.append_frame(FrameKind::RenameSeal, epoch, txn.id, &[]);
            s.gauges.log_bytes.store(w.position(), Ordering::Relaxed);
            drop(w);
            if let Err(cause) = r {
                s.gauges.dead.store(true, Ordering::Relaxed);
                self.degrade(cause, at);
            }
        }
    }

    fn on_mutate(&self, tid: Tid, mop: MicroOp) {
        if self.degraded.load(Ordering::Relaxed) {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut map = self.stripe(tid).lock();
        match map.get_mut(&tid.0) {
            Some(st) if st.is_rename => {
                if st.txn.is_none() {
                    self.txns.enter();
                    st.txn = Some(OpenTxn {
                        id: self.txn_ids.fetch_add(1, Ordering::Relaxed),
                        src: st.hint.unwrap_or_else(|| self.shard_of_ino(mop.target())),
                        dst: None,
                        dropped: false,
                    });
                }
                let txn = st.txn.as_mut().expect("just opened");
                if let MicroOp::Ins { parent, .. } = &mop {
                    // The rename's Ins names the destination parent: that
                    // shard gets the seal.
                    txn.dst = Some(shard_of(*parent, self.shards.len()));
                }
                self.stage_intent(txn, mop);
            }
            st => {
                let shard = st
                    .and_then(|s| s.hint)
                    .unwrap_or_else(|| self.shard_of_ino(mop.target()));
                drop(map);
                self.stage_plain(shard, mop);
            }
        }
    }

    /// Close the thread's rename transaction, if one is open (called at
    /// `Lp`, and defensively at `OpEnd`).
    fn close_txn(&self, st: &mut TidState) {
        if let Some(txn) = st.txn.take() {
            self.stage_seal(&txn);
            self.txns.exit();
        }
    }

    /// Durability barrier: group-commit the open epoch and flush. Errors
    /// when the mount is (or just became) degraded — nothing since the
    /// last `Ok` is guaranteed durable.
    pub fn sync(&self) -> Result<(), DiskError> {
        // Always-recorded root (syncs are rare and device-bound): this is
        // what guarantees a fault dump carries the commit that failed,
        // even at sparse op sampling.
        let mut sp = Span::root(SpanKind::Op, "journal_sync");
        let r = self.sync_inner();
        if r.is_err() {
            sp.fail();
        }
        r
    }

    fn sync_inner(&self) -> Result<(), DiskError> {
        if self.degraded.load(Ordering::Relaxed) {
            if let Health::Degraded { cause, .. } = *self.health.lock() {
                return Err(cause);
            }
        }
        if !self.cfg.group_commit {
            return self.commit(false);
        }
        // The group commit proper: the barrier is satisfied once a flushed
        // cut covers every stamp issued before this call. One syncer at a
        // time leads (runs the cut + device round-trip); the rest park at
        // the rendezvous — a leader mid-flight cannot cover a follower
        // that arrived after its cut, so queueing up to lead next would
        // just run one redundant commit per syncer. When the leader
        // finishes, woken followers either find themselves covered or the
        // fastest of them leads the next cut, which covers the rest.
        let loss0 = self.loss_seq.load(Ordering::Acquire);
        let target = self.stamp.load(Ordering::Acquire);
        let mut led = false;
        loop {
            if self.sealed_stamp.load(Ordering::Acquire) >= target {
                // errseq re-check: a quarantine event since entry means
                // some staged stamps were discarded, and this syncer
                // cannot tell whether its own were among them — so it
                // reports the loss rather than ack it away (the
                // fsync-after-EIO discipline). Later syncs, entered
                // after the event, ack live-shard data normally.
                if self.loss_seq.load(Ordering::Acquire) != loss0 {
                    return Err(self.loss_cause.lock().unwrap_or(DiskError::Gone));
                }
                if !led {
                    self.gc_absorbed.fetch_add(1, Ordering::Relaxed);
                }
                return Ok(());
            }
            if self.degraded.load(Ordering::Relaxed) {
                if let Health::Degraded { cause, .. } = *self.health.lock() {
                    return Err(cause);
                }
            }
            match self.commit_lock.try_lock() {
                Some(guard) => {
                    led = true;
                    self.gc_leads.fetch_add(1, Ordering::Relaxed);
                    self.batching_window();
                    let result = self.commit_locked(false);
                    drop(guard);
                    self.wake_followers();
                    result?;
                }
                None => {
                    let mut gen = self.commit_gen.lock();
                    // Re-check under the rendezvous lock: the leader
                    // bumps the generation only after releasing the
                    // commit lock, so if it is still held a wake-up is
                    // guaranteed to come.
                    if self.commit_lock.is_locked()
                        && self.sealed_stamp.load(Ordering::Acquire) < target
                    {
                        self.gc_parks.fetch_add(1, Ordering::Relaxed);
                        self.commit_cv.wait(&mut gen);
                    }
                }
            }
        }
    }

    /// Wake every parked follower after a commit completed (successfully
    /// or not — they re-check coverage and health themselves).
    fn wake_followers(&self) {
        *self.commit_gen.lock() += 1;
        self.commit_cv.notify_all();
    }

    /// The group-commit batching window, run by a sync leader *before*
    /// its cut: give concurrently staging writers a chance to get their
    /// mutations into the epoch, so one device barrier covers them all
    /// (jbd2's transaction-batching idea). Yield-based and adaptive: each
    /// yield cedes the CPU to staging threads — on a single core this is
    /// what lets them run at all — and the window closes as soon as the
    /// global stamp stops moving (no writer mid-flight, so waiting longer
    /// buys nothing). An idle or single-threaded mount pays one yield.
    /// The wall-clock cap bounds the added latency when writers never go
    /// quiet (e.g. threads that stage continuously and rarely sync).
    fn batching_window(&self) {
        let deadline = std::time::Instant::now() + BATCH_WINDOW_CAP;
        let mut prev = self.stamp.load(Ordering::Relaxed);
        loop {
            std::thread::yield_now();
            let cur = self.stamp.load(Ordering::Relaxed);
            if cur == prev || std::time::Instant::now() >= deadline {
                return;
            }
            prev = cur;
        }
    }

    /// The group commit. `force` writes an `EpochSeal` frame to every
    /// shard even when nothing is staged — recovery uses it so every
    /// shard carries at least one frame of the checkpoint generation.
    pub fn commit(&self, force: bool) -> Result<(), DiskError> {
        let result = {
            let _c = self.commit_lock.lock();
            self.commit_locked(force)
        };
        self.wake_followers();
        result
    }

    /// Commit body; the caller holds `commit_lock`.
    fn commit_locked(&self, force: bool) -> Result<(), DiskError> {
        // Always-recorded commit span (one per group commit, not per op).
        // Children — the cut, per-shard slice writes, the flush barrier —
        // hang off it, across threads via its id.
        let mut sp = Span::root(SpanKind::EpochCut, "group_commit");
        let r = self.commit_locked_inner(force, &mut sp);
        if r.is_err() {
            sp.fail();
        }
        r
    }

    fn commit_locked_inner(&self, force: bool, sp: &mut Span) -> Result<(), DiskError> {
        if let Health::Degraded { cause, .. } = *self.health.lock() {
            return Err(cause);
        }
        if !self.cfg.group_commit {
            return self.commit_eager(force);
        }

        // Phase 1 — the cut. Drain open rename transactions (so no
        // intent/seal pair straddles the epoch), then atomically swap
        // every shard's buffer and advance the epoch. Dead shards'
        // buffers are taken too: anything staged into them (ops that
        // raced the quarantine) is discarded into recorded loss windows
        // below rather than silently forgotten.
        self.txns.drain();
        let cut = {
            let _w = self.cut.write();
            // Staging is quiesced: every issued stamp is in a buffer, so
            // this commit's flush makes all of them durable.
            let covered = self.stamp.load(Ordering::Relaxed);
            let empty = self.shards.iter().all(|s| s.buf.lock().is_empty());
            if empty && !force {
                (covered, None)
            } else {
                let epoch = self.open_epoch.fetch_add(1, Ordering::Relaxed);
                let taken: Vec<ShardBuf> = self
                    .shards
                    .iter()
                    .map(|s| std::mem::take(&mut *s.buf.lock()))
                    .collect();
                (covered, Some((epoch, taken)))
            }
        };
        self.txns.release();

        let (covered, staged) = cut;
        if let Some((epoch, _)) = &staged {
            sp.set_epoch(*epoch);
        }
        let Some((epoch, taken)) = staged else {
            // Nothing staged: sync degenerates to a flush barrier.
            let flush_failed = self.flush_pass();
            if let Some(&(_, cause, _)) = flush_failed.first() {
                for (i, c, at) in flush_failed {
                    self.quarantine_shard(i, c, at);
                }
                return Err(cause);
            }
            self.sealed_stamp.fetch_max(covered, Ordering::AcqRel);
            return Ok(());
        };

        // Phase 2 — write each live shard's slice of the epoch. Staging
        // of the next epoch proceeds concurrently; the buffers here are
        // frozen. Encoding and checksumming a slice is byte-throughput
        // work that is independent per shard, so big epochs fan it out
        // across threads when the machine actually has them; small epochs
        // (and single-core hosts) stay inline — a spawn costs more than
        // the bytes it would parallelize. Every slice is attempted even
        // after one fails: each healthy shard keeps as much durable
        // history as its device allows.
        let mut new_lost: Vec<u64> = Vec::new();
        let mut redirect_seals: Vec<u64> = Vec::new();
        let mut failed: Vec<(usize, DiskError, u64)> = Vec::new();
        let slices: Vec<(usize, &ShardBuf)> = taken
            .iter()
            .enumerate()
            .filter(|&(i, b)| {
                if self.shard_dead(i) {
                    Self::spill_buf(b, &mut new_lost, &mut redirect_seals);
                    false
                } else {
                    true
                }
            })
            .collect();
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let big = cores > 1
            && slices.iter().map(|(_, b)| b.op_count()).sum::<usize>() >= PARALLEL_EPOCH_OPS;
        // Slice writes link to the commit span by explicit id — the
        // parallel branch runs them on scope threads, where the
        // thread-local parent stack would not see it.
        let commit_id = sp.id();
        let spanned_slice = |i: usize, b: &ShardBuf| {
            let mut ssp = Span::child_of(commit_id, SpanKind::ShardAppend, "epoch_slice");
            ssp.set_shard(i as u32);
            ssp.set_epoch(epoch);
            let r = self.write_epoch_slice(i, b, epoch);
            if r.is_err() {
                ssp.fail();
            }
            r
        };
        let results: Vec<(usize, Result<(), (DiskError, u64)>)> = if big && slices.len() > 1 {
            let spanned_slice = &spanned_slice;
            std::thread::scope(|sc| {
                let handles: Vec<_> = slices[1..]
                    .iter()
                    .map(|&(i, b)| sc.spawn(move || (i, spanned_slice(i, b))))
                    .collect();
                let (i0, b0) = slices[0];
                let mut out = vec![(i0, spanned_slice(i0, b0))];
                out.extend(
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard slice writer panicked")),
                );
                out
            })
        } else {
            slices
                .iter()
                .map(|&(i, b)| (i, spanned_slice(i, b)))
                .collect()
        };
        for (i, r) in results {
            if let Err((cause, at)) = r {
                failed.push((i, cause, at));
            }
        }

        // Phase 3 — quarantine what failed, persist the losses to the
        // survivors, and flush. The loop re-runs when a survivor dies
        // while recording its peers' death (each iteration strictly
        // shrinks the live set, so it terminates).
        let mut first_err: Option<DiskError> = None;
        loop {
            for (i, cause, at) in std::mem::take(&mut failed) {
                if first_err.is_none() {
                    first_err = Some(cause);
                }
                self.quarantine_shard(i, cause, at);
                // The failed shard's slice may be partially (or even
                // fully but unflushed) on disk; recording all its stamps
                // as lost is safe — windows only permit skipping stamps
                // recovery cannot find, they never suppress found ones.
                Self::spill_buf(&taken[i], &mut new_lost, &mut redirect_seals);
            }
            let live: Vec<usize> =
                (0..self.shards.len()).filter(|&i| !self.shard_dead(i)).collect();
            if live.is_empty() {
                let cause = first_err.unwrap_or(DiskError::Gone);
                self.degrade(cause, 0);
                self.note_loss(cause);
                return Err(cause);
            }
            if first_err.is_some() || !new_lost.is_empty() || !redirect_seals.is_empty() {
                // Seal redirects first (recovery pairs intents against
                // seals found on *any* shard), then the Quarantine frame
                // carrying the dead-shard mask and the cumulative lost
                // windows — written to every survivor so any one of them
                // suffices at recovery. The frame goes out even when the
                // dead shard's buffer was empty (it died on a seal write,
                // nothing lost): the mask itself must be durable, or
                // recovery would neither surface the quarantine nor stop
                // the dead shard's stale seal dragging `sealed_epoch`
                // back.
                let windows = self.absorb_windows(&mut new_lost);
                let mask = self.dead_mask();
                for &i in &live {
                    let s = &self.shards[i];
                    let mut w = s.writer.lock();
                    let at = w.next_seq();
                    let r = (|| {
                        for txn in &redirect_seals {
                            w.append_frame(FrameKind::RenameSeal, epoch, *txn, &[])?;
                        }
                        w.append_quarantine(epoch, mask, &windows)
                    })();
                    s.gauges.log_bytes.store(w.position(), Ordering::Relaxed);
                    drop(w);
                    if let Err(cause) = r {
                        failed.push((i, cause, at));
                    }
                }
                if !failed.is_empty() {
                    continue;
                }
                redirect_seals.clear();
            }
            failed = self.flush_pass();
            if failed.is_empty() {
                // The loss event must be visible *before* the coverage
                // mark: a concurrent syncer that sees the new
                // `sealed_stamp` must also see the bumped loss counter,
                // or it could ack stamps this commit just discarded.
                if let Some(cause) = first_err {
                    self.note_loss(cause);
                }
                // The epoch is durable on every survivor. `covered`
                // includes the lost stamps — they are accounted for by
                // the (also durable) windows, so later syncs of
                // live-shard data need not re-barrier for them.
                self.sealed_epoch.store(epoch, Ordering::Relaxed);
                self.sealed_stamp.fetch_max(covered, Ordering::AcqRel);
                for &i in &live {
                    self.shards[i].gauges.seal(epoch);
                }
                break;
            }
        }
        match first_err {
            Some(cause) => Err(cause),
            None => Ok(()),
        }
    }

    /// Write one shard's frozen slice of epoch `epoch`: its batch frame,
    /// rename intents/seals, and the epoch seal. Returns the failing
    /// cause plus the sequence number it failed at; the *caller*
    /// quarantines the shard (quarantine touches mount-wide state and
    /// must not race between parallel slice writers).
    fn write_epoch_slice(&self, i: usize, b: &ShardBuf, epoch: u64) -> Result<(), (DiskError, u64)> {
        let s = &self.shards[i];
        let mut w = s.writer.lock();
        let at = w.next_seq();
        let r = (|| {
            if !b.plain.is_empty() {
                w.append_frame(FrameKind::Batch, epoch, 0, &b.plain)?;
            }
            for (txn, ops) in &b.intents {
                w.append_frame(FrameKind::RenameIntent, epoch, *txn, ops)?;
            }
            for txn in &b.seals {
                w.append_frame(FrameKind::RenameSeal, epoch, *txn, &[])?;
            }
            w.append_frame(FrameKind::EpochSeal, epoch, 0, &[])
        })();
        s.gauges.log_bytes.store(w.position(), Ordering::Relaxed);
        drop(w);
        r.map_err(|cause| (cause, at))
    }

    /// Flush every distinct device backing a live shard (deduplicated by
    /// device identity, so a single-device mount issues one barrier).
    /// Returns the shards whose device refused, with the cause — the
    /// caller decides between quarantine and whole-mount degradation.
    fn flush_pass(&self) -> Vec<(usize, DiskError, u64)> {
        // Child of the commit span (flushes only run under it).
        let mut sp = Span::child(SpanKind::FlushBarrier, "flush_pass");
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for i in 0..self.shards.len() {
            if self.shard_dead(i) {
                continue;
            }
            let p = Arc::as_ptr(&self.shards[i].dev) as *const u8;
            match groups
                .iter_mut()
                .find(|(rep, _)| Arc::as_ptr(&self.shards[*rep].dev) as *const u8 == p)
            {
                Some((_, group)) => group.push(i),
                None => groups.push((i, vec![i])),
            }
        }
        let mut failed = Vec::new();
        for (rep, group) in groups {
            let dev = &self.shards[rep].dev;
            if let Err(cause) = self
                .cfg
                .policy
                .reseeded(rep as u64)
                .run(&self.counters, || dev.flush())
            {
                for i in group {
                    let at = self.shards[i].writer.lock().next_seq();
                    failed.push((i, cause, at));
                }
            }
        }
        if let Some(&(i, _, _)) = failed.first() {
            sp.set_shard(i as u32);
            sp.fail();
        }
        failed
    }

    /// Commit in eager (group-commit-off) mode: frames are already on the
    /// device, so a sync is the epoch bump plus the flush barrier.
    fn commit_eager(&self, force: bool) -> Result<(), DiskError> {
        // Intent/seal pairs must not straddle the epoch bump either.
        self.txns.drain();
        let epoch = self.open_epoch.fetch_add(1, Ordering::Relaxed);
        self.txns.release();
        if force {
            for s in &self.shards {
                let mut w = s.writer.lock();
                let at = w.next_seq();
                let r = w.append_frame(FrameKind::EpochSeal, epoch, 0, &[]);
                s.gauges.log_bytes.store(w.position(), Ordering::Relaxed);
                drop(w);
                if let Err(cause) = r {
                    s.gauges.dead.store(true, Ordering::Relaxed);
                    self.degrade(cause, at);
                    return Err(cause);
                }
            }
        }
        self.flush_device()?;
        self.sealed_epoch.store(epoch, Ordering::Relaxed);
        for s in &self.shards {
            s.gauges.seal(epoch);
        }
        Ok(())
    }

    fn flush_device(&self) -> Result<(), DiskError> {
        let disk = &*self.disk;
        let r = self.counters.clone();
        let result = self.cfg.policy.run(&r, || disk.flush());
        if let Err(cause) = result {
            let appended: u64 = self
                .shards
                .iter()
                .map(|s| s.writer.lock().next_seq())
                .sum();
            self.degrade(cause, appended);
        }
        result
    }
}

impl TraceSink for ShardedJournalSink {
    fn emit(&self, event: Event) {
        // Mutations carry the full old/new payload; taking them by value
        // moves that payload straight into the staging buffer instead of
        // cloning it (the hot path — every write stages two snapshots).
        match event {
            Event::Mutate { tid, mop } => self.on_mutate(tid, mop),
            other => self.emit_ref(&other),
        }
    }

    fn emit_ref(&self, event: &Event) {
        match event {
            Event::OpBegin { tid, op } => {
                self.stripe(*tid).lock().insert(
                    tid.0,
                    TidState {
                        is_rename: op.is_rename(),
                        ..TidState::default()
                    },
                );
            }
            Event::Mutate { tid, mop } => self.on_mutate(*tid, mop.clone()),
            Event::Lp { tid } => {
                let mut map = self.stripe(*tid).lock();
                if let Some(st) = map.get_mut(&tid.0) {
                    self.close_txn(st);
                }
            }
            Event::OpEnd { tid, .. } => {
                let mut map = self.stripe(*tid).lock();
                if let Some(mut st) = map.remove(&tid.0) {
                    // A rename always seals at its Lp; this is the
                    // failsafe that keeps the gate balanced regardless.
                    self.close_txn(&mut st);
                }
            }
            _ => {}
        }
    }

    fn shard_hint(&self, tid: Tid, primary: Inum) {
        let shard = self.shard_of_ino(primary);
        self.stripe(tid).lock().entry(tid.0).or_default().hint = Some(shard);
    }

    /// Admission: a mutation may proceed only if its durability domain
    /// is intact — the mount is not degraded and the shard its primary
    /// inode routes to is not quarantined. Refusing here (before the
    /// emitter takes any observable step) is what turns a quarantined
    /// shard into a *read-only inode range* instead of dropped writes.
    fn admit_mutation(&self, primary: Inum) -> bool {
        !self.degraded.load(Ordering::Relaxed) && !self.shard_dead(self.shard_of_ino(primary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::Disk;
    use crate::recovery::recover_sharded;
    use atomfs_trace::{OpDesc, OpRet};
    use atomfs_vfs::FileType;

    fn cfg() -> ShardConfig {
        ShardConfig::default()
    }

    fn create(ino: u64) -> MicroOp {
        MicroOp::Create {
            ino,
            ftype: FileType::File,
        }
    }

    fn ins(parent: u64, name: &str, child: u64) -> MicroOp {
        MicroOp::Ins {
            parent,
            name: name.into(),
            child,
        }
    }

    /// Emit a full plain-op envelope around `mops` for thread `tid`.
    fn emit_op(sink: &ShardedJournalSink, tid: Tid, mops: &[MicroOp]) {
        sink.emit(Event::OpBegin {
            tid,
            op: OpDesc::Mknod { path: vec![] },
        });
        for m in mops {
            sink.emit(Event::Mutate {
                tid,
                mop: m.clone(),
            });
        }
        sink.emit(Event::Lp { tid });
        sink.emit(Event::OpEnd { tid, ret: OpRet::Ok });
    }

    #[test]
    fn stage_and_commit_lands_ops_in_stamp_order() {
        let disk = Arc::new(Disk::new());
        let sink = ShardedJournalSink::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg());
        for i in 0..10u64 {
            emit_op(&sink, Tid(1), &[create(100 + i)]);
        }
        assert_eq!(sink.stamps_issued(), 10);
        assert_eq!(sink.sealed_epoch(), 0);
        sink.sync().unwrap();
        assert_eq!(sink.sealed_epoch(), 1);
        let r = recover_sharded(&disk, sink.config());
        assert_eq!(r.ops.len(), 10);
        for (i, (stamp, op)) in r.ops.iter().enumerate() {
            assert_eq!(*stamp, i as u64);
            assert_eq!(*op, create(100 + i as u64));
        }
    }

    #[test]
    fn empty_sync_is_a_flush_barrier_not_an_epoch() {
        let disk = Arc::new(Disk::new());
        let sink = ShardedJournalSink::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg());
        sink.sync().unwrap();
        sink.sync().unwrap();
        assert_eq!(sink.sealed_epoch(), 0, "no epoch consumed");
        assert_eq!(sink.log_bytes(), 0, "no frames written");
    }

    #[test]
    fn forced_commit_seals_every_shard_even_when_empty() {
        let disk = Arc::new(Disk::new());
        let sink = ShardedJournalSink::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg());
        sink.commit(true).unwrap();
        assert_eq!(sink.sealed_epoch(), 1);
        for i in 0..sink.shard_count() {
            let rep = sink.shard_report(i);
            assert!(rep.log_bytes > 0, "shard {i} got its EpochSeal frame");
            assert_eq!(rep.sealed_epoch, 1);
            assert_eq!(rep.epoch_lag, 0);
        }
    }

    #[test]
    fn rename_emits_intent_and_seal_with_same_epoch_and_txn() {
        let disk = Arc::new(Disk::new());
        let sink = ShardedJournalSink::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg());
        // Preamble: both parents and the child exist.
        emit_op(&sink, Tid(1), &[create(2), ins(1, "a", 2)]);
        emit_op(&sink, Tid(1), &[create(3), ins(1, "b", 3)]);
        emit_op(&sink, Tid(1), &[create(9), ins(2, "f", 9)]);
        // The rename proper: del from src parent 2, ins into dst parent 3.
        sink.emit(Event::OpBegin {
            tid: Tid(1),
            op: OpDesc::Rename {
                src: vec!["a".into(), "f".into()],
                dst: vec!["b".into(), "g".into()],
            },
        });
        sink.shard_hint(Tid(1), 2);
        sink.emit(Event::Mutate {
            tid: Tid(1),
            mop: MicroOp::Del {
                parent: 2,
                name: "f".into(),
                child: 9,
            },
        });
        sink.emit(Event::Mutate {
            tid: Tid(1),
            mop: ins(3, "g", 9),
        });
        sink.emit(Event::Lp { tid: Tid(1) });
        sink.emit(Event::OpEnd {
            tid: Tid(1),
            ret: OpRet::Ok,
        });
        sink.sync().unwrap();
        let r = recover_sharded(&disk, sink.config());
        assert_eq!(r.unsealed_txns(), Vec::<u64>::new());
        // All 8 mutates replay, in stamp order, rename included.
        assert_eq!(r.ops.len(), 8);
        assert_eq!(r.ops[6].1, MicroOp::Del {
            parent: 2,
            name: "f".into(),
            child: 9,
        });
        assert_eq!(r.ops[7].1, ins(3, "g", 9));
    }

    #[test]
    fn concurrent_staging_survives_concurrent_syncs() {
        let disk = Arc::new(Disk::new());
        let sink = Arc::new(ShardedJournalSink::new(
            Arc::clone(&disk) as Arc<dyn BlockDevice>,
            cfg(),
        ));
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let sink = Arc::clone(&sink);
                s.spawn(move || {
                    for i in 0..200u64 {
                        let ino = 1000 + t as u64 * 1000 + i;
                        emit_op(&sink, Tid(t), &[create(ino)]);
                        if i % 16 == 0 {
                            sink.sync().unwrap();
                        }
                    }
                });
            }
        });
        sink.sync().unwrap();
        assert_eq!(sink.stamps_issued(), 800);
        let r = recover_sharded(&disk, sink.config());
        assert_eq!(r.ops.len(), 800, "every acked op replays");
        for (i, (stamp, _)) in r.ops.iter().enumerate() {
            assert_eq!(*stamp, i as u64, "merged stream is stamp-contiguous");
        }
    }

    #[test]
    fn eager_mode_writes_and_recovers_without_group_commit() {
        let disk = Arc::new(Disk::new());
        let cfg = ShardConfig::default().without_group_commit();
        let sink = ShardedJournalSink::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg);
        for i in 0..10u64 {
            emit_op(&sink, Tid(1), &[create(100 + i)]);
        }
        assert!(sink.log_bytes() > 0, "eager mode writes at stage time");
        sink.sync().unwrap();
        let r = recover_sharded(&disk, sink.config());
        assert_eq!(r.ops.len(), 10);
    }

    #[test]
    fn dead_shard_degrades_whole_mount_stickily() {
        use crate::faults::{FaultPlan, FaultyDisk};
        let dev = Arc::new(FaultyDisk::new(
            Arc::new(Disk::new()),
            FaultPlan::none(0).with_permanent_failure_after(4),
        ));
        let sink = ShardedJournalSink::new(dev, cfg());
        let mut died = false;
        for i in 0..500u64 {
            emit_op(&sink, Tid(1), &[create(100 + i)]);
            if sink.sync().is_err() {
                died = true;
                break;
            }
        }
        assert!(died, "the device never died");
        assert!(sink.health().is_degraded());
        assert!(
            sink.shard_reports().iter().any(|r| r.dead)
                || sink.counters().device_faults() > 0,
            "either a shard died on append or the flush path was charged"
        );
        // Sticky: syncs keep failing with the original cause.
        assert!(sink.sync().is_err());
        // Mutates arriving while degraded are counted, not staged.
        let before = sink.stamps_issued();
        emit_op(&sink, Tid(1), &[create(9999)]);
        assert_eq!(sink.stamps_issued(), before);
        assert!(sink.dropped_events() >= 1);
    }

    #[test]
    fn one_dead_device_quarantines_its_shard_and_survivors_keep_committing() {
        use crate::faults::{FaultPlan, FaultyDisk};
        let disk = Arc::new(Disk::new());
        let dead_shard = 2usize;
        // Shard 2 writes through a device that is dead on arrival; its
        // siblings share the healthy platter.
        let devices: Vec<Arc<dyn BlockDevice>> = (0..4)
            .map(|i| {
                if i == dead_shard {
                    Arc::new(FaultyDisk::new(
                        Arc::clone(&disk),
                        FaultPlan::none(7).with_permanent_failure_after(0),
                    )) as Arc<dyn BlockDevice>
                } else {
                    Arc::clone(&disk) as Arc<dyn BlockDevice>
                }
            })
            .collect();
        let sink = ShardedJournalSink::with_devices(devices, cfg());
        let ino_for = |shard: usize| (2u64..).find(|&i| shard_of(i, 4) == shard).expect("some ino");
        // One op per shard: staging order fixes stamp s on shard s's op.
        for s in 0..4 {
            emit_op(&sink, Tid(1), &[create(ino_for(s))]);
        }
        assert_eq!(sink.stamps_issued(), 4);
        // The committing sync reports the loss once...
        assert!(sink.sync().is_err(), "the loss must be reported");
        // ...but the mount survives: only the victim is quarantined.
        assert!(!sink.health().is_degraded(), "one dead shard must not degrade the mount");
        assert_eq!(sink.quarantined_shards(), vec![dead_shard]);
        assert_eq!(sink.quarantine_count(), 1);
        assert_eq!(sink.loss_events(), 1);
        assert!(sink.shard_quarantine_cause(dead_shard).is_some());
        // The discarded buffer's stamp is recorded as a loss window.
        let windows = sink.lost_stamp_windows();
        assert_eq!(windows, vec![(dead_shard as u64, dead_shard as u64 + 1)]);
        // Admission gates exactly the dead range.
        assert!(!sink.admit_mutation(ino_for(dead_shard)));
        assert!(sink.admit_mutation(ino_for(0)));
        // Survivors keep accepting and acking new epochs.
        let next_live = (ino_for(0) + 1..)
            .find(|&i| shard_of(i, 4) != dead_shard)
            .expect("some ino");
        emit_op(&sink, Tid(1), &[create(next_live)]);
        sink.sync().expect("post-quarantine syncs on survivors succeed");
        // Recovery surfaces the quarantine and replays around the window.
        let r = recover_sharded(&disk, sink.config());
        assert_eq!(r.quarantined_shards(), vec![dead_shard]);
        assert_eq!(r.lost_windows, windows);
        assert_eq!(r.truncated_at, None, "the recorded loss does not truncate");
        assert_eq!(r.lost_ops, 1);
        let stamps: Vec<u64> = r.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(stamps, vec![0, 1, 3, 4], "all surviving stamps replay");
    }

    #[test]
    fn unhinted_raw_mutates_route_by_target() {
        // Direct emission without OpBegin (no tid state at all) must not
        // panic and must still journal the op.
        let disk = Arc::new(Disk::new());
        let sink = ShardedJournalSink::new(Arc::clone(&disk) as Arc<dyn BlockDevice>, cfg());
        sink.emit(Event::Mutate {
            tid: Tid(42),
            mop: create(7),
        });
        sink.sync().unwrap();
        let r = recover_sharded(&disk, sink.config());
        assert_eq!(r.ops.len(), 1);
    }
}
