//! Crash safety for AtomFS — the paper's other named future work (§6).
//!
//! The paper's AtomFS is in-memory and explicitly excludes crashes, but
//! points at the design it would adopt: decouple the in-memory file
//! system from an on-disk representation via an operation log (the
//! ScaleFS approach it cites). This crate implements that substrate:
//!
//! * [`device::Disk`] — a simulated block device whose crash model
//!   includes out-of-order partial persistence of unflushed writes;
//! * [`wire`] — a checksummed, epoch-stamped binary record format for
//!   micro-operation batches;
//! * [`journal`] — an append-only log with prefix-exact recovery: the
//!   scan stops at the first torn/corrupt/stale record, so what survives
//!   a crash is always a *prefix* of the appended history;
//! * [`fs::JournaledFs`] — AtomFS wired to the log through its trace
//!   sink (every inode-granularity mutation is a log record, in global
//!   mutation order), with `sync()` as the durability barrier and
//!   recovery-as-checkpoint (log compaction);
//! * [`shard`] / [`group_commit`] / [`recovery`] — a sharded journal:
//!   N independent append streams (shard chosen by inode hash), each
//!   with its own device region, sequence space, and retry/degrade
//!   state, coordinated by epoch-based group commit. Cross-shard
//!   renames emit a two-phase intent/seal record pair; recovery scans
//!   shards in parallel, pairs intents with seals, and admits only the
//!   contiguous global stamp prefix, so prefix-exactness survives
//!   sharding;
//! * [`faults::FaultyDisk`] — seeded, deterministic fault injection
//!   behind the [`device::BlockDevice`] trait (transient errors,
//!   permanent device failure, torn writes, bit rot), which the
//!   journal's retry/degrade machinery ([`health`]) is tested against:
//!   exhausted retries flip the mount to read-only degraded mode
//!   instead of losing acked data or panicking.
//!
//! The correctness story composes with CRL-H: because the log records
//! the same micro-operation stream the checker's shadow state replays,
//! crash consistency reduces to prefix consistency of that stream, which
//! the `crash_consistency` integration tests assert under randomized
//! crash injection.
//!
//! Like the paper's discussion, this extension is *outside* the
//! linearizability-checked core: the checker validates in-memory
//! executions; the journal's own tests validate durability.

pub mod device;
pub mod faults;
pub mod fs;
pub mod group_commit;
pub mod health;
pub mod journal;
pub mod metrics;
pub mod recovery;
pub mod shard;
pub mod wire;

pub use device::{BlockDevice, Disk, DiskError, DiskOp};
pub use faults::{FaultPlan, FaultStats, FaultyDisk};
pub use fs::{materialize, mutations_of, JournalSink, JournaledFs, RecoveryStats};
pub use group_commit::ShardedJournalSink;
pub use health::{Health, HealthCounters, HealthReport, RecoverySummary, RetryPolicy};
pub use metrics::{register_journal_metrics, register_sharded_journal_metrics};
pub use journal::{recover, Journal, RecordClass, Recovered, SkipTotals, SkippedRecord};
pub use recovery::{
    recover_sharded, recover_sharded_sequential, scan_shard, ShardScan, ShardedRecovered,
};
pub use shard::{shard_of, ShardConfig, ShardGauges, ShardReport, ShardWriter};
