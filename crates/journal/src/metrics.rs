//! Bridge the journal's health state into an `atomfs_obs::Registry`.
//!
//! The journal already owns its counters ([`HealthCounters`] is shared
//! between the log writer and the mount), so rather than moving them the
//! bridge registers **callback metrics**: closures over the sink's `Arc`s
//! that are evaluated at render/snapshot time. One registry can therefore
//! expose the file system's latency histograms, the checker's helper
//! counters, and the journal's fault state side by side in a single
//! `render_prometheus()` dump.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use atomfs_obs::{FnKind, Registry};

use crate::fs::{JournalSink, JournaledFs, SinkKind};
use crate::group_commit::ShardedJournalSink;
use crate::health::HealthCounters;

/// Register the journal metric family for `sink` in `registry`.
///
/// Exposes: `journal_device_faults_total`, `journal_retries_total`,
/// `journal_degraded_flips_total`, `journal_dropped_events_total`
/// (counters); `journal_degraded`, `journal_log_bytes`, and — when the
/// mount was produced by recovery — `journal_recovery_ops_replayed` and
/// `journal_recovery_skipped{class=...}` (gauges).
pub fn register_journal_metrics(registry: &Registry, sink: &Arc<JournalSink>) {
    let counters: Arc<HealthCounters> = sink.counters();
    let c = Arc::clone(&counters);
    registry.register_fn(
        "journal_device_faults_total",
        &[],
        "Device errors observed (before retry absorption).",
        FnKind::Counter,
        move || c.device_faults.load(Ordering::Relaxed) as f64,
    );
    let c = Arc::clone(&counters);
    registry.register_fn(
        "journal_retries_total",
        &[],
        "Retries issued after transient device errors.",
        FnKind::Counter,
        move || c.retries.load(Ordering::Relaxed) as f64,
    );
    let c = Arc::clone(&counters);
    registry.register_fn(
        "journal_degraded_flips_total",
        &[],
        "Healthy-to-degraded transitions of the mount.",
        FnKind::Counter,
        move || c.degraded_flips.load(Ordering::Relaxed) as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_dropped_events_total",
        &[],
        "Mutation events dropped while degraded (invariant: stays 0).",
        FnKind::Counter,
        move || s.dropped_events() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_degraded",
        &[],
        "1 when the mount is read-only degraded, else 0.",
        FnKind::Gauge,
        move || {
            if s.health().is_degraded() {
                1.0
            } else {
                0.0
            }
        },
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_log_bytes",
        &[],
        "Bytes appended to the current log generation.",
        FnKind::Gauge,
        move || s.log_bytes() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_recovery_ops_replayed",
        &[],
        "Mutations replayed by the recovery that produced this mount (0 for a fresh mount).",
        FnKind::Gauge,
        move || {
            s.health_report()
                .recovery
                .map_or(0.0, |r| r.ops_replayed as f64)
        },
    );
    for (class, get) in [
        ("torn", (|r| r.torn) as fn(crate::health::RecoverySummary) -> u64),
        ("checksum_mismatch", |r| r.checksum_mismatch),
        ("stale_epoch", |r| r.stale_epoch),
        ("orphaned", |r| r.orphaned),
        ("garbage", |r| r.garbage),
    ] {
        let s = Arc::clone(sink);
        registry.register_fn(
            "journal_recovery_skipped",
            &[("class", class)],
            "Records the recovery scrub refused, by classification.",
            FnKind::Gauge,
            move || s.health_report().recovery.map_or(0.0, |r| get(r) as f64),
        );
    }
}

/// Register the sharded-journal metric family for `sink` in `registry`.
///
/// Exposes the same mount-level family as [`register_journal_metrics`]
/// (`journal_device_faults_total`, `journal_retries_total`,
/// `journal_degraded_flips_total`, `journal_dropped_events_total`,
/// `journal_degraded`, `journal_log_bytes`, recovery gauges) plus the
/// epoch machinery (`journal_open_epoch`, `journal_sealed_epoch`) and a
/// per-shard family labeled `shard="i"`: `journal_shard_log_bytes`,
/// `journal_shard_sealed_epoch`, `journal_shard_epoch_lag`,
/// `journal_shard_faults_total`, `journal_shard_retries_total`, and
/// `journal_shard_dead`.
pub fn register_sharded_journal_metrics(registry: &Registry, sink: &Arc<ShardedJournalSink>) {
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_device_faults_total",
        &[],
        "Device errors observed (before retry absorption), summed over shards.",
        FnKind::Counter,
        move || s.total_faults() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_retries_total",
        &[],
        "Retries issued after transient device errors, summed over shards.",
        FnKind::Counter,
        move || s.total_retries() as f64,
    );
    let c = sink.counters();
    registry.register_fn(
        "journal_degraded_flips_total",
        &[],
        "Healthy-to-degraded transitions of the mount.",
        FnKind::Counter,
        move || c.degraded_flips.load(Ordering::Relaxed) as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_dropped_events_total",
        &[],
        "Mutation events dropped while degraded (invariant: stays 0).",
        FnKind::Counter,
        move || s.dropped_events() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_degraded",
        &[],
        "1 when the mount is read-only degraded, else 0.",
        FnKind::Gauge,
        move || {
            if s.health().is_degraded() {
                1.0
            } else {
                0.0
            }
        },
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_log_bytes",
        &[],
        "Bytes appended to the current log generation, summed over shards.",
        FnKind::Gauge,
        move || s.log_bytes() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_open_epoch",
        &[],
        "Epoch currently accepting staged mutations.",
        FnKind::Gauge,
        move || s.open_epoch() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_sealed_epoch",
        &[],
        "Highest epoch durably sealed on every shard.",
        FnKind::Gauge,
        move || s.sealed_epoch() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_recovery_ops_replayed",
        &[],
        "Mutations replayed by the recovery that produced this mount (0 for a fresh mount).",
        FnKind::Gauge,
        move || {
            s.health_report()
                .recovery
                .map_or(0.0, |r| r.ops_replayed as f64)
        },
    );
    for (class, get) in [
        ("torn", (|r| r.torn) as fn(crate::health::RecoverySummary) -> u64),
        ("checksum_mismatch", |r| r.checksum_mismatch),
        ("stale_epoch", |r| r.stale_epoch),
        ("orphaned", |r| r.orphaned),
        ("garbage", |r| r.garbage),
    ] {
        let s = Arc::clone(sink);
        registry.register_fn(
            "journal_recovery_skipped",
            &[("class", class)],
            "Records the recovery scrub refused, by classification.",
            FnKind::Gauge,
            move || s.health_report().recovery.map_or(0.0, |r| get(r) as f64),
        );
    }
    // The quarantine family: partial-degradation state bridged the same
    // way as the recovery gauges, so a scrape shows *which* shards are
    // dead and how much licensed loss the windows currently cover.
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_dead_shard_mask",
        &[],
        "Bitmask of quarantined shards (bit i set = shard i dead).",
        FnKind::Gauge,
        move || s.dead_mask() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_lost_stamp_windows",
        &[],
        "Coalesced lost-stamp windows licensed by quarantine frames.",
        FnKind::Gauge,
        move || s.lost_stamp_windows().len() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_lost_stamp_window_width",
        &[],
        "Total stamps covered by the licensed lost-stamp windows.",
        FnKind::Gauge,
        move || {
            s.lost_stamp_windows()
                .iter()
                .map(|&(lo, hi)| hi.saturating_sub(lo))
                .sum::<u64>() as f64
        },
    );
    for i in 0..sink.shard_count() {
        let shard = i.to_string();
        let labels = [("shard", shard.as_str())];
        let g = sink.shard_gauges(i);
        registry.register_fn(
            "journal_shard_log_bytes",
            &labels,
            "Bytes appended to this shard's region.",
            FnKind::Gauge,
            move || g.log_bytes.load(Ordering::Relaxed) as f64,
        );
        let g = sink.shard_gauges(i);
        registry.register_fn(
            "journal_shard_sealed_epoch",
            &labels,
            "Highest epoch this shard has durably sealed.",
            FnKind::Gauge,
            move || g.sealed_epoch.load(Ordering::Relaxed) as f64,
        );
        let s = Arc::clone(sink);
        registry.register_fn(
            "journal_shard_epoch_lag",
            &labels,
            "Committed epochs this shard has not yet sealed.",
            FnKind::Gauge,
            move || s.shard_report(i).epoch_lag as f64,
        );
        let c = sink.shard_counters(i);
        registry.register_fn(
            "journal_shard_faults_total",
            &labels,
            "Device faults charged to this shard.",
            FnKind::Counter,
            move || c.device_faults.load(Ordering::Relaxed) as f64,
        );
        let c = sink.shard_counters(i);
        registry.register_fn(
            "journal_shard_retries_total",
            &labels,
            "Retries charged to this shard.",
            FnKind::Counter,
            move || c.retries.load(Ordering::Relaxed) as f64,
        );
        let g = sink.shard_gauges(i);
        registry.register_fn(
            "journal_shard_dead",
            &labels,
            "1 when this shard's device region failed permanently.",
            FnKind::Gauge,
            move || {
                if g.dead.load(Ordering::Relaxed) {
                    1.0
                } else {
                    0.0
                }
            },
        );
    }
}

impl JournaledFs {
    /// Bridge this mount's health state into `registry` (see
    /// [`register_journal_metrics`] and
    /// [`register_sharded_journal_metrics`]).
    pub fn register_metrics(&self, registry: &Registry) {
        match self.sink_kind() {
            SinkKind::Single(sink) => register_journal_metrics(registry, sink),
            SinkKind::Sharded(sink) => register_sharded_journal_metrics(registry, sink),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BlockDevice, Disk};
    use atomfs_vfs::FileSystem;

    #[test]
    fn fresh_mount_renders_zeros() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        let reg = Registry::new();
        jfs.register_metrics(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("journal_device_faults_total 0"));
        assert!(text.contains("journal_degraded 0"));
        assert!(text.contains("journal_recovery_ops_replayed 0"));
    }

    #[test]
    fn sharded_mount_renders_per_shard_family() {
        use crate::shard::ShardConfig;
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create_sharded(
            Arc::clone(&disk) as Arc<dyn BlockDevice>,
            ShardConfig::with_shards(2),
        );
        let reg = Registry::new();
        jfs.register_metrics(&reg);
        for i in 0..8 {
            jfs.mkdir(&format!("/d{i}")).unwrap();
        }
        jfs.sync().unwrap();
        let text = reg.render_prometheus();
        if !atomfs_obs::ENABLED {
            return; // obs-off: the registry compiles to a no-op.
        }
        assert!(text.contains("journal_shard_log_bytes{shard=\"0\"}"));
        assert!(text.contains("journal_shard_log_bytes{shard=\"1\"}"));
        assert!(text.contains("journal_shard_sealed_epoch{shard=\"0\"} 1"));
        assert!(text.contains("journal_shard_dead{shard=\"0\"} 0"));
        assert!(text.contains("journal_sealed_epoch 1"));
        assert!(text.contains("journal_open_epoch 2"));
        assert!(text.contains("journal_degraded 0"));
        let snap = reg.snapshot();
        let total = snap.gauge("journal_log_bytes").unwrap();
        assert!(total > 0.0);
    }

    #[test]
    fn shard_epoch_lag_tracks_a_dead_shard() {
        use crate::faults::{FaultPlan, FaultyDisk};
        use crate::shard::ShardConfig;
        let dev = Arc::new(FaultyDisk::new(
            Arc::new(Disk::new()),
            FaultPlan::none(0).with_permanent_failure_after(4),
        ));
        let jfs = JournaledFs::create_sharded(dev, ShardConfig::with_shards(2));
        let reg = Registry::new();
        jfs.register_metrics(&reg);
        for i in 0..50 {
            if jfs.mkdir(&format!("/d{i}")).and_then(|_| jfs.sync()).is_err() {
                break;
            }
        }
        assert!(jfs.health().is_degraded());
        if !atomfs_obs::ENABLED {
            return;
        }
        let text = reg.render_prometheus();
        assert!(text.contains("journal_degraded 1"));
        assert!(text.contains("journal_degraded_flips_total 1"));
        // The per-shard family stays renderable on a degraded mount.
        assert!(text.contains("journal_shard_epoch_lag{shard=\"0\"}"));
        assert!(text.contains("journal_shard_epoch_lag{shard=\"1\"}"));
    }

    #[test]
    fn quarantine_gauges_track_a_dead_shard() {
        use crate::faults::{FaultPlan, FaultyDisk};
        use crate::shard::{shard_of, ShardConfig};
        let cfg = ShardConfig::default();
        let shards = cfg.shard_count();
        let root_shard = shard_of(atomfs_trace::ROOT_INUM, shards);
        let victim = (root_shard + 1) % shards;
        let disk = Arc::new(Disk::new());
        let devices: Vec<Arc<dyn BlockDevice>> = (0..shards)
            .map(|s| {
                if s == victim {
                    Arc::new(FaultyDisk::new(
                        Arc::clone(&disk),
                        FaultPlan::none(1).with_permanent_failure_after(3),
                    )) as Arc<dyn BlockDevice>
                } else {
                    Arc::clone(&disk) as Arc<dyn BlockDevice>
                }
            })
            .collect();
        let sink = Arc::new(crate::group_commit::ShardedJournalSink::with_devices(
            devices, cfg,
        ));
        let reg = Registry::new();
        register_sharded_journal_metrics(&reg, &sink);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("journal_dead_shard_mask"), Some(0.0));
        assert_eq!(snap.gauge("journal_lost_stamp_window_width"), Some(0.0));

        // Drive stamped creates through the sink until the victim's
        // device dies and a sync records the loss.
        use atomfs_trace::{Event, MicroOp, OpDesc, OpRet, Tid, TraceSink};
        let tid = Tid(1);
        let mut saw_err = false;
        for i in 0..200u64 {
            let ino = 100 + i;
            sink.emit(Event::OpBegin {
                tid,
                op: OpDesc::Mknod {
                    path: vec![format!("f{i}")],
                },
            });
            sink.emit(Event::Mutate {
                tid,
                mop: MicroOp::Create {
                    ino,
                    ftype: atomfs_vfs::FileType::File,
                },
            });
            sink.emit(Event::Lp { tid });
            sink.emit(Event::OpEnd { tid, ret: OpRet::Ok });
            if i % 5 == 4 && sink.sync().is_err() {
                saw_err = true;
                break;
            }
        }
        let _ = sink.sync();
        assert!(saw_err || !sink.quarantined_shards().is_empty());
        let snap = reg.snapshot();
        let mask = snap.gauge("journal_dead_shard_mask").unwrap() as u64;
        assert_eq!(mask, sink.dead_mask());
        assert_ne!(mask, 0, "no shard quarantined");
        let width = snap.gauge("journal_lost_stamp_window_width").unwrap() as u64;
        let expect: u64 = sink
            .lost_stamp_windows()
            .iter()
            .map(|&(lo, hi)| hi - lo)
            .sum();
        assert_eq!(width, expect);
    }

    #[test]
    fn log_bytes_gauge_tracks_appends() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        let reg = Registry::new();
        jfs.register_metrics(&reg);
        assert_eq!(reg.snapshot().gauge("journal_log_bytes"), Some(0.0));
        jfs.mkdir("/d").unwrap();
        let bytes = reg.snapshot().gauge("journal_log_bytes").unwrap();
        assert!(bytes > 0.0, "append did not move the gauge");
    }
}
