//! Bridge the journal's health state into an `atomfs_obs::Registry`.
//!
//! The journal already owns its counters ([`HealthCounters`] is shared
//! between the log writer and the mount), so rather than moving them the
//! bridge registers **callback metrics**: closures over the sink's `Arc`s
//! that are evaluated at render/snapshot time. One registry can therefore
//! expose the file system's latency histograms, the checker's helper
//! counters, and the journal's fault state side by side in a single
//! `render_prometheus()` dump.

use std::sync::atomic::Ordering;
use std::sync::Arc;

use atomfs_obs::{FnKind, Registry};

use crate::fs::{JournalSink, JournaledFs};
use crate::health::HealthCounters;

/// Register the journal metric family for `sink` in `registry`.
///
/// Exposes: `journal_device_faults_total`, `journal_retries_total`,
/// `journal_degraded_flips_total`, `journal_dropped_events_total`
/// (counters); `journal_degraded`, `journal_log_bytes`, and — when the
/// mount was produced by recovery — `journal_recovery_ops_replayed` and
/// `journal_recovery_skipped{class=...}` (gauges).
pub fn register_journal_metrics(registry: &Registry, sink: &Arc<JournalSink>) {
    let counters: Arc<HealthCounters> = sink.counters();
    let c = Arc::clone(&counters);
    registry.register_fn(
        "journal_device_faults_total",
        &[],
        "Device errors observed (before retry absorption).",
        FnKind::Counter,
        move || c.device_faults.load(Ordering::Relaxed) as f64,
    );
    let c = Arc::clone(&counters);
    registry.register_fn(
        "journal_retries_total",
        &[],
        "Retries issued after transient device errors.",
        FnKind::Counter,
        move || c.retries.load(Ordering::Relaxed) as f64,
    );
    let c = Arc::clone(&counters);
    registry.register_fn(
        "journal_degraded_flips_total",
        &[],
        "Healthy-to-degraded transitions of the mount.",
        FnKind::Counter,
        move || c.degraded_flips.load(Ordering::Relaxed) as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_dropped_events_total",
        &[],
        "Mutation events dropped while degraded (invariant: stays 0).",
        FnKind::Counter,
        move || s.dropped_events() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_degraded",
        &[],
        "1 when the mount is read-only degraded, else 0.",
        FnKind::Gauge,
        move || {
            if s.health().is_degraded() {
                1.0
            } else {
                0.0
            }
        },
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_log_bytes",
        &[],
        "Bytes appended to the current log generation.",
        FnKind::Gauge,
        move || s.log_bytes() as f64,
    );
    let s = Arc::clone(sink);
    registry.register_fn(
        "journal_recovery_ops_replayed",
        &[],
        "Mutations replayed by the recovery that produced this mount (0 for a fresh mount).",
        FnKind::Gauge,
        move || {
            s.health_report()
                .recovery
                .map_or(0.0, |r| r.ops_replayed as f64)
        },
    );
    for (class, get) in [
        ("torn", (|r| r.torn) as fn(crate::health::RecoverySummary) -> u64),
        ("checksum_mismatch", |r| r.checksum_mismatch),
        ("stale_epoch", |r| r.stale_epoch),
        ("orphaned", |r| r.orphaned),
        ("garbage", |r| r.garbage),
    ] {
        let s = Arc::clone(sink);
        registry.register_fn(
            "journal_recovery_skipped",
            &[("class", class)],
            "Records the recovery scrub refused, by classification.",
            FnKind::Gauge,
            move || s.health_report().recovery.map_or(0.0, |r| get(r) as f64),
        );
    }
}

impl JournaledFs {
    /// Bridge this mount's health state into `registry` (see
    /// [`register_journal_metrics`]).
    pub fn register_metrics(&self, registry: &Registry) {
        register_journal_metrics(registry, self.sink());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{BlockDevice, Disk};
    use atomfs_vfs::FileSystem;

    #[test]
    fn fresh_mount_renders_zeros() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        let reg = Registry::new();
        jfs.register_metrics(&reg);
        let text = reg.render_prometheus();
        assert!(text.contains("journal_device_faults_total 0"));
        assert!(text.contains("journal_degraded 0"));
        assert!(text.contains("journal_recovery_ops_replayed 0"));
    }

    #[test]
    fn log_bytes_gauge_tracks_appends() {
        let disk = Arc::new(Disk::new());
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn BlockDevice>);
        let reg = Registry::new();
        jfs.register_metrics(&reg);
        assert_eq!(reg.snapshot().gauge("journal_log_bytes"), Some(0.0));
        jfs.mkdir("/d").unwrap();
        let bytes = reg.snapshot().gauge("journal_log_bytes").unwrap();
        assert!(bytes > 0.0, "append did not move the gauge");
    }
}
