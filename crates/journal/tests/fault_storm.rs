//! Randomized fault-schedule × crash-schedule storms.
//!
//! Every seeded schedule must terminate in a lawful state — healthy,
//! cleanly degraded (reads served, mutations `EROFS`, syncs `EIO`), or
//! recovered — with zero panics, zero lost acked `sync()` data (for
//! schedules without silent corruption), and recovery landing on
//! *exactly* the replayed prefix of the recorded mutation history, with
//! anything it refused itemized in `RecoveryStats::skipped`.
//!
//! `FAULT_STORM_SEED=<n>` pins the run to a single seed (the CI fault-
//! storm matrix fans one job out per seed); unset, a fixed sweep runs.

use std::sync::Arc;

use atomfs_journal::{Disk, FaultPlan, FaultyDisk, Health, JournaledFs, RetryPolicy};
use atomfs_trace::{BufferSink, Event, MicroOp, TraceSink};
use atomfs_vfs::{FileSystem, FsError};
use crlh::FsState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_STORM_SEED") {
        Ok(s) => vec![s.parse().expect("FAULT_STORM_SEED must be a u64")],
        Err(_) => (0..8).collect(),
    }
}

/// All states reachable by prefixes of `muts` (index = prefix length).
fn prefix_states(muts: &[MicroOp]) -> Vec<FsState> {
    let mut states = Vec::with_capacity(muts.len() + 1);
    let mut s = FsState::new();
    states.push(s.clone());
    for m in muts {
        s.apply_micro(m).expect("recorded stream replays");
        states.push(s.clone());
    }
    states
}

/// Canonical content comparison between a recovered live FS and an
/// abstract state: same tree shape, names, and file bytes.
fn fs_matches_state(fs: &dyn FileSystem, state: &FsState) -> bool {
    fn walk(fs: &dyn FileSystem, state: &FsState, id: u64, path: &str) -> bool {
        match state.node(id) {
            Some(crlh::Node::Dir(entries)) => {
                let Ok(mut names) = fs.readdir(path) else {
                    return false;
                };
                names.sort();
                let mut expected: Vec<&String> = entries.keys().collect();
                expected.sort();
                if names.iter().collect::<Vec<_>>() != expected {
                    return false;
                }
                entries.iter().all(|(name, child)| {
                    walk(fs, state, *child, &atomfs_vfs::path::join(path, name))
                })
            }
            Some(crlh::Node::File(data)) => {
                let Ok(meta) = fs.stat(path) else {
                    return false;
                };
                if meta.size != data.len() as u64 {
                    return false;
                }
                let mut buf = vec![0u8; data.len()];
                matches!(fs.read(path, 0, &mut buf), Ok(n) if n == data.len() && buf == *data)
            }
            None => false,
        }
    }
    walk(fs, state, state.root, "/")
}

fn mutations(recorder: &BufferSink) -> Vec<MicroOp> {
    recorder
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            Event::Mutate { mop, .. } => Some(mop.clone()),
            _ => None,
        })
        .collect()
}

struct StormOutcome {
    /// Mutation count at the last `sync()` that returned `Ok` (acked).
    acked: Option<usize>,
    /// Whether the mount degraded during the run.
    degraded: bool,
}

/// Drive a random workload, asserting the degraded-mode invariants as
/// they become observable: errors only with degraded health, degradation
/// sticky, reads always served.
fn drive(jfs: &JournaledFs, recorder: &BufferSink, rng: &mut StdRng, ops: usize) -> StormOutcome {
    let mut acked = None;
    let mut degraded = false;
    for i in 0..ops {
        let d = format!("/d{}", rng.random_range(0..3));
        let f = format!("{d}/f{}", rng.random_range(0..4));
        let g = format!("/d{}/g{}", rng.random_range(0..3), rng.random_range(0..3));
        let mut synced_now = false;
        let outcome: Result<(), FsError> = match rng.random_range(0..8) {
            0 => jfs.mkdir(&d),
            1 => jfs.mknod(&f),
            2 => jfs.write(&f, (i % 5) as u64, &[i as u8; 64]).map(|_| ()),
            3 => jfs.unlink(&f),
            4 => jfs.rename(&f, &g),
            5 => jfs.truncate(&f, (i % 40) as u64),
            6 => jfs.rmdir(&d),
            _ => {
                synced_now = true;
                jfs.sync()
            }
        };
        match outcome {
            Ok(()) => {
                if synced_now {
                    acked = Some(mutations(recorder).len());
                }
            }
            Err(FsError::ReadOnly) | Err(FsError::Io) => {
                assert!(
                    jfs.health().is_degraded(),
                    "op {i}: EROFS/EIO from a mount whose health says Healthy"
                );
                degraded = true;
            }
            // Workload-level noise (racing against our own random
            // unlinks): not a storage outcome.
            Err(_) => {}
        }
        if degraded {
            assert!(
                jfs.health().is_degraded(),
                "op {i}: degradation must be sticky"
            );
            assert!(jfs.readdir("/").is_ok(), "op {i}: degraded reads must work");
        }
    }
    StormOutcome { acked, degraded }
}

#[test]
fn fault_storm_every_schedule_terminates_in_a_lawful_state() {
    for seed in seeds() {
        let plan = FaultPlan::storm(seed);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs = JournaledFs::create_observed(
            dev,
            RetryPolicy::default(),
            Arc::clone(&recorder) as Arc<dyn TraceSink>,
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let out = drive(&jfs, &recorder, &mut rng, 160);
        if let Health::Healthy = jfs.health() {
            assert!(!out.degraded, "seed {seed}: health lost the degradation");
        }
        // Read-only gating stops every op that has not yet started, so a
        // healthy run drops nothing, and a degraded run can drop at most
        // the trailing micro-ops of the single op in flight when the
        // device died (an op emits at most a handful of micro-ops).
        let dropped = jfs.health_report().dropped_events;
        if !out.degraded {
            assert_eq!(dropped, 0, "seed {seed}: healthy run dropped events");
        } else {
            assert!(
                dropped <= 4,
                "seed {seed}: {dropped} drops — gating failed to stop a post-degradation op"
            );
        }
        let muts = mutations(&recorder);
        drop(jfs);

        // Crash with a seeded adversarial subset of queued writes kept.
        let keep_mod = 2 + (seed % 4);
        disk.crash(|i| (i as u64) % keep_mod == 0);

        let (recovered, stats) =
            JournaledFs::recover(Arc::clone(&disk)).expect("recovery never fails");
        let k = stats.ops_replayed;
        assert!(k <= muts.len(), "seed {seed}: replayed invented history");
        let states = prefix_states(&muts);
        assert!(
            fs_matches_state(&recovered, &states[k]),
            "seed {seed}: recovered tree is not exactly the {k}-mutation prefix of {}",
            muts.len()
        );
        // Silent-corruption classes (torn writes, bit flips) may destroy
        // data *after* it was acked; every other schedule must keep
        // every acked mutation.
        if !plan.corrupts_silently() {
            if let Some(acked) = out.acked {
                assert!(
                    k >= acked,
                    "seed {seed}: lost acked sync data (prefix {k} < acked {acked})"
                );
            }
        }
        // The recovered mount (fresh generation on the raw platter) works.
        recovered.mkdir("/post-recovery").unwrap();
        recovered.sync().unwrap();
    }
}

#[test]
fn transient_only_schedules_stay_healthy_and_lose_nothing() {
    for seed in seeds() {
        let plan = FaultPlan::none(seed).with_transient(3_000, 3_000, 3_000);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs = JournaledFs::create_observed(
            dev,
            RetryPolicy::default(),
            Arc::clone(&recorder) as Arc<dyn TraceSink>,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let out = drive(&jfs, &recorder, &mut rng, 120);
        assert!(
            !out.degraded,
            "seed {seed}: the retry policy failed to absorb a ~4.6% transient rate"
        );
        assert_eq!(jfs.health(), Health::Healthy);
        let muts = mutations(&recorder);
        drop(jfs);
        disk.crash(|_| false);
        let (recovered, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        let k = stats.ops_replayed;
        assert!(fs_matches_state(&recovered, &prefix_states(&muts)[k]));
        if let Some(acked) = out.acked {
            assert!(k >= acked, "seed {seed}: lost acked data under transients");
        }
        assert!(
            stats.skipped.iter().all(|s| s.offset >= stats.log_bytes),
            "seed {seed}: a skipped record inside the replayed prefix"
        );
    }
}

#[test]
fn bit_flip_storms_recover_to_an_itemized_prefix() {
    for seed in seeds() {
        let plan = FaultPlan::none(seed).with_bit_flips(20_000);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs = JournaledFs::create_observed(
            dev,
            RetryPolicy::default(),
            Arc::clone(&recorder) as Arc<dyn TraceSink>,
        );
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let out = drive(&jfs, &recorder, &mut rng, 120);
        let muts = mutations(&recorder);
        drop(jfs);
        disk.crash(|_| false);
        let (recovered, stats) = JournaledFs::recover(Arc::clone(&disk)).unwrap();
        let k = stats.ops_replayed;
        // Always prefix-exact, even when rot ate acked records...
        assert!(
            fs_matches_state(&recovered, &prefix_states(&muts)[k]),
            "seed {seed}: recovery under bit rot must still land on a prefix"
        );
        // ...and when it did, the loss is *reported*, never silent.
        if let Some(acked) = out.acked {
            if k < acked {
                assert!(
                    !stats.skipped.is_empty(),
                    "seed {seed}: lost acked records without itemizing the skip"
                );
            }
        }
    }
}

#[test]
fn checker_accepts_the_trace_of_degraded_runs() {
    use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};
    for seed in seeds() {
        let plan = FaultPlan::none(seed).with_permanent_failure_after(30 + seed * 7);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let checker = Arc::new(OnlineChecker::new(CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        }));
        let jfs = JournaledFs::create_observed(
            dev,
            RetryPolicy::default(),
            Arc::clone(&checker) as Arc<dyn TraceSink>,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut degraded = false;
        for i in 0..200 {
            let f = format!("/f{}", rng.random_range(0..10));
            let r = match rng.random_range(0..4) {
                0 => jfs.mknod(&f),
                1 => jfs.write(&f, 0, &[i as u8; 32]).map(|_| ()),
                2 => jfs.unlink(&f),
                _ => jfs.sync(),
            };
            if matches!(r, Err(FsError::ReadOnly) | Err(FsError::Io)) {
                degraded = true;
            }
        }
        assert!(degraded, "seed {seed}: device never died; storm too gentle");
        drop(jfs);
        // The trace the checker saw contains exactly the mutations that
        // happened — degraded-mode gating refuses mutations *before*
        // AtomFS, so no half-performed op ever reaches the stream.
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();
    }
}
