//! Randomized fault-schedule × crash-schedule storms.
//!
//! Every seeded schedule must terminate in a lawful state — healthy,
//! cleanly degraded (reads served, mutations `EROFS`, syncs `EIO`), or
//! recovered — with zero panics, zero lost acked `sync()` data (for
//! schedules without silent corruption), and recovery landing on
//! *exactly* the replayed prefix of the recorded mutation history, with
//! anything it refused itemized in `RecoveryStats::skipped`.
//!
//! `FAULT_STORM_SEED=<n>` pins the run to a single seed (the CI fault-
//! storm matrix fans one job out per seed); unset, a fixed sweep runs.
//! `FAULT_STORM_LAYOUT=sharded` re-runs the storm suite against the
//! sharded journal layout (epoch group commit, default shard count)
//! instead of the single-stream journal.

use std::sync::Arc;

use atomfs_journal::{
    BlockDevice, Disk, FaultPlan, FaultyDisk, Health, JournaledFs, RecoveryStats, RetryPolicy,
    ShardConfig,
};
use atomfs_trace::{BufferSink, Event, MicroOp, TraceSink};
use atomfs_vfs::{FileSystem, FsError};
use crlh::FsState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn seeds() -> Vec<u64> {
    match std::env::var("FAULT_STORM_SEED") {
        Ok(s) => vec![s.parse().expect("FAULT_STORM_SEED must be a u64")],
        Err(_) => (0..8).collect(),
    }
}

fn layout_sharded() -> bool {
    std::env::var("FAULT_STORM_LAYOUT").map_or(false, |v| v == "sharded")
}

/// Mount per the selected layout, with `observer` watching the stream.
fn mount_observed(dev: Arc<dyn BlockDevice>, observer: Arc<dyn TraceSink>) -> JournaledFs {
    if layout_sharded() {
        JournaledFs::create_sharded_observed(dev, ShardConfig::default(), observer)
    } else {
        JournaledFs::create_observed(dev, RetryPolicy::default(), observer)
    }
}

/// Recover per the selected layout.
fn remount(disk: Arc<Disk>) -> (JournaledFs, RecoveryStats) {
    if layout_sharded() {
        JournaledFs::recover_sharded(disk, ShardConfig::default()).expect("recovery never fails")
    } else {
        JournaledFs::recover(disk).expect("recovery never fails")
    }
}

/// All states reachable by prefixes of `muts` (index = prefix length).
fn prefix_states(muts: &[MicroOp]) -> Vec<FsState> {
    let mut states = Vec::with_capacity(muts.len() + 1);
    let mut s = FsState::new();
    states.push(s.clone());
    for m in muts {
        s.apply_micro(m).expect("recorded stream replays");
        states.push(s.clone());
    }
    states
}

/// Canonical content comparison between a recovered live FS and an
/// abstract state: same tree shape, names, and file bytes.
fn fs_matches_state(fs: &dyn FileSystem, state: &FsState) -> bool {
    fn walk(fs: &dyn FileSystem, state: &FsState, id: u64, path: &str) -> bool {
        match state.node(id) {
            Some(crlh::Node::Dir(entries)) => {
                let Ok(mut names) = fs.readdir(path) else {
                    return false;
                };
                names.sort();
                let mut expected: Vec<&String> = entries.keys().collect();
                expected.sort();
                if names.iter().collect::<Vec<_>>() != expected {
                    return false;
                }
                entries.iter().all(|(name, child)| {
                    walk(fs, state, *child, &atomfs_vfs::path::join(path, name))
                })
            }
            Some(crlh::Node::File(data)) => {
                let Ok(meta) = fs.stat(path) else {
                    return false;
                };
                if meta.size != data.len() as u64 {
                    return false;
                }
                let mut buf = vec![0u8; data.len()];
                matches!(fs.read(path, 0, &mut buf), Ok(n) if n == data.len() && buf == *data)
            }
            None => false,
        }
    }
    walk(fs, state, state.root, "/")
}

fn mutations(recorder: &BufferSink) -> Vec<MicroOp> {
    recorder
        .snapshot()
        .iter()
        .filter_map(|e| match e {
            Event::Mutate { mop, .. } => Some(mop.clone()),
            _ => None,
        })
        .collect()
}

struct StormOutcome {
    /// Mutation count at the last `sync()` that returned `Ok` (acked).
    acked: Option<usize>,
    /// Whether the run was impaired: mount degraded, or (sharded layout)
    /// at least one shard quarantined while the mount stayed writable.
    degraded: bool,
}

/// Whether storage has lawfully impaired this mount: whole-mount
/// degradation, or — sharded layout only — a quarantined shard whose
/// inode range refuses mutations while the mount stays healthy.
fn impaired(jfs: &JournaledFs) -> bool {
    jfs.health().is_degraded()
        || jfs
            .sharded_sink()
            .is_some_and(|s| s.quarantine_count() > 0)
}

/// Drive a random workload, asserting the degraded-mode invariants as
/// they become observable: errors only when degraded or quarantined,
/// impairment sticky, reads always served.
fn drive(jfs: &JournaledFs, recorder: &BufferSink, rng: &mut StdRng, ops: usize) -> StormOutcome {
    let mut acked = None;
    let mut degraded = false;
    for i in 0..ops {
        let d = format!("/d{}", rng.random_range(0..3));
        let f = format!("{d}/f{}", rng.random_range(0..4));
        let g = format!("/d{}/g{}", rng.random_range(0..3), rng.random_range(0..3));
        let mut synced_now = false;
        let outcome: Result<(), FsError> = match rng.random_range(0..8) {
            0 => jfs.mkdir(&d),
            1 => jfs.mknod(&f),
            2 => jfs.write(&f, (i % 5) as u64, &[i as u8; 64]).map(|_| ()),
            3 => jfs.unlink(&f),
            4 => jfs.rename(&f, &g),
            5 => jfs.truncate(&f, (i % 40) as u64),
            6 => jfs.rmdir(&d),
            _ => {
                synced_now = true;
                jfs.sync()
            }
        };
        match outcome {
            Ok(()) => {
                if synced_now {
                    acked = Some(mutations(recorder).len());
                }
            }
            Err(FsError::ReadOnly) | Err(FsError::Io) => {
                assert!(
                    impaired(jfs),
                    "op {i}: EROFS/EIO with Healthy health and no quarantined shard"
                );
                degraded = true;
            }
            // Workload-level noise (racing against our own random
            // unlinks): not a storage outcome.
            Err(_) => {}
        }
        if degraded {
            assert!(impaired(jfs), "op {i}: impairment must be sticky");
            assert!(jfs.readdir("/").is_ok(), "op {i}: impaired reads must work");
        }
    }
    StormOutcome { acked, degraded }
}

#[test]
fn fault_storm_every_schedule_terminates_in_a_lawful_state() {
    for seed in seeds() {
        let plan = FaultPlan::storm(seed);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs = mount_observed(dev, Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let out = drive(&jfs, &recorder, &mut rng, 160);
        if let Health::Healthy = jfs.health() {
            assert!(
                !out.degraded || impaired(&jfs),
                "seed {seed}: health lost the degradation"
            );
        }
        // Read-only gating stops every op that has not yet started, so a
        // healthy run drops nothing, and a degraded run can drop at most
        // the trailing micro-ops of the single op in flight when the
        // device died (an op emits at most a handful of micro-ops).
        let dropped = jfs.health_report().dropped_events;
        if !out.degraded {
            assert_eq!(dropped, 0, "seed {seed}: healthy run dropped events");
        } else {
            assert!(
                dropped <= 4,
                "seed {seed}: {dropped} drops — gating failed to stop a post-degradation op"
            );
        }
        let muts = mutations(&recorder);
        drop(jfs);

        // Crash with a seeded adversarial subset of queued writes kept.
        let keep_mod = 2 + (seed % 4);
        disk.crash(|i| (i as u64) % keep_mod == 0);

        let (recovered, stats) = remount(Arc::clone(&disk));
        let k = stats.ops_replayed;
        assert!(k <= muts.len(), "seed {seed}: replayed invented history");
        let states = prefix_states(&muts);
        assert!(
            fs_matches_state(&recovered, &states[k]),
            "seed {seed}: recovered tree is not exactly the {k}-mutation prefix of {}",
            muts.len()
        );
        // Silent-corruption classes (torn writes, bit flips) may destroy
        // data *after* it was acked; every other schedule must keep
        // every acked mutation.
        if !plan.corrupts_silently() {
            if let Some(acked) = out.acked {
                assert!(
                    k >= acked,
                    "seed {seed}: lost acked sync data (prefix {k} < acked {acked})"
                );
            }
        }
        // The recovered mount (fresh generation on the raw platter) works.
        recovered.mkdir("/post-recovery").unwrap();
        recovered.sync().unwrap();
    }
}

#[test]
fn transient_only_schedules_stay_healthy_and_lose_nothing() {
    for seed in seeds() {
        let plan = FaultPlan::none(seed).with_transient(3_000, 3_000, 3_000);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs = mount_observed(dev, Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = drive(&jfs, &recorder, &mut rng, 120);
        assert!(
            !out.degraded,
            "seed {seed}: the retry policy failed to absorb a ~4.6% transient rate"
        );
        assert_eq!(jfs.health(), Health::Healthy);
        let muts = mutations(&recorder);
        drop(jfs);
        disk.crash(|_| false);
        let (recovered, stats) = remount(Arc::clone(&disk));
        let k = stats.ops_replayed;
        assert!(fs_matches_state(&recovered, &prefix_states(&muts)[k]));
        if let Some(acked) = out.acked {
            assert!(k >= acked, "seed {seed}: lost acked data under transients");
        }
        // Skip offsets are absolute in the single-stream log but
        // region-relative in the sharded layout, so the containment
        // check only types against the former.
        assert!(
            layout_sharded() || stats.skipped.iter().all(|s| s.offset >= stats.log_bytes),
            "seed {seed}: a skipped record inside the replayed prefix"
        );
    }
}

#[test]
fn bit_flip_storms_recover_to_an_itemized_prefix() {
    for seed in seeds() {
        let plan = FaultPlan::none(seed).with_bit_flips(20_000);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs = mount_observed(dev, Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(31));
        let out = drive(&jfs, &recorder, &mut rng, 120);
        let muts = mutations(&recorder);
        drop(jfs);
        disk.crash(|_| false);
        let (recovered, stats) = remount(Arc::clone(&disk));
        let k = stats.ops_replayed;
        // Always prefix-exact, even when rot ate acked records...
        assert!(
            fs_matches_state(&recovered, &prefix_states(&muts)[k]),
            "seed {seed}: recovery under bit rot must still land on a prefix"
        );
        // ...and when it did, the loss is *reported*, never silent.
        if let Some(acked) = out.acked {
            if k < acked {
                assert!(
                    !stats.skipped.is_empty(),
                    "seed {seed}: lost acked records without itemizing the skip"
                );
            }
        }
    }
}

#[test]
fn checker_accepts_the_trace_of_degraded_runs() {
    use crlh::{CheckerConfig, HelperMode, OnlineChecker, RelationCadence};
    for seed in seeds() {
        let plan = FaultPlan::none(seed).with_permanent_failure_after(30 + seed * 7);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let checker = Arc::new(OnlineChecker::new(CheckerConfig {
            mode: HelperMode::Helpers,
            relation: RelationCadence::AtUnlock,
            invariants: true,
        }));
        let jfs = mount_observed(dev, Arc::clone(&checker) as Arc<dyn TraceSink>);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut degraded = false;
        for i in 0..200 {
            let f = format!("/f{}", rng.random_range(0..10));
            let r = match rng.random_range(0..4) {
                0 => jfs.mknod(&f),
                1 => jfs.write(&f, 0, &[i as u8; 32]).map(|_| ()),
                2 => jfs.unlink(&f),
                _ => jfs.sync(),
            };
            if matches!(r, Err(FsError::ReadOnly) | Err(FsError::Io)) {
                degraded = true;
            }
        }
        assert!(degraded, "seed {seed}: device never died; storm too gentle");
        drop(jfs);
        // The trace the checker saw contains exactly the mutations that
        // happened — degraded-mode gating refuses mutations *before*
        // AtomFS, so no half-performed op ever reaches the stream.
        let report = Arc::into_inner(checker).expect("sole owner").finish();
        report.assert_ok();
    }
}

/// The sharded layout under full storms: every seed recovers to an exact
/// prefix of the recorded mutation history, and parallel recovery is
/// indistinguishable from the sequential one on the same platter.
#[test]
fn sharded_storms_recover_prefix_exact_and_parallel_equals_sequential() {
    for seed in seeds() {
        let cfg = ShardConfig::default();
        let plan = FaultPlan::storm(seed);
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs =
            JournaledFs::create_sharded_observed(dev, cfg, Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5A4D);
        let out = drive(&jfs, &recorder, &mut rng, 160);
        let muts = mutations(&recorder);
        drop(jfs);

        let keep_mod = 2 + (seed % 4);
        disk.crash(|i| (i as u64) % keep_mod == 0);

        // Parallel and sequential shard scans resolve identically.
        let par = atomfs_journal::recover_sharded(&disk, &cfg);
        let seq = atomfs_journal::recover_sharded_sequential(&disk, &cfg);
        assert_eq!(par.gen, seq.gen, "seed {seed}: generations diverge");
        assert_eq!(par.ops, seq.ops, "seed {seed}: replayed streams diverge");
        assert_eq!(
            par.sealed_epoch, seq.sealed_epoch,
            "seed {seed}: sealed-epoch HWMs diverge"
        );

        let (recovered, stats) =
            JournaledFs::recover_sharded(Arc::clone(&disk), cfg).expect("recovery never fails");
        let k = stats.ops_replayed;
        assert!(k <= muts.len(), "seed {seed}: replayed invented history");
        assert!(
            fs_matches_state(&recovered, &prefix_states(&muts)[k]),
            "seed {seed}: sharded recovery is not the {k}-mutation prefix of {}",
            muts.len()
        );
        if !plan.corrupts_silently() {
            if let Some(acked) = out.acked {
                assert!(
                    k >= acked,
                    "seed {seed}: lost an acked epoch (prefix {k} < acked {acked})"
                );
            }
        }
        recovered.mkdir("/post-recovery").unwrap();
        recovered.sync().unwrap();
    }
}

/// Shard-asymmetric failure: exactly one shard's device region dies
/// mid-run. The mount must **not** degrade — the dead shard is
/// quarantined, its inode range refuses mutations, sibling shards stay
/// fault-free and writable — and recovery must replay the surviving
/// history around exactly the quarantine-recorded loss windows.
#[test]
fn one_dead_shard_quarantines_only_its_inode_range() {
    for seed in seeds() {
        let cfg = ShardConfig::with_shards(4);
        let shards = cfg.shard_count();
        // Keep the root's shard alive so path operations (which route by
        // the parent directory) can still demonstrate a writable mount.
        let root_shard = atomfs_journal::shard_of(atomfs_trace::ROOT_INUM, shards);
        let victim = (root_shard + 1 + (seed as usize % (shards - 1))) % shards;
        let plan = FaultPlan::none(seed)
            .with_permanent_failure_after(2 + seed % 3)
            .with_region(cfg.region_base(victim), cfg.region_base(victim + 1));
        let disk = Arc::new(Disk::new());
        let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
        let recorder = Arc::new(BufferSink::new());
        let jfs =
            JournaledFs::create_sharded_observed(dev, cfg, Arc::clone(&recorder) as Arc<dyn TraceSink>);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xDEAD);
        let out = drive(&jfs, &recorder, &mut rng, 200);
        assert!(out.degraded, "seed {seed}: the dead region was never hit");
        // Partial degradation: the mount survives with one shard dark.
        assert_eq!(
            jfs.health(),
            Health::Healthy,
            "seed {seed}: one dead shard must not degrade the whole mount"
        );
        let sink = jfs.sharded_sink().expect("sharded mount");
        assert_eq!(
            sink.quarantined_shards(),
            vec![victim],
            "seed {seed}: exactly the victim shard is quarantined"
        );
        let reports = sink.shard_reports();
        assert!(reports[victim].dead, "seed {seed}: victim not marked dead");
        for (i, r) in reports.iter().enumerate() {
            if i != victim {
                assert!(!r.dead, "seed {seed}: healthy shard {i} marked dead");
                assert_eq!(r.faults, 0, "seed {seed}: faults leaked to shard {i}");
            }
        }
        // Live ranges keep accepting and acking mutations.
        jfs.mkdir(&format!("/alive-{seed}")).unwrap();
        jfs.sync().unwrap();
        let muts = mutations(&recorder);
        drop(jfs);
        disk.crash(|i| (i as u64) % 3 != 1);

        let par = atomfs_journal::recover_sharded(&disk, &cfg);
        let seq = atomfs_journal::recover_sharded_sequential(&disk, &cfg);
        assert_eq!(par.ops, seq.ops, "seed {seed}: parallel != sequential");
        assert_eq!(
            par.quarantined_mask, seq.quarantined_mask,
            "seed {seed}: quarantine records diverge"
        );
        assert_eq!(
            par.quarantined_shards(),
            vec![victim],
            "seed {seed}: recovery must surface the quarantine"
        );

        // Exact oracle: the workload is single-threaded, so the n-th
        // recorded mutation carries stamp n. Recovery never invents
        // history (every admitted stamp matches the recorded stream) and
        // never silently drops it (every stamp below the truncation bound
        // that no recorded loss window covers must be admitted). Window
        // stamps themselves MAY still appear: a failed slice can be
        // partially durable, and windows only license skipping stamps
        // recovery cannot find — they never suppress found ones.
        let bound = par.truncated_at.unwrap_or(u64::MAX);
        let in_window = |s: u64| par.lost_windows.iter().any(|&(lo, hi)| s >= lo && s < hi);
        for (s, m) in &par.ops {
            assert_eq!(
                muts.get(*s as usize),
                Some(m),
                "seed {seed}: stamp {s} replays something never recorded"
            );
        }
        let present: std::collections::HashSet<u64> = par.ops.iter().map(|(s, _)| *s).collect();
        for s in 0..muts.len() as u64 {
            if s < bound && !in_window(s) {
                assert!(
                    present.contains(&s),
                    "seed {seed}: stamp {s} lost without a licensing window or truncation"
                );
            }
        }

        let (recovered, stats) =
            JournaledFs::recover_sharded(Arc::clone(&disk), cfg).expect("recovery never fails");
        assert_eq!(stats.lost_ops, par.lost_ops, "seed {seed}: loss accounting diverges");
        let (expected_state, _) = crlh::shardlog::replay_tolerant(&par.ops);
        assert!(
            fs_matches_state(&recovered, &expected_state),
            "seed {seed}: recovered tree must be the tolerant replay of the admitted history"
        );
        recovered.mkdir("/post-recovery").unwrap();
        recovered.sync().unwrap();
    }
}

/// Cross-shard rename atomicity under fault × crash schedules: for every
/// seeded fault plan and every crash subset, each renamed file recovers
/// either fully at its destination or fully at its source — never in
/// both places, and never half-moved (the truncation boundary may not
/// split an intent's `Del`/`Ins` pair).
#[test]
fn cross_shard_renames_are_atomic_across_fault_and_crash_schedules() {
    const FILES: usize = 12;
    for seed in seeds() {
        for keep_mod in [2u64, 3, 5] {
            let cfg = ShardConfig::default();
            // Transients exercise the retry path; torn writes can eat an
            // intent or seal frame, which is exactly the schedule that
            // must discard — not dangle — the rename.
            let plan = FaultPlan::none(seed ^ (keep_mod << 32))
                .with_transient(2_000, 2_000, 2_000)
                .with_torn_writes(1_500);
            let disk = Arc::new(Disk::new());
            let dev = Arc::new(FaultyDisk::new(Arc::clone(&disk), plan));
            let recorder = Arc::new(BufferSink::new());
            let jfs = JournaledFs::create_sharded_observed(
                dev,
                cfg,
                Arc::clone(&recorder) as Arc<dyn TraceSink>,
            );
            jfs.mkdir("/a").unwrap();
            jfs.mkdir("/b").unwrap();
            for i in 0..FILES {
                jfs.mknod(&format!("/a/f{i}")).unwrap();
                jfs.write(&format!("/a/f{i}"), 0, &[i as u8; 24]).unwrap();
            }
            let _ = jfs.sync();
            let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37).wrapping_add(keep_mod));
            for i in 0..FILES {
                let _ = jfs.rename(&format!("/a/f{i}"), &format!("/b/g{i}"));
                if rng.random_range(0..3) == 0 {
                    let _ = jfs.sync();
                }
            }
            let muts = mutations(&recorder);
            drop(jfs);
            disk.crash(|i| (i as u64) % keep_mod == 0);

            let par = atomfs_journal::recover_sharded(&disk, &cfg);
            let seq = atomfs_journal::recover_sharded_sequential(&disk, &cfg);
            assert_eq!(
                par.ops, seq.ops,
                "seed {seed} keep {keep_mod}: parallel != sequential"
            );

            let (recovered, stats) = JournaledFs::recover_sharded(Arc::clone(&disk), cfg)
                .expect("recovery never fails");
            let k = stats.ops_replayed;
            assert!(
                fs_matches_state(&recovered, &prefix_states(&muts)[k]),
                "seed {seed} keep {keep_mod}: recovery must land on an exact prefix"
            );
            // The boundary never splits a rename: a rename records its
            // Del and Ins adjacently (same child), and intent framing
            // admits or discards them together.
            for i in 0..muts.len().saturating_sub(1) {
                if let (MicroOp::Del { child: c, .. }, MicroOp::Ins { child: c2, .. }) =
                    (&muts[i], &muts[i + 1])
                {
                    if c == c2 {
                        assert_ne!(
                            k,
                            i + 1,
                            "seed {seed} keep {keep_mod}: prefix ends between a rename's Del and Ins"
                        );
                    }
                }
            }
            // Every file is in at most one place — never both (a file in
            // neither place means its very creation fell past the
            // truncation or a torn write ate it, which the prefix check
            // above already validated).
            for i in 0..FILES {
                let at_src = recovered.stat(&format!("/a/f{i}")).is_ok();
                let at_dst = recovered.stat(&format!("/b/g{i}")).is_ok();
                assert!(
                    !(at_src && at_dst),
                    "seed {seed} keep {keep_mod}: file {i} dangles in both places"
                );
            }
        }
    }
}
