//! Property-based tests on the journal's wire format: `decode_record`
//! fed arbitrary bytes, truncations, and bit-flipped encodings of valid
//! records must never panic and never return a record that differs from
//! the one encoded — the checksum (plus the clamped length/count fields)
//! catches every corruption the fault layer can inject.

use atomfs_journal::wire::{decode_record, encode_record};
use atomfs_trace::MicroOp;
use atomfs_vfs::FileType;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy for one micro-op, names/payloads built from small byte pools
/// (no string-regex strategies needed).
fn op_strategy() -> impl Strategy<Value = MicroOp> {
    prop_oneof![
        (any::<u64>(), any::<bool>()).prop_map(|(ino, dir)| MicroOp::Create {
            ino,
            ftype: if dir { FileType::Dir } else { FileType::File },
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(ino, dir)| MicroOp::Remove {
            ino,
            ftype: if dir { FileType::Dir } else { FileType::File },
        }),
        (any::<u64>(), vec(any::<u8>(), 1..12), any::<u64>()).prop_map(|(parent, name, child)| {
            MicroOp::Ins {
                parent,
                name: name.iter().map(|b| char::from(b'a' + b % 26)).collect(),
                child,
            }
        }),
        (any::<u64>(), vec(any::<u8>(), 1..12), any::<u64>()).prop_map(|(parent, name, child)| {
            MicroOp::Del {
                parent,
                name: name.iter().map(|b| char::from(b'a' + b % 26)).collect(),
                child,
            }
        }),
        (
            any::<u64>(),
            vec(any::<u8>(), 0..40),
            vec(any::<u8>(), 0..40)
        )
            .prop_map(|(ino, old, new)| MicroOp::SetData { ino, old, new }),
    ]
}

fn record_strategy() -> impl Strategy<Value = (u64, u64, Vec<MicroOp>)> {
    (any::<u64>(), any::<u64>(), vec(op_strategy(), 0..6))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(buf in vec(any::<u8>(), 0..400)) {
        if let Some((_, _, _, total)) = decode_record(&buf) {
            prop_assert!(total <= buf.len());
        }
    }

    #[test]
    fn arbitrary_bytes_with_a_magic_prefix_never_panic(
        tail in vec(any::<u8>(), 0..400)
    ) {
        // Force the interesting path: a valid magic over garbage.
        let mut buf = atomfs_journal::wire::MAGIC.to_le_bytes().to_vec();
        buf.extend_from_slice(&tail);
        if let Some((_, _, _, total)) = decode_record(&buf) {
            prop_assert!(total <= buf.len());
        }
    }

    #[test]
    fn roundtrip_is_exact((epoch, seq, ops) in record_strategy()) {
        let rec = encode_record(epoch, seq, &ops);
        let (e, s, decoded, total) = decode_record(&rec).expect("valid record decodes");
        prop_assert_eq!(e, epoch);
        prop_assert_eq!(s, seq);
        prop_assert_eq!(decoded, ops);
        prop_assert_eq!(total, rec.len());
    }

    #[test]
    fn truncations_never_decode((epoch, seq, ops) in record_strategy(), frac in 0.0f64..1.0) {
        let rec = encode_record(epoch, seq, &ops);
        let cut = ((rec.len() as f64) * frac) as usize;
        prop_assert!(cut < rec.len());
        prop_assert!(decode_record(&rec[..cut]).is_none());
    }

    #[test]
    fn bit_flips_never_forge_a_different_record(
        (epoch, seq, ops) in record_strategy(),
        flips in vec((any::<u16>(), 0u8..8), 1..5)
    ) {
        let rec = encode_record(epoch, seq, &ops);
        let mut bad = rec.clone();
        for (pos, bit) in &flips {
            let byte = *pos as usize % bad.len();
            bad[byte] ^= 1 << bit;
        }
        match decode_record(&bad) {
            None => {}
            Some((e, s, decoded, _)) => {
                // Flips may cancel back to the original bytes; anything
                // else surviving the checksum would be a forgery.
                prop_assert_eq!(&bad, &rec, "corrupted bytes decoded");
                prop_assert_eq!(e, epoch);
                prop_assert_eq!(s, seq);
                prop_assert_eq!(decoded, ops);
            }
        }
    }

    #[test]
    fn trailing_junk_does_not_change_the_decode(
        (epoch, seq, ops) in record_strategy(),
        junk in vec(any::<u8>(), 0..64)
    ) {
        let rec = encode_record(epoch, seq, &ops);
        let mut extended = rec.clone();
        extended.extend_from_slice(&junk);
        let (e, s, decoded, total) = decode_record(&extended).expect("prefix still valid");
        prop_assert_eq!(e, epoch);
        prop_assert_eq!(s, seq);
        prop_assert_eq!(decoded, ops);
        prop_assert_eq!(total, rec.len());
    }
}
