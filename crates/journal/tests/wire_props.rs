//! Property-based tests on the journal's wire formats: `decode_record`
//! (v1 single-stream) and `decode_frame` (v2 sharded) fed arbitrary
//! bytes, truncations, and bit-flipped encodings of valid records must
//! never panic and never return a record that differs from the one
//! encoded — the checksum (plus the clamped length/count fields) catches
//! every corruption the fault layer can inject. For v2 the stakes are
//! higher: a forged `RenameIntent`/`RenameSeal` with a different
//! `(txn, epoch)` could pair with the wrong transaction at recovery, so
//! the frame properties assert corruption can never *re-pair*.

use atomfs_journal::wire::{decode_frame, decode_record, encode_frame, encode_record, Frame, FrameKind};
use atomfs_trace::MicroOp;
use atomfs_vfs::FileType;
use proptest::collection::vec;
use proptest::prelude::*;

/// Strategy for one micro-op, names/payloads built from small byte pools
/// (no string-regex strategies needed).
fn op_strategy() -> impl Strategy<Value = MicroOp> {
    prop_oneof![
        (any::<u64>(), any::<bool>()).prop_map(|(ino, dir)| MicroOp::Create {
            ino,
            ftype: if dir { FileType::Dir } else { FileType::File },
        }),
        (any::<u64>(), any::<bool>()).prop_map(|(ino, dir)| MicroOp::Remove {
            ino,
            ftype: if dir { FileType::Dir } else { FileType::File },
        }),
        (any::<u64>(), vec(any::<u8>(), 1..12), any::<u64>()).prop_map(|(parent, name, child)| {
            MicroOp::Ins {
                parent,
                name: name.iter().map(|b| char::from(b'a' + b % 26)).collect(),
                child,
            }
        }),
        (any::<u64>(), vec(any::<u8>(), 1..12), any::<u64>()).prop_map(|(parent, name, child)| {
            MicroOp::Del {
                parent,
                name: name.iter().map(|b| char::from(b'a' + b % 26)).collect(),
                child,
            }
        }),
        (
            any::<u64>(),
            vec(any::<u8>(), 0..40),
            vec(any::<u8>(), 0..40)
        )
            .prop_map(|(ino, old, new)| MicroOp::SetData { ino, old, new }),
    ]
}

fn record_strategy() -> impl Strategy<Value = (u64, u64, Vec<MicroOp>)> {
    (any::<u64>(), any::<u64>(), vec(op_strategy(), 0..6))
}

/// Strategy for one v2 frame: seal kinds carry no ops (the format
/// rejects a "seal" smuggling a payload), op-bearing kinds carry a small
/// stamped batch.
fn frame_strategy() -> impl Strategy<Value = Frame> {
    (
        any::<u32>(),
        any::<u16>(),
        0u8..5,
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        vec((any::<u64>(), op_strategy()), 0..5),
        vec((any::<u64>(), 1u64..50), 0..4),
    )
        .prop_map(|(gen, shard, k, epoch, seq, txn, ops, spans)| {
            let kind = match k {
                0 => FrameKind::Batch,
                1 => FrameKind::EpochSeal,
                2 => FrameKind::RenameIntent,
                3 => FrameKind::RenameSeal,
                _ => FrameKind::Quarantine,
            };
            let carries = matches!(kind, FrameKind::Batch | FrameKind::RenameIntent);
            // Quarantine windows must be ascending and non-overlapping;
            // build them from (start-offset, width) deltas.
            let mut windows = Vec::new();
            if matches!(kind, FrameKind::Quarantine) {
                let mut lo = 0u64;
                for (gap, width) in spans {
                    lo = lo.saturating_add(gap % 1000);
                    windows.push((lo, lo + width));
                    lo += width;
                }
            }
            Frame {
                gen,
                shard,
                kind,
                epoch,
                seq,
                txn,
                ops: if carries { ops } else { Vec::new() },
                windows,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic(buf in vec(any::<u8>(), 0..400)) {
        if let Some((_, _, _, total)) = decode_record(&buf) {
            prop_assert!(total <= buf.len());
        }
    }

    #[test]
    fn arbitrary_bytes_with_a_magic_prefix_never_panic(
        tail in vec(any::<u8>(), 0..400)
    ) {
        // Force the interesting path: a valid magic over garbage.
        let mut buf = atomfs_journal::wire::MAGIC.to_le_bytes().to_vec();
        buf.extend_from_slice(&tail);
        if let Some((_, _, _, total)) = decode_record(&buf) {
            prop_assert!(total <= buf.len());
        }
    }

    #[test]
    fn roundtrip_is_exact((epoch, seq, ops) in record_strategy()) {
        let rec = encode_record(epoch, seq, &ops);
        let (e, s, decoded, total) = decode_record(&rec).expect("valid record decodes");
        prop_assert_eq!(e, epoch);
        prop_assert_eq!(s, seq);
        prop_assert_eq!(decoded, ops);
        prop_assert_eq!(total, rec.len());
    }

    #[test]
    fn truncations_never_decode((epoch, seq, ops) in record_strategy(), frac in 0.0f64..1.0) {
        let rec = encode_record(epoch, seq, &ops);
        let cut = ((rec.len() as f64) * frac) as usize;
        prop_assert!(cut < rec.len());
        prop_assert!(decode_record(&rec[..cut]).is_none());
    }

    #[test]
    fn bit_flips_never_forge_a_different_record(
        (epoch, seq, ops) in record_strategy(),
        flips in vec((any::<u16>(), 0u8..8), 1..5)
    ) {
        let rec = encode_record(epoch, seq, &ops);
        let mut bad = rec.clone();
        for (pos, bit) in &flips {
            let byte = *pos as usize % bad.len();
            bad[byte] ^= 1 << bit;
        }
        match decode_record(&bad) {
            None => {}
            Some((e, s, decoded, _)) => {
                // Flips may cancel back to the original bytes; anything
                // else surviving the checksum would be a forgery.
                prop_assert_eq!(&bad, &rec, "corrupted bytes decoded");
                prop_assert_eq!(e, epoch);
                prop_assert_eq!(s, seq);
                prop_assert_eq!(decoded, ops);
            }
        }
    }

    #[test]
    fn frame_roundtrip_is_exact(frame in frame_strategy()) {
        let bytes = encode_frame(&frame);
        let (decoded, total) = decode_frame(&bytes).expect("valid frame decodes");
        prop_assert_eq!(&decoded, &frame);
        prop_assert_eq!(total, bytes.len());
        // The pairing-relevant fields roundtrip bit-exactly.
        prop_assert_eq!(decoded.epoch, frame.epoch);
        prop_assert_eq!(decoded.txn, frame.txn);
        prop_assert_eq!(decoded.kind, frame.kind);
    }

    #[test]
    fn frame_truncations_never_decode(frame in frame_strategy(), frac in 0.0f64..1.0) {
        let bytes = encode_frame(&frame);
        let cut = ((bytes.len() as f64) * frac) as usize;
        prop_assert!(cut < bytes.len());
        prop_assert!(
            decode_frame(&bytes[..cut]).is_none(),
            "a truncated frame must never decode (cut at {} of {})",
            cut,
            bytes.len()
        );
    }

    #[test]
    fn frame_bit_flips_never_forge_a_pairable_transaction(
        frame in frame_strategy(),
        flips in vec((any::<u16>(), 0u8..8), 1..5)
    ) {
        let bytes = encode_frame(&frame);
        let mut bad = bytes.clone();
        for (pos, bit) in &flips {
            let byte = *pos as usize % bad.len();
            bad[byte] ^= 1 << bit;
        }
        match decode_frame(&bad) {
            None => {}
            Some((decoded, _)) => {
                // Flips may cancel back to the original bytes; anything
                // else surviving the checksum would let a corrupted
                // intent or seal pair under a different (txn, epoch).
                prop_assert_eq!(&bad, &bytes, "corrupted frame decoded");
                prop_assert_eq!(decoded, frame);
            }
        }
    }

    #[test]
    fn frame_arbitrary_bytes_never_panic(tail in vec(any::<u8>(), 0..400)) {
        let mut buf = atomfs_journal::wire::MAGIC2.to_le_bytes().to_vec();
        buf.extend_from_slice(&tail);
        if let Some((frame, total)) = decode_frame(&buf) {
            prop_assert!(total <= buf.len());
            // Whatever decodes, the lost-stamp windows are well-formed:
            // ascending, non-overlapping, non-empty. Recovery skips
            // exactly these stamps, so garbage must never widen them.
            let mut prev = 0u64;
            for (lo, hi) in &frame.windows {
                prop_assert!(lo < hi && *lo >= prev);
                prev = *hi;
            }
        }
    }

    #[test]
    fn v1_records_and_v2_frames_never_cross_decode(
        (epoch, seq, ops) in record_strategy(),
        frame in frame_strategy()
    ) {
        // Distinct magics: a scan can never misparse one format as the
        // other, which is what keeps a sharded region scrub from
        // "finding" v1 records and vice versa.
        prop_assert!(decode_frame(&encode_record(epoch, seq, &ops)).is_none());
        prop_assert!(decode_record(&encode_frame(&frame)).is_none());
    }

    #[test]
    fn trailing_junk_does_not_change_the_decode(
        (epoch, seq, ops) in record_strategy(),
        junk in vec(any::<u8>(), 0..64)
    ) {
        let rec = encode_record(epoch, seq, &ops);
        let mut extended = rec.clone();
        extended.extend_from_slice(&junk);
        let (e, s, decoded, total) = decode_record(&extended).expect("prefix still valid");
        prop_assert_eq!(e, epoch);
        prop_assert_eq!(s, seq);
        prop_assert_eq!(decoded, ops);
        prop_assert_eq!(total, rec.len());
    }
}
