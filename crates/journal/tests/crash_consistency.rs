//! Randomized crash injection: after any crash, the recovered file
//! system equals the state reached by some *prefix* of the mutation
//! history — and that prefix covers at least everything before the last
//! `sync()` (durability).
//!
//! The test exploits the architecture: the same trace stream that feeds
//! the CRL-H shadow state feeds the journal, so "crash consistency"
//! reduces to prefix consistency of the recorded micro-operation
//! sequence, checkable exactly with `crlh::FsState`.

use std::sync::Arc;

use atomfs_journal::{Disk, JournaledFs};
use atomfs_trace::{BufferSink, Event, FanoutSink, MicroOp, TraceSink};
use atomfs_vfs::FileSystem;
use crlh::FsState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A JournaledFs whose mutation stream is also recorded in memory, so
/// tests can compute every prefix state.
struct Harness {
    disk: Arc<Disk>,
    fs: Arc<atomfs::AtomFs>,
    journal_sink: Arc<atomfs_journal::JournalSink>,
    recorder: Arc<BufferSink>,
}

impl Harness {
    fn new() -> Self {
        let disk = Arc::new(Disk::new());
        let journal_sink = Arc::new(atomfs_journal::JournalSink::new(
            atomfs_journal::Journal::create(
                Arc::clone(&disk) as Arc<dyn atomfs_journal::BlockDevice>
            ),
        ));
        let recorder = Arc::new(BufferSink::new());
        let fanout = Arc::new(FanoutSink(vec![
            Arc::clone(&journal_sink) as Arc<dyn TraceSink>,
            Arc::clone(&recorder) as Arc<dyn TraceSink>,
        ]));
        let fs = Arc::new(atomfs::AtomFs::traced(fanout as Arc<dyn TraceSink>));
        Harness {
            disk,
            fs,
            journal_sink,
            recorder,
        }
    }

    fn sync(&self) {
        self.journal_sink
            .sync()
            .expect("perfect disk never degrades");
    }

    fn mutations(&self) -> Vec<MicroOp> {
        self.recorder
            .snapshot()
            .iter()
            .filter_map(|e| match e {
                Event::Mutate { mop, .. } => Some(mop.clone()),
                _ => None,
            })
            .collect()
    }
}

/// All states reachable by prefixes of `muts` (index = prefix length).
fn prefix_states(muts: &[MicroOp]) -> Vec<FsState> {
    let mut states = Vec::with_capacity(muts.len() + 1);
    let mut s = FsState::new();
    states.push(s.clone());
    for m in muts {
        s.apply_micro(m).expect("recorded stream replays");
        states.push(s.clone());
    }
    states
}

/// Canonical content comparison between a recovered live FS and an
/// abstract state: same tree shape, names, and file bytes.
fn fs_matches_state(fs: &dyn FileSystem, state: &FsState) -> bool {
    fn walk(fs: &dyn FileSystem, state: &FsState, id: u64, path: &str) -> bool {
        match state.node(id) {
            Some(crlh::Node::Dir(entries)) => {
                let Ok(mut names) = fs.readdir(path) else {
                    return false;
                };
                names.sort();
                let mut expected: Vec<&String> = entries.keys().collect();
                expected.sort();
                if names.iter().collect::<Vec<_>>() != expected {
                    return false;
                }
                entries.iter().all(|(name, child)| {
                    walk(fs, state, *child, &atomfs_vfs::path::join(path, name))
                })
            }
            Some(crlh::Node::File(data)) => {
                let Ok(meta) = fs.stat(path) else {
                    return false;
                };
                if meta.size != data.len() as u64 {
                    return false;
                }
                let mut buf = vec![0u8; data.len()];
                matches!(fs.read(path, 0, &mut buf), Ok(n) if n == data.len() && buf == *data)
            }
            None => false,
        }
    }
    walk(fs, state, state.root, "/")
}

fn run_workload(h: &Harness, rng: &mut StdRng, ops: usize) -> Vec<usize> {
    // Returns mutation-count snapshots taken at each sync().
    let mut sync_points = Vec::new();
    for i in 0..ops {
        let d = format!("/d{}", rng.random_range(0..3));
        let f = format!("{d}/f{}", rng.random_range(0..4));
        let g = format!("/d{}/g{}", rng.random_range(0..3), rng.random_range(0..3));
        match rng.random_range(0..8) {
            0 => {
                let _ = h.fs.mkdir(&d);
            }
            1 => {
                let _ = h.fs.mknod(&f);
            }
            2 => {
                let _ = h.fs.write(&f, (i % 5) as u64, &[i as u8; 100]);
            }
            3 => {
                let _ = h.fs.unlink(&f);
            }
            4 => {
                let _ = h.fs.rename(&f, &g);
            }
            5 => {
                let _ = h.fs.truncate(&f, (i % 50) as u64);
            }
            6 => {
                let _ = h.fs.rmdir(&d);
            }
            _ => {
                h.sync();
                sync_points.push(h.mutations().len());
            }
        }
    }
    sync_points
}

#[test]
fn recovery_is_prefix_consistent_and_durable() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let h = Harness::new();
        let sync_points = run_workload(&h, &mut rng, 120);
        let muts = h.mutations();

        // Crash with a random subset of unflushed sector writes persisted.
        let keep_mod = rng.random_range(2..6u64);
        h.disk.crash(|i| (i as u64).is_multiple_of(keep_mod));

        let (recovered, stats) =
            JournaledFs::recover(Arc::clone(&h.disk)).expect("recovery succeeds");

        // Prefix consistency: the recovered tree equals the state after
        // exactly `ops_replayed` mutations of the recorded history.
        // (Several adjacent prefixes can be observationally equal — e.g.
        // a Create whose Ins never happened — so we check the replayed
        // index directly rather than searching for the first match.)
        let states = prefix_states(&muts);
        let k = stats.ops_replayed;
        assert!(
            k <= muts.len(),
            "seed {seed}: replayed more than was ever appended"
        );
        assert!(
            fs_matches_state(&recovered, &states[k]),
            "seed {seed}: recovered state is not the {k}-mutation prefix of {}",
            muts.len()
        );

        // Durability: everything before the last sync survived.
        if let Some(&last_sync) = sync_points.last() {
            assert!(
                k >= last_sync,
                "seed {seed}: lost synced data (prefix {k} < sync point {last_sync})"
            );
        }
    }
}

#[test]
fn clean_crash_recovers_exactly_the_synced_prefix() {
    let h = Harness::new();
    h.fs.mkdir("/a").unwrap();
    h.fs.mknod("/a/f").unwrap();
    h.fs.write("/a/f", 0, b"before sync").unwrap();
    h.sync();
    let synced = h.mutations().len();
    h.fs.write("/a/f", 0, b"AFTER sync!").unwrap();
    h.fs.mkdir("/late").unwrap();

    h.disk.crash(|_| false);
    let (recovered, stats) = JournaledFs::recover(Arc::clone(&h.disk)).unwrap();
    assert_eq!(stats.ops_replayed, synced);
    let muts = h.mutations();
    assert!(fs_matches_state(&recovered, &prefix_states(&muts)[synced]));
    let mut buf = [0u8; 11];
    recovered.read("/a/f", 0, &mut buf).unwrap();
    assert_eq!(&buf, b"before sync");
    assert!(recovered.stat("/late").is_err());
}

#[test]
fn recovered_fs_passes_the_linearizability_checker() {
    // After recovery, mount with an online checker attached and keep
    // going: the recovered instance is a full AtomFS.
    let disk = Arc::new(Disk::new());
    let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn atomfs_journal::BlockDevice>);
    jfs.mkdir("/base").unwrap();
    jfs.mknod("/base/f").unwrap();
    jfs.sync().unwrap();
    drop(jfs);
    disk.crash(|_| false);
    let (recovered, _) = JournaledFs::recover(disk).unwrap();

    // Drive it concurrently; the wrapper delegates to a real AtomFs, so
    // every linearizability property continues to hold.
    let fs = Arc::new(recovered);
    let mut handles = Vec::new();
    for t in 0..4u8 {
        let fs = Arc::clone(&fs);
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let p = format!("/base/t{t}_{i}");
                fs.mknod(&p).unwrap();
                fs.write(&p, 0, &[t; 8]).unwrap();
                let _ = fs.rename(&p, &format!("/base/r{t}_{i}"));
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(fs.readdir("/base").unwrap().len(), 1 + 200);
}

/// A cross-shard rename writes its intent record to the source parent's
/// shard and its seal to the destination parent's shard. A crash that
/// persists the intent but loses the seal must make recovery discard the
/// rename (and everything stamped after it) — while the complementary
/// crash that persists both replays it. This is the two-phase record's
/// whole point: a half-present rename can never replay.
#[test]
fn crash_between_rename_intent_and_seal_discards_the_rename() {
    use atomfs_journal::{FaultPlan, FaultyDisk, ShardConfig};

    // One deterministic run of the workload; `keep_seal` decides whether
    // the destination shard's queued writes survive the crash.
    let run = |keep_seal: bool| {
        let cfg = ShardConfig::with_shards(4);
        let disk = Arc::new(Disk::new());
        // Flushes always fail: every frame write stays queued volatile,
        // the sync degrades the mount, and nothing is ever acked — so
        // the crash below gets to choose what persisted.
        let dev = Arc::new(FaultyDisk::new(
            Arc::clone(&disk),
            FaultPlan::none(1).with_transient(0, 0, 65_536),
        ));
        let recorder = Arc::new(BufferSink::new());
        let jfs = JournaledFs::create_sharded_observed(
            dev,
            cfg,
            Arc::clone(&recorder) as Arc<dyn TraceSink>,
        );
        let sink = Arc::clone(jfs.sharded_sink().expect("sharded mount"));
        for i in 0..8 {
            jfs.mkdir(&format!("/d{i}")).unwrap();
        }
        jfs.mknod("/d0/f").unwrap();
        jfs.write("/d0/f", 0, b"payload").unwrap();
        let shard = |path: &str| sink.shard_of_ino(jfs.stat(path).unwrap().ino);
        let src_shard = shard("/d0");
        let file_shard = shard("/d0/f");
        let root_shard = sink.shard_of_ino(atomfs_trace::ROOT_INUM);
        // Pick a destination dir whose shard holds no record we need to
        // keep: dropping its region loses exactly the rename's seal (and
        // that shard's EpochSeal).
        let dst = (1..8)
            .find(|i| {
                let s = shard(&format!("/d{i}"));
                s != src_shard && s != file_shard && s != root_shard
            })
            .expect("8 dirs over 4 shards leave a seal-only shard");
        let dst_dir = format!("/d{dst}");
        let seal_shard = shard(&dst_dir);
        jfs.rename("/d0/f", &format!("{dst_dir}/g")).unwrap();
        // The commit appends the epoch's frames — intent to the source
        // shard, seal to the destination shard — then fails the flush.
        assert!(jfs.sync().is_err(), "flush cannot succeed under this plan");
        let muts = atomfs_journal::mutations_of(&recorder.snapshot());
        drop(jfs);
        let (lo, hi) = (cfg.region_base(seal_shard), cfg.region_base(seal_shard + 1));
        disk.crash_keep_lbas(|lba| keep_seal || !(lo..hi).contains(&lba));
        (disk, cfg, muts, dst_dir)
    };

    // Case A — the seal is lost: recovery sees a seal-less intent,
    // discards the rename, and replays exactly the prefix before it (a
    // file rename with no destination victim is two micro-ops).
    let (disk, cfg, muts, dst_dir) = run(false);
    let raw = atomfs_journal::recover_sharded(&disk, &cfg);
    assert!(!raw.pairing.unsealed.is_empty(), "the intent must be seal-less");
    assert!(raw.truncated_at.is_some(), "the unsealed intent truncates");
    let (recovered, stats) = JournaledFs::recover_sharded(Arc::clone(&disk), cfg).unwrap();
    assert_eq!(stats.ops_replayed, muts.len() - 2);
    assert!(fs_matches_state(
        &recovered,
        &prefix_states(&muts)[stats.ops_replayed]
    ));
    let mut buf = [0u8; 7];
    recovered.read("/d0/f", 0, &mut buf).unwrap();
    assert_eq!(&buf, b"payload", "the un-renamed file keeps its content");
    assert!(recovered.stat(&format!("{dst_dir}/g")).is_err());

    // Case B — both records persist: the pair is whole and the rename
    // replays in full.
    let (disk, cfg, muts, dst_dir) = run(true);
    let raw = atomfs_journal::recover_sharded(&disk, &cfg);
    assert!(raw.pairing.unsealed.is_empty());
    assert!(!raw.pairing.sealed.is_empty(), "the pair is recognized");
    let (recovered, stats) = JournaledFs::recover_sharded(Arc::clone(&disk), cfg).unwrap();
    assert_eq!(stats.ops_replayed, muts.len());
    assert!(fs_matches_state(&recovered, &prefix_states(&muts)[muts.len()]));
    assert!(recovered.stat("/d0/f").is_err());
    let mut buf = [0u8; 7];
    recovered
        .read(&format!("{dst_dir}/g"), 0, &mut buf)
        .unwrap();
    assert_eq!(&buf, b"payload");
}

/// Recovering a pathologically deep directory chain must not overflow
/// the stack: `materialize` walks the recovered tree with an explicit
/// worklist, so it runs in constant stack regardless of depth.
#[test]
fn deep_tree_recovery_does_not_overflow_the_stack() {
    // Deep enough that one stack frame per directory level would blow
    // through the 256 KiB thread stack below; shallower in debug builds
    // only to keep the O(depth²) path resolution cost reasonable.
    let depth: usize = if cfg!(debug_assertions) { 1200 } else { 2500 };
    let disk = Arc::new(Disk::new());
    {
        let jfs = JournaledFs::create(Arc::clone(&disk) as Arc<dyn atomfs_journal::BlockDevice>);
        let mut path = String::new();
        for _ in 0..depth {
            path.push_str("/d");
            jfs.mkdir(&path).unwrap();
        }
        jfs.sync().unwrap();
    }
    disk.crash(|_| false);
    let handle = std::thread::Builder::new()
        .stack_size(256 * 1024)
        .spawn(move || {
            let (recovered, stats) =
                JournaledFs::recover(Arc::clone(&disk)).expect("deep tree recovers");
            assert_eq!(stats.inodes, depth + 1, "root plus every chain link");
            let deepest = "/d".repeat(depth);
            assert!(recovered.stat(&deepest).unwrap().ftype.is_dir());
        })
        .unwrap();
    handle
        .join()
        .expect("recovery thread must not die (stack overflow aborts)");
}
