//! The checker pump: a thread that follows the served file system's
//! trace sink and keeps a streaming CRL-H checker current — correctness
//! as an always-on observability plane, not a post-mortem pass.
//!
//! The pump owns a [`TailCursor`](atomfs_trace::TailCursor) over the
//! `ShardedSink` the traced file system emits into, polls it for the
//! newly *stable* stamp prefix (everything below the cross-shard
//! watermark), and feeds that prefix to a [`StreamChecker`]. Because the
//! cursor only releases watermark-stable events, the checker sees the
//! exact stamp-ordered stream an end-of-run `take_stamped` would have
//! produced — while requests are still being served.
//!
//! The live verdict is surfaced three ways:
//! * the `/check` HTTP route on the RPC listener (JSON verdict + window
//!   stats, see [`CheckerPump::status_json`]),
//! * `crlh_stream_*` gauges on the server's metrics registry,
//! * a retained black-box dump frozen at the first violation.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use atomfs_obs::{BlackBox, Registry, Span, SpanKind};
use atomfs_trace::{CursorStats, ShardedSink};
use crlh::{CheckReport, StreamChecker, StreamCheckerMetrics, StreamConfig, StreamStatus};
use parking_lot::Mutex;

/// How the pump follows the sink and how often it wakes when idle.
#[derive(Debug, Clone)]
pub struct PumpConfig {
    /// Checker shape (criteria config, narration cap, window cap).
    pub stream: StreamConfig,
    /// Drain polled events out of the sink (`follow_consuming`) so sink
    /// memory stays bounded by the in-flight window. Turn off only for
    /// differential harnesses that also want the quiescent
    /// `take_stamped` view of the same run.
    pub consume: bool,
    /// Sleep between polls that found nothing new.
    pub idle: Duration,
}

impl Default for PumpConfig {
    fn default() -> Self {
        PumpConfig {
            stream: StreamConfig::default(),
            consume: true,
            idle: Duration::from_micros(200),
        }
    }
}

/// Handle to the running checker thread. Obtained from
/// [`serve_checked`](crate::server::serve_checked); queried by the
/// `/check` route; stopped by
/// [`Server::shutdown_checked`](crate::server::Server::shutdown_checked).
pub struct CheckerPump {
    checker: Arc<Mutex<Option<StreamChecker>>>,
    stop: Arc<AtomicBool>,
    handle: Mutex<Option<JoinHandle<()>>>,
    polls: Arc<AtomicU64>,
}

impl CheckerPump {
    /// Start the pump thread over `sink`. When a `registry` is given the
    /// checker exports its `crlh_stream_*` metrics there.
    pub fn start(
        sink: &Arc<ShardedSink>,
        cfg: PumpConfig,
        registry: Option<&Registry>,
    ) -> CheckerPump {
        let mut cursor = if cfg.consume {
            sink.follow_consuming()
        } else {
            sink.follow()
        };
        let mut checker = StreamChecker::new(cfg.stream);
        if let Some(reg) = registry {
            checker = checker.with_metrics(StreamCheckerMetrics::register(reg));
        }
        let checker = Arc::new(Mutex::new(Some(checker)));
        let stop = Arc::new(AtomicBool::new(false));
        let polls = Arc::new(AtomicU64::new(0));
        let handle = {
            let checker = Arc::clone(&checker);
            let stop = Arc::clone(&stop);
            let polls = Arc::clone(&polls);
            let idle = cfg.idle;
            std::thread::Builder::new()
                .name("afs-checker".into())
                .spawn(move || {
                    loop {
                        if stop.load(Ordering::Acquire) {
                            break;
                        }
                        let batch = cursor.poll();
                        polls.fetch_add(1, Ordering::Relaxed);
                        if batch.is_empty() {
                            std::thread::park_timeout(idle);
                            continue;
                        }
                        let stats = cursor.stats();
                        let mut sp = Span::op_root(SpanKind::Checker, "checker_pump");
                        sp.set_stamp(stats.watermark);
                        if let Some(c) = checker.lock().as_mut() {
                            c.ingest_owned(batch, stats);
                        }
                    }
                    // Stop is only requested once the server has shut
                    // down (sink quiescent), so release everything still
                    // buffered and feed the checker the tail.
                    let pre = cursor.stats();
                    let tail = cursor.finish();
                    if !tail.is_empty() {
                        let end = tail.last().map(|&(s, _)| s + 1).unwrap_or(0);
                        let stats = CursorStats {
                            watermark: pre.watermark.max(end),
                            frontier: pre.frontier.max(end),
                            released: pre.released + tail.len() as u64,
                            buffered: 0,
                        };
                        if let Some(c) = checker.lock().as_mut() {
                            c.ingest_owned(tail, stats);
                        }
                    }
                })
                .expect("spawn checker pump")
        };
        CheckerPump {
            checker,
            stop,
            handle: Mutex::new(Some(handle)),
            polls,
        }
    }

    /// Live verdict + window stats, or `None` once the pump has been
    /// finished.
    pub fn status(&self) -> Option<StreamStatus> {
        self.checker.lock().as_ref().map(StreamChecker::status)
    }

    /// The `/check` payload: JSON verdict, watermark/lag, retained-state
    /// census, and the violation list.
    pub fn status_json(&self) -> Option<String> {
        self.checker
            .lock()
            .as_ref()
            .map(|c| c.status().to_json(c.violations()))
    }

    /// Whether any violation has been flagged so far (`false` also after
    /// the checker was taken by [`CheckerPump::stop_and_finish`]).
    pub fn failed(&self) -> bool {
        self.checker
            .lock()
            .as_ref()
            .map(|c| !c.violations().is_empty())
            .unwrap_or(false)
    }

    /// The black box frozen at the first violation, if one fired.
    pub fn violation_dump(&self) -> Option<BlackBox> {
        self.checker
            .lock()
            .as_ref()
            .and_then(|c| c.violation_dump().cloned())
    }

    /// Polls executed so far (including empty ones).
    pub fn polls(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Stop the pump thread and join it. Idempotent. Call only once the
    /// sink is quiescent (e.g. after server shutdown): the thread's
    /// final drain assumes no emitter is still racing it.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.lock().take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }

    /// Stop the pump and run end-of-trace checks (liveness: no operation
    /// left open, no helped-but-unapplied effect). Returns `None` if the
    /// checker was already taken.
    pub fn stop_and_finish(&self) -> Option<CheckReport> {
        self.stop();
        self.checker.lock().take().map(StreamChecker::finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atomfs_trace::TraceSink;

    #[test]
    fn pump_follows_an_empty_sink_and_stops_cleanly() {
        let sink = Arc::new(ShardedSink::with_shards(4));
        let pump = CheckerPump::start(&sink, PumpConfig::default(), None);
        let st = pump.status().expect("live");
        assert!(st.ok);
        let report = pump.stop_and_finish().expect("first finish");
        report.assert_ok();
        assert!(pump.stop_and_finish().is_none(), "finish is one-shot");
    }

    #[test]
    fn pump_drains_events_emitted_before_stop() {
        let sink = Arc::new(ShardedSink::with_shards(4));
        let pump = CheckerPump::start(&sink, PumpConfig::default(), None);
        // A full legal op so end-of-trace liveness holds.
        for ev in crlh::stream_test_ops::op_events(7, "d", 42) {
            sink.emit(ev);
        }
        // Give the pump a chance to see it live (not required for
        // correctness — the final drain would catch it anyway).
        std::thread::sleep(Duration::from_millis(5));
        let report = pump.stop_and_finish().expect("finish");
        report.assert_ok();
        assert_eq!(report.stats.ops_completed, 1);
        assert!(sink.is_empty(), "consuming pump drains the sink");
    }
}
