//! Client library: pipelined RPC client and a [`FileSystem`] adapter.
//!
//! [`RpcClient`] owns one TCP connection. Requests are tagged and may be
//! kept in flight in any number (`submit` returns a [`Pending`] handle;
//! `call` is submit-then-wait); a dedicated reader thread matches
//! response frames back to their waiters by tag, so responses arriving
//! out of order complete the right callers. [`submit_batch`] encodes a
//! whole run of requests into one buffer and hands it to the kernel with
//! a single `write_all` — the client half of the pipelined fast path the
//! `serve_storm` benchmark measures.
//!
//! [`RemoteFs`] wraps an `Arc<RpcClient>` as a [`FileSystem`], so every
//! existing workload, wrapper (`MeteredFs`), and conformance check runs
//! unchanged against a server across the wire. I/O larger than
//! [`MAX_IO_LEN`] relies on the trait's partial-read/write contract: the
//! adapter clamps each transfer and the caller loops.
//!
//! [`submit_batch`]: RpcClient::submit_batch

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

use atomfs_vfs::{FileSystem, FsError, FsResult, Metadata};
use parking_lot::Mutex;

use crate::wire::{self, ReqView, Request, Response, HDR_LEN, MAX_IO_LEN, RSP_MAGIC};

struct ClientInner {
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    /// Waiters keyed by tag. `None` once the connection is dead — every
    /// sender was dropped, so parked `recv`s fail with `FsError::Io`.
    pending: Mutex<Option<HashMap<u64, mpsc::Sender<Response>>>>,
    next_tag: AtomicU64,
    dead: AtomicBool,
}

impl ClientInner {
    fn kill(&self) {
        self.dead.store(true, Ordering::Release);
        let _ = self.stream.shutdown(Shutdown::Both);
        // Dropping the map drops every sender: all waiters unblock.
        *self.pending.lock() = None;
    }
}

/// A response that has been sent but not yet awaited.
pub struct Pending {
    rx: mpsc::Receiver<Response>,
}

impl Pending {
    /// Block until the response frame for this request arrives.
    /// `FsError::Io` if the connection died first.
    pub fn wait(self) -> FsResult<Response> {
        self.rx.recv().map_err(|_| FsError::Io)
    }
}

/// A pipelined RPC client over one TCP connection.
pub struct RpcClient {
    inner: Arc<ClientInner>,
    reader: Mutex<Option<JoinHandle<()>>>,
}

impl RpcClient {
    /// Connect to a server at `addr`.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let writer = stream.try_clone()?;
        let rstream = stream.try_clone()?;
        let inner = Arc::new(ClientInner {
            stream,
            writer: Mutex::new(writer),
            pending: Mutex::new(Some(HashMap::new())),
            next_tag: AtomicU64::new(1),
            dead: AtomicBool::new(false),
        });
        let reader = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("afs-cli-reader".into())
                .spawn(move || reader_loop(inner, rstream))?
        };
        Ok(RpcClient {
            inner,
            reader: Mutex::new(Some(reader)),
        })
    }

    /// Whether the connection has been torn down (by either end).
    pub fn is_dead(&self) -> bool {
        self.inner.dead.load(Ordering::Acquire)
    }

    fn register(&self, tag: u64) -> FsResult<Pending> {
        let (tx, rx) = mpsc::channel();
        match &mut *self.inner.pending.lock() {
            Some(map) => {
                map.insert(tag, tx);
            }
            None => return Err(FsError::Io),
        }
        Ok(Pending { rx })
    }

    /// Send one request without waiting; the returned [`Pending`]
    /// completes when its tagged response arrives. Any number of
    /// requests may be in flight at once.
    pub fn submit(&self, req: &ReqView<'_>) -> FsResult<Pending> {
        let tag = self.inner.next_tag.fetch_add(1, Ordering::Relaxed);
        let pending = self.register(tag)?;
        let mut buf = Vec::with_capacity(HDR_LEN + 64);
        wire::encode_request_frame(&mut buf, tag, req);
        if self.inner.writer.lock().write_all(&buf).is_err() {
            self.inner.kill();
            return Err(FsError::Io);
        }
        Ok(pending)
    }

    /// Encode every request into one buffer and send it with a single
    /// write — the whole batch enters the server's pipeline back to
    /// back. Responses complete out of order; each [`Pending`] is
    /// matched by tag.
    pub fn submit_batch(&self, reqs: &[Request]) -> FsResult<Vec<Pending>> {
        let mut buf = Vec::with_capacity(reqs.len() * (HDR_LEN + 64));
        let mut pendings = Vec::with_capacity(reqs.len());
        for req in reqs {
            let tag = self.inner.next_tag.fetch_add(1, Ordering::Relaxed);
            pendings.push(self.register(tag)?);
            wire::encode_request_frame(&mut buf, tag, &req.view());
        }
        if self.inner.writer.lock().write_all(&buf).is_err() {
            self.inner.kill();
            return Err(FsError::Io);
        }
        Ok(pendings)
    }

    /// Submit and wait: the serial (unpipelined) call path.
    pub fn call(&self, req: &ReqView<'_>) -> FsResult<Response> {
        self.submit(req)?.wait()
    }

    /// Sever the connection abruptly *without* closing descriptors
    /// first — simulates a client crash. The server's disconnect
    /// teardown must close everything this connection had open.
    pub fn abort(&self) {
        self.inner.kill();
    }

    fn expect_unit(&self, req: &ReqView<'_>) -> FsResult<()> {
        match self.call(req)? {
            Response::Unit => Ok(()),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    /// Remote `open`: a descriptor in the server-side, per-connection
    /// FD table. `flags` are the `FLAG_*` bits.
    pub fn open(&self, path: &str, flags: u8) -> FsResult<u32> {
        match self.call(&ReqView::Open { path, flags })? {
            Response::Fd(fd) => Ok(fd),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    /// Remote `close` of a descriptor from [`RpcClient::open`].
    pub fn close_fd(&self, fd: u32) -> FsResult<()> {
        self.expect_unit(&ReqView::Close { fd })
    }

    /// Remote positional read on a descriptor.
    pub fn pread(&self, fd: u32, offset: u64, len: u32) -> FsResult<Vec<u8>> {
        match self.call(&ReqView::PRead { fd, offset, len })? {
            Response::Data(d) => Ok(d),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    /// Remote positional write on a descriptor.
    pub fn pwrite(&self, fd: u32, offset: u64, data: &[u8]) -> FsResult<usize> {
        match self.call(&ReqView::PWrite { fd, offset, data })? {
            Response::Len(n) => Ok(n as usize),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }
}

impl Drop for RpcClient {
    fn drop(&mut self) {
        self.inner.kill();
        if let Some(h) = self.reader.lock().take() {
            let _ = h.join();
        }
    }
}

fn reader_loop(inner: Arc<ClientInner>, mut stream: TcpStream) {
    let mut hdr = [0u8; HDR_LEN];
    loop {
        if stream.read_exact(&mut hdr).is_err() {
            break;
        }
        let Some((_, total)) = wire::frame_size_hint(&hdr, RSP_MAGIC) else {
            break; // framing lost: unrecoverable
        };
        let mut frame = vec![0u8; total];
        frame[..HDR_LEN].copy_from_slice(&hdr);
        if stream.read_exact(&mut frame[HDR_LEN..]).is_err() {
            break;
        }
        let Some((tag, rsp, _)) = wire::decode_response_frame(&frame) else {
            break; // checksum/shape failure
        };
        let waiter = match &mut *inner.pending.lock() {
            Some(map) => map.remove(&tag),
            None => break,
        };
        if let Some(tx) = waiter {
            let _ = tx.send(rsp); // waiter may have given up; fine
        }
    }
    inner.kill();
}

/// [`FileSystem`] over an [`RpcClient`]: every operation becomes one RPC
/// (large I/O becomes several via the partial-transfer contract).
pub struct RemoteFs {
    client: Arc<RpcClient>,
}

impl RemoteFs {
    /// Wrap `client` as a file system.
    pub fn new(client: Arc<RpcClient>) -> Self {
        RemoteFs { client }
    }

    /// The underlying client (for descriptor ops or batch submission on
    /// the same connection).
    pub fn client(&self) -> &Arc<RpcClient> {
        &self.client
    }
}

impl FileSystem for RemoteFs {
    fn name(&self) -> &'static str {
        "remote"
    }

    fn mknod(&self, path: &str) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Mknod { path })
    }

    fn mkdir(&self, path: &str) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Mkdir { path })
    }

    fn unlink(&self, path: &str) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Unlink { path })
    }

    fn rmdir(&self, path: &str) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Rmdir { path })
    }

    fn rename(&self, src: &str, dst: &str) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Rename { src, dst })
    }

    fn stat(&self, path: &str) -> FsResult<Metadata> {
        match self.client.call(&ReqView::Stat { path })? {
            Response::Stat(m) => Ok(m),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    fn readdir(&self, path: &str) -> FsResult<Vec<String>> {
        match self.client.call(&ReqView::Readdir { path })? {
            Response::Names(names) => Ok(names),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    fn read(&self, path: &str, offset: u64, buf: &mut [u8]) -> FsResult<usize> {
        let want = buf.len().min(MAX_IO_LEN) as u32;
        match self.client.call(&ReqView::Read {
            path,
            offset,
            len: want,
        })? {
            Response::Data(d) => {
                let n = d.len().min(buf.len());
                buf[..n].copy_from_slice(&d[..n]);
                Ok(n)
            }
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    fn write(&self, path: &str, offset: u64, data: &[u8]) -> FsResult<usize> {
        let chunk = &data[..data.len().min(MAX_IO_LEN)];
        match self.client.call(&ReqView::Write {
            path,
            offset,
            data: chunk,
        })? {
            Response::Len(n) => Ok(n as usize),
            Response::Err(e) => Err(e),
            _ => Err(FsError::Io),
        }
    }

    fn truncate(&self, path: &str, size: u64) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Truncate { path, size })
    }

    fn sync(&self) -> FsResult<()> {
        self.client.expect_unit(&ReqView::Sync)
    }
}
