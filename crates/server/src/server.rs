//! The TCP server: accept loop, per-connection readers, reply flushing.
//!
//! One OS thread per connection *reads* frames (cheap, mostly parked in
//! `read_exact`); execution happens on the sharded [`Executor`], so a
//! slow operation never stalls unrelated connections. Each connection
//! carries its own [`FdTable`] layered on the shared [`FileSystem`] —
//! exactly the paper's FUSE split, with the network connection standing
//! in for the FUSE session.
//!
//! **Pipelining.** A client may keep many tagged requests in flight on
//! one connection; responses complete in whatever order the executor
//! finishes them and are matched by tag. Per-connection order is only
//! guaranteed for requests a client serializes itself (await response
//! before sending the next); the specification boundary is the
//! linearizability of each operation, not connection FIFO — the same
//! license BilbyFs's sequential specification gives its asynchronous
//! implementation.
//!
//! **Backpressure.** Each connection has a bounded in-flight window. The
//! reader acquires a slot before admitting a request and the flusher
//! returns slots as replies hit the socket; a full window parks the
//! reader, the kernel receive buffer fills, and TCP flow control pushes
//! back to the client. Memory per connection is bounded by
//! `window × MAX_PAYLOAD` with no explicit rejection path.
//!
//! **Reply batching.** Workers enqueue encoded replies on the
//! connection's outbox; whichever worker wins the flusher flag drains
//! the outbox and writes every queued frame with one `write_all`
//! (writev-style coalescing via a pooled gather buffer). All buffers —
//! request frames, reply frames, gather buffers — recycle through the
//! [`BufPool`], so the steady-state reply path allocates nothing.
//!
//! **HTTP on the same listener.** A connection whose first four bytes
//! are `"GET "` is served as an HTTP scrape connection: `/metrics`
//! renders the registry's Prometheus exposition, `/spans` the
//! flight-recorder span JSON, and `/check` the live streaming-checker
//! verdict (when a [`CheckerPump`] is attached via [`serve_checked`]).
//! Responses always carry `Content-Length`, and the connection is kept
//! alive for further sequential GETs until the client closes it or
//! sends `Connection: close` — so one monitoring agent can poll all
//! three endpoints over a single connection. Anything else on that
//! connection path gets a 404.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use atomfs_obs::{FnKind, Registry, Span, SpanKind};
use atomfs_trace::ShardedSink;
use atomfs_vfs::{FdTable, FileSystem, FsError, OpenOptions};
use crlh::CheckReport;
use parking_lot::{Condvar, Mutex};

use crate::check::{CheckerPump, PumpConfig};
use crate::executor::{Executor, ExecutorConfig};
use crate::pool::BufPool;
use crate::wire::{
    self, HDR_LEN, FLAG_APPEND, FLAG_CREATE, FLAG_READ, FLAG_TRUNC, FLAG_WRITE, MAX_IO_LEN,
    REQ_MAGIC,
};

/// Server sizing knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Executor shape (shards, workers, queue bound).
    pub executor: ExecutorConfig,
    /// Per-connection in-flight request window (backpressure bound).
    pub window: usize,
    /// Buffers retained by the shared pool.
    pub pool_bufs: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            executor: ExecutorConfig::default(),
            window: 64,
            pool_bufs: 1024,
        }
    }
}

/// Monotonic counters describing a server's lifetime so far.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted (RPC and HTTP alike).
    pub conns_opened: AtomicU64,
    /// Connections fully torn down.
    pub conns_closed: AtomicU64,
    /// Request frames admitted past the window.
    pub requests: AtomicU64,
    /// Reply frames handed to the kernel.
    pub replies_flushed: AtomicU64,
    /// `write_all` batches (each covers ≥ 1 reply frame).
    pub flush_batches: AtomicU64,
    /// Frames that failed envelope or payload decoding (each one kills
    /// its connection — framing cannot resync).
    pub malformed: AtomicU64,
    /// Descriptors force-closed by disconnect/panic teardown.
    pub fds_closed_on_teardown: AtomicU64,
    /// HTTP requests served on the listener (a kept-alive scrape
    /// connection counts once per GET).
    pub http_requests: AtomicU64,
}

/// A point-in-time copy of [`ServerStats`] plus executor health.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StatsSnapshot {
    pub conns_opened: u64,
    pub conns_closed: u64,
    pub requests: u64,
    pub replies_flushed: u64,
    pub flush_batches: u64,
    pub malformed: u64,
    pub fds_closed_on_teardown: u64,
    pub http_requests: u64,
    pub worker_panics: u64,
}

/// Bounded in-flight window; `acquire` parks the connection reader when
/// the pipeline is full.
struct Window {
    inflight: Mutex<usize>,
    cv: Condvar,
    cap: usize,
}

impl Window {
    fn acquire(&self, dead: &AtomicBool) -> bool {
        let mut n = self.inflight.lock();
        while *n >= self.cap {
            if dead.load(Ordering::Acquire) {
                return false;
            }
            self.cv.wait(&mut n);
        }
        if dead.load(Ordering::Acquire) {
            return false;
        }
        *n += 1;
        true
    }

    fn release(&self, k: usize) {
        let mut n = self.inflight.lock();
        *n = n.saturating_sub(k);
        drop(n);
        self.cv.notify_all();
    }

    fn wake_all(&self) {
        self.cv.notify_all();
    }
}

struct ConnState<F: FileSystem> {
    id: u64,
    shard: usize,
    stream: TcpStream,
    writer: Mutex<TcpStream>,
    outbox: Mutex<Vec<Vec<u8>>>,
    flushing: AtomicBool,
    window: Window,
    fds: FdTable<F>,
    dead: AtomicBool,
}

struct Shared<F: FileSystem> {
    fs: Arc<F>,
    pool: BufPool,
    stats: Arc<ServerStats>,
    conns: Mutex<HashMap<u64, Arc<ConnState<F>>>>,
    registry: Option<Arc<Registry>>,
    /// Streaming-checker pump attached by [`serve_checked`]; `/check`
    /// renders its live verdict.
    checker: Mutex<Option<Arc<CheckerPump>>>,
}

impl<F: FileSystem + 'static> Shared<F> {
    /// Idempotently kill a connection: close every descriptor in its FD
    /// table, sever the socket (unblocking its reader), wake anything
    /// parked on its window, and recycle queued replies. Runs on
    /// disconnect, malformed frames, write errors, worker panics, and
    /// server shutdown — all paths converge here, so "disconnect closes
    /// every handle" holds no matter which end died first.
    fn teardown(&self, conn: &Arc<ConnState<F>>) {
        if conn.dead.swap(true, Ordering::AcqRel) {
            return;
        }
        let closed = conn.fds.close_all();
        self.stats
            .fds_closed_on_teardown
            .fetch_add(closed as u64, Ordering::Relaxed);
        let _ = conn.stream.shutdown(Shutdown::Both);
        conn.window.wake_all();
        for buf in conn.outbox.lock().drain(..) {
            self.pool.put(buf);
        }
        self.conns.lock().remove(&conn.id);
        self.stats.conns_closed.fetch_add(1, Ordering::Relaxed);
    }

    /// Queue one encoded reply and batch-flush the outbox. Whichever
    /// worker wins `flushing` writes *everything* queued at that point
    /// in one syscall; losers just leave their frame behind.
    fn enqueue_and_flush(&self, conn: &Arc<ConnState<F>>, reply: Vec<u8>) {
        conn.outbox.lock().push(reply);
        loop {
            if conn.flushing.swap(true, Ordering::AcqRel) {
                return; // active flusher will pick our frame up
            }
            let batch = std::mem::take(&mut *conn.outbox.lock());
            if batch.is_empty() {
                conn.flushing.store(false, Ordering::Release);
                // Recheck: a frame may have been queued between the take
                // and the flag reset by a worker that saw us flushing.
                if conn.outbox.lock().is_empty() {
                    return;
                }
                continue;
            }
            let frames = batch.len();
            let res = if frames == 1 {
                let res = conn.writer.lock().write_all(&batch[0]);
                self.pool.put(batch.into_iter().next().expect("one"));
                res
            } else {
                let mut gather = self.pool.get();
                for b in &batch {
                    gather.extend_from_slice(b);
                }
                for b in batch {
                    self.pool.put(b);
                }
                let res = conn.writer.lock().write_all(&gather);
                self.pool.put(gather);
                res
            };
            conn.window.release(frames);
            self.stats.flush_batches.fetch_add(1, Ordering::Relaxed);
            self.stats
                .replies_flushed
                .fetch_add(frames as u64, Ordering::Relaxed);
            if res.is_err() {
                self.teardown(conn);
                return;
            }
            conn.flushing.store(false, Ordering::Release);
            if conn.outbox.lock().is_empty() {
                return;
            }
        }
    }

    /// Decode, execute, and answer one admitted request frame.
    /// `rpc_span` is the id of the reader-side request root span (0 when
    /// that request was not sampled): the decode and dispatch children
    /// link to it across the thread hop, and the fs-op spans opened
    /// inside `dispatch` nest under the open dispatch child — one
    /// accept→decode→dispatch→op chain per tagged request.
    fn execute(&self, conn: &Arc<ConnState<F>>, frame: Vec<u8>, rpc_span: u64) {
        if conn.dead.load(Ordering::Acquire) {
            self.pool.put(frame);
            return;
        }
        let mut reply = self.pool.get();
        let decoded = {
            let _sp = Span::child_of(rpc_span, SpanKind::Rpc, "decode");
            wire::decode_request_frame(&frame)
        };
        let ok = match decoded {
            None => {
                self.stats.malformed.fetch_add(1, Ordering::Relaxed);
                false
            }
            Some((tag, req, _)) => {
                let mut sp = Span::child_of(rpc_span, SpanKind::Rpc, "dispatch");
                sp.set_stamp(tag);
                sp.set_shard(conn.shard as u32);
                self.dispatch(conn, tag, req, &mut reply);
                true
            }
        };
        self.pool.put(frame);
        if !ok {
            self.pool.put(reply);
            self.teardown(conn);
            return;
        }
        self.enqueue_and_flush(conn, reply);
    }

    fn dispatch(&self, conn: &Arc<ConnState<F>>, tag: u64, req: wire::ReqView<'_>, out: &mut Vec<u8>) {
        use wire::ReqView as R;
        let fs = &*self.fs;
        match req {
            R::Mknod { path } => unit(out, tag, fs.mknod(path)),
            R::Mkdir { path } => unit(out, tag, fs.mkdir(path)),
            R::Unlink { path } => unit(out, tag, fs.unlink(path)),
            R::Rmdir { path } => unit(out, tag, fs.rmdir(path)),
            R::Rename { src, dst } => unit(out, tag, fs.rename(src, dst)),
            R::Truncate { path, size } => unit(out, tag, fs.truncate(path, size)),
            R::Sync => unit(out, tag, fs.sync()),
            R::Stat { path } => match fs.stat(path) {
                Ok(meta) => wire::encode_response_stat(out, tag, &meta),
                Err(e) => wire::encode_response_err(out, tag, e),
            },
            R::Readdir { path } => match fs.readdir(path) {
                Ok(names) => {
                    if !wire::encode_response_names(out, tag, &names) {
                        wire::encode_response_err(out, tag, FsError::FileTooBig);
                    }
                }
                Err(e) => wire::encode_response_err(out, tag, e),
            },
            R::Read { path, offset, len } => {
                let mut data = self.pool.get();
                data.resize((len as usize).min(MAX_IO_LEN), 0);
                match fs.read(path, offset, &mut data) {
                    Ok(n) => wire::encode_response_data(out, tag, &data[..n]),
                    Err(e) => wire::encode_response_err(out, tag, e),
                }
                self.pool.put(data);
            }
            R::Write { path, offset, data } => match fs.write(path, offset, data) {
                Ok(n) => wire::encode_response_len(out, tag, n as u64),
                Err(e) => wire::encode_response_err(out, tag, e),
            },
            R::Open { path, flags } => {
                let opts = OpenOptions {
                    read: flags & FLAG_READ != 0,
                    write: flags & FLAG_WRITE != 0,
                    create: flags & FLAG_CREATE != 0,
                    truncate: flags & FLAG_TRUNC != 0,
                    append: flags & FLAG_APPEND != 0,
                };
                match conn.fds.open(path, opts) {
                    Ok(fd) => wire::encode_response_fd(out, tag, fd.0),
                    Err(e) => wire::encode_response_err(out, tag, e),
                }
            }
            R::Close { fd } => unit(out, tag, conn.fds.close(atomfs_vfs::Fd(fd))),
            R::PRead { fd, offset, len } => {
                let mut data = self.pool.get();
                data.resize((len as usize).min(MAX_IO_LEN), 0);
                match conn.fds.read_at(atomfs_vfs::Fd(fd), offset, &mut data) {
                    Ok(n) => wire::encode_response_data(out, tag, &data[..n]),
                    Err(e) => wire::encode_response_err(out, tag, e),
                }
                self.pool.put(data);
            }
            R::PWrite { fd, offset, data } => {
                match conn.fds.write_at(atomfs_vfs::Fd(fd), offset, data) {
                    Ok(n) => wire::encode_response_len(out, tag, n as u64),
                    Err(e) => wire::encode_response_err(out, tag, e),
                }
            }
        }
    }

    /// HTTP scrapes on the RPC listener, keep-alive: the connection
    /// serves sequential GETs until the client closes it or asks for
    /// `Connection: close`. The first request's method (`"GET "`) was
    /// consumed by the protocol sniff; later requests are read whole.
    fn serve_http(&self, mut stream: TcpStream) {
        let mut first = true;
        loop {
            let Some(head) = read_http_head(&mut stream) else {
                break; // EOF between requests, error, or oversized head
            };
            let mut fields = head.split(|&b| b == b' ');
            let method: &[u8] = if first {
                b"GET" // the sniffed bytes
            } else {
                fields.next().unwrap_or(b"")
            };
            first = false;
            let target = fields
                .next()
                .and_then(|t| std::str::from_utf8(t).ok())
                .unwrap_or("");
            self.stats.http_requests.fetch_add(1, Ordering::Relaxed);
            let (status, ctype, body) = if method != b"GET" {
                (
                    "405 Method Not Allowed",
                    "text/plain",
                    "only GET is served here\n".to_string(),
                )
            } else {
                self.http_response(target)
            };
            // Always advertise the body length so the client can frame
            // the response and reuse the connection.
            let close = wants_close(&head);
            let conn_hdr = if close { "close" } else { "keep-alive" };
            if stream
                .write_all(
                    format!(
                        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: {conn_hdr}\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                )
                .is_err()
                || close
            {
                break;
            }
        }
        let _ = stream.shutdown(Shutdown::Both);
    }

    /// Route one GET.
    fn http_response(&self, target: &str) -> (&'static str, &'static str, String) {
        match target {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4",
                match &self.registry {
                    Some(reg) => reg.render_prometheus(),
                    None => String::new(),
                },
            ),
            "/spans" => ("200 OK", "application/json", atomfs_obs::render_spans_json()),
            "/check" => match self.checker.lock().as_ref().and_then(|p| p.status_json()) {
                Some(json) => ("200 OK", "application/json", json),
                None => (
                    "404 Not Found",
                    "application/json",
                    "{\"ok\":null,\"detail\":\"no checker attached\"}\n".to_string(),
                ),
            },
            _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
        }
    }
}

/// Read one request head through the blank line, bounded (scrape
/// requests are tiny). `None` on EOF, error, or an oversized head.
fn read_http_head(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    while head.len() < 4096 && !head.ends_with(b"\r\n\r\n") {
        match stream.read(&mut byte) {
            Ok(1) => head.push(byte[0]),
            _ => return None,
        }
    }
    head.ends_with(b"\r\n\r\n").then_some(head)
}

/// Whether the request head asks us to drop the connection after this
/// response (`Connection: close`, any case).
fn wants_close(head: &[u8]) -> bool {
    head.to_ascii_lowercase()
        .windows(b"connection: close".len())
        .any(|w| w == b"connection: close")
}

fn unit(out: &mut Vec<u8>, tag: u64, r: Result<(), FsError>) {
    match r {
        Ok(()) => wire::encode_response_unit(out, tag),
        Err(e) => wire::encode_response_err(out, tag, e),
    }
}

/// Tears the connection down if the wrapped job panics mid-operation, so
/// a panicked worker still closes every handle in the connection's FD
/// table. Disarmed on orderly completion.
struct PanicGuard<F: FileSystem + 'static> {
    shared: Arc<Shared<F>>,
    conn: Arc<ConnState<F>>,
    armed: bool,
}

impl<F: FileSystem + 'static> Drop for PanicGuard<F> {
    fn drop(&mut self) {
        if self.armed {
            self.shared.teardown(&self.conn);
        }
    }
}

/// A running server; dropping it does *not* stop it — call
/// [`Server::shutdown`].
pub struct Server<F: FileSystem + 'static> {
    shared: Arc<Shared<F>>,
    executor: Arc<Executor>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Mutex<Option<JoinHandle<()>>>,
    readers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Bind an ephemeral loopback port and serve `fs`. When a
/// `registry` is given, `/metrics` scrapes it and the server registers
/// its own gauges (`rpc_conns_open`, `rpc_requests_total`, ...) there.
pub fn serve<F: FileSystem + 'static>(
    fs: Arc<F>,
    registry: Option<Arc<Registry>>,
    cfg: ServerConfig,
) -> std::io::Result<Server<F>> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    serve_on(listener, fs, registry, cfg)
}

/// Like [`serve`], additionally starting a [`CheckerPump`] that follows
/// `sink` — the trace sink the served `fs` emits into — with a
/// streaming CRL-H checker. The live verdict is served at `/check` on
/// the same listener, the checker's `crlh_stream_*` gauges land on
/// `registry` when one is given, and
/// [`Server::shutdown_checked`] returns the final
/// [`CheckReport`](crlh::CheckReport).
pub fn serve_checked<F: FileSystem + 'static>(
    fs: Arc<F>,
    registry: Option<Arc<Registry>>,
    cfg: ServerConfig,
    sink: &Arc<ShardedSink>,
    pump: PumpConfig,
) -> std::io::Result<Server<F>> {
    let server = serve(fs, registry, cfg)?;
    let pump = CheckerPump::start(sink, pump, server.shared.registry.as_deref());
    *server.shared.checker.lock() = Some(Arc::new(pump));
    Ok(server)
}

/// Like [`serve`], over an already-bound listener.
pub fn serve_on<F: FileSystem + 'static>(
    listener: TcpListener,
    fs: Arc<F>,
    registry: Option<Arc<Registry>>,
    cfg: ServerConfig,
) -> std::io::Result<Server<F>> {
    let addr = listener.local_addr()?;
    let stats = Arc::new(ServerStats::default());
    if let Some(reg) = &registry {
        register_stat_fns(reg, &stats);
    }
    let shared = Arc::new(Shared {
        fs,
        pool: BufPool::new(cfg.pool_bufs),
        stats,
        conns: Mutex::new(HashMap::new()),
        registry,
        checker: Mutex::new(None),
    });
    let executor = Arc::new(Executor::start(cfg.executor));
    let stop = Arc::new(AtomicBool::new(false));
    let readers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let shared = Arc::clone(&shared);
        let executor = Arc::clone(&executor);
        let stop = Arc::clone(&stop);
        let readers = Arc::clone(&readers);
        let window = cfg.window.max(1);
        std::thread::Builder::new()
            .name("afs-srv-accept".into())
            .spawn(move || {
                let mut next_id = 0u64;
                for stream in listener.incoming() {
                    if stop.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let _ = stream.set_nodelay(true);
                    let id = next_id;
                    next_id += 1;
                    // Fibonacci-hash the connection id over the shards so
                    // sequential accepts spread instead of clustering.
                    let shard =
                        (id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize % executor.shards();
                    let Ok(wstream) = stream.try_clone() else {
                        continue;
                    };
                    let conn = Arc::new(ConnState {
                        id,
                        shard,
                        stream,
                        writer: Mutex::new(wstream),
                        outbox: Mutex::new(Vec::new()),
                        flushing: AtomicBool::new(false),
                        window: Window {
                            inflight: Mutex::new(0),
                            cv: Condvar::new(),
                            cap: window,
                        },
                        fds: FdTable::new(Arc::clone(&shared.fs)),
                        dead: AtomicBool::new(false),
                    });
                    shared.stats.conns_opened.fetch_add(1, Ordering::Relaxed);
                    shared.conns.lock().insert(id, Arc::clone(&conn));
                    let shared = Arc::clone(&shared);
                    let executor = Arc::clone(&executor);
                    let handle = std::thread::Builder::new()
                        .name(format!("afs-conn-{id}"))
                        .spawn(move || reader_loop(shared, executor, conn))
                        .expect("spawn reader");
                    let mut rs = readers.lock();
                    rs.retain(|h| !h.is_finished()); // reap exited readers
                    rs.push(handle);
                }
            })?
    };

    Ok(Server {
        shared,
        executor,
        addr,
        stop,
        accept_thread: Mutex::new(Some(accept)),
        readers,
    })
}

fn register_stat_fns(reg: &Registry, stats: &Arc<ServerStats>) {
    let fns: [(&str, &str, FnKind, fn(&ServerStats) -> u64); 6] = [
        (
            "rpc_conns_open",
            "Connections currently alive.",
            FnKind::Gauge,
            |s| {
                s.conns_opened
                    .load(Ordering::Relaxed)
                    .saturating_sub(s.conns_closed.load(Ordering::Relaxed))
            },
        ),
        (
            "rpc_requests_total",
            "Request frames admitted.",
            FnKind::Counter,
            |s| s.requests.load(Ordering::Relaxed),
        ),
        (
            "rpc_replies_flushed_total",
            "Reply frames written to sockets.",
            FnKind::Counter,
            |s| s.replies_flushed.load(Ordering::Relaxed),
        ),
        (
            "rpc_flush_batches_total",
            "Batched reply writes (each covers >= 1 frame).",
            FnKind::Counter,
            |s| s.flush_batches.load(Ordering::Relaxed),
        ),
        (
            "rpc_malformed_total",
            "Frames rejected by strict decoding.",
            FnKind::Counter,
            |s| s.malformed.load(Ordering::Relaxed),
        ),
        (
            "rpc_fds_torn_down_total",
            "Descriptors force-closed by disconnect cleanup.",
            FnKind::Counter,
            |s| s.fds_closed_on_teardown.load(Ordering::Relaxed),
        ),
    ];
    for (name, help, kind, f) in fns {
        let s = Arc::clone(stats);
        reg.register_fn(name, &[], help, kind, move || f(&s) as f64);
    }
}

fn reader_loop<F: FileSystem + 'static>(
    shared: Arc<Shared<F>>,
    executor: Arc<Executor>,
    conn: Arc<ConnState<F>>,
) {
    let mut rstream = match conn.stream.try_clone() {
        Ok(s) => s,
        Err(_) => {
            shared.teardown(&conn);
            return;
        }
    };
    // Sniff the first four bytes: "GET " means this connection is a
    // one-shot HTTP scrape, anything else must open an RPC frame.
    let mut first = [0u8; 4];
    if rstream.read_exact(&mut first).is_err() {
        shared.teardown(&conn);
        return;
    }
    if &first == b"GET " {
        shared.serve_http(rstream);
        shared.teardown(&conn);
        return;
    }
    let mut hdr = [0u8; HDR_LEN];
    let mut sniffed = Some(first);
    loop {
        // Assemble the fixed header (reusing the sniffed bytes once).
        let ok = match sniffed.take() {
            Some(four) => {
                hdr[..4].copy_from_slice(&four);
                rstream.read_exact(&mut hdr[4..]).is_ok()
            }
            None => rstream.read_exact(&mut hdr).is_ok(),
        };
        if !ok {
            break; // EOF or error: client is gone
        }
        let Some((_, total)) = wire::frame_size_hint(&hdr, REQ_MAGIC) else {
            // Bad magic/version or a forged length: framing is
            // unrecoverable on this connection.
            shared.stats.malformed.fetch_add(1, Ordering::Relaxed);
            break;
        };
        // One sampled root per tagged request. It covers admission
        // (window acquire) and the payload read on this thread and then
        // closes; the worker-side decode/dispatch/fs-op spans link to
        // it by id (`Span::child_of`) across the thread hop, so the
        // whole accept→decode→dispatch→op chain hangs under one root.
        // (Span guards must not cross threads — drop pops the creating
        // thread's active stack — hence id linking, not moving.)
        let mut rpc_sp = Span::op_root(SpanKind::Rpc, "rpc_request");
        rpc_sp.set_shard(conn.shard as u32);
        let rpc_id = rpc_sp.id();
        // Backpressure: park until the pipeline has room (or the
        // connection died under us).
        if !conn.window.acquire(&conn.dead) {
            break;
        }
        let mut frame = shared.pool.get();
        frame.extend_from_slice(&hdr);
        frame.resize(total, 0);
        if rstream.read_exact(&mut frame[HDR_LEN..]).is_err() {
            rpc_sp.fail();
            shared.pool.put(frame);
            break;
        }
        shared.stats.requests.fetch_add(1, Ordering::Relaxed);
        drop(rpc_sp);
        let job_shared = Arc::clone(&shared);
        let job_conn = Arc::clone(&conn);
        let submitted = executor.submit(
            conn.shard,
            Box::new(move || {
                let mut guard = PanicGuard {
                    shared: Arc::clone(&job_shared),
                    conn: Arc::clone(&job_conn),
                    armed: true,
                };
                job_shared.execute(&job_conn, frame, rpc_id);
                guard.armed = false;
            }),
        );
        if !submitted {
            break; // executor shutting down
        }
    }
    shared.teardown(&conn);
}

impl<F: FileSystem + 'static> Server<F> {
    /// The bound address clients should connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Counters snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            conns_opened: s.conns_opened.load(Ordering::Relaxed),
            conns_closed: s.conns_closed.load(Ordering::Relaxed),
            requests: s.requests.load(Ordering::Relaxed),
            replies_flushed: s.replies_flushed.load(Ordering::Relaxed),
            flush_batches: s.flush_batches.load(Ordering::Relaxed),
            malformed: s.malformed.load(Ordering::Relaxed),
            fds_closed_on_teardown: s.fds_closed_on_teardown.load(Ordering::Relaxed),
            http_requests: s.http_requests.load(Ordering::Relaxed),
            worker_panics: self.executor.panics(),
        }
    }

    /// Connections currently alive.
    pub fn open_conns(&self) -> usize {
        self.shared.conns.lock().len()
    }

    /// The attached streaming-checker pump, when this server was
    /// started with [`serve_checked`].
    pub fn checker(&self) -> Option<Arc<CheckerPump>> {
        self.shared.checker.lock().clone()
    }

    /// [`Server::shutdown`], then stop the checker pump — the sink is
    /// quiescent once shutdown returns — and run its end-of-trace
    /// checks. The report is `None` when no pump was attached.
    pub fn shutdown_checked(self) -> (StatsSnapshot, Option<CheckReport>) {
        let pump = self.shared.checker.lock().take();
        let snap = self.shutdown();
        let report = pump.and_then(|p| p.stop_and_finish());
        (snap, report)
    }

    /// Stop accepting, tear down every connection (closing its FD
    /// table), drain the executor, and join all threads. Every admitted
    /// request has either executed or been dropped with its connection
    /// by the time this returns — so a trace sink attached to the
    /// served file system is quiescent and safe to drain.
    pub fn shutdown(self) -> StatsSnapshot {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.lock().take() {
            let _ = h.join();
        }
        let conns: Vec<_> = self.shared.conns.lock().values().cloned().collect();
        for conn in conns {
            self.shared.teardown(&conn);
        }
        for h in self.readers.lock().drain(..) {
            let _ = h.join();
        }
        self.executor.shutdown();
        // A pump left attached (plain shutdown, not `shutdown_checked`)
        // must still be joined or its thread leaks past the server.
        if let Some(pump) = self.shared.checker.lock().take() {
            pump.stop();
        }
        self.stats()
    }
}
